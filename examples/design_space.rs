//! Design-space exploration: what the Fig. 7 sweep looks like from the
//! public API — synthesize every tile-size candidate, check feasibility,
//! estimate Fmax, and time the target workload; then print the frontier.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use protea::prelude::*;

fn main() {
    let device = FpgaDevice::alveo_u55c();
    let workload = EncoderConfig::paper_test1();
    println!("Design-space exploration on {} (workload: d=768, h=8, N=12, SL=64)\n", device.name);
    println!(
        "{:>9} {:>9} {:>7} {:>7} {:>10} {:>12} {:>9}",
        "tiles_MHA", "tiles_FFN", "TS_MHA", "TS_FFN", "Fmax(MHz)", "latency(ms)", "feasible"
    );

    let mut best: Option<(f64, usize, usize)> = None;
    for tiles_mha in [6usize, 8, 12, 16, 24, 32, 48] {
        for tiles_ffn in [2usize, 3, 4, 6] {
            let syn = SynthesisConfig::with_tile_counts(tiles_mha, tiles_ffn);
            let design = syn.synthesize(&device);
            let latency = if design.feasible {
                let mut accel =
                    Accelerator::try_new(syn, &device).expect("design must fit the device");
                accel.program(RuntimeConfig::from_model(&workload, &syn).unwrap()).unwrap();
                let ms = accel.timing_report().latency_ms();
                if best.is_none_or(|(b, _, _)| ms < b) {
                    best = Some((ms, tiles_mha, tiles_ffn));
                }
                format!("{ms:.1}")
            } else {
                "-".into()
            };
            println!(
                "{:>9} {:>9} {:>7} {:>7} {:>10.1} {:>12} {:>9}",
                tiles_mha,
                tiles_ffn,
                768 / tiles_mha,
                768 / tiles_ffn,
                design.fmax_mhz,
                latency,
                if design.feasible { "yes" } else { "NO" }
            );
        }
    }

    let (ms, tm, tf) = best.expect("at least one feasible point");
    println!(
        "\nBest design point: {tm} MHA tiles × {tf} FFN tiles at {ms:.1} ms — the paper \
         reports the same optimum (12 × 6, 200 MHz)."
    );
}
