//! Sparsity study — running the comparison the paper could only cite.
//!
//! Table II compares dense ProTEA against sparse accelerators and
//! applies the arithmetic `latency · (1 − sparsity)` to reason about
//! hypothetical sparse support. This example makes the trade concrete:
//! prune a model with each comparator's scheme, measure what the
//! accuracy cost actually is (dense ProTEA runs pruned weights at
//! unchanged latency), and print the hypothetical sparse-latency line
//! the paper computes.
//!
//! ```text
//! cargo run --release --example sparsity_study
//! ```

use protea::model::pruning::PruningScheme;
use protea::prelude::*;
use protea::tensor::ops::mse;

fn main() {
    let cfg = EncoderConfig::new(128, 8, 2, 32);
    let dense = EncoderWeights::random(cfg, 99);
    let float_ref = FloatEncoder::new(dense.clone());
    let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
        (((r * 17 + c * 5) % 101) as f32 / 101.0 - 0.5) * 2.0
    });
    let y_ref = float_ref.forward(&x);

    // ProTEA's dense latency for this model (unchanged by pruning).
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    accel.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    let dense_ms = accel.timing_report().latency_ms();
    println!("Dense ProTEA latency for (d=128, h=8, N=2, SL=32): {dense_ms:.3} ms\n");

    println!(
        "{:<28} {:>9} {:>12} {:>14} {:>20}",
        "scheme", "sparsity", "output MSE", "dense latency", "hypothetical sparse"
    );
    for (name, scheme, s) in [
        ("column-balanced ([21])", PruningScheme::ColumnBalanced, 0.90),
        ("EFA-Trans-level", PruningScheme::Magnitude, 0.64),
        ("block 8x8 ([29]-style)", PruningScheme::Blocks(8), 0.93),
        ("magnitude 50%", PruningScheme::Magnitude, 0.50),
        ("dense (reference)", PruningScheme::Magnitude, 0.0),
    ] {
        let mut w = dense.clone();
        let measured = w.prune(scheme, s);
        let q = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
        let y = q.dequantize(&q.forward(&q.quantize_input(&x)));
        let err = mse(&y_ref, &y);
        // The paper's adjustment: what latency sparse hardware would get.
        let hypothetical = dense_ms * (1.0 - measured);
        println!(
            "{name:<28} {:>8.0}% {err:>12.4} {dense_ms:>11.3} ms {hypothetical:>17.3} ms",
            measured * 100.0
        );
    }

    println!(
        "\nReading: dense ProTEA pays no latency for sparsity and no accuracy either;\n\
         the comparators' speedups (Table II) buy latency with the accuracy loss above\n\
         (random weights make the MSE an upper-bound-style indicator, not a task metric)."
    );
}
