//! Runtime reprogramming — the paper's headline feature.
//!
//! One synthesis hosts a sequence of different transformer encoders: a
//! BERT-variant, a compact NLP model, and a tiny physics-trigger model,
//! switched purely by register writes and weight DMA — no re-synthesis.
//! A model exceeding the synthesized capacity is rejected the way the
//! real controller would reject the AXI-lite write.
//!
//! ```text
//! cargo run --release --example runtime_reprogramming
//! ```

use protea::prelude::*;

fn main() {
    let syn = SynthesisConfig::paper_default();
    let device = FpgaDevice::alveo_u55c();
    let mut accel = Accelerator::try_new(syn, &device).expect("design must fit the device");
    let driver = Driver::new(syn);
    let dsps_at_boot = accel.design().resources.dsps;
    println!(
        "One bitstream: {} DSPs, capacity d_model ≤ {}, heads ≤ {}, SL ≤ {}\n",
        dsps_at_boot, syn.d_max, syn.heads, syn.sl_max
    );

    let models = [
        ("BERT-variant slice", EncoderConfig::new(768, 8, 2, 64)),
        ("compact NLP encoder", EncoderConfig::new(256, 4, 4, 32)),
        ("tiny HEP trigger", EncoderConfig::new(64, 2, 1, 16)),
    ];

    for (name, cfg) in models {
        let blob = protea::model::serialize::encode(&EncoderWeights::random(cfg, 7));
        driver
            .deploy(&mut accel, &blob, QuantSchedule::paper())
            .expect("within synthesized capacity");
        let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| ((r * 5 + c) % 100) as i8);
        let out = accel.run(&x);
        println!(
            "{name:<22} d={:<4} h={} N={:<2} SL={:<3} → {:>9.4} ms, {:>6.1} GOPS",
            cfg.d_model, cfg.heads, cfg.layers, cfg.seq_len, out.latency_ms, out.gops
        );
        assert_eq!(
            accel.design().resources.dsps,
            dsps_at_boot,
            "resources must not change across models"
        );
    }

    // A model beyond the synthesized capacity must be rejected.
    println!();
    let too_big = EncoderConfig::new(1024, 8, 1, 16);
    let blob = protea::model::serialize::encode(&EncoderWeights::random(too_big, 7));
    match driver.deploy(&mut accel, &blob, QuantSchedule::paper()) {
        Err(e) => println!("✓ oversized model correctly rejected: {e}"),
        Ok(_) => unreachable!("d_model=1024 exceeds the synthesized 768"),
    }
}
