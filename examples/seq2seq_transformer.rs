//! Full sequence-to-sequence transformer on the simulated accelerator —
//! the paper's future-work extension: an encoder stack feeding a decoder
//! stack (masked self-attention + cross-attention), both running on one
//! synthesized ProTEA instance.
//!
//! ```text
//! cargo run --release --example seq2seq_transformer
//! ```

use protea::model::decoder::{DecoderWeights, QuantizedDecoder};
use protea::prelude::*;

fn main() {
    let syn = SynthesisConfig::paper_default();
    let device = FpgaDevice::alveo_u55c();
    let mut accel = Accelerator::try_new(syn, &device).expect("design must fit the device");

    // A compact translation-style model: 3 encoder + 3 decoder layers.
    let cfg = EncoderConfig::new(256, 8, 3, 48);
    let enc_weights = EncoderWeights::random(cfg, 2024);
    let dec_weights = DecoderWeights::random(cfg, 2025);
    let encoder = QuantizedEncoder::from_float(&enc_weights, QuantSchedule::paper());
    let decoder = QuantizedDecoder::from_float(&dec_weights, QuantSchedule::paper());

    accel.program(RuntimeConfig::from_model(&cfg, &syn).expect("fits")).expect("register write");
    accel.try_load_weights(encoder.clone()).expect("weights must match the programmed registers");

    // Source sequence (48 tokens) and a shorter target prefix (16).
    let source = Matrix::from_fn(48, 256, |r, c| (((r * 13 + c * 7) % 120) as i32 - 60) as i8);
    let target = Matrix::from_fn(16, 256, |r, c| (((r * 29 + c * 3) % 120) as i32 - 60) as i8);

    // 1. Encode.
    let enc_run = accel.run(&source);
    println!(
        "Encoder: 3 layers over SL=48 → {:.4} ms ({} cycles)",
        enc_run.latency_ms,
        enc_run.report.total.get()
    );

    // 2. Decode against the encoder memory.
    let dec_run = accel.run_decoder(&decoder, &target, &enc_run.output);
    println!(
        "Decoder: 3 layers, target 16 × source 48 → {:.4} ms ({} cycles)",
        dec_run.latency_ms,
        dec_run.report.total.get()
    );
    println!(
        "End-to-end sequence-to-sequence latency: {:.4} ms\n",
        enc_run.latency_ms + dec_run.latency_ms
    );
    println!("Decoder per-phase breakdown:\n{}", dec_run.report);

    // Verify against the pure-software golden path.
    let memory_sw = encoder.forward(&source);
    assert_eq!(enc_run.output.as_slice(), memory_sw.as_slice());
    let out_sw = decoder.forward(&target, &memory_sw);
    assert_eq!(dec_run.output.as_slice(), out_sw.as_slice());
    println!("✓ encoder and decoder outputs are bit-identical to the golden models");
}
