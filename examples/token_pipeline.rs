//! The complete Fig. 1 pipeline, tokens in → tokens out: host-side
//! embedding + positional encoding, the encoder stack on the simulated
//! accelerator, and the generator head (linear + argmax) back on the
//! host — the deployment shape the paper's system slots into.
//!
//! ```text
//! cargo run --release --example token_pipeline
//! ```

use protea::model::{Embedding, GeneratorHead};
use protea::prelude::*;

fn main() {
    const VOCAB: usize = 512;
    let cfg = EncoderConfig::new(128, 4, 2, 24);

    // Host-side stages.
    let embedding = Embedding::random(VOCAB, cfg.d_model, 100);
    let head = GeneratorHead::random(&cfg, VOCAB, 101);

    // Accelerator-side encoder.
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let weights = EncoderWeights::random(cfg, 102);
    let quantized = QuantizedEncoder::from_float(&weights, QuantSchedule::paper());
    accel.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    accel.try_load_weights(quantized.clone()).expect("weights must match the programmed registers");

    // A token sequence (deterministic pseudo-text).
    let tokens: Vec<u32> = (0..cfg.seq_len as u32).map(|i| (i * 37 + 11) % VOCAB as u32).collect();
    println!("input tokens:  {:?} …", &tokens[..8]);

    // 1. Embed + positionally encode (host, f32).
    let embedded = embedding.embed(&tokens);

    // 2. Quantize and run the encoder on the accelerator.
    let x_q = quantized.quantize_input(&embedded);
    let result = accel.run(&x_q);
    println!(
        "encoder: {} layers on the accelerator in {:.4} ms ({:.1} GOPS)",
        cfg.layers, result.latency_ms, result.gops
    );

    // 3. Dequantize and decode through the generator head (host).
    let hidden = quantized.dequantize(&result.output);
    let out_tokens = head.greedy(&hidden);
    println!("output tokens: {:?} …", &out_tokens[..8]);

    // Pipeline sanity: deterministic end to end, and the quantized
    // encoder's head decisions mostly agree with a pure-f32 pipeline.
    let float_hidden = FloatEncoder::new(weights).forward(&embedded);
    let float_tokens = head.greedy(&float_hidden);
    let agree = out_tokens.iter().zip(&float_tokens).filter(|(a, b)| a == b).count();
    println!(
        "agreement with the f32 pipeline: {}/{} positions ({:.0}%)",
        agree,
        out_tokens.len(),
        agree as f64 / out_tokens.len() as f64 * 100.0
    );
    assert_eq!(out_tokens, head.greedy(&hidden), "pipeline must be deterministic");
    assert!(
        agree * 2 >= out_tokens.len(),
        "8-bit pipeline should agree with f32 on most positions"
    );
}
