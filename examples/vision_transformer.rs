//! A ViT-style vision workload on ProTEA — the computer-vision use case
//! the paper's introduction motivates ("image processing", Swin/ViT
//! accelerators among the cited related work).
//!
//! A 32×32 single-channel image is split into 4×4 patches (64 patches =
//! the sequence), patch-embedded, run through the encoder on the
//! simulated accelerator, mean-pooled, and classified by a linear head.
//!
//! ```text
//! cargo run --release --example vision_transformer
//! ```

use protea::model::embedding::PatchEmbedding;
use protea::model::GeneratorHead;
use protea::prelude::*;

fn synthetic_image(kind: usize) -> Matrix<f32> {
    // Three synthetic classes: vertical stripes, horizontal stripes,
    // checkerboard.
    Matrix::from_fn(32, 32, |r, c| match kind {
        0 => ((c / 4) % 2) as f32,
        1 => ((r / 4) % 2) as f32,
        _ => (((r / 4) + (c / 4)) % 2) as f32,
    })
}

fn main() {
    const CLASSES: usize = 8;
    let cfg = EncoderConfig::new(192, 4, 4, 64); // 64 patches, compact ViT

    let patches = PatchEmbedding::random(4, cfg.d_model, 31);
    let head = GeneratorHead::random(&cfg, CLASSES, 32);

    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let weights = EncoderWeights::random(cfg, 33);
    let quantized = QuantizedEncoder::from_float(&weights, QuantSchedule::paper());
    accel.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    accel.try_load_weights(quantized.clone()).expect("weights must match the programmed registers");

    println!("ViT-style classifier: 32x32 image → 64 patches → {}-layer encoder\n", cfg.layers);
    let mut latency = 0.0;
    let mut votes = Vec::new();
    for kind in 0..3 {
        let image = synthetic_image(kind);
        let seq = patches.embed(&image);
        let x_q = quantized.quantize_input(&seq);
        let run = accel.run(&x_q);
        latency = run.latency_ms;
        // mean-pool over patches (the usual no-class-token variant)
        let hidden = quantized.dequantize(&run.output);
        let pooled = Matrix::from_fn(1, cfg.d_model, |_, d| {
            (0..hidden.rows()).map(|r| hidden[(r, d)]).sum::<f32>() / hidden.rows() as f32
        });
        let class = head.greedy(&pooled)[0];
        votes.push(class);
        println!(
            "  image class {kind} (pattern) → encoder {:.3} ms → predicted bucket {class}",
            run.latency_ms
        );
    }
    println!("\nper-image encoder latency: {latency:.3} ms ({} GOPS-class workload)", {
        let ops = OpCount::for_config(&cfg);
        format!("{:.1}", ops.gops(latency))
    });

    // With random weights the classes are arbitrary buckets; the claim
    // worth asserting is structural: distinct input patterns reach the
    // head as distinct representations often enough to vote differently
    // at least once across three very different inputs.
    let all_same = votes.iter().all(|&v| v == votes[0]);
    println!(
        "distinct patterns produced {} bucket assignments: {:?}",
        if all_same { "identical (random-weight collapse is possible)" } else { "distinct" },
        votes
    );
}
