//! Device portability: automatically re-fit ProTEA to every FPGA in the
//! paper's comparison tables. The U55C hosts the published design point;
//! smaller parts (ZCU102) force the design-space search to shrink head
//! engines and tile sizes — quantifying how much of ProTEA's performance
//! is the big HBM card.
//!
//! ```text
//! cargo run --release --example device_portability
//! ```

use protea::prelude::*;

fn main() {
    let workload = EncoderConfig::new(256, 2, 2, 64);
    println!(
        "Auto-fitting ProTEA for workload d={}, h={}, N={}, SL={}:\n",
        workload.d_model, workload.heads, workload.layers, workload.seq_len
    );
    println!(
        "{:<12} {:>6} {:>7} {:>7} {:>6} {:>7} {:>10} {:>9} {:>9}",
        "device", "d_max", "heads", "TS_MHA", "TS_FFN", "DSP", "LUT", "Fmax", "lat (ms)"
    );
    for device in FpgaDevice::all() {
        match SynthesisConfig::fit_to_device(&device, &workload) {
            Some(design) => {
                let mut accel = Accelerator::try_new(design.config, &device)
                    .expect("design must fit the device");
                accel
                    .program(RuntimeConfig::from_model(&workload, &design.config).unwrap())
                    .unwrap();
                let ms = accel.timing_report().latency_ms();
                println!(
                    "{:<12} {:>6} {:>7} {:>7} {:>6} {:>7} {:>10} {:>8.1} {:>9.3}",
                    device.name,
                    design.config.d_max,
                    design.config.heads,
                    design.config.ts_mha,
                    design.config.ts_ffn,
                    design.resources.dsps,
                    design.resources.luts,
                    design.fmax_mhz,
                    ms
                );
            }
            None => println!("{:<12} (no feasible configuration)", device.name),
        }
    }

    println!(
        "\nThe paper design point itself fits only the Alveo-class parts; the search\n\
         recovers a working (smaller, slower) ProTEA for the ZCU102 — the kind of\n\
         portability the runtime-programmable architecture makes cheap."
    );
}
