//! Quickstart: synthesize once, deploy a model, run an inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use protea::prelude::*;

fn main() {
    // Synthesize the paper's design point (TS_MHA=64, TS_FFN=128, 8 head
    // engines) onto an Alveo U55C. This is the step that would take
    // Vitis ~36 hours; here it binds resources and estimates Fmax.
    let syn = SynthesisConfig::paper_default();
    let device = FpgaDevice::alveo_u55c();
    let mut accel = Accelerator::try_new(syn, &device).expect("design must fit the device");
    println!("Synthesized ProTEA on {}:", device.name);
    println!("  {}", accel.design().report);
    println!("  Fmax = {:.1} MHz\n", accel.design().fmax_mhz);

    // "Train" a model (random weights stand in for a .pth file), save it
    // to the binary format, and deploy: the driver extracts the
    // hyperparameters from the header, programs the registers, and
    // quantizes + loads the weights.
    let cfg = EncoderConfig::new(256, 4, 2, 16);
    let weights = EncoderWeights::random(cfg, 42);
    let blob = protea::model::serialize::encode(&weights);
    println!(
        "Deploying a {}-layer encoder (d_model={}, {} heads, SL={}) — {:.1} MB of weights",
        cfg.layers,
        cfg.d_model,
        cfg.heads,
        cfg.seq_len,
        blob.len() as f64 / 1e6
    );
    let program = Driver::new(syn)
        .deploy(&mut accel, &blob, QuantSchedule::paper())
        .expect("model fits the synthesized capacity");
    println!("  driver issued {} instructions\n", program.len());

    // Run one inference: functional output (bit-exact int8) + timing.
    let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
        (((r * 31 + c * 7) % 120) as i32 - 60) as i8
    });
    let result = accel.run(&x);
    println!("Inference complete:");
    println!("  latency: {:.4} ms  ({:.1} GOPS)", result.latency_ms, result.gops);
    println!("  output shape: {:?}", result.output.shape());
    println!("\nPer-engine cycle breakdown:\n{}", result.report);

    // Cross-check against the software golden model: must be identical.
    let golden = QuantizedEncoder::from_float(&weights, QuantSchedule::paper());
    assert_eq!(result.output.as_slice(), golden.forward(&x).as_slice());
    println!("✓ accelerator output is bit-identical to the quantized reference");
}
