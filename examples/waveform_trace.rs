//! Waveform and Gantt views of one encoder layer: dump a GTKWave-viewable
//! VCD of the engine phase activity and print a terminal Gantt chart —
//! the "where do the cycles go" picture behind Table I.
//!
//! ```text
//! cargo run --release --example waveform_trace
//! # then: gtkwave protea_run.vcd
//! ```

use protea::prelude::*;
use std::fs;

fn main() {
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    // One layer of the headline config keeps the waveform readable.
    accel
        .program(RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 })
        .expect("register write");
    let report = accel.timing_report();

    println!(
        "One encoder layer (d=768, h=8, SL=64): {} cycles = {:.3} ms @ {:.1} MHz\n",
        report.total.get(),
        report.latency_ms(),
        report.fmax_mhz
    );
    println!("Engine phase Gantt (one layer):\n");
    print!("{}", report.gantt(64));

    let vcd = report.to_vcd();
    let path = "protea_run.vcd";
    fs::write(path, &vcd).expect("write VCD");
    println!(
        "\nWrote {} ({} bytes) — open with `gtkwave {}` to see per-engine activity.",
        path,
        vcd.len(),
        path
    );

    // The timeline API the VCD is built from:
    println!("\nFirst four phase spans:");
    for (name, start, end) in report.timeline().into_iter().take(4) {
        println!("  {:<10} {:>9} → {:>9} cycles", name, start.get(), end.get());
    }
}
