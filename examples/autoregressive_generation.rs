//! Autoregressive generation with a KV cache: decode a sequence one
//! position at a time through the phase-aware pipeline, with the
//! functional path verified bit-exact against the full forward pass.
//!
//! This is the deployment profile a decoder actually runs in (the
//! paper's future-work direction), and it exposes the structural truth
//! of single-token inference: every step still streams every weight
//! tile, so generation is bandwidth-bound and per-step latency barely
//! grows with position.
//!
//! ```text
//! cargo run --release --example autoregressive_generation
//! ```

use protea::model::decoder::{DecoderKvCache, DecoderWeights, QuantizedDecoder};
use protea::prelude::*;

fn main() {
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");

    let cfg = EncoderConfig::new(256, 8, 2, 1);
    let dec = QuantizedDecoder::from_float(&DecoderWeights::random(cfg, 7), QuantSchedule::paper());
    let packed = dec.pack();

    // Encoder memory for a 32-token source (stands in for an encoded
    // sentence). The programmed seq_len is the source length the decode
    // phases' cross-attention spans.
    let memory = Matrix::from_fn(32, 256, |r, c| (((r * 17 + c * 5) % 120) as i32 - 60) as i8);
    accel
        .program(RuntimeConfig { heads: 8, layers: 2, d_model: 256, seq_len: memory.rows() })
        .expect("register write");
    let steps = 12usize;

    // Generate step by step through RunPlan::decode — one phase-aware
    // pipeline call per token carries both the functional step (via the
    // packed SIMD fast path) and its timing. The "next token" here is a
    // deterministic function of the previous output row (greedy-decoding
    // stand-in).
    let mut cache = DecoderKvCache::new(&dec, &memory);
    let mut row = Matrix::from_fn(1, 256, |_, c| ((c * 3) % 90) as i8);
    let mut rows: Vec<Matrix<i8>> = vec![row.clone()];
    let mut total_ms = 0.0;
    println!("step  kv_len  latency (ms)   cumulative (ms)");
    for pos in 0..steps {
        let plan = RunPlan::decode(pos, pos + 1, 1).with_session(DecodeSession {
            decoder: &dec,
            packed: Some(&packed),
            cache: &mut cache,
            x_row: &row,
        });
        let (outcome, _) = accel.execute(plan);
        let out = outcome.expect("decode step runs");
        // the pipeline's price is the legacy decode_step_timing, exactly
        let shim = accel.decode_step_timing(&dec, pos, memory.rows());
        assert_eq!(out.report.total, shim.total, "pipeline price diverged at step {pos}");
        total_ms += out.latency_ms;
        println!("{pos:>4}  {:>6}  {:>12.4}  {:>14.4}", pos + 1, out.latency_ms, total_ms);
        // feed the output back as the next input position
        row = out.outputs[0].map(|v| v.saturating_add(1));
        rows.push(row.clone());
    }

    // Verify: replaying the same input rows through a full forward pass
    // reproduces each step's output exactly.
    let mut x_full = Matrix::<i8>::zeros(steps, 256);
    for (r, m) in rows.iter().take(steps).enumerate() {
        x_full.write_submatrix(r, 0, m);
    }
    let full = dec.forward(&x_full, &memory);
    let mut replay_cache = DecoderKvCache::new(&dec, &memory);
    for r in 0..steps {
        let row_in = x_full.submatrix(r, 0, 1, 256);
        let plan = RunPlan::decode(r, r + 1, 1).with_session(DecodeSession {
            decoder: &dec,
            packed: None, // scalar path this time: both must agree
            cache: &mut replay_cache,
            x_row: &row_in,
        });
        let (outcome, _) = accel.execute(plan);
        let out = outcome.expect("replay step runs");
        assert_eq!(out.outputs[0].row(0), full.row(r), "step {r} diverged from full forward");
    }
    println!("\n✓ {steps} incremental steps are bit-identical to the full forward pass");

    let batch = accel.decoder_timing_report(&dec, steps, memory.rows());
    println!(
        "\nFull-sequence decode of the same {steps} positions in one pass: {:.3} ms \
         (vs {total_ms:.3} ms token-by-token — the per-step weight streaming tax)",
        batch.latency_ms()
    );
}
