//! Autoregressive generation with a KV cache: decode a sequence one
//! position at a time on the simulated accelerator's timing model, with
//! the functional path verified bit-exact against the full forward pass.
//!
//! This is the deployment profile a decoder actually runs in (the
//! paper's future-work direction), and it exposes the structural truth
//! of single-token inference: every step still streams every weight
//! tile, so generation is bandwidth-bound and per-step latency barely
//! grows with position.
//!
//! ```text
//! cargo run --release --example autoregressive_generation
//! ```

use protea::model::decoder::{DecoderKvCache, DecoderWeights, QuantizedDecoder};
use protea::prelude::*;

fn main() {
    let syn = SynthesisConfig::paper_default();
    let accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");

    let cfg = EncoderConfig::new(256, 8, 2, 1);
    let dec = QuantizedDecoder::from_float(&DecoderWeights::random(cfg, 7), QuantSchedule::paper());

    // Encoder memory for a 32-token source (stands in for an encoded
    // sentence).
    let memory = Matrix::from_fn(32, 256, |r, c| (((r * 17 + c * 5) % 120) as i32 - 60) as i8);
    let steps = 12usize;

    // Generate step by step. The "next token" here is a deterministic
    // function of the previous output row (greedy-decoding stand-in).
    let mut cache = DecoderKvCache::new(&dec, &memory);
    let mut row = Matrix::from_fn(1, 256, |_, c| ((c * 3) % 90) as i8);
    let mut rows: Vec<Matrix<i8>> = vec![row.clone()];
    let mut total_ms = 0.0;
    println!("step  kv_len  latency (ms)   cumulative (ms)");
    for pos in 0..steps {
        let out = dec.decode_step(&mut cache, &row);
        let t = accel.decode_step_timing(&dec, pos, memory.rows());
        total_ms += t.latency_ms();
        println!("{pos:>4}  {:>6}  {:>12.4}  {:>14.4}", pos + 1, t.latency_ms(), total_ms);
        // feed the output back as the next input position
        row = out.map(|v| v.saturating_add(1));
        rows.push(row.clone());
    }

    // Verify: replaying the same input rows through a full forward pass
    // reproduces each step's output exactly.
    let mut x_full = Matrix::<i8>::zeros(steps, 256);
    for (r, m) in rows.iter().take(steps).enumerate() {
        x_full.write_submatrix(r, 0, m);
    }
    let full = dec.forward(&x_full, &memory);
    let mut replay_cache = DecoderKvCache::new(&dec, &memory);
    for r in 0..steps {
        let row_in = x_full.submatrix(r, 0, 1, 256);
        let out = dec.decode_step(&mut replay_cache, &row_in);
        assert_eq!(out.row(0), full.row(r), "step {r} diverged from full forward");
    }
    println!("\n✓ {steps} incremental steps are bit-identical to the full forward pass");

    let batch = accel.decoder_timing_report(&dec, steps, memory.rows());
    println!(
        "\nFull-sequence decode of the same {steps} positions in one pass: {:.3} ms \
         (vs {total_ms:.3} ms token-by-token — the per-step weight streaming tax)",
        batch.latency_ms()
    );
}
