//! The headline workload: the paper's Table I test #1 — a BERT-variant
//! encoder (d_model=768, 8 heads, 12 layers, SL=64) on the simulated
//! Alveo U55C, with the full per-engine cycle breakdown and the
//! comparison against the published row.
//!
//! ```text
//! cargo run --release --example bert_encoder
//! ```

use protea::prelude::*;

fn main() {
    let syn = SynthesisConfig::paper_default();
    let device = FpgaDevice::alveo_u55c();
    let mut accel = Accelerator::try_new(syn, &device).expect("design must fit the device");

    let cfg = EncoderConfig::paper_test1();
    accel
        .program(RuntimeConfig::from_model(&cfg, &syn).expect("test #1 fits"))
        .expect("register write");

    println!("ProTEA @ {} — BERT-variant encoder (Table I test #1)", device.name);
    println!("  d_model=768, heads=8, layers=12, SL=64, 8-bit fixed point\n");

    let report = accel.timing_report();
    println!("{report}");

    let ops = OpCount::for_config(&cfg);
    println!("Latency: {:.1} ms (paper: 279 ms)", report.latency_ms());
    println!(
        "Throughput: {:.1} GOPS standard convention / {:.1} GOPS paper convention (paper: 53)",
        report.gops(&ops),
        protea::model::OpCount::paper_convention(&cfg) as f64 / (report.latency_ms() * 1e-3) / 1e9
    );
    println!("Resources: {} (paper: 3612 DSP / 993107 LUT / 704115 FF)", accel.design().report);
    println!(
        "Load-stall cycles hidden by double buffering: {} of {} total ({:.2}%)",
        report.total_stall().get(),
        report.total.get(),
        report.total_stall().get() as f64 / report.total.get() as f64 * 100.0
    );

    // Where the time goes — the FFN engines dominate, which is why the
    // paper's head-count tests (#2, #3) barely move the total.
    println!("\nFFN share of cycles: {:.1}%", {
        let f = report.phase_fraction("FFN1_CE")
            + report.phase_fraction("FFN2_CE")
            + report.phase_fraction("FFN3_CE");
        f * 100.0
    });
}
