//! Quantization-fidelity study: how much accuracy the paper's 8-bit
//! fixed-point datapath ("this might result in accuracy loss … it was
//! not a primary focus") actually costs, measured as SQNR and MSE of the
//! quantized encoder against the f32 reference, across both attention-
//! scaling conventions.
//!
//! ```text
//! cargo run --release --example quantization_study
//! ```

use protea::fixed::quant::sqnr_db;
use protea::prelude::*;
use protea::tensor::ops::mse;

fn main() {
    let cfg = EncoderConfig::new(128, 8, 2, 32);
    let weights = EncoderWeights::random(cfg, 1234);
    let float_enc = FloatEncoder::new(weights.clone());
    let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
        (((r * 37 + c * 11) % 101) as f32 / 101.0 - 0.5) * 3.0
    });
    let y_float = float_enc.forward(&x);

    println!(
        "Quantization fidelity, d_model={}, {} layers, SL={}\n",
        cfg.d_model, cfg.layers, cfg.seq_len
    );
    println!("{:<38} {:>10} {:>12}", "schedule", "MSE", "SQNR (dB)");

    for (name, schedule, scaling) in [
        ("paper (1/d_model logits, Q0.7)", QuantSchedule::paper(), AttnScaling::InvDmodel),
        (
            "standard (1/sqrt(dk) logits, Q2.5)",
            QuantSchedule::standard_scaling(),
            AttnScaling::InvSqrtDk,
        ),
    ] {
        // The float reference must use the matching scaling convention
        // for an apples-to-apples error measurement.
        let mut w = weights.clone();
        w.config = w.config.with_scaling(scaling);
        let fenc = FloatEncoder::new(w.clone());
        let yf = fenc.forward(&x);

        let qenc = QuantizedEncoder::from_float(&w, schedule);
        let xi = qenc.quantize_input(&x);
        let yq = qenc.dequantize(&qenc.forward(&xi));

        let e = mse(&yf, &yq);
        let s = sqnr_db(yf.as_slice(), yq.as_slice());
        println!("{name:<38} {e:>10.5} {s:>12.2}");
    }

    // Input quantization alone (the floor any schedule inherits).
    let q = Quantizer::default();
    let (raw, params) = q.quantize(x.as_slice());
    let back = protea::fixed::quant::dequantize_slice(&raw, params);
    println!(
        "\ninput quantization alone: SQNR = {:.1} dB ({} format)",
        sqnr_db(x.as_slice(), &back),
        params.format()
    );
    let _ = y_float;

    // Per-layer error propagation: does the 8-bit error accumulate, or
    // does layer norm keep re-centering it?
    let deep_cfg = EncoderConfig::new(128, 8, 8, 32);
    let deep_w = EncoderWeights::random(deep_cfg, 777);
    let deep_q = QuantizedEncoder::from_float(&deep_w, QuantSchedule::paper());
    let deep_x =
        Matrix::from_fn(32, 128, |r, c| (((r * 23 + c * 3) % 97) as f32 / 97.0 - 0.5) * 2.0);
    let profile = protea::model::error_profile(&deep_w, &deep_q, &deep_x);
    println!("\nError propagation through an 8-layer stack:");
    println!("{:>6} {:>12} {:>10} {:>12}", "layer", "MSE", "SQNR (dB)", "max |err|");
    for l in &profile.layers {
        println!("{:>6} {:>12.5} {:>10.2} {:>12.4}", l.layer, l.mse, l.sqnr_db, l.max_abs_err);
    }
    println!(
        "stable (no runaway accumulation): {} — layer norm re-centers the error each layer",
        profile.is_stable(2.0)
    );
}
