//! Integration: the batched multi-card serving simulation end to end.
//!
//! The headline claim: a batched fleet achieves strictly higher
//! simulated throughput than a serial single-card replay of the *same*
//! trace, while reporting p50/p95/p99 latency — and the whole request
//! path is fallible, so hostile traces and configs surface as errors,
//! never panics.

use protea::prelude::*;
use protea::serve::ServeError;

fn dense_trace() -> Workload {
    // 64 requests at 80k req/s: arrivals far faster than service, so the
    // scheduler has real batching opportunities.
    Workload::poisson(64, 80_000.0, &[(96, 4, 2)], (8, 32), 99)
}

#[test]
fn batched_fleet_beats_serial_single_card_on_the_same_trace() {
    let trace = dense_trace();
    let fleet = Fleet::try_new(FleetConfig { cards: 4, ..FleetConfig::default() }).unwrap();
    let batched = fleet.run(ServePlan::workload(&trace)).unwrap().report;
    let serial = fleet.run(ServePlan::workload(&trace).serial_baseline()).unwrap().report;

    assert_eq!(batched.completed, trace.requests.len());
    assert_eq!(serial.completed, trace.requests.len());
    assert!(
        batched.throughput_rps > serial.throughput_rps,
        "batched {} inf/s must strictly beat serial {} inf/s",
        batched.throughput_rps,
        serial.throughput_rps
    );
    // Percentile reporting is present and ordered for both runs.
    for report in [&batched, &serial] {
        let p = &report.latency_ms;
        assert!(p.p50 > 0.0);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max, "{p:?}");
        let q = &report.queue_ms;
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99, "{q:?}");
    }
    // Batching actually happened, and it amortized weight loads: fewer
    // reloads than the serial replay's per-request worst case.
    assert!(batched.mean_batch > 1.0, "mean batch {}", batched.mean_batch);
    assert!(batched.batches < trace.requests.len() as u64);
}

#[test]
fn serving_round_trips_a_json_trace() {
    // The JSON format stores arrivals in microseconds, so one encode
    // quantizes sub-µs detail; after that the round trip must be exact.
    let quantized = Workload::from_json(&dense_trace().to_json()).unwrap();
    let back = Workload::from_json(&quantized.to_json()).unwrap();
    assert_eq!(quantized, back);

    let fleet = Fleet::try_new(FleetConfig { cards: 2, ..FleetConfig::default() }).unwrap();
    assert_eq!(
        fleet.run(ServePlan::workload(&quantized)).unwrap().report,
        fleet.run(ServePlan::workload(&back)).unwrap().report
    );
}

#[test]
fn hostile_inputs_error_instead_of_panicking() {
    let fleet = Fleet::try_new(FleetConfig { cards: 2, ..FleetConfig::default() }).unwrap();

    // Malformed JSON of several shapes.
    for bad in [
        "",
        "{",
        "[1,2,3]",
        "{\"requests\": 5}",
        &"[".repeat(10_000),
        "{\"requests\":[{\"arrival_us\":0}]}",
        "{\"requests\":[{\"arrival_us\":-1,\"d_model\":96,\"heads\":4,\"layers\":2,\"seq_len\":8}]}",
    ] {
        assert!(Workload::from_json(bad).is_err(), "accepted: {bad:.40}");
    }

    // Structurally valid trace, unservable shapes: zero and oversized.
    for (d, h, l, sl) in [
        (0usize, 4usize, 2usize, 8usize),
        (96, 0, 2, 8),
        (96, 4, 0, 8),
        (96, 4, 2, 0),
        (96, 4, 2, 100_000),
        (1 << 20, 4, 2, 8),
        (96, 5, 2, 8),
    ] {
        let w = Workload {
            requests: vec![ServeRequest {
                id: 7,
                arrival_ns: 0,
                d_model: d,
                heads: h,
                layers: l,
                seq_len: sl,
                ..Default::default()
            }],
        };
        match fleet.run(ServePlan::workload(&w)).map(|o| o.report) {
            Err(ServeError::Unservable { id: 7, .. }) => {}
            other => panic!("({d},{h},{l},{sl}) gave {other:?}"),
        }
    }

    // Degenerate fleet configurations.
    assert!(matches!(
        Fleet::try_new(FleetConfig { cards: 0, ..FleetConfig::default() }),
        Err(ServeError::NoCards)
    ));
    assert!(Fleet::try_new(FleetConfig { reload_gbps: 0.0, ..FleetConfig::default() }).is_err());

    // Empty trace.
    assert!(matches!(
        fleet.run(ServePlan::workload(&Workload::default())).map(|o| o.report),
        Err(ServeError::EmptyTrace)
    ));
}

#[test]
fn functional_mode_is_bit_consistent_with_timing_mode() {
    let trace = Workload::poisson(12, 60_000.0, &[(64, 4, 1)], (8, 16), 5);
    let timing = Fleet::try_new(FleetConfig { cards: 2, ..FleetConfig::default() }).unwrap();
    let functional =
        Fleet::try_new(FleetConfig { cards: 2, functional: true, ..FleetConfig::default() })
            .unwrap();
    assert_eq!(
        timing.run(ServePlan::workload(&trace)).unwrap().report,
        functional.run(ServePlan::workload(&trace)).unwrap().report,
        "running the real datapath must not perturb the schedule"
    );
}
