//! Property: the driver's compiled register-write ordering keeps every
//! intermediate AXI-Lite bus state valid.
//!
//! `Driver::compile` emits register writes in a deliberate order (transit
//! through `heads = 1`, dimensions, then the final head count) so that no
//! prefix of the stream ever leaves the slave's shadow registers in a
//! state its capacity validation would reject. This test replays every
//! `WriteReg` prefix of the compiled stream through the [`AxiLiteBus`]
//! BFM — which validates the *resulting* register file on each write —
//! and asserts every response is `Okay`.

use proptest::prelude::*;
use protea::core::bus::{AxiLiteBus, BusResponse};
use protea::core::driver::Instruction;
use protea::model::serialize::encode;
use protea::prelude::*;

/// Replay the `WriteReg` instructions of `prog` through a fresh bus,
/// returning each write's response in order.
fn replay_writes(syn: SynthesisConfig, prog: &[Instruction]) -> Vec<BusResponse> {
    let mut bus = AxiLiteBus::new(syn);
    prog.iter()
        .filter_map(|instr| match instr {
            Instruction::WriteReg(reg, value) => Some(bus.write(*reg as u32, *value)),
            _ => None,
        })
        .collect()
}

proptest! {
    #[test]
    fn compiled_write_order_keeps_every_bus_prefix_valid(
        heads_pow in 0u32..4,       // 1, 2, 4, 8 head models
        d_mult in 1usize..8,        // d_model = heads * d_mult * 8, capped at 768
        layers in 1usize..3,
        seq_len in 1usize..129,
    ) {
        let heads = 1usize << heads_pow;
        // heads * d_mult * 8 is always a multiple of heads, and the cap
        // (768 = lcm-compatible with 1/2/4/8 heads) preserves that.
        let d_model = (heads * d_mult * 8).min(768);
        let syn = SynthesisConfig::paper_default();
        let cfg = EncoderConfig::new(d_model, heads, layers, seq_len);
        let blob = encode(&EncoderWeights::random(cfg, 7));
        let (rt, prog) = Driver::new(syn).compile(&blob).expect("in-capacity model compiles");
        prop_assert_eq!(rt, RuntimeConfig::from_model(&cfg, &syn).unwrap());

        let responses = replay_writes(syn, &prog);
        prop_assert_eq!(responses.len(), 5, "compile emits exactly five register writes");
        for (i, r) in responses.iter().enumerate() {
            prop_assert_eq!(*r, BusResponse::Okay, "write {} rejected for {:?}", i, cfg);
        }

        // The final bus state is exactly the compiled register file.
        let mut bus = AxiLiteBus::new(syn);
        for instr in &prog {
            if let Instruction::WriteReg(reg, value) = instr {
                bus.write(*reg as u32, *value);
            }
        }
        prop_assert_eq!(bus.config(), rt);
    }
}

/// The naive order (heads first, then dimensions) is *not* always safe —
/// this is the hazard the driver's ordering exists to avoid, so pin it.
#[test]
fn naive_write_order_can_transit_invalid_states() {
    let syn = SynthesisConfig::paper_default();
    let mut bus = AxiLiteBus::new(syn);
    // Reset state is d_model = 768, heads = 8. Programming a 5-head
    // model by writing heads first transits heads=5 with d_model=768,
    // which 5 does not divide; the slave must reject it.
    let r = bus.write(0x00, 5);
    assert_eq!(r, BusResponse::SlvErr, "5 ∤ 768 must be rejected mid-sequence");
    // The driver's order (heads=1 transit) reaches the same target fine.
    let cfg = EncoderConfig::new(640, 5, 1, 16);
    let blob = encode(&EncoderWeights::random(cfg, 3));
    let (_, prog) = Driver::new(syn).compile(&blob).unwrap();
    let responses = replay_writes(syn, &prog);
    assert!(responses.iter().all(|&r| r == BusResponse::Okay), "{responses:?}");
}
