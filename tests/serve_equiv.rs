//! The `ServePlan` contract: every legacy `Fleet` entry point is a
//! byte-exact shim over `Fleet::run`, the streaming sources reproduce
//! the eager workload bit-for-bit, and contradictory plans are rejected
//! up front.
//!
//! These tests are the freeze on the PR-6 API collapse: if `run()`
//! drifts from what `serve`/`serve_with_responses`/`serve_traced`/
//! `serve_serial_baseline` used to produce — in any field, including
//! the rendered report — this suite fails.
#![allow(deprecated)]

use protea::prelude::*;
use protea::serve::{PoissonSource, ServeError};

fn trace() -> Workload {
    Workload::poisson(48, 80_000.0, &[(96, 4, 2), (64, 4, 1)], (8, 32), 1234)
}

fn plain_fleet(cards: usize) -> Fleet {
    Fleet::try_new(FleetConfig { cards, ..FleetConfig::default() }).unwrap()
}

fn managed_fleet(cards: usize) -> Fleet {
    Fleet::try_new(FleetConfig {
        cards,
        faults: Some(FaultConfig::seeded(0xFA11, 0.03)),
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 8, min: 2, max: 32, ..AimdConfig::default() }),
            retry_budget: Some(RetryBudgetConfig::default()),
            hedge: Some(HedgeConfig { factor: 1.0, min_delay_ns: 300_000, min_samples: 3 }),
        }),
        ..FleetConfig::default()
    })
    .unwrap()
}

#[test]
fn serve_shim_is_byte_exact_against_run() {
    let w = trace();
    for fleet in [plain_fleet(3), managed_fleet(2)] {
        let legacy = fleet.serve(&w).unwrap();
        let unified = fleet.run(ServePlan::workload(&w)).unwrap().report;
        assert_eq!(legacy, unified);
        // Equality ignores memo counters by design, so also pin the
        // *rendered* report — every number the user sees.
        assert_eq!(legacy.to_string(), unified.to_string());
    }
}

#[test]
fn serve_with_responses_shim_is_byte_exact_against_run() {
    let w = trace().with_deadline(50_000_000);
    let fleet = managed_fleet(2);
    let (legacy_report, legacy_responses) = fleet.serve_with_responses(&w).unwrap();
    let out = fleet.run(ServePlan::workload(&w).collect_responses()).unwrap();
    assert_eq!(legacy_report, out.report);
    assert_eq!(legacy_report.to_string(), out.report.to_string());
    assert_eq!(legacy_responses, out.responses.unwrap());
}

#[test]
fn serve_traced_shim_is_byte_exact_against_run() {
    let w = trace();
    let fleet = plain_fleet(2);
    let (legacy_report, legacy_trace) = fleet.serve_traced(&w).unwrap();
    let out = fleet.run(ServePlan::workload(&w).traced()).unwrap();
    assert_eq!(legacy_report, out.report);
    let trace = out.trace.unwrap();
    assert_eq!(legacy_trace.len(), trace.len());
    assert_eq!(legacy_trace.to_chrome_json(), trace.to_chrome_json());
    // And tracing stays observational under the unified pipeline too.
    assert_eq!(out.report, fleet.run(ServePlan::workload(&w)).unwrap().report);
}

#[test]
fn serial_baseline_shim_is_byte_exact_against_run() {
    let w = trace();
    let fleet = plain_fleet(4);
    let legacy = fleet.serve_serial_baseline(&w).unwrap();
    let unified = fleet.run(ServePlan::workload(&w).serial_baseline()).unwrap().report;
    assert_eq!(legacy, unified);
    assert_eq!(legacy.to_string(), unified.to_string());
}

#[test]
fn streaming_poisson_source_reproduces_the_eager_workload() {
    // The same (n, rate, classes, seq range, seed) tuple must produce
    // the identical run whether materialized up front or generated one
    // arrival at a time.
    let n = 64;
    let rate = 60_000.0;
    let classes = [(96, 4, 2), (64, 4, 1)];
    let seq = (8, 32);
    let seed = 77;
    let w = Workload::poisson(n, rate, &classes, seq, seed);
    for fleet in [plain_fleet(3), managed_fleet(2)] {
        let eager = fleet.run(ServePlan::workload(&w)).unwrap().report;
        let mut source = PoissonSource::new(n, rate, &classes, seq, seed);
        let streamed = fleet.run(ServePlan::stream(&mut source)).unwrap().report;
        assert_eq!(eager, streamed);
        assert_eq!(eager.to_string(), streamed.to_string());
    }
}

#[test]
fn streaming_deadline_source_matches_eager_deadlines() {
    let n = 48;
    let rate = 120_000.0;
    let classes = [(96, 4, 2)];
    let seq = (8, 16);
    let seed = 9;
    let w = Workload::poisson(n, rate, &classes, seq, seed).with_deadline(30_000_000);
    let fleet = managed_fleet(2);
    let eager = fleet.run(ServePlan::workload(&w)).unwrap().report;
    let mut source = PoissonSource::new(n, rate, &classes, seq, seed).with_deadline(30_000_000);
    let streamed = fleet.run(ServePlan::stream(&mut source)).unwrap().report;
    assert_eq!(eager, streamed);
}

#[test]
fn sketch_metrics_preserve_every_non_percentile_field() {
    // Sketch mode may only perturb the four percentile fields (within
    // the documented bound, pinned by the sketch property tests); all
    // counting fields must be identical.
    let w = trace();
    let fleet = plain_fleet(3);
    let exact = fleet.run(ServePlan::workload(&w)).unwrap().report;
    let sketched = fleet.run(ServePlan::workload(&w).metrics(MetricsMode::Sketch)).unwrap().report;
    assert_eq!(exact.completed, sketched.completed);
    assert_eq!(exact.batches, sketched.batches);
    assert_eq!(exact.reprograms, sketched.reprograms);
    assert_eq!(exact.throughput_rps, sketched.throughput_rps);
    assert_eq!(exact.mean_batch, sketched.mean_batch);
    assert_eq!(exact.latency_ms.max, sketched.latency_ms.max);
    for (s, e) in [
        (sketched.latency_ms.p50, exact.latency_ms.p50),
        (sketched.latency_ms.p95, exact.latency_ms.p95),
        (sketched.latency_ms.p99, exact.latency_ms.p99),
    ] {
        assert!((s - e).abs() <= 0.0101 * e.abs() + 1e-12, "sketch {s} vs exact {e}");
    }
}

#[test]
fn contradictory_plans_are_rejected_up_front() {
    let w = trace();
    let fleet = plain_fleet(2);
    let plan_err = |plan: ServePlan<'_>| match fleet.run(plan) {
        Err(ServeError::Plan { msg }) => msg,
        other => panic!("expected a plan error, got {:?}", other.map(|o| o.report)),
    };
    assert!(plan_err(ServePlan::workload(&w).snapshot_every(0)).contains("at least 1"));
    assert!(plan_err(ServePlan::workload(&w).traced().snapshot_every(4)).contains("tracing"));
    assert!(
        plan_err(ServePlan::workload(&w).serial_baseline().snapshot_every(4)).contains("serial")
    );
    assert!(plan_err(ServePlan::workload(&w).metrics(MetricsMode::Sketch).collect_responses())
        .contains("exact metrics"));
}

#[test]
fn uniform_roster_is_byte_exact_against_the_device_shorthand() {
    // `FleetConfig::device` is now shorthand for a uniform roster: a
    // config spelling the roster out explicitly must produce the same
    // report, byte for byte, as the shorthand — for both the plain and
    // the fully managed fleet. This is the freeze on the elastic
    // refactor's back-compat story.
    let w = trace();
    let device = FleetConfig::default().device;
    for (shorthand, cards) in [(plain_fleet(3), 3), (managed_fleet(2), 2)] {
        let rostered = Fleet::try_new(FleetConfig {
            roster: Some(vec![device; cards]),
            ..shorthand.config().clone()
        })
        .unwrap();
        let base = shorthand.run(ServePlan::workload(&w)).unwrap().report;
        let elastic = rostered.run(ServePlan::workload(&w)).unwrap().report;
        assert_eq!(base, elastic);
        assert_eq!(base.to_string(), elastic.to_string());
    }
}
