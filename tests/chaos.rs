//! Integration: fault injection and graceful degradation end to end.
//!
//! The headline claims: a faulted serving run (1) replays bit-identically
//! from its seed, (2) never silently drops a request — every submitted
//! request ends in exactly one of `completed` or `failed` — and (3) with
//! all fault rates at zero reproduces the fault-free schedule exactly,
//! so attaching the fault machinery costs nothing when it is idle.

use protea::prelude::*;

fn dense_trace() -> Workload {
    Workload::poisson(48, 80_000.0, &[(96, 4, 2)], (8, 32), 99)
}

fn fleet(cards: usize, faults: Option<FaultConfig>) -> Fleet {
    Fleet::try_new(FleetConfig { cards, faults, ..FleetConfig::default() }).unwrap()
}

fn serve(fleet: &Fleet, trace: &Workload) -> Result<ServeReport, ServeError> {
    Ok(fleet.run(ServePlan::workload(trace))?.report)
}

#[test]
fn same_seed_replays_bit_identically() {
    let trace = dense_trace();
    let cfg = FaultConfig::seeded(0xFA11, 0.04);
    let a = serve(&fleet(3, Some(cfg.clone())), &trace).unwrap();
    let b = serve(&fleet(3, Some(cfg)), &trace).unwrap();
    assert_eq!(a, b, "two runs from one seed must be indistinguishable");
    // And a different seed genuinely changes the fault pattern.
    let c = serve(&fleet(3, Some(FaultConfig::seeded(0xFA12, 0.04))), &trace).unwrap();
    assert_ne!(a.faults, c.faults, "a different seed must perturb the run");
}

#[test]
fn no_request_dropped_across_seeds_rates_and_fleet_sizes() {
    let trace = dense_trace();
    for cards in [2usize, 4] {
        for (seed, rate) in [(1u64, 0.02), (7, 0.05), (42, 0.10)] {
            let r = serve(&fleet(cards, Some(FaultConfig::seeded(seed, rate))), &trace).unwrap();
            assert_eq!(r.submitted, trace.requests.len());
            assert_eq!(
                r.completed + r.failed.len(),
                r.submitted,
                "seed {seed} rate {rate} x {cards} cards dropped a request"
            );
            assert!((0.0..=1.0).contains(&r.availability) && r.availability.is_finite());
            assert!(r.throughput_rps.is_finite());
        }
    }
}

#[test]
fn zero_rates_reproduce_the_fault_free_run_exactly() {
    let trace = dense_trace();
    let clean = serve(&fleet(2, None), &trace).unwrap();
    let armed = serve(&fleet(2, Some(FaultConfig::default())), &trace).unwrap();
    assert_eq!(clean.completed, armed.completed);
    assert_eq!(clean.throughput_rps, armed.throughput_rps, "bit-equal, not just close");
    assert_eq!(clean.latency_ms, armed.latency_ms);
    assert_eq!(clean.batches, armed.batches);
    assert!(armed.failed.is_empty() && !armed.faults.any());
    assert_eq!(armed.availability, 1.0);
}

#[test]
fn scripted_crash_fails_over_to_the_survivors() {
    let trace = dense_trace();
    let cfg = FaultConfig {
        events: vec![FaultEvent { at_ns: 200_000, card: 0, kind: FaultKind::CardCrash }],
        ..FaultConfig::default()
    };
    let r = serve(&fleet(2, Some(cfg)), &trace).unwrap();
    assert_eq!(r.crashes, 1);
    assert_eq!(r.card_health[0], CardHealth::Dead);
    assert_eq!(r.card_health[1], CardHealth::Healthy);
    // The survivor absorbs everything: no request is lost to the crash.
    assert_eq!(r.completed, trace.requests.len());
    assert!(r.failed.is_empty());
    assert_eq!(r.availability, 1.0);
}

#[test]
fn fault_errors_carry_uniform_exit_codes() {
    // An unservable trace surfaces as a ServeError; lifting it to
    // CoreError must land on the dedicated serving exit code, distinct
    // from success and usage failures.
    let w = Workload {
        requests: vec![ServeRequest {
            id: 1,
            arrival_ns: 0,
            d_model: 96,
            heads: 5,
            layers: 2,
            seq_len: 8,
            ..Default::default()
        }],
    };
    let err = serve(&fleet(2, None), &w).unwrap_err();
    let core: CoreError = err.into();
    assert_eq!(core.exit_code(), 7);
    assert!(core.to_string().contains("request 1"));
}
