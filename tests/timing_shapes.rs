//! Integration tests of the Table I qualitative claims through the
//! public API: one synthesis, nine register configurations, the
//! published latency *shapes*.

use protea::prelude::*;

fn latency_of(cfg: &EncoderConfig) -> f64 {
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    accel.program(RuntimeConfig::from_model(cfg, &syn).expect("fits")).expect("register write");
    accel.timing_report().latency_ms()
}

#[test]
fn latency_linear_in_layers() {
    // Tests #1/#4/#5.
    let n12 = latency_of(&EncoderConfig::new(768, 8, 12, 64));
    let n8 = latency_of(&EncoderConfig::new(768, 8, 8, 64));
    let n4 = latency_of(&EncoderConfig::new(768, 8, 4, 64));
    assert!((n8 / n12 - 8.0 / 12.0).abs() < 1e-6);
    assert!((n4 / n12 - 4.0 / 12.0).abs() < 1e-6);
}

#[test]
fn latency_approximately_linear_in_d_model() {
    // Tests #1/#6/#7: frozen tile counts + runtime-scaled widths give the
    // paper's linear (not quadratic) d_model scaling.
    let d768 = latency_of(&EncoderConfig::new(768, 8, 12, 64));
    let d512 = latency_of(&EncoderConfig::new(512, 8, 12, 64));
    let d256 = latency_of(&EncoderConfig::new(256, 8, 12, 64));
    let r512 = d512 / d768;
    let r256 = d256 / d768;
    assert!((r512 - 2.0 / 3.0).abs() < 0.06, "d=512 ratio {r512:.3} (linear expects 0.667)");
    assert!((r256 - 1.0 / 3.0).abs() < 0.08, "d=256 ratio {r256:.3} (linear expects 0.333)");
    // decisively NOT quadratic (which would be 0.44 and 0.11)
    assert!(r512 > 0.55);
    assert!(r256 > 0.25);
}

#[test]
fn latency_weakly_dependent_on_heads() {
    // Tests #1/#2/#3: halving heads adds only a few percent, because the
    // FFN engines dominate.
    let h8 = latency_of(&EncoderConfig::new(768, 8, 12, 64));
    let h4 = latency_of(&EncoderConfig::new(768, 4, 12, 64));
    let h2 = latency_of(&EncoderConfig::new(768, 2, 12, 64));
    assert!(h4 > h8 && h2 > h4, "fewer heads must be slower");
    assert!(h2 / h8 < 1.10, "h=2 is only {:.1}% slower", (h2 / h8 - 1.0) * 100.0);
}

#[test]
fn sequence_length_scaling_with_floor() {
    // Tests #1/#8/#9: SL=128 ≈ 2×; SL=32 sits above half (weight-load
    // floor that compute no longer hides).
    let s64 = latency_of(&EncoderConfig::new(768, 8, 12, 64));
    let s128 = latency_of(&EncoderConfig::new(768, 8, 12, 128));
    let s32 = latency_of(&EncoderConfig::new(768, 8, 12, 32));
    assert!((s128 / s64 - 2.0).abs() < 0.15, "SL=128 ratio {:.2}", s128 / s64);
    assert!(s32 / s64 > 0.45, "SL=32 ratio {:.2} shows the load floor", s32 / s64);
}

#[test]
fn one_synthesis_serves_all_nine_tests() {
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let resources = accel.design().resources;
    for (name, cfg) in EncoderConfig::table1_tests() {
        let rt = RuntimeConfig::from_model(&cfg, &syn)
            .unwrap_or_else(|e| panic!("{name} must fit the synthesis: {e}"));
        accel.program(rt).unwrap();
        assert_eq!(accel.design().resources, resources, "{name} changed resources");
        assert!(accel.timing_report().latency_ms() > 0.0);
    }
}

#[test]
fn fmax_close_to_paper() {
    let syn = SynthesisConfig::paper_default();
    let accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let fmax = accel.design().fmax_mhz;
    assert!((fmax - 200.0).abs() < 15.0, "fmax = {fmax:.1} (paper: 200 MHz)");
}

#[test]
fn dsp_count_is_exactly_table1() {
    let syn = SynthesisConfig::paper_default();
    let accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    assert_eq!(accel.design().resources.dsps, 3612);
    assert_eq!(accel.design().resources.ffs, 704_115);
}
