//! End-to-end driver flow: save model → parse → program → run, plus the
//! failure paths a deployment tool hits.

use protea::core::driver::DriverError;
use protea::core::registers::Reg;
use protea::core::Instruction;
use protea::prelude::*;

fn blob(cfg: EncoderConfig, seed: u64) -> Vec<u8> {
    protea::model::serialize::encode(&EncoderWeights::random(cfg, seed)).to_vec()
}

#[test]
fn full_deploy_and_run() {
    let syn = SynthesisConfig::paper_default();
    let driver = Driver::new(syn);
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let cfg = EncoderConfig::new(128, 4, 2, 16);
    let program =
        driver.deploy(&mut accel, &blob(cfg, 11), QuantSchedule::paper()).expect("deploy");
    // instruction stream: 5 register writes (safe ordering through
    // heads=1), N weight loads, start, read
    assert_eq!(program.len(), 5 + cfg.layers + 2);
    assert!(matches!(program[0], Instruction::WriteReg(Reg::Heads, 1)));
    assert!(matches!(program[4], Instruction::WriteReg(Reg::Heads, 4)));
    assert!(matches!(program[3], Instruction::WriteReg(Reg::Layers, 2)));

    let x = Matrix::from_fn(16, 128, |r, c| ((r * 3 + c * 5) % 90) as i8);
    let out = accel.run(&x);
    assert_eq!(out.output.shape(), (16, 128));
    assert!(out.latency_ms > 0.0 && out.gops > 0.0);
    assert_eq!(out.report.layers, 2);
}

#[test]
fn sequential_model_swaps_preserve_bitstream() {
    let syn = SynthesisConfig::paper_default();
    let driver = Driver::new(syn);
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let boot = accel.design().resources;
    for (i, cfg) in [
        EncoderConfig::new(64, 2, 1, 8),
        EncoderConfig::new(768, 8, 1, 8),
        EncoderConfig::new(256, 8, 3, 32),
    ]
    .into_iter()
    .enumerate()
    {
        driver.deploy(&mut accel, &blob(cfg, i as u64), QuantSchedule::paper()).expect("deploy");
        let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| ((r + c) % 64) as i8);
        let out = accel.run(&x);
        assert_eq!(out.output.shape(), (cfg.seq_len, cfg.d_model));
        assert_eq!(accel.design().resources, boot, "model {i} changed the bitstream");
    }
}

#[test]
fn capacity_violations_are_driver_errors() {
    let syn = SynthesisConfig::paper_default();
    let driver = Driver::new(syn);
    // d_model beyond synthesized capacity
    let too_wide = blob(EncoderConfig::new(1024, 8, 1, 8), 1);
    assert!(matches!(driver.compile(&too_wide), Err(DriverError::Register(_))));
    // too many heads
    let too_many_heads = blob(EncoderConfig::new(768, 12, 1, 8), 1);
    assert!(matches!(driver.compile(&too_many_heads), Err(DriverError::Register(_))));
    // sequence too long
    let too_long = blob(EncoderConfig::new(768, 8, 1, 256), 1);
    assert!(matches!(driver.compile(&too_long), Err(DriverError::Register(_))));
    // garbage blob
    assert!(matches!(driver.compile(b"not a model"), Err(DriverError::Decode(_))));
}

#[test]
fn peeked_config_matches_decoded_weights() {
    let cfg = EncoderConfig::new(96, 4, 3, 24);
    let b = blob(cfg, 3);
    let peeked = protea::model::serialize::peek_config(&b).unwrap();
    let full = protea::model::serialize::decode(&b).unwrap();
    assert_eq!(peeked, full.config);
    assert_eq!(full.layers.len(), 3);
}

#[test]
fn deployed_output_matches_direct_quantization() {
    // Driver-mediated deployment must produce the same accelerator state
    // (and outputs) as quantizing manually.
    let syn = SynthesisConfig::paper_default();
    let cfg = EncoderConfig::new(64, 4, 1, 8);
    let weights = EncoderWeights::random(cfg, 55);
    let b = protea::model::serialize::encode(&weights).to_vec();

    let mut via_driver =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    Driver::new(syn).deploy(&mut via_driver, &b, QuantSchedule::paper()).unwrap();

    let mut manual =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    manual.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    manual
        .try_load_weights(QuantizedEncoder::from_float(&weights, QuantSchedule::paper()))
        .expect("weights must match the programmed registers");

    let x = Matrix::from_fn(8, 64, |r, c| ((r * 9 + c) % 77) as i8);
    assert_eq!(via_driver.run(&x).output.as_slice(), manual.run(&x).output.as_slice());
}
