//! Extended property-based suites: decoder causality and incremental
//! equivalence, pruning invariants, arbitration fairness, masked
//! softmax, and trace-format validity on random inputs.

use proptest::prelude::*;
use protea::fixed::{QFormat, SoftmaxUnit};
use protea::hwsim::{Cycles, VcdTrace};
use protea::mem::arbiter::arbitrate_round_robin;
use protea::mem::{AxiPort, ChannelShare};
use protea::model::decoder::{DecoderKvCache, DecoderWeights, QuantizedDecoder};
use protea::model::pruning::{prune_column_balanced, prune_magnitude, sparsity_of, PruningScheme};
use protea::prelude::*;

fn mat_i8(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    Matrix::from_fn(rows, cols, |r, c| {
        (seed.wrapping_mul(r as u64 + 7).wrapping_add(c as u64 * 13) % 200) as i64 as i8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decoder_incremental_equals_full(
        sl in 1usize..8, src in 1usize..8, seed in any::<u64>()
    ) {
        let cfg = EncoderConfig::new(32, 4, 1, sl);
        let dec = QuantizedDecoder::from_float(
            &DecoderWeights::random(cfg, seed),
            QuantSchedule::paper(),
        );
        let mem = mat_i8(src, 32, seed ^ 0xABCD);
        let x = mat_i8(sl, 32, seed ^ 0x1234);
        let full = dec.forward(&x, &mem);
        let mut cache = DecoderKvCache::new(&dec, &mem);
        for r in 0..sl {
            let out = dec.decode_step(&mut cache, &x.submatrix(r, 0, 1, 32));
            prop_assert_eq!(out.row(0), full.row(r), "row {}", r);
        }
    }

    #[test]
    fn decoder_causality_random_perturbations(
        sl in 2usize..8, perturb_at in 1usize..8, seed in any::<u64>()
    ) {
        let perturb_at = perturb_at.min(sl - 1).max(1);
        let cfg = EncoderConfig::new(32, 2, 1, sl);
        let dec = QuantizedDecoder::from_float(
            &DecoderWeights::random(cfg, seed),
            QuantSchedule::paper(),
        );
        let mem = mat_i8(4, 32, seed);
        let x1 = mat_i8(sl, 32, seed ^ 0x77);
        let mut x2 = x1.clone();
        for v in x2.row_mut(perturb_at) {
            *v = v.saturating_add(17);
        }
        let y1 = dec.forward(&x1, &mem);
        let y2 = dec.forward(&x2, &mem);
        for r in 0..perturb_at {
            prop_assert_eq!(y1.row(r), y2.row(r), "future leak at row {}", r);
        }
    }
}

proptest! {
    #[test]
    fn pruning_never_increases_magnitudes(
        rows in 1usize..12, cols in 1usize..12, s in 0.0f64..1.0
    ) {
        let orig = Matrix::from_fn(rows, cols, |r, c| ((r * 7 + c * 3) as f32).sin());
        let mut m = orig.clone();
        prune_magnitude(&mut m, s);
        for (a, b) in m.as_slice().iter().zip(orig.as_slice()) {
            prop_assert!(*a == 0.0 || a == b, "pruning must only zero entries");
        }
        prop_assert!(sparsity_of(&m) + 1e-9 >= s - 1.0 / (rows * cols) as f64);
    }

    #[test]
    fn column_balance_holds_for_any_fraction(
        rows in 2usize..16, cols in 1usize..8, k_frac in 0.0f64..1.0
    ) {
        let mut m = Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17 + 1) as f32).cos());
        prune_column_balanced(&mut m, k_frac);
        let expect_zeros = (rows as f64 * k_frac).round() as usize;
        for c in 0..cols {
            let zeros = (0..rows).filter(|&r| m[(r, c)] == 0.0).count();
            prop_assert_eq!(zeros, expect_zeros.min(rows), "column {}", c);
        }
    }

    #[test]
    fn arbiter_conserves_and_bounds(
        requests in prop::collection::vec(0u64..100_000, 1..9)
    ) {
        let port = AxiPort::new(256);
        let share = ChannelShare::fixed(64.0);
        let r = arbitrate_round_robin(&requests, &port, &share);
        // every master finishes by the total
        for f in &r.master_finish {
            prop_assert!(*f <= r.total);
        }
        // total at least the single-channel drain lower bound
        let sum: u64 = requests.iter().sum();
        let lower = sum.div_ceil(port.bytes_per_beat());
        prop_assert!(r.total.get() >= lower);
        // and no worse than fully serialized individual transfers + slack
        let serial: u64 = requests
            .iter()
            .map(|&b| protea::mem::hbm::bounded_transfer_cycles(&port, &share, b).get())
            .sum();
        prop_assert!(r.total.get() <= serial + requests.len() as u64 * 64);
    }

    #[test]
    fn masked_softmax_prefix_matches_unmasked(
        row in prop::collection::vec(any::<i8>(), 1..32), valid in 1usize..32
    ) {
        let valid = valid.min(row.len());
        let unit = SoftmaxUnit::new(QFormat::new(8, 5));
        let mut masked = vec![0i8; row.len()];
        unit.forward_row_masked(&row, valid, &mut masked);
        let mut prefix = vec![0i8; valid];
        unit.forward_row(&row[..valid], &mut prefix);
        prop_assert_eq!(&masked[..valid], &prefix[..]);
        prop_assert!(masked[valid..].iter().all(|&p| p == 0));
    }

    #[test]
    fn vcd_render_never_panics_and_stays_ordered(
        events in prop::collection::vec((0u64..1000, 0usize..4, 0u64..2), 0..50)
    ) {
        let mut t = VcdTrace::new("fuzz");
        let sigs: Vec<_> = (0..4).map(|i| t.add_signal(&format!("s{i}"), 1)).collect();
        for &(time, sig, val) in &events {
            t.change(Cycles(time), sigs[sig], val);
        }
        let doc = t.render();
        // timestamps must be non-decreasing in the document
        let mut last = 0u64;
        for line in doc.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let v: u64 = ts.parse().unwrap();
                prop_assert!(v >= last);
                last = v;
            }
        }
    }
}

#[test]
fn pruned_models_stay_bit_exact_on_the_accelerator() {
    // Pruning changes weights, not the datapath: the accelerator must
    // still agree with the golden model bit for bit.
    let cfg = EncoderConfig::new(96, 4, 1, 8);
    let mut w = EncoderWeights::random(cfg, 61);
    w.prune(PruningScheme::ColumnBalanced, 0.9);
    let golden = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    accel.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    accel.try_load_weights(golden.clone()).expect("weights must match the programmed registers");
    let x = mat_i8(8, 96, 5);
    assert_eq!(accel.run(&x).output.as_slice(), golden.forward(&x).as_slice());
}
