//! Cross-crate integration: the complete sequence-to-sequence system —
//! encoder and decoder both on the simulated accelerator, KV-cached
//! generation, workload generators — against the pure-software golden
//! paths.

use protea::model::decoder::{DecoderKvCache, DecoderWeights, QuantizedDecoder};
use protea::model::workload;
use protea::prelude::*;

fn accel_for(cfg: &EncoderConfig) -> Accelerator {
    let syn = SynthesisConfig::paper_default();
    let mut a =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    a.program(RuntimeConfig::from_model(cfg, &syn).unwrap()).unwrap();
    a
}

#[test]
fn encoder_decoder_chain_on_the_accelerator() {
    let cfg = EncoderConfig::new(96, 4, 2, 12);
    let enc_w = EncoderWeights::random(cfg, 1);
    let dec_w = DecoderWeights::random(cfg, 2);
    let enc_q = QuantizedEncoder::from_float(&enc_w, QuantSchedule::paper());
    let dec_q = QuantizedDecoder::from_float(&dec_w, QuantSchedule::paper());

    let mut accel = accel_for(&cfg);
    accel.try_load_weights(enc_q.clone()).expect("weights must match the programmed registers");

    let src = enc_q.quantize_input(&workload::uniform_activations(&cfg, 1.5, 10));
    let tgt_f = workload::uniform_activations(&EncoderConfig::new(96, 4, 2, 8), 1.5, 11);
    let tgt = dec_q.quantize_input(&tgt_f);

    // accelerator path
    let memory_hw = accel.run(&src);
    let out_hw = accel.run_decoder(&dec_q, &tgt, &memory_hw.output);
    // software golden path
    let memory_sw = enc_q.forward(&src);
    let out_sw = dec_q.forward(&tgt, &memory_sw);
    assert_eq!(memory_hw.output.as_slice(), memory_sw.as_slice());
    assert_eq!(out_hw.output.as_slice(), out_sw.as_slice());
    // end-to-end latency is the sum of the two stacks
    assert!(out_hw.latency_ms > 0.0 && memory_hw.latency_ms > 0.0);
}

#[test]
fn kv_cached_generation_matches_accelerator_full_pass() {
    let cfg = EncoderConfig::new(64, 4, 1, 6);
    let dec_q =
        QuantizedDecoder::from_float(&DecoderWeights::random(cfg, 3), QuantSchedule::paper());
    let accel = accel_for(&cfg);
    let mem = Matrix::from_fn(10, 64, |r, c| ((r * 7 + c * 3) % 120) as i8);
    let x = Matrix::from_fn(6, 64, |r, c| ((r * 11 + c * 5) % 120) as i8);
    // full pass through the accelerator's tiled path
    let full = accel.run_decoder(&dec_q, &x, &mem).output;
    // incremental with KV cache (software; same golden datapath)
    let mut cache = DecoderKvCache::new(&dec_q, &mem);
    for r in 0..6 {
        let row = dec_q.decode_step(&mut cache, &x.submatrix(r, 0, 1, 64));
        assert_eq!(row.row(0), full.row(r), "position {r}");
    }
}

#[test]
fn self_test_guards_deployments() {
    let cfg = EncoderConfig::new(96, 4, 1, 8);
    let mut accel = accel_for(&cfg);
    accel
        .try_load_weights(QuantizedEncoder::from_float(
            &EncoderWeights::random(cfg, 4),
            QuantSchedule::paper(),
        ))
        .expect("weights must match the programmed registers");
    assert_eq!(accel.self_test(), Ok(()));
}

#[test]
fn workload_generators_feed_the_accelerator() {
    let cfg = EncoderConfig::new(96, 4, 1, 16);
    let mut accel = accel_for(&cfg);
    let q = QuantizedEncoder::from_float(&EncoderWeights::random(cfg, 5), QuantSchedule::paper());
    accel.try_load_weights(q.clone()).expect("weights must match the programmed registers");
    // a batch of generated inputs
    let inputs: Vec<Matrix<i8>> =
        workload::batch(&cfg, 3, 2.0, 77).iter().map(|x| q.quantize_input(x)).collect();
    let (outs, report) = accel.run_batch(&inputs);
    assert_eq!(outs.len(), 3);
    assert!(report.total.get() > 0);
    for (o, x) in outs.iter().zip(&inputs) {
        assert_eq!(o.as_slice(), q.forward(x).as_slice());
    }
    // needle sequences survive quantization with their planted structure
    let (needle_x, pos) = workload::needle_sequence(&cfg, 16, 9);
    let xq = q.quantize_input(&needle_x);
    let norms: Vec<i64> = (0..cfg.seq_len)
        .map(|r| xq.row(r).iter().map(|&v| i64::from(v) * i64::from(v)).sum())
        .collect();
    let argmax = norms.iter().enumerate().max_by_key(|&(_, n)| *n).unwrap().0;
    assert_eq!(argmax, pos, "needle must survive quantization");
}
