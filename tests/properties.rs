//! Property-based tests (proptest) of the core invariants:
//! quantization error bounds, tiling-order independence, serialization
//! round-trips, softmax distribution laws, and the double-buffer
//! scheduler against its closed form.

use proptest::prelude::*;
use protea::fixed::quant::{dequantize_slice, quantize_slice};
use protea::fixed::{softmax_fixed, QFormat, Quantizer, Rounding};
use protea::hwsim::Cycles;
use protea::mem::overlap::{analytic_double_buffered, simulate_double_buffered, simulate_serial};
use protea::model::serialize::{decode, encode, peek_config};
use protea::prelude::*;
use protea::tensor::{matmul_i8_i32, matmul_i8_i32_parallel, TileGrid};

proptest! {
    #[test]
    fn quantize_round_trip_error_within_half_lsb(
        data in prop::collection::vec(-100f32..100f32, 1..200)
    ) {
        let (raw, params) = Quantizer::default().quantize(&data);
        let back = dequantize_slice(&raw, params);
        let lsb = params.format().lsb() as f32;
        for (x, y) in data.iter().zip(back.iter()) {
            prop_assert!((x - y).abs() <= lsb / 2.0 + 1e-5, "x={x} y={y} lsb={lsb}");
        }
    }

    #[test]
    fn quantize_slice_is_idempotent(
        data in prop::collection::vec(-8f32..8f32, 1..100)
    ) {
        let q = Quantizer::default();
        let params = q.calibrate(&data);
        let once = quantize_slice(&data, params);
        let back = dequantize_slice(&once, params);
        let twice = quantize_slice(&back, params);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn rounding_shift_bounded_error(v in any::<i32>(), s in 1u32..20) {
        for mode in [Rounding::Truncate, Rounding::HalfUp, Rounding::NearestEven] {
            let r = mode.shift_right(i64::from(v), s) as f64;
            let exact = f64::from(v) / (1u64 << s) as f64;
            prop_assert!((r - exact).abs() < 1.0 + 1e-9, "{mode:?} {v} >> {s}");
        }
    }

    #[test]
    fn tile_grids_cover_exactly(
        rows in 1usize..40, cols in 1usize..40,
        th in 1usize..12, tw in 1usize..12
    ) {
        let g = TileGrid::new(rows, cols, th, tw);
        let mut cover = vec![0u8; rows * cols];
        for t in g.iter() {
            for r in t.r0..t.r0 + t.h {
                for c in t.c0..t.c0 + t.w {
                    cover[r * cols + c] += 1;
                }
            }
        }
        prop_assert!(cover.iter().all(|&n| n == 1));
    }

    #[test]
    fn i8_matmul_parallel_equals_serial(
        m in 1usize..8, k in 1usize..16, n in 1usize..8,
        seed in any::<u64>()
    ) {
        let gen = |r: usize, c: usize, salt: u64| -> i8 {
            (seed.wrapping_mul(r as u64 + 1).wrapping_add(c as u64 * salt) % 255) as i8
        };
        let a = Matrix::from_fn(m, k, |r, c| gen(r, c, 13));
        let b = Matrix::from_fn(k, n, |r, c| gen(r, c, 29));
        prop_assert_eq!(
            matmul_i8_i32(&a, &b).as_slice().to_vec(),
            matmul_i8_i32_parallel(&a, &b).as_slice().to_vec()
        );
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_nonnegative(
        row in prop::collection::vec(any::<i8>(), 1..64)
    ) {
        let probs = softmax_fixed(&row, QFormat::new(8, 5));
        let sum: i32 = probs.iter().map(|&p| i32::from(p)).sum();
        prop_assert!(probs.iter().all(|&p| p >= 0));
        // flooring division: sum within len LSBs below 1.0 (=128)
        prop_assert!(sum <= 128 && sum >= 128 - row.len() as i32, "sum = {sum}");
    }

    #[test]
    fn softmax_is_shift_invariant(
        row in prop::collection::vec(-60i8..60, 2..32), shift in -30i8..30
    ) {
        let shifted: Vec<i8> = row.iter().map(|&x| x + shift).collect();
        let a = softmax_fixed(&row, QFormat::new(8, 5));
        let b = softmax_fixed(&shifted, QFormat::new(8, 5));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn overlap_sim_equals_closed_form(
        accesses in prop::collection::vec((0u64..500, 0u64..500), 0..60)
    ) {
        let schedule: Vec<(Cycles, Cycles)> =
            accesses.iter().map(|&(l, c)| (Cycles(l), Cycles(c))).collect();
        let sim = simulate_double_buffered(&schedule);
        prop_assert_eq!(sim.total, analytic_double_buffered(&schedule));
        // and never slower than serial, never faster than either lower bound
        let serial = simulate_serial(&schedule);
        prop_assert!(sim.total <= serial.total);
        let sum_l: u64 = accesses.iter().map(|a| a.0).sum();
        let sum_c: u64 = accesses.iter().map(|a| a.1).sum();
        prop_assert!(sim.total.get() >= sum_l.max(sum_c));
    }

    #[test]
    fn weight_blob_round_trips(
        d_exp in 2u32..6, h_exp in 0u32..3, layers in 1usize..3, sl in 1usize..9,
        seed in any::<u64>()
    ) {
        let d = 1usize << d_exp; // 4..32
        let h = (1usize << h_exp).min(d);
        let cfg = EncoderConfig::new(d, h, layers, sl);
        let w = EncoderWeights::random(cfg, seed);
        let blob = encode(&w);
        prop_assert_eq!(peek_config(&blob).unwrap(), cfg);
        let back = decode(&blob).unwrap();
        prop_assert_eq!(back.config, cfg);
        for (a, b) in w.layers.iter().zip(back.layers.iter()) {
            prop_assert_eq!(a.wq.as_slice(), b.wq.as_slice());
            prop_assert_eq!(&a.b2, &b.b2);
        }
    }

    #[test]
    fn corrupted_blobs_never_panic(
        mut blob in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        // decode must return an error or a valid result, never panic.
        let _ = peek_config(&blob);
        let _ = decode(&blob);
        // also try with a valid magic prefix
        if blob.len() >= 4 {
            blob[..4].copy_from_slice(b"PTEA");
            let _ = decode(&blob);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn accelerator_equivalence_random_shapes(
        d_sel in 0usize..4, sl in 1usize..12, seed in any::<u64>()
    ) {
        let (d, h) = [(32, 2), (64, 4), (96, 4), (128, 8)][d_sel];
        let cfg = EncoderConfig::new(d, h, 1, sl);
        let syn = SynthesisConfig::paper_default();
        let weights = EncoderWeights::random(cfg, seed);
        let golden = QuantizedEncoder::from_float(&weights, QuantSchedule::paper());
        let mut accel = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
        accel.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
        accel.try_load_weights(golden.clone()).expect("weights must match the programmed registers");
        let x = Matrix::from_fn(sl, d, |r, c| {
            (seed.wrapping_mul(r as u64 + 3).wrapping_add(c as u64 * 11) % 200) as i64 as i8
        });
        let hw = accel.run(&x).output;
        let sw = golden.forward(&x);
        prop_assert_eq!(hw.as_slice(), sw.as_slice());
    }
}
