//! Timing-model regression pins: exact cycle counts for the calibrated
//! design points. The Table I calibration was validated against the
//! paper once; these tests freeze it so an innocent-looking change to an
//! engine formula, the overlap scheduler, or the congestion model cannot
//! silently drift the reproduction. If a change is *intentional*, update
//! the pins and re-verify `bench::table1` against EXPERIMENTS.md.

use protea::prelude::*;

fn accel() -> Accelerator {
    Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
        .expect("design must fit the device")
}

#[test]
fn pin_table1_test1_cycles() {
    let mut a = accel();
    a.program(
        RuntimeConfig::from_model(&EncoderConfig::paper_test1(), &SynthesisConfig::paper_default())
            .unwrap(),
    )
    .unwrap();
    let total = a.timing_report().total.get();
    // 287.3 ms at 190.9 MHz. Pin the exact integer.
    assert_eq!(total, 54_839_472, "timing model drifted: {total} cycles");
}

#[test]
fn pin_fmax_at_paper_point() {
    let a = accel();
    let fmax = a.design().fmax_mhz;
    assert!((fmax - 190.858).abs() < 0.01, "congestion model drifted: {fmax}");
}

#[test]
fn pin_resources_at_paper_point() {
    let r = accel().design().resources;
    assert_eq!(r.dsps, 3_612);
    assert_eq!(r.ffs, 704_115);
    assert_eq!(r.luts, 1_058_643);
    assert_eq!(r.bram18, 784);
}

#[test]
fn pin_phase_breakdown_shape() {
    let mut a = accel();
    a.program(
        RuntimeConfig::from_model(&EncoderConfig::paper_test1(), &SynthesisConfig::paper_default())
            .unwrap(),
    )
    .unwrap();
    let report = a.timing_report();
    // FFN2 dominance is the load-bearing qualitative fact.
    let ffn2 = report.phase_fraction("FFN2_CE");
    assert!((0.50..0.60).contains(&ffn2), "FFN2 fraction drifted: {ffn2:.3}");
    let mha = report.phase_fraction("QKV_CE")
        + report.phase_fraction("QK_CE")
        + report.phase_fraction("Softmax")
        + report.phase_fraction("SV_CE");
    assert!(mha < 0.05, "MHA fraction drifted: {mha:.3}");
}

#[test]
fn pin_functional_output_checksum() {
    // The bit-exact datapath's output for a fixed seed/input must never
    // change (quantization schedule, requantization points, softmax ROM
    // contents are all under this checksum).
    let cfg = EncoderConfig::new(96, 4, 2, 8);
    let weights = EncoderWeights::random(cfg, 424_242);
    let q = QuantizedEncoder::from_float(&weights, QuantSchedule::paper());
    let syn = SynthesisConfig::paper_default();
    let mut a = accel();
    a.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    a.try_load_weights(q).expect("weights must match the programmed registers");
    let x = Matrix::from_fn(8, 96, |r, c| (((r * 29 + c * 13) % 190) as i32 - 95) as i8);
    let out = a.run(&x).output;
    let checksum: i64 =
        out.as_slice().iter().enumerate().map(|(i, &v)| i64::from(v) * (i as i64 % 251 + 1)).sum();
    // Re-pinned after the workspace switched to the vendored deterministic
    // RNG (the original pin was derived from upstream rand's ChaCha-based
    // StdRng stream; the datapath itself is unchanged and hw==sw holds).
    assert_eq!(checksum, 35_073, "functional datapath drifted: checksum {checksum}");
}
