//! The central correctness contract: the accelerator's tiled, engine-
//! structured datapath must produce **bit-identical** outputs to the
//! software golden model, for every shape and schedule — and so must the
//! rayon-parallel native CPU engine.

use protea::prelude::*;

fn input(sl: usize, d: usize, seed: usize) -> Matrix<i8> {
    Matrix::from_fn(sl, d, |r, c| (((r * 31 + c * 17 + seed * 7) % 200) as i32 - 100) as i8)
}

fn check_equivalence(cfg: EncoderConfig, schedule: QuantSchedule, seed: u64) {
    let syn = SynthesisConfig::paper_default();
    let weights = EncoderWeights::random(cfg, seed);
    let golden = QuantizedEncoder::from_float(&weights, schedule);
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    accel.program(RuntimeConfig::from_model(&cfg, &syn).expect("fits")).expect("register write");
    accel.try_load_weights(golden.clone()).expect("weights must match the programmed registers");
    let x = input(cfg.seq_len, cfg.d_model, seed as usize);
    let hw = accel.run(&x).output;
    let sw = golden.forward(&x);
    assert_eq!(hw.as_slice(), sw.as_slice(), "accelerator != golden model for {cfg:?}");
    // The native rayon engine must also agree.
    let native = NativeCpuEngine::new(&golden).forward(&x);
    assert_eq!(native.as_slice(), sw.as_slice(), "native engine != golden for {cfg:?}");
}

#[test]
fn equivalence_across_shape_grid() {
    for (d, h) in [(32usize, 2usize), (96, 4), (128, 8), (256, 8)] {
        for sl in [1usize, 4, 16] {
            for layers in [1usize, 2] {
                check_equivalence(
                    EncoderConfig::new(d, h, layers, sl),
                    QuantSchedule::paper(),
                    (d + h * 100 + sl) as u64,
                );
            }
        }
    }
}

#[test]
fn equivalence_under_standard_scaling() {
    for (d, h, sl) in [(64usize, 4usize, 8usize), (128, 8, 12)] {
        let cfg = EncoderConfig::new(d, h, 1, sl).with_scaling(AttnScaling::InvSqrtDk);
        check_equivalence(cfg, QuantSchedule::standard_scaling(), 9);
    }
}

#[test]
fn equivalence_with_gelu_activation() {
    let cfg = EncoderConfig::new(64, 4, 2, 8).with_activation(protea::fixed::Activation::Gelu);
    check_equivalence(cfg, QuantSchedule::paper(), 5);
}

#[test]
fn equivalence_at_paper_scale_single_layer() {
    // The full d_model=768 path through real tile geometry (12 MHA tiles,
    // 6 FFN tiles) — expensive, so one layer and a short sequence.
    check_equivalence(EncoderConfig::new(768, 8, 1, 8), QuantSchedule::paper(), 21);
}

#[test]
fn equivalence_with_ragged_runtime_tiles() {
    // d_model=512 on the tiles-of-768 synthesis exercises ceil-division
    // tile widths (43 and 86) and a short final tile.
    check_equivalence(EncoderConfig::new(512, 8, 1, 8), QuantSchedule::paper(), 33);
    // d_model=320: width ceil(320/12)=27, last tile ragged.
    check_equivalence(EncoderConfig::new(320, 8, 1, 4), QuantSchedule::paper(), 34);
}

#[test]
fn quantized_output_tracks_float_reference() {
    // End-to-end sanity: the int8 pipeline approximates the f32 encoder.
    let cfg = EncoderConfig::new(96, 4, 2, 12);
    let weights = EncoderWeights::random(cfg, 77);
    let float_enc = FloatEncoder::new(weights.clone());
    let golden = QuantizedEncoder::from_float(&weights, QuantSchedule::paper());
    let xf = Matrix::from_fn(12, 96, |r, c| ((r * 13 + c) % 50) as f32 / 25.0 - 1.0);
    let yf = float_enc.forward(&xf);
    let yq = golden.dequantize(&golden.forward(&golden.quantize_input(&xf)));
    let err = protea::tensor::ops::mse(&yf, &yq);
    assert!(err < 0.5, "quantized output diverged from float reference: mse = {err}");
}
