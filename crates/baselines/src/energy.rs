//! Energy and power: quantifying the paper's efficiency claim.
//!
//! The paper argues FPGAs deliver "low run time inference latencies with
//! efficient power consumption" but publishes no power numbers. This
//! module makes the comparison computable from board-level power
//! envelopes (public datasheet/TDP values, with the FPGA number scaled
//! by resource utilization — the standard first-order XPE-style
//! estimate). Everything here is an explicit modeling assumption,
//! documented per platform.

/// A platform's power envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Platform name.
    pub name: &'static str,
    /// Idle/static power in watts (board level).
    pub static_w: f64,
    /// Additional dynamic power at full utilization, watts.
    pub dynamic_full_w: f64,
    /// Fraction of the dynamic envelope this workload exercises
    /// (utilization-scaled for the FPGA; ~1.0 for a saturated GPU,
    /// lower for framework-bound runs).
    pub activity: f64,
}

impl PowerModel {
    /// Alveo U55C running ProTEA: 115 W max TDP card; static ≈ 25 W;
    /// dynamic scaled by the design's ~40 % DSP / 81 % LUT occupancy and
    /// 191 MHz clock (≈ 0.45 activity).
    #[must_use]
    pub const fn protea_u55c() -> Self {
        Self { name: "ProTEA @ Alveo U55C", static_w: 25.0, dynamic_full_w: 90.0, activity: 0.45 }
    }

    /// NVIDIA Titan XP: 250 W TDP; small-batch transformer inference is
    /// launch-bound, so the dynamic envelope is barely touched.
    #[must_use]
    pub const fn titan_xp_smallbatch() -> Self {
        Self {
            name: "Titan XP (small batch)",
            static_w: 55.0,
            dynamic_full_w: 195.0,
            activity: 0.15,
        }
    }

    /// Jetson TX2: 7.5–15 W module.
    #[must_use]
    pub const fn jetson_tx2() -> Self {
        Self { name: "Jetson TX2", static_w: 5.0, dynamic_full_w: 10.0, activity: 0.7 }
    }

    /// Intel i5-5257U: 28 W TDP laptop part.
    #[must_use]
    pub const fn i5_5257u() -> Self {
        Self { name: "i5-5257U", static_w: 8.0, dynamic_full_w: 20.0, activity: 0.8 }
    }

    /// Intel i5-4460: 84 W TDP desktop part.
    #[must_use]
    pub const fn i5_4460() -> Self {
        Self { name: "i5-4460", static_w: 20.0, dynamic_full_w: 64.0, activity: 0.8 }
    }

    /// Average power draw under this workload (watts).
    #[must_use]
    pub fn average_watts(&self) -> f64 {
        self.static_w + self.dynamic_full_w * self.activity
    }

    /// Energy for one inference of `latency_ms` (millijoules).
    #[must_use]
    pub fn energy_mj(&self, latency_ms: f64) -> f64 {
        assert!(latency_ms >= 0.0);
        self.average_watts() * latency_ms
    }

    /// Throughput efficiency in GOPS/W.
    #[must_use]
    pub fn gops_per_watt(&self, gops: f64) -> f64 {
        gops / self.average_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_power_composition() {
        let p = PowerModel::protea_u55c();
        assert!((p.average_watts() - (25.0 + 90.0 * 0.45)).abs() < 1e-12);
    }

    #[test]
    fn fpga_beats_big_gpu_on_energy_for_model2() {
        // Table III model #2: ProTEA 0.45 ms vs Titan XP 1.062 ms.
        let fpga = PowerModel::protea_u55c().energy_mj(0.45);
        let gpu = PowerModel::titan_xp_smallbatch().energy_mj(1.062);
        assert!(fpga < gpu, "fpga {fpga:.1} mJ vs gpu {gpu:.1} mJ");
    }

    #[test]
    fn jetson_wins_energy_despite_losing_latency_claims_context() {
        // Model #1: Jetson 0.673 ms at ~12 W vs ProTEA 4.72 ms at ~65 W:
        // the embedded GPU is the energy winner there — the honest flip
        // side of Table III the power analysis surfaces.
        let jetson = PowerModel::jetson_tx2().energy_mj(0.673);
        let fpga = PowerModel::protea_u55c().energy_mj(4.72);
        assert!(jetson < fpga);
    }

    #[test]
    fn gops_per_watt_scales() {
        let p = PowerModel::protea_u55c();
        assert!((p.gops_per_watt(51.0) - 51.0 / p.average_watts()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_latency_rejected() {
        let _ = PowerModel::protea_u55c().energy_mj(-1.0);
    }
}
