//! Roofline latency models for the CPU/GPU comparison platforms.
//!
//! `latency = overhead + max(ops / (peak · efficiency), bytes / bandwidth)`
//!
//! The models exist to *sanity-check* the published Table III baselines
//! (the tables themselves quote the published numbers): given a model's
//! op and byte counts, [`PlatformModel::implied_efficiency`] recovers
//! the compute efficiency a published latency corresponds to — small
//! transformer inference on a big GPU is overwhelmingly launch-overhead
//! bound, which the paper's anomalously slow GPU rows (147 ms on a Titan
//! XP) make vivid.

/// A CPU or GPU platform's roofline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformModel {
    /// Name as Table III spells it.
    pub name: &'static str,
    /// Core clock in GHz (as reported in the paper's frequency column).
    pub freq_ghz: f64,
    /// Peak throughput in GOPS for the relevant precision.
    pub peak_gops: f64,
    /// Memory bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Fixed per-inference overhead in ms (framework dispatch, kernel
    /// launches); dominates tiny models.
    pub overhead_ms: f64,
    /// Achievable fraction of peak on dense transformer kernels.
    pub efficiency: f64,
}

impl PlatformModel {
    /// Intel i5-5257U (2-core Broadwell, 2.7 GHz) — ~170 GFLOPS fp32 AVX2.
    #[must_use]
    pub const fn i5_5257u() -> Self {
        Self {
            name: "Intel i5-5257U CPU",
            freq_ghz: 2.7,
            peak_gops: 170.0,
            mem_gbps: 25.6,
            overhead_ms: 0.05,
            efficiency: 0.25,
        }
    }

    /// Intel i5-4460 (4-core Haswell, 3.2 GHz).
    #[must_use]
    pub const fn i5_4460() -> Self {
        Self {
            name: "Intel i5-4460 CPU",
            freq_ghz: 3.2,
            peak_gops: 410.0,
            mem_gbps: 25.6,
            overhead_ms: 0.05,
            efficiency: 0.25,
        }
    }

    /// NVIDIA Jetson TX2 (integrated Pascal, 1.3 GHz) — ~1.3 TFLOPS fp16.
    #[must_use]
    pub const fn jetson_tx2() -> Self {
        Self {
            name: "Jetson TX2 GPU",
            freq_ghz: 1.3,
            peak_gops: 1330.0,
            mem_gbps: 59.7,
            overhead_ms: 0.2,
            efficiency: 0.30,
        }
    }

    /// NVIDIA Titan XP (Pascal, 1.4 GHz) — 12.1 TFLOPS fp32.
    #[must_use]
    pub const fn titan_xp() -> Self {
        Self {
            name: "NVIDIA Titan XP GPU",
            freq_ghz: 1.4,
            peak_gops: 12_100.0,
            mem_gbps: 547.0,
            overhead_ms: 0.8,
            efficiency: 0.35,
        }
    }

    /// NVIDIA RTX 3060 (Ampere, boost ~1.8 GHz; the paper lists 1.3).
    #[must_use]
    pub const fn rtx_3060() -> Self {
        Self {
            name: "NVIDIA RTX 3060 GPU",
            freq_ghz: 1.3,
            peak_gops: 12_700.0,
            mem_gbps: 360.0,
            overhead_ms: 0.5,
            efficiency: 0.35,
        }
    }

    /// All Table III platforms.
    #[must_use]
    pub fn all() -> Vec<PlatformModel> {
        vec![
            Self::i5_5257u(),
            Self::i5_4460(),
            Self::jetson_tx2(),
            Self::titan_xp(),
            Self::rtx_3060(),
        ]
    }

    /// Roofline latency in ms for a workload of `ops` operations touching
    /// `bytes` bytes of memory.
    #[must_use]
    pub fn latency_ms(&self, ops: u64, bytes: u64) -> f64 {
        let compute_s = ops as f64 / (self.peak_gops * 1e9 * self.efficiency);
        let memory_s = bytes as f64 / (self.mem_gbps * 1e9);
        self.overhead_ms + compute_s.max(memory_s) * 1e3
    }

    /// The compute efficiency a *published* latency implies (after
    /// subtracting the overhead floor), clamped to [0, 1]. Tiny values
    /// flag framework-bound measurements.
    #[must_use]
    pub fn implied_efficiency(&self, ops: u64, published_ms: f64) -> f64 {
        let avail_s = ((published_ms - self.overhead_ms) / 1e3).max(1e-12);
        (ops as f64 / (self.peak_gops * 1e9) / avail_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_bandwidth_never_hurts() {
        let mut fast = PlatformModel::titan_xp();
        fast.mem_gbps *= 2.0;
        let ops = 1_000_000_000;
        let bytes = 2_000_000_000;
        assert!(fast.latency_ms(ops, bytes) <= PlatformModel::titan_xp().latency_ms(ops, bytes));
    }

    #[test]
    fn overhead_dominates_tiny_models() {
        let p = PlatformModel::titan_xp();
        let tiny = p.latency_ms(700_000, 100_000);
        assert!((tiny - p.overhead_ms).abs() < 0.01, "tiny model ≈ overhead, got {tiny}");
    }

    #[test]
    fn compute_bound_large_models() {
        let p = PlatformModel::i5_5257u();
        let big = p.latency_ms(100_000_000_000, 1_000_000);
        // 100 Gop at 42.5 effective GOPS ≈ 2350 ms
        assert!(big > 2000.0 && big < 3000.0, "big = {big}");
    }

    #[test]
    fn implied_efficiency_flags_slow_published_numbers() {
        // Table III #4: 147 ms on a Titan XP for a ~1.2 Gop model implies
        // ~0.01 % of peak — framework-bound, as the reproduction notes.
        let p = PlatformModel::titan_xp();
        let eff = p.implied_efficiency(1_200_000_000, 147.0);
        assert!(eff < 0.001, "implied eff = {eff}");
    }

    #[test]
    fn published_cpu_rows_are_roofline_plausible() {
        // #1: i5-5257U at 3.54 ms for ~0.35 Gop ⇒ implied ~60 % of peak —
        // right at the plausibility boundary (an optimized BLAS path, or a
        // slightly smaller actual model). The check is that the published
        // number does not require *super*-peak throughput.
        let p = PlatformModel::i5_5257u();
        let eff = p.implied_efficiency(354_000_000, 3.54);
        assert!(eff > 0.01 && eff <= 1.0, "eff = {eff}");
    }

    #[test]
    fn gpu_faster_than_cpu_on_big_dense_work() {
        let ops = 50_000_000_000u64;
        let bytes = 500_000_000u64;
        assert!(
            PlatformModel::titan_xp().latency_ms(ops, bytes)
                < PlatformModel::i5_4460().latency_ms(ops, bytes)
        );
    }
}
