//! Model-configuration assumptions behind Tables II and III.
//!
//! The paper states that Table II/III's ProTEA rows were produced by
//! runtime-reprogramming the accelerator "to align with the architectures
//! in the referenced studies", but does not publish the resulting
//! `(d_model, h, N, SL)` tuples. We reconstruct them by anchoring on the
//! *reported ProTEA latency* of each row (latency is the measured
//! quantity; GOPS is derived from it): each config below is the smallest
//! natural encoder shape whose simulated latency on the paper-default
//! synthesis lands on the published value. EXPERIMENTS.md records the
//! residuals.

use crate::published::{PublishedAccelerator, PublishedBaseline};
use protea_model::EncoderConfig;

/// One Table II row pair: a comparator + the matched ProTEA config.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The published comparator.
    pub comparator: PublishedAccelerator,
    /// The reconstructed model configuration ProTEA was programmed to.
    pub protea_config: EncoderConfig,
    /// ProTEA's reported latency for this row (ms).
    pub protea_reported_latency_ms: f64,
    /// ProTEA's reported GOPS for this row.
    pub protea_reported_gops: f64,
    /// ProTEA's reported (GOPS/DSP)×1000.
    pub protea_reported_gops_per_dsp: f64,
}

/// One Table III row group: a model config with its published baselines.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The paper's model number (1–4).
    pub model: u32,
    /// The reconstructed configuration.
    pub config: EncoderConfig,
    /// Published CPU/GPU results for this model.
    pub baselines: Vec<PublishedBaseline>,
    /// ProTEA's reported latency (ms).
    pub protea_reported_latency_ms: f64,
}

/// The reconstructed model configuration for each paper "model #".
#[must_use]
pub fn model_config(model: u32) -> EncoderConfig {
    match model {
        // Model #1 ([21]): ProTEA reported 4.48 ms — a single BERT-width
        // layer over a short sequence.
        1 => EncoderConfig::new(768, 8, 1, 12),
        // Model #2 ([23]): the LHC trigger network — tiny d_model, one
        // layer, short constituent list. ProTEA reported 0.425 ms.
        2 => EncoderConfig::new(64, 8, 1, 8),
        // Model #3 ([25]): EFA-Trans's encoder — ProTEA reported 5.18 ms.
        3 => EncoderConfig::new(768, 8, 1, 14),
        // Model #4 ([28]): the co-optimization framework's BERT workload
        // — ProTEA reported 9.12 ms.
        4 => EncoderConfig::new(768, 8, 1, 24),
        _ => panic!("the paper defines models 1–4, got {model}"),
    }
}

/// Table II row pairs in the paper's order.
#[must_use]
pub fn table2_rows() -> Vec<Table2Row> {
    let comps = PublishedAccelerator::table2();
    let reported = [
        // (model#, latency, gops, gops/dsp×1000) of the ProTEA rows.
        (1u32, 4.48, 79.0, 22.0),
        (2, 0.425, 0.0017, 0.45e-3),
        (3, 5.18, 83.0, 23.0),
        (4, 9.12, 132.0, 37.0),
        (1, 4.48, 79.0, 22.0), // vs FTRANS the paper reuses model #1's row
    ];
    comps
        .into_iter()
        .zip(reported)
        .map(|(comparator, (m, lat, gops, gpd))| Table2Row {
            comparator,
            protea_config: model_config(m),
            protea_reported_latency_ms: lat,
            protea_reported_gops: gops,
            protea_reported_gops_per_dsp: gpd,
        })
        .collect()
}

/// Table III row groups in the paper's order.
#[must_use]
pub fn table3_rows() -> Vec<Table3Row> {
    let all = PublishedBaseline::table3();
    let protea = [(1u32, 4.48), (2, 0.425), (3, 5.18), (4, 9.12)];
    protea
        .into_iter()
        .map(|(model, lat)| Table3Row {
            model,
            config: model_config(model),
            baselines: all.iter().copied().filter(|b| b.model == model).collect(),
            protea_reported_latency_ms: lat,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_models_all_within_synthesized_capacity() {
        for m in 1..=4 {
            let c = model_config(m);
            assert!(c.d_model <= 768 && c.heads <= 8 && c.seq_len <= 128, "model {m}");
        }
    }

    #[test]
    fn table2_pairs_line_up() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2].comparator.cite, "[25]");
        assert!((rows[2].protea_reported_latency_ms - 5.18).abs() < 1e-12);
    }

    #[test]
    fn table3_groups_have_their_baselines() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].baselines.len(), 2); // CPU + Jetson
        assert_eq!(rows[1].baselines.len(), 1); // Titan XP only
        assert_eq!(rows[3].baselines[0].latency_ms, 147.0);
    }

    #[test]
    fn paper_speedups_recoverable_from_reported_numbers() {
        let rows = table3_rows();
        // Model #2: 1.062 / 0.425 ≈ 2.5× (the paper's headline GPU win).
        let m2 = &rows[1];
        let speedup = m2.baselines[0].latency_ms / m2.protea_reported_latency_ms;
        assert!((speedup - 2.5).abs() < 0.05, "speedup = {speedup}");
        // Model #4: 147 / 9.12 ≈ 16×.
        let m4 = &rows[3];
        let s4 = m4.baselines[0].latency_ms / m4.protea_reported_latency_ms;
        assert!((s4 - 16.1).abs() < 0.2, "speedup = {s4}");
    }

    #[test]
    #[should_panic(expected = "models 1–4")]
    fn unknown_model_rejected() {
        let _ = model_config(9);
    }
}
