//! # protea-baselines — comparators for Tables II and III
//!
//! The paper's evaluation is comparative: ProTEA against five published
//! FPGA accelerators (Table II) and against CPUs/GPUs (Table III). None
//! of those systems is runnable here, so this crate supplies what a
//! faithful comparison needs:
//!
//! * [`published`] — a registry of every comparator's *reported* numbers
//!   (platform, precision, DSPs, latency, GOPS, sparsity), transcribed
//!   from the paper, plus the derived-metric arithmetic the paper
//!   performs (GOPS/DSP ×1000, sparsity-adjusted latencies).
//! * [`roofline`] — first-principles latency models of the CPU/GPU
//!   platforms (peak throughput, memory bandwidth, launch overhead) used
//!   to sanity-check the published baselines and expose each result's
//!   implied efficiency.
//! * [`native`] — a real, measured baseline: the same quantized encoder
//!   running on *this* machine's CPU with rayon-parallel kernels,
//!   bit-identical to the golden model.
//! * [`table_configs`] — the documented model-configuration assumptions
//!   behind each Table II/III row (the paper does not publish them; see
//!   EXPERIMENTS.md for the reconstruction method).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod native;
pub mod published;
pub mod roofline;
pub mod table_configs;

pub use energy::PowerModel;
pub use native::NativeCpuEngine;
pub use published::{PublishedAccelerator, PublishedBaseline};
pub use roofline::PlatformModel;
pub use table_configs::{table2_rows, table3_rows, Table2Row, Table3Row};
