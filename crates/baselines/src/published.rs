//! Published comparator results, transcribed from the paper.

/// A published FPGA accelerator result (one comparator row of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedAccelerator {
    /// Citation key as the paper numbers it.
    pub cite: &'static str,
    /// Short name.
    pub name: &'static str,
    /// Arithmetic precision as reported.
    pub precision: &'static str,
    /// FPGA platform.
    pub platform: &'static str,
    /// DSPs used.
    pub dsps: u64,
    /// Reported latency in milliseconds.
    pub latency_ms: f64,
    /// Reported throughput in GOPS.
    pub gops: f64,
    /// Design methodology (HLS / HDL) where stated.
    pub method: &'static str,
    /// Weight sparsity the design exploits (0.0 = dense).
    pub sparsity: f64,
}

impl PublishedAccelerator {
    /// The paper's normalized-throughput metric: `(GOPS/DSP) × 1000`.
    #[must_use]
    pub fn gops_per_dsp_x1000(&self) -> f64 {
        self.gops / self.dsps as f64 * 1000.0
    }

    /// The paper's sparsity-adjustment arithmetic: what a dense design's
    /// latency "would mathematically be" at this row's sparsity
    /// (`l − l·s`, the calculation the paper applies to ProTEA when
    /// comparing against [21] and [29]).
    #[must_use]
    pub fn sparsity_adjusted(dense_latency_ms: f64, sparsity: f64) -> f64 {
        assert!((0.0..=1.0).contains(&sparsity));
        dense_latency_ms * (1.0 - sparsity)
    }

    /// Table II comparator rows, in the paper's order.
    #[must_use]
    pub fn table2() -> Vec<PublishedAccelerator> {
        vec![
            PublishedAccelerator {
                cite: "[21]",
                name: "Peng et al. (column-balanced block pruning)",
                precision: "-",
                platform: "Alveo U200",
                dsps: 3368,
                latency_ms: 0.32,
                gops: 555.0,
                method: "HDL",
                sparsity: 0.90,
            },
            PublishedAccelerator {
                cite: "[23]",
                name: "Wojcicki et al. (LHC trigger)",
                precision: "Float32",
                platform: "Alveo U250",
                dsps: 4351,
                latency_ms: 1.2,
                gops: 0.0006,
                method: "HLS",
                sparsity: 0.0,
            },
            PublishedAccelerator {
                cite: "[25]",
                name: "EFA-Trans",
                precision: "Int8",
                platform: "ZCU102",
                dsps: 1024,
                latency_ms: 1.47,
                gops: 279.0,
                method: "HDL",
                sparsity: 0.64,
            },
            PublishedAccelerator {
                cite: "[28]",
                name: "Qi et al. (co-optimization framework)",
                precision: "-",
                platform: "Alveo U200",
                dsps: 4145,
                latency_ms: 15.8,
                gops: 75.94,
                method: "-",
                sparsity: 0.0,
            },
            PublishedAccelerator {
                cite: "[29]",
                name: "FTRANS (block-circulant)",
                precision: "Fix16",
                platform: "VCU118",
                dsps: 5647,
                latency_ms: 2.94,
                gops: 60.0,
                method: "-",
                sparsity: 0.93,
            },
        ]
    }
}

/// A published CPU/GPU baseline (Table III rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedBaseline {
    /// Which TNN model config (1–4, per the paper's numbering).
    pub model: u32,
    /// Source work.
    pub cite: &'static str,
    /// Platform name.
    pub platform: &'static str,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Reported latency in milliseconds.
    pub latency_ms: f64,
    /// Whether this row is the table's speedup base.
    pub is_base: bool,
}

impl PublishedBaseline {
    /// Table III baseline rows.
    #[must_use]
    pub fn table3() -> Vec<PublishedBaseline> {
        vec![
            PublishedBaseline {
                model: 1,
                cite: "[21]",
                platform: "Intel i5-5257U CPU",
                freq_ghz: 2.7,
                latency_ms: 3.54,
                is_base: true,
            },
            PublishedBaseline {
                model: 1,
                cite: "[21]",
                platform: "Jetson TX2 GPU",
                freq_ghz: 1.3,
                latency_ms: 0.673,
                is_base: false,
            },
            PublishedBaseline {
                model: 2,
                cite: "[23]",
                platform: "NVIDIA Titan XP GPU",
                freq_ghz: 1.4,
                latency_ms: 1.062,
                is_base: true,
            },
            PublishedBaseline {
                model: 3,
                cite: "[25]",
                platform: "Intel i5-4460 CPU",
                freq_ghz: 3.2,
                latency_ms: 4.66,
                is_base: true,
            },
            PublishedBaseline {
                model: 3,
                cite: "[25]",
                platform: "NVIDIA RTX 3060 GPU",
                freq_ghz: 1.3,
                latency_ms: 0.71,
                is_base: false,
            },
            PublishedBaseline {
                model: 4,
                cite: "[28]",
                platform: "NVIDIA Titan XP GPU",
                freq_ghz: 1.4,
                latency_ms: 147.0,
                is_base: true,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_five_comparators() {
        let rows = PublishedAccelerator::table2();
        assert_eq!(rows.len(), 5);
        let cites: Vec<_> = rows.iter().map(|r| r.cite).collect();
        assert_eq!(cites, vec!["[21]", "[23]", "[25]", "[28]", "[29]"]);
    }

    #[test]
    fn gops_per_dsp_matches_paper() {
        // [21]: 555/3368 × 1000 = 164.8 ≈ paper's 164.
        let rows = PublishedAccelerator::table2();
        assert!((rows[0].gops_per_dsp_x1000() - 164.0).abs() < 2.0);
        // [25]: 279/1024 × 1000 = 272.5 ≈ paper's 272.
        assert!((rows[2].gops_per_dsp_x1000() - 272.0).abs() < 2.0);
        // [29]: 60/5647 × 1000 = 10.6 ≈ paper's 11.
        assert!((rows[4].gops_per_dsp_x1000() - 11.0).abs() < 0.6);
    }

    #[test]
    fn sparsity_adjustment_reproduces_paper_arithmetic() {
        // Paper: 4.48 ms at 90 % sparsity → 0.448 ms.
        let adj = PublishedAccelerator::sparsity_adjusted(4.48, 0.90);
        assert!((adj - 0.448).abs() < 1e-12);
        // Paper: 4.48 ms at 93 % → ≈ 0.31 ms.
        let adj93 = PublishedAccelerator::sparsity_adjusted(4.48, 0.93);
        assert!((adj93 - 0.3136).abs() < 1e-9);
    }

    #[test]
    fn table3_speedup_bases() {
        let rows = PublishedBaseline::table3();
        assert_eq!(rows.len(), 6);
        // one base per model
        for m in 1..=4u32 {
            assert_eq!(rows.iter().filter(|r| r.model == m && r.is_base).count(), 1);
        }
        // paper's Jetson speedup: 3.54/0.673 ≈ 5.3×
        assert!((rows[0].latency_ms / rows[1].latency_ms - 5.26).abs() < 0.05);
    }
}
