//! A real, measured CPU baseline: the quantized encoder on this machine.
//!
//! Everything else in the comparison tables is published or simulated;
//! this engine actually executes. It runs the identical int8 datapath as
//! the golden model — rayon-parallel across output rows, which preserves
//! bit-exactness because each output element's integer reduction stays
//! within one thread — so its outputs are byte-identical to
//! `QuantizedEncoder::forward` while its wall-clock is a genuine
//! multi-core CPU measurement for the Criterion benches.

use protea_fixed::activation::ActivationLut;
use protea_fixed::Requantizer;
use protea_model::quantized::{add_norm, requant_logits, QuantMatrix, QuantizedLayer};
use protea_model::{QuantSchedule, QuantizedEncoder};
use protea_tensor::{matmul_i8_i32_parallel, transpose, Matrix};

/// The native engine: borrowed quantized weights + parallel kernels.
pub struct NativeCpuEngine<'a> {
    enc: &'a QuantizedEncoder,
    act: ActivationLut,
}

impl<'a> NativeCpuEngine<'a> {
    /// Wrap a quantized encoder.
    #[must_use]
    pub fn new(enc: &'a QuantizedEncoder) -> Self {
        let act = ActivationLut::new(enc.config.activation, enc.schedule.act_fmt);
        Self { enc, act }
    }

    /// Full forward pass, bit-identical to the golden model.
    #[must_use]
    pub fn forward(&self, x: &Matrix<i8>) -> Matrix<i8> {
        let cfg = self.enc.config;
        assert_eq!(x.shape(), (cfg.seq_len, cfg.d_model));
        let mut h = x.clone();
        for layer in &self.enc.layers {
            h = self.forward_layer(&h, layer);
        }
        h
    }

    fn forward_layer(&self, x: &Matrix<i8>, w: &QuantizedLayer) -> Matrix<i8> {
        let cfg = self.enc.config;
        let s = &self.enc.schedule;
        let sl = cfg.seq_len;
        let dk = cfg.d_k();
        let softmax = protea_fixed::SoftmaxUnit::new(s.logit_fmt);

        let q = par_project(x, &w.wq, &w.bq, s);
        let k = par_project(x, &w.wk, &w.bk, s);
        let v = par_project(x, &w.wv, &w.bv, s);

        let mut sv = Matrix::<i8>::zeros(sl, cfg.d_model);
        for head in 0..cfg.heads {
            let c0 = head * dk;
            let qi = q.submatrix(0, c0, sl, dk);
            let ki = k.submatrix(0, c0, sl, dk);
            let vi = v.submatrix(0, c0, sl, dk);
            let acc = matmul_i8_i32_parallel(&qi, &transpose(&ki));
            let logits = requant_logits(&acc, &cfg, s);
            let mut p = Matrix::<i8>::zeros(sl, sl);
            softmax.forward_matrix(logits.as_slice(), sl, p.as_mut_slice());
            let acc_sv = matmul_i8_i32_parallel(&p, &vi);
            let rq = Requantizer::new(
                s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(),
                s.act_fmt,
                s.rounding,
            );
            sv.write_submatrix(0, c0, &acc_sv.map(|a| rq.apply(a)));
        }

        let attn = par_project(&sv, &w.wo, &w.bo, s);
        let x1 = add_norm(x, &attn, &w.ln1, s);
        let mut hidden = par_project(&x1, &w.w1, &w.b1, s);
        self.act.apply_slice(hidden.as_mut_slice());
        let ffn = par_project(&hidden, &w.w2, &w.b2, s);
        add_norm(&x1, &ffn, &w.ln2, s)
    }
}

/// Parallel projection with the identical requantization tail to the
/// golden model's `project`.
fn par_project(x: &Matrix<i8>, w: &QuantMatrix, bias: &[i32], s: &QuantSchedule) -> Matrix<i8> {
    let mut acc = matmul_i8_i32_parallel(x, &w.data);
    assert_eq!(acc.cols(), bias.len());
    for r in 0..acc.rows() {
        for (a, &b) in acc.row_mut(r).iter_mut().zip(bias.iter()) {
            *a = a.saturating_add(b);
        }
    }
    let rq = Requantizer::new(s.act_fmt.frac_bits() + w.fmt.frac_bits(), s.act_fmt, s.rounding);
    acc.map(|a| rq.apply(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::{EncoderConfig, EncoderWeights};

    #[test]
    fn bit_identical_to_golden_model() {
        let cfg = EncoderConfig::new(64, 4, 2, 16);
        let fw = EncoderWeights::random(cfg, 77);
        let enc = QuantizedEncoder::from_float(&fw, QuantSchedule::paper());
        let x = Matrix::from_fn(16, 64, |r, c| (((r * 13 + c * 7) % 200) as i32 - 100) as i8);
        let xi = enc.quantize_input(&enc.dequantize(&x)); // normalize representable
        let native = NativeCpuEngine::new(&enc).forward(&xi);
        let golden = enc.forward(&xi);
        assert_eq!(native.as_slice(), golden.as_slice());
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = EncoderConfig::new(32, 2, 1, 8);
        let fw = EncoderWeights::random(cfg, 3);
        let enc = QuantizedEncoder::from_float(&fw, QuantSchedule::paper());
        let x = Matrix::from_fn(8, 32, |r, c| ((r * 5 + c) % 100) as i8);
        let e = NativeCpuEngine::new(&enc);
        assert_eq!(e.forward(&x).as_slice(), e.forward(&x).as_slice());
    }
}
