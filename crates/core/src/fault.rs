//! Driver-side fault handling: watchdog, retry with exponential
//! backoff, and per-fault-class accounting.
//!
//! `protea-mem`'s [`FaultStream`] *produces* faults; this module is the
//! host driver's response to them, mirroring what the MicroBlaze
//! firmware would do on real hardware:
//!
//! * a [`Watchdog`] bounds how long the driver waits on any one tile
//!   transfer — a hung AXI transaction ([`TransferFault::Timeout`]) is
//!   detected after `timeout_cycles`, never waited on forever;
//! * a [`RetryPolicy`] prices re-issued transfers: recoverable faults
//!   (correctable ECC, watchdog-detected hangs) are replayed with
//!   exponential backoff until `max_attempts` is exhausted;
//! * [`FaultStats`] counts every fault by class, plus the cycles the
//!   recovery machinery spent, so run reports can show *where* time
//!   under faults went;
//! * unrecoverable faults (double-bit ECC, exhausted retries) surface
//!   as [`CoreError::Fault`](crate::error::CoreError::Fault) — the
//!   driver gives up on the run and the layer above decides what card
//!   to fail over to.

pub use protea_mem::fault::{
    FaultEvent, FaultKind, FaultRates, FaultStream, SdcEvent, SdcHit, SdcSite, SdcStream,
    TransferFault,
};

/// The driver's transfer watchdog: a hung AXI transaction is declared
/// dead after `timeout_cycles` and handed to the retry path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Cycles the driver waits on one transfer before declaring it hung.
    pub timeout_cycles: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        // Generous against the largest legitimate tile transfer in the
        // paper's design point (tens of thousands of cycles), tight
        // enough that a hang costs well under a batch's service time.
        Self { timeout_cycles: 100_000 }
    }
}

/// Exponential-backoff retry policy for recoverable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per transfer (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in cycles.
    pub base_backoff_cycles: u64,
    /// Backoff growth factor per retry.
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_cycles: 1_000, multiplier: 2 }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `retry` (0-based):
    /// `base · multiplier^retry`, saturating.
    #[must_use]
    pub fn backoff_cycles(&self, retry: u32) -> u64 {
        u64::from(self.multiplier).saturating_pow(retry).saturating_mul(self.base_backoff_cycles)
    }
}

/// Per-fault-class accounting for one run (or one serving simulation,
/// when merged across dispatches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Correctable single-bit ECC events (scrubbed and replayed).
    pub ecc_single: u64,
    /// Uncorrectable double-bit ECC events (run abandoned).
    pub ecc_double: u64,
    /// Transient AXI stalls (transfer completed late).
    pub stalls: u64,
    /// Hung transfers detected by the watchdog.
    pub watchdog_trips: u64,
    /// Transfer re-issues (each recoverable fault costs one retry).
    pub retries: u64,
    /// Extra cycles lost to stalls.
    pub stall_cycles: u64,
    /// Cycles spent in watchdog waits and retry backoff.
    pub recovery_cycles: u64,
    /// Cycles into the run at which an unrecoverable fault was detected
    /// (zero when the run completed).
    pub abort_cycles: u64,
}

impl FaultStats {
    /// Total fault events across every class.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.ecc_single + self.ecc_double + self.stalls + self.watchdog_trips
    }

    /// Whether any fault was observed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.total_faults() > 0
    }

    /// Fold another run's counters into this one (abort position keeps
    /// the latest nonzero value).
    pub fn merge(&mut self, other: &FaultStats) {
        self.ecc_single += other.ecc_single;
        self.ecc_double += other.ecc_double;
        self.stalls += other.stalls;
        self.watchdog_trips += other.watchdog_trips;
        self.retries += other.retries;
        self.stall_cycles += other.stall_cycles;
        self.recovery_cycles += other.recovery_cycles;
        if other.abort_cycles != 0 {
            self.abort_cycles = other.abort_cycles;
        }
    }
}

/// One tile load under the driver's fault-handling loop: sample a fault
/// per attempt, fold stalls into the transfer time, replay recoverable
/// faults with backoff, and give up on unrecoverable ones. Returns the
/// total cycles the load occupied the port, or on abort the fault kind
/// plus the cycles spent before the driver gave up.
///
/// Used by the execution pipeline's fault-injected pricing path
/// ([`crate::pipeline`]); it lives here because this *is* the driver's
/// recovery loop, independent of how a run is planned.
pub(crate) fn faulty_load(
    clean_cycles: u64,
    stream: &mut FaultStream,
    watchdog: Watchdog,
    retry: RetryPolicy,
    now_ns: u64,
    stats: &mut FaultStats,
) -> Result<u64, (FaultKind, u64)> {
    let mut spent: u64 = 0;
    let mut last_kind = FaultKind::AxiTimeout;
    for attempt in 0..retry.max_attempts.max(1) {
        match stream.sample_transfer(now_ns) {
            None => return Ok(spent.saturating_add(clean_cycles)),
            Some(TransferFault::Stall { extra_cycles }) => {
                stats.stalls += 1;
                stats.stall_cycles = stats.stall_cycles.saturating_add(extra_cycles);
                return Ok(spent.saturating_add(clean_cycles).saturating_add(extra_cycles));
            }
            Some(TransferFault::EccSingle) => {
                stats.ecc_single += 1;
                stats.retries += 1;
                last_kind = FaultKind::EccSingle;
                // The corrupted transfer completed (scrub detected it at
                // the end), then the driver backs off and replays.
                let wasted = clean_cycles.saturating_add(retry.backoff_cycles(attempt));
                stats.recovery_cycles = stats.recovery_cycles.saturating_add(wasted);
                spent = spent.saturating_add(wasted);
            }
            Some(TransferFault::Timeout) => {
                stats.watchdog_trips += 1;
                stats.retries += 1;
                last_kind = FaultKind::AxiTimeout;
                // The watchdog waits its full budget before declaring the
                // transfer hung, then the driver backs off and replays.
                let wasted = watchdog.timeout_cycles.saturating_add(retry.backoff_cycles(attempt));
                stats.recovery_cycles = stats.recovery_cycles.saturating_add(wasted);
                spent = spent.saturating_add(wasted);
            }
            Some(TransferFault::EccDouble) => {
                stats.ecc_double += 1;
                return Err((FaultKind::EccDouble, spent.saturating_add(clean_cycles)));
            }
        }
    }
    Err((last_kind, spent))
}

impl core::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ecc1 {}  ecc2 {}  stalls {}  watchdog {}  retries {}",
            self.ecc_single, self.ecc_double, self.stalls, self.watchdog_trips, self.retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = RetryPolicy { max_attempts: 8, base_backoff_cycles: 100, multiplier: 2 };
        assert_eq!(p.backoff_cycles(0), 100);
        assert_eq!(p.backoff_cycles(1), 200);
        assert_eq!(p.backoff_cycles(3), 800);
        let huge = RetryPolicy { max_attempts: 8, base_backoff_cycles: u64::MAX, multiplier: 2 };
        assert_eq!(huge.backoff_cycles(5), u64::MAX, "must saturate, not overflow");
    }

    #[test]
    fn stats_merge_and_totals() {
        let mut a = FaultStats { ecc_single: 1, stalls: 2, retries: 1, ..FaultStats::default() };
        let b = FaultStats {
            ecc_double: 1,
            watchdog_trips: 3,
            recovery_cycles: 500,
            abort_cycles: 42,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.total_faults(), 7);
        assert!(a.any());
        assert_eq!(a.abort_cycles, 42);
        assert!(!FaultStats::default().any());
        assert!(a.to_string().contains("watchdog 3"));
    }
}
