//! Engine cycle formulas, built from the HLS scheduling algebra.
//!
//! Each engine is the same shape (Algorithms 1–4): a sequential
//! (pipeline-off) row loop over `SL`, a pipelined middle loop, and a
//! fully-unrolled inner reduction. The cycle cost of one engine *access*
//! (one tile visit) is therefore
//!
//! ```text
//! SL · (II_eff · trip + depth + row_overhead) + entry_exit
//! ```
//!
//! where `II_eff` exceeds the nominal initiation interval when the
//! runtime reduction width outgrows the synthesized unroll (e.g. SV_CE's
//! `SL`-wide reduction when `SL > SL_unroll`, or QK_CE's `d_k`-wide one
//! when few heads make `d_k` exceed `d_max/h_syn`).
//!
//! The preset values reproduce Table I; see `EXPERIMENTS.md` for the
//! calibration narrative and per-test deltas.

use protea_hls::sched::{LoopNest, LoopSpec};

/// Timing parameters fixed at synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingPreset {
    /// Initiation interval of the MHA engines' pipelined loops
    /// (`QKV_CE`, `QK_CE`, `SV_CE`).
    pub ii_mha: u32,
    /// Initiation interval of the FFN engines' pipelined loops. The FFN
    /// engines carry a read-modify-write accumulation into a BRAM-backed
    /// output buffer (`output[i][m] ← output[i][j] + sum`, Algorithm 4),
    /// which costs an extra cycle of II.
    pub ii_ffn: u32,
    /// Pipeline depth (multiplier + adder tree + writeback).
    pub depth: u32,
    /// Initiation interval of the softmax normalization divider.
    pub softmax_div_ii: u32,
    /// Initiation interval of the layer-norm normalization divider.
    pub ln_div_ii: u32,
    /// Control overhead per sequential-loop iteration.
    pub row_overhead: u32,
    /// Loop entry/exit overhead per engine access.
    pub entry_exit: u32,
}

impl TimingPreset {
    /// The Table I calibration.
    #[must_use]
    pub const fn paper() -> Self {
        Self {
            ii_mha: 1,
            ii_ffn: 2,
            depth: 16,
            softmax_div_ii: 8,
            ln_div_ii: 4,
            row_overhead: 0,
            entry_exit: 2,
        }
    }

    /// An idealized preset (II=1 everywhere, shallow pipelines): the
    /// upper-bound ablation.
    #[must_use]
    pub const fn ideal() -> Self {
        Self {
            ii_mha: 1,
            ii_ffn: 1,
            depth: 4,
            softmax_div_ii: 1,
            ln_div_ii: 1,
            row_overhead: 0,
            entry_exit: 0,
        }
    }

    fn engine(&self, rows: u64, trip: u64, ii_eff: u32) -> u64 {
        LoopNest::new(
            vec![LoopSpec::sequential(rows), LoopSpec::pipelined(trip, ii_eff)],
            self.depth,
        )
        .with_overheads(self.row_overhead, self.entry_exit)
        .cycles()
    }

    /// `QKV_CE`, one tile access: rows = `SL`, pipelined over `d_k`
    /// (runtime), tile width fully unrolled (never exceeds `TS_MHA`).
    #[must_use]
    pub fn qkv_tile_cycles(&self, sl: u64, dk: u64) -> u64 {
        self.engine(sl, dk, self.ii_mha)
    }

    /// `QK_CE`: rows = `SL`, pipelined over `SL`, reduction over `d_k`
    /// unrolled `dk_unroll` wide — II inflates by `ceil(d_k/dk_unroll)`.
    #[must_use]
    pub fn qk_cycles(&self, sl: u64, dk: u64, dk_unroll: u64) -> u64 {
        self.qk_cycles_rect(sl, sl, dk, dk_unroll)
    }

    /// Rectangular `QK_CE` (decoder cross-attention): `rows` query
    /// positions each scoring `cols` key positions.
    #[must_use]
    pub fn qk_cycles_rect(&self, rows: u64, cols: u64, dk: u64, dk_unroll: u64) -> u64 {
        let ii_eff = self.ii_mha * (dk.div_ceil(dk_unroll.max(1)) as u32).max(1);
        self.engine(rows, cols, ii_eff)
    }

    /// Softmax: per row, one exp pass (II=1, LUT) and one divide pass
    /// (serial divider, II = `softmax_div_ii`).
    #[must_use]
    pub fn softmax_cycles(&self, sl: u64) -> u64 {
        let per_row = self.engine(1, sl, 1) + self.engine(1, sl, self.softmax_div_ii);
        sl * per_row
    }

    /// `SV_CE`: rows = `SL`, pipelined over `d_k`, reduction over `SL`
    /// unrolled `sl_unroll` wide.
    #[must_use]
    pub fn sv_cycles(&self, sl: u64, dk: u64, sl_unroll: u64) -> u64 {
        self.sv_cycles_rect(sl, sl, dk, sl_unroll)
    }

    /// Rectangular `SV_CE` (decoder cross-attention): `rows` query
    /// positions, reduction over `kv_len` key/value positions.
    #[must_use]
    pub fn sv_cycles_rect(&self, rows: u64, kv_len: u64, dk: u64, sl_unroll: u64) -> u64 {
        let ii_eff = self.ii_mha * (kv_len.div_ceil(sl_unroll.max(1)) as u32).max(1);
        self.engine(rows, dk, ii_eff)
    }

    /// An FFN engine access: rows = `SL`, pipelined over the runtime tile
    /// width `w` (output columns per access).
    #[must_use]
    pub fn ffn_access_cycles(&self, sl: u64, w: u64) -> u64 {
        self.engine(sl, w, self.ii_ffn)
    }

    /// Layer norm over `rows × d`: mean pass + variance pass (II=1 each)
    /// + normalize pass (divider II).
    #[must_use]
    pub fn ln_cycles(&self, rows: u64, d: u64) -> u64 {
        let per_row = 2 * self.engine(1, d, 1) + self.engine(1, d, self.ln_div_ii);
        rows * per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qkv_paper_config_magnitude() {
        // Test #1: SL=64, dk=96, one tile ≈ 64·(96+16) ≈ 7.2k cycles.
        let t = TimingPreset::paper();
        let c = t.qkv_tile_cycles(64, 96);
        assert!((7_000..8_000).contains(&c), "qkv tile = {c}");
    }

    #[test]
    fn qk_ii_inflates_with_few_heads() {
        let t = TimingPreset::paper();
        let h8 = t.qk_cycles(64, 96, 96);
        let h4 = t.qk_cycles(64, 192, 96);
        let h2 = t.qk_cycles(64, 384, 96);
        assert!(h4 > h8);
        assert!(h2 > h4);
        // II doubles → steady-state doubles
        assert!((h4 as f64 / h8 as f64) > 1.7);
    }

    #[test]
    fn sv_ii_inflates_with_long_sequences() {
        let t = TimingPreset::paper();
        let short = t.sv_cycles(64, 96, 64);
        let long = t.sv_cycles(128, 96, 64);
        // rows double AND II doubles → ≈ 4×
        assert!(long > 3 * short, "short={short} long={long}");
    }

    #[test]
    fn ffn_access_linear_in_width() {
        let t = TimingPreset::paper();
        let a = t.ffn_access_cycles(64, 64);
        let b = t.ffn_access_cycles(64, 128);
        assert_eq!(b - a, 64 * 2 * 64); // II=2 · Δw · rows
    }

    #[test]
    fn ln_has_three_passes() {
        let t = TimingPreset::paper();
        let c = t.ln_cycles(64, 768);
        // ≈ 64 · (768 + 768 + 4·768) = 64·4608 plus depths
        let floor = 64 * 6 * 768;
        assert!(c >= floor && c < floor + 64 * 200, "ln = {c}");
    }

    #[test]
    fn ideal_preset_is_faster_everywhere() {
        let p = TimingPreset::paper();
        let i = TimingPreset::ideal();
        assert!(i.qkv_tile_cycles(64, 96) < p.qkv_tile_cycles(64, 96));
        assert!(i.ffn_access_cycles(64, 128) < p.ffn_access_cycles(64, 128));
        assert!(i.softmax_cycles(64) < p.softmax_cycles(64));
        assert!(i.ln_cycles(64, 768) < p.ln_cycles(64, 768));
    }

    #[test]
    fn zero_rows_costs_entry_exit_only() {
        let t = TimingPreset::paper();
        assert!(t.qkv_tile_cycles(0, 96) <= u64::from(t.entry_exit));
    }
}
