//! The assembled accelerator: functional + timing co-simulation.

use crate::backend::{Backend, PackedEncoder};
use crate::engines::ffn::{FfnEngine, FfnStage};
use crate::engines::ln::LnEngine;
use crate::engines::qk::QkEngine;
use crate::engines::qkv::QkvEngine;
use crate::engines::softmax::SoftmaxEngine;
use crate::engines::sv::SvEngine;
use crate::engines::{fused_projection, fused_projection_act, Access};
use crate::error::CoreError;
use crate::fault::{FaultStats, FaultStream, RetryPolicy, Watchdog};
use crate::pipeline::{FaultPlan, RunPlan};
use crate::registers::{RegisterError, RuntimeConfig};
use crate::report::CycleReport;
use crate::synthesis::{SynthesisConfig, SynthesizedDesign};
use protea_fixed::activation::ActivationLut;
use protea_fixed::Requantizer;
use protea_hwsim::Cycles;
use protea_model::quantized::LogitRequant;
use protea_model::QuantizedEncoder;
use protea_platform::FpgaDevice;
use protea_tensor::{matmul_i8_packed_epilogue, Matrix, PackedWeights};
use std::sync::OnceLock;

/// The full ProTEA instance: one synthesized design, a runtime register
/// file, and (once loaded) the model weights.
#[derive(Debug, Clone)]
pub struct Accelerator {
    design: SynthesizedDesign,
    runtime: RuntimeConfig,
    weights: Option<QuantizedEncoder>,
    /// FNV digest of the loaded weight image, sealed at
    /// [`try_load_weights`](Self::try_load_weights) and re-checked by
    /// [`verify_weights`](Self::verify_weights) — the detection layer
    /// for silent corruption of resident weights, which ABFT checksums
    /// structurally cannot see.
    weight_digest: Option<u64>,
    /// The weight image repacked for the fast kernel, built lazily on
    /// the first fast-path run after a weight load. Timing-only users
    /// (the fleet's default serving mode reloads cards constantly and
    /// never touches the functional datapath) therefore never pay for
    /// packing.
    packed: OnceLock<PackedEncoder>,
    /// Which functional datapath implementation runs the model.
    backend: Backend,
    /// When `false`, the double-buffer overlap is disabled (loads and
    /// compute serialize) — the ablation knob for the paper's overlap
    /// claim.
    overlap_enabled: bool,
}

/// The result of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The encoder stack's output (`SL × d_model`, activation format).
    pub output: Matrix<i8>,
    /// Cycle accounting.
    pub report: CycleReport,
    /// Latency in milliseconds at the synthesized clock.
    pub latency_ms: f64,
    /// Throughput in GOPS (standard op-count convention).
    pub gops: f64,
}

impl Accelerator {
    /// Synthesize `config` onto `device` and power on with a default
    /// register file (the paper's test #1 shape, clamped to capacity).
    ///
    /// # Errors
    /// [`CoreError::Infeasible`] if the design does not fit the device.
    pub fn try_new(config: SynthesisConfig, device: &FpgaDevice) -> Result<Self, CoreError> {
        let design = config.synthesize(device);
        if !design.feasible {
            return Err(CoreError::Infeasible {
                device: device.name.to_string(),
                resources: design.resources.to_string(),
            });
        }
        let runtime = RuntimeConfig {
            heads: config.heads,
            layers: 12,
            d_model: config.d_max,
            seq_len: 64.min(config.sl_max),
        };
        Ok(Self {
            design,
            runtime,
            weights: None,
            weight_digest: None,
            packed: OnceLock::new(),
            backend: Backend::from_env(),
            overlap_enabled: true,
        })
    }

    /// The synthesized design (resources, Fmax).
    #[must_use]
    pub fn design(&self) -> &SynthesizedDesign {
        &self.design
    }

    /// The current register file.
    #[must_use]
    pub fn runtime(&self) -> &RuntimeConfig {
        &self.runtime
    }

    /// The loaded weights, if any.
    #[must_use]
    pub fn weights(&self) -> Option<&QuantizedEncoder> {
        self.weights.as_ref()
    }

    /// Reprogram the runtime registers — **no resynthesis**. Fails if the
    /// request exceeds the synthesized capacity, exactly as the real
    /// controller rejects out-of-range AXI-lite writes.
    pub fn program(&mut self, runtime: RuntimeConfig) -> Result<(), RegisterError> {
        runtime.validate(&self.design.config)?;
        self.runtime = runtime;
        Ok(())
    }

    /// Reprogram through the AXI-Lite bus functional model: the word
    /// writes go through address decoding and per-write validation, and
    /// the register file only changes if every transfer returns `OKAY`.
    pub fn program_through_bus(
        &mut self,
        target: RuntimeConfig,
    ) -> Result<Vec<crate::bus::BusResponse>, RegisterError> {
        let mut bus = crate::bus::AxiLiteBus::new(self.design.config);
        let responses = bus.program(target);
        if responses.iter().all(|&r| r == crate::bus::BusResponse::Okay) {
            self.program(bus.config())?;
            Ok(responses)
        } else {
            // surface the underlying validation error
            target.validate(&self.design.config)?;
            Ok(responses)
        }
    }

    /// Load quantized weights (the DDR-resident model image), checking
    /// them against the programmed register file.
    ///
    /// # Errors
    /// [`CoreError::WeightShape`] if the image's `d_model` differs from
    /// the programmed register or the image has fewer layers than
    /// programmed.
    pub fn try_load_weights(&mut self, weights: QuantizedEncoder) -> Result<(), CoreError> {
        if weights.config.d_model != self.runtime.d_model
            || weights.config.layers < self.runtime.layers
        {
            return Err(CoreError::WeightShape {
                weights_d_model: weights.config.d_model,
                programmed_d_model: self.runtime.d_model,
                weights_layers: weights.config.layers,
                programmed_layers: self.runtime.layers,
            });
        }
        self.packed = OnceLock::new();
        self.weight_digest = Some(crate::integrity::weight_digest(&weights));
        self.weights = Some(weights);
        Ok(())
    }

    /// The FNV digest sealed over the loaded weight image, if any.
    #[must_use]
    pub fn weight_digest(&self) -> Option<u64> {
        self.weight_digest
    }

    /// Recompute the weight digest and compare it against the value
    /// sealed at load time, returning the verified digest. Called at
    /// load, after reprogramming, and from the serving layer's periodic
    /// scrub — the detection rung for *persistent* silent corruption
    /// that ABFT checksums cannot see.
    ///
    /// # Errors
    /// [`CoreError::WeightsNotLoaded`] if no image is resident;
    /// [`CoreError::Integrity`] if the recomputed digest disagrees with
    /// the sealed one (the image is untrusted — reload it).
    pub fn verify_weights(&self) -> Result<u64, CoreError> {
        let weights = self.weights.as_ref().ok_or(CoreError::WeightsNotLoaded)?;
        let sealed = self.weight_digest.ok_or(CoreError::WeightsNotLoaded)?;
        let observed = crate::integrity::weight_digest(weights);
        if observed == sealed {
            Ok(sealed)
        } else {
            Err(CoreError::Integrity {
                context: format!(
                    "weight digest mismatch: sealed {sealed:016x}, resident {observed:016x}"
                ),
            })
        }
    }

    /// Disable/enable load-compute overlap (ablation).
    pub fn set_overlap(&mut self, enabled: bool) {
        self.overlap_enabled = enabled;
    }

    /// Select the functional datapath implementation. Both backends
    /// produce byte-identical outputs; [`Backend::Fast`] is the default
    /// (override with `PROTEA_BACKEND=reference`).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The active functional backend.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Whether load/compute overlap is enabled (see
    /// [`set_overlap`](Self::set_overlap)).
    #[must_use]
    pub fn overlap_enabled(&self) -> bool {
        self.overlap_enabled
    }

    /// Run the encoder on a quantized input. Produces both the bit-exact
    /// output and the cycle report. Shim over
    /// [`execute`](Self::execute).
    ///
    /// # Errors
    /// [`CoreError::WeightsNotLoaded`] before any successful
    /// [`try_load_weights`](Self::try_load_weights);
    /// [`CoreError::InputShape`] if `x` is not `SL × d_model` per the
    /// register file.
    pub fn try_run(&self, x: &Matrix<i8>) -> Result<RunResult, CoreError> {
        let (outcome, _) = self.execute(RunPlan::functional(std::slice::from_ref(x)));
        Ok(outcome?.into_run_result())
    }

    /// Panicking form of [`try_run`](Self::try_run).
    ///
    /// # Panics
    /// Panics if weights are not loaded or the input shape mismatches the
    /// register file.
    #[must_use]
    pub fn run(&self, x: &Matrix<i8>) -> RunResult {
        match self.try_run(x) {
            Ok(r) => r,
            Err(CoreError::WeightsNotLoaded) => panic!("load_weights before run"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Timing only (no data needed): what Table I measures. Shim over
    /// [`execute`](Self::execute).
    #[must_use]
    pub fn timing_report(&self) -> CycleReport {
        let (outcome, _) = self.execute(RunPlan::timing(1));
        outcome.expect("fault-free timing cannot fail").report
    }

    /// The nine engine phases of one encoder layer, in execution order,
    /// each with its tile-access plan under the current register file.
    pub(crate) fn phase_plans(&self) -> [(&'static str, Vec<Access>); 9] {
        let syn = &self.design.config;
        let rt = &self.runtime;
        [
            ("QKV_CE", QkvEngine::plan(rt, syn)),
            ("QK_CE", QkEngine::plan(rt, syn)),
            ("Softmax", SoftmaxEngine::plan(rt, syn)),
            ("SV_CE", SvEngine::plan(rt, syn)),
            ("FFN1_CE", FfnEngine::plan(FfnStage::Ffn1, rt, syn)),
            ("AddNorm1", LnEngine::plan(rt, syn)),
            ("FFN2_CE", FfnEngine::plan(FfnStage::Ffn2, rt, syn)),
            ("FFN3_CE", FfnEngine::plan(FfnStage::Ffn3, rt, syn)),
            ("AddNorm2", LnEngine::plan(rt, syn)),
        ]
    }

    /// Timing for a **batch** of `batch` sequences processed
    /// weight-stationary: each engine access computes all `batch`
    /// sequences' rows against the resident tile before the next tile
    /// streams in, amortizing every weight load `batch`-fold. Throughput
    /// mode for offline inference; `batch = 1` reduces exactly to
    /// [`timing_report`](Self::timing_report).
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn timing_report_batched(&self, batch: usize) -> CycleReport {
        let (outcome, _) = self.execute(RunPlan::timing(batch));
        outcome.expect("fault-free timing cannot fail").report
    }

    /// Batched timing under **fault injection**: the same schedule as
    /// [`timing_report_batched`](Self::timing_report_batched), but every
    /// tile load draws from `stream` and the driver's watchdog/retry
    /// machinery responds:
    ///
    /// * an AXI stall extends that load by the stalled cycles;
    /// * a correctable (single-bit) ECC event scrubs and replays the
    ///   transfer after exponential backoff;
    /// * a hung transfer costs `watchdog.timeout_cycles` to detect, then
    ///   replays like an ECC event;
    /// * a double-bit ECC event — or a transfer whose retry budget is
    ///   exhausted — aborts the run with
    ///   [`CoreError::Fault`](crate::error::CoreError::Fault).
    ///
    /// Layers are priced individually (faults land in specific layers),
    /// so with a zero-rate stream the result equals
    /// `timing_report_batched` exactly. Returns the per-class
    /// [`FaultStats`] alongside the outcome; on abort,
    /// `stats.abort_cycles` records how many cycles into the run the
    /// fatal fault was detected, so a serving layer can price how long
    /// the card was occupied before failing over.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn timing_report_faulty(
        &self,
        batch: usize,
        stream: &mut FaultStream,
        watchdog: Watchdog,
        retry: RetryPolicy,
        now_ns: u64,
    ) -> (Result<CycleReport, CoreError>, FaultStats) {
        let faults = FaultPlan { stream, watchdog, retry, now_ns };
        let (outcome, stats) = self.execute(RunPlan::timing(batch).with_faults(faults));
        (outcome.map(|o| o.report), stats)
    }

    /// Run a batch functionally (each sequence independent) with the
    /// batched timing. Outputs equal per-sequence [`try_run`](Self::try_run)
    /// outputs exactly.
    ///
    /// # Errors
    /// [`CoreError::EmptyBatch`] for a zero-length batch,
    /// [`CoreError::WeightsNotLoaded`] before weights are loaded, and
    /// [`CoreError::InputShape`] if any sequence mismatches the register
    /// file.
    pub fn try_run_batch(
        &self,
        xs: &[Matrix<i8>],
    ) -> Result<(Vec<Matrix<i8>>, CycleReport), CoreError> {
        let (outcome, _) = self.execute(RunPlan::functional(xs));
        outcome.map(|o| (o.outputs, o.report))
    }

    /// Panicking form of [`try_run_batch`](Self::try_run_batch).
    ///
    /// # Panics
    /// Panics on an empty batch, missing weights, or a shape mismatch.
    #[must_use]
    pub fn run_batch(&self, xs: &[Matrix<i8>]) -> (Vec<Matrix<i8>>, CycleReport) {
        match self.try_run_batch(xs) {
            Ok(r) => r,
            Err(CoreError::WeightsNotLoaded) => panic!("load_weights before run"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Built-in self-test (the BIST a deployment runs after loading
    /// weights): push a deterministic pattern through the datapath and
    /// compare byte-for-byte against the golden software model. Returns
    /// `Ok(())` or the index of the first mismatching byte.
    ///
    /// # Panics
    /// Panics if weights are not loaded.
    pub fn self_test(&self) -> Result<(), usize> {
        let weights = self.weights.as_ref().expect("load_weights before self_test");
        let x = Matrix::from_fn(self.runtime.seq_len, self.runtime.d_model, |r, c| {
            (((r * 131 + c * 31 + 17) % 251) as i64 - 125) as i8
        });
        let hw = self.forward_functional(&x, weights);
        let sw = {
            // The golden model asserts its own config's SL; run layer by
            // layer to honour the programmed layer count and shape.
            let mut h = x.clone();
            for layer in weights.layers.iter().take(self.runtime.layers) {
                h = weights.forward_layer(&h, layer).out;
            }
            h
        };
        hw.as_slice().iter().zip(sw.as_slice()).position(|(a, b)| a != b).map_or(Ok(()), Err)
    }

    /// Steady-state sequence interval under inter-sequence **dataflow
    /// pipelining**: with every engine double-buffered on its activation
    /// interfaces, sequence *k+1* may occupy an engine as soon as
    /// sequence *k* releases it, so sustained throughput is set by the
    /// busiest engine's total per-sequence occupancy, not by the
    /// end-to-end latency. Returns `(interval_cycles, bottleneck_name)`;
    /// latency per sequence is unchanged.
    #[must_use]
    pub fn pipelined_interval(&self) -> (Cycles, &'static str) {
        let report = self.timing_report();
        report
            .phases
            .iter()
            .map(|p| (p.cycles, p.name))
            .max_by_key(|&(c, _)| c)
            .expect("at least one phase")
    }

    /// The bit-exact functional path. Dispatches on the active
    /// [`Backend`]; both implementations return the same bytes for any
    /// input (integer accumulation is permutation-invariant), so the
    /// choice affects wall-clock only.
    pub(crate) fn forward_functional(
        &self,
        x: &Matrix<i8>,
        weights: &QuantizedEncoder,
    ) -> Matrix<i8> {
        match self.backend {
            Backend::Fast => {
                let packed = self.packed.get_or_init(|| PackedEncoder::pack(weights));
                self.forward_fast(x, weights, packed)
            }
            Backend::Reference => self.forward_reference(x, weights),
        }
    }

    /// Fast functional path: every projection and attention GEMM goes
    /// through the runtime-dispatched packed microkernel
    /// (`PROTEA_KERNEL` selects the ISA) with its requantization fused
    /// into the store loop — the separate i32→i8 pass over each
    /// materialized accumulator matrix is gone. Projections parallelize
    /// across column panels *inside* the GEMM; attention heads fan out
    /// across threads on top. The narrowing stages are derived from the
    /// same definitions as the reference path ([`LogitRequant`],
    /// `projection_requantizer`, the activation LUT), and every kernel
    /// reproduces `matmul_i8_i32`'s accumulators exactly, so the two
    /// paths cannot diverge — `tests/backend_equiv.rs` pins this across
    /// every dispatchable ISA.
    fn forward_fast(
        &self,
        x: &Matrix<i8>,
        weights: &QuantizedEncoder,
        packed: &PackedEncoder,
    ) -> Matrix<i8> {
        let rt = &self.runtime;
        let s = &weights.schedule;
        let softmax = SoftmaxEngine::new(s);
        let act = ActivationLut::new(weights.config.activation, s.act_fmt);
        let sl = rt.seq_len;
        let dk = rt.dk();
        let cfg = rt.to_model_config();
        let logit_rq = LogitRequant::new(&cfg, s);
        let sv_rq = Requantizer::new(
            s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(),
            s.act_fmt,
            s.rounding,
        );

        let mut h = x.clone();
        for (layer, pl) in weights.layers.iter().zip(&packed.layers).take(rt.layers) {
            // --- attention -------------------------------------------------
            let q = fused_projection(&h, &pl.wq, &layer.bq, layer.wq.fmt, s);
            let k = fused_projection(&h, &pl.wk, &layer.bk, layer.wk.fmt, s);
            let v = fused_projection(&h, &pl.wv, &layer.bv, layer.wv.fmt, s);
            let mut head_outs: Vec<Option<Matrix<i8>>> = (0..rt.heads).map(|_| None).collect();
            rayon::scope(|sc| {
                for (head, slot) in head_outs.iter_mut().enumerate() {
                    let (q, k, v, softmax) = (&q, &k, &v, &softmax);
                    let (logit_rq, sv_rq) = (&logit_rq, &sv_rq);
                    sc.spawn(move |_| {
                        let c0 = head * dk;
                        let qi = q.submatrix(0, c0, sl, dk);
                        let ki = k.submatrix(0, c0, sl, dk);
                        let vi = v.submatrix(0, c0, sl, dk);
                        // Packing `kiᵀ` column-major is `ki`'s row-major
                        // bytes — a straight copy, so Q·Kᵀ runs on the
                        // packed kernel at negligible packing cost. The
                        // logit scale/narrow runs in the store loop.
                        let logits = matmul_i8_packed_epilogue(
                            &qi,
                            &PackedWeights::from_transpose(&ki),
                            |_, a| logit_rq.apply(a),
                        );
                        let probs = softmax.compute_head(&logits);
                        // SV with its requantizer fused the same way.
                        *slot = Some(matmul_i8_packed_epilogue(
                            &probs,
                            &PackedWeights::pack(&vi),
                            |_, a| sv_rq.apply(a),
                        ));
                    });
                }
            });
            let mut sv_concat = Matrix::<i8>::zeros(sl, rt.d_model);
            for (head, svi) in head_outs.into_iter().enumerate() {
                sv_concat.write_submatrix(0, head * dk, &svi.expect("every head is computed"));
            }
            // --- FFN1 (output projection) + add&norm -----------------------
            let attn = fused_projection(&sv_concat, &pl.wo, &layer.bo, layer.wo.fmt, s);
            let x1 = LnEngine::compute(&h, &attn, &layer.ln1, s);
            // --- FFN2 (+activation, fused) and FFN3 + add&norm -------------
            let hidden = fused_projection_act(&x1, &pl.w1, &layer.b1, layer.w1.fmt, s, &act);
            let ffn_out = fused_projection(&hidden, &pl.w2, &layer.b2, layer.w2.fmt, s);
            h = LnEngine::compute(&x1, &ffn_out, &layer.ln2, s);
        }
        h
    }

    /// Reference functional path: tile-accumulated engine compute,
    /// structured exactly like the hardware's tile schedule.
    fn forward_reference(&self, x: &Matrix<i8>, weights: &QuantizedEncoder) -> Matrix<i8> {
        let syn = &self.design.config;
        let rt = &self.runtime;
        let s = &weights.schedule;
        let softmax = SoftmaxEngine::new(s);
        let act = ActivationLut::new(weights.config.activation, s.act_fmt);
        let sl = rt.seq_len;
        let dk = rt.dk();

        let mut h = x.clone();
        for layer in weights.layers.iter().take(rt.layers) {
            // --- attention -------------------------------------------------
            let (q, k, v) = QkvEngine::compute(&h, layer, rt, syn, s);
            let mut sv_concat = Matrix::<i8>::zeros(sl, rt.d_model);
            for head in 0..rt.heads {
                let c0 = head * dk;
                let qi = q.submatrix(0, c0, sl, dk);
                let ki = k.submatrix(0, c0, sl, dk);
                let vi = v.submatrix(0, c0, sl, dk);
                let logits = QkEngine::compute_head(&qi, &ki, rt, s);
                let probs = softmax.compute_head(&logits);
                let svi = SvEngine::compute_head(&probs, &vi, s);
                sv_concat.write_submatrix(0, c0, &svi);
            }
            // --- FFN1 (output projection) + add&norm -----------------------
            let attn = FfnEngine::compute(&sv_concat, &layer.wo, &layer.bo, rt, syn, s, None);
            let x1 = LnEngine::compute(&h, &attn, &layer.ln1, s);
            // --- FFN2 (+activation) and FFN3 + add&norm --------------------
            let hidden = FfnEngine::compute(&x1, &layer.w1, &layer.b1, rt, syn, s, Some(&act));
            let ffn_out = FfnEngine::compute(&hidden, &layer.w2, &layer.b2, rt, syn, s, None);
            h = LnEngine::compute(&x1, &ffn_out, &layer.ln2, s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule};

    fn small_accel() -> (Accelerator, Matrix<i8>, QuantizedEncoder) {
        let cfg = EncoderConfig::new(96, 4, 2, 8);
        let fw = EncoderWeights::random(cfg, 31);
        let qw = QuantizedEncoder::from_float(&fw, QuantSchedule::paper());
        let mut acc =
            Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
                .expect("design must fit the device");
        acc.program(RuntimeConfig::from_model(&cfg, &SynthesisConfig::paper_default()).unwrap())
            .unwrap();
        acc.try_load_weights(qw.clone()).expect("weights must match the programmed registers");
        let x = Matrix::from_fn(8, 96, |r, c| (((r * 41 + c * 13) % 200) as i32 - 100) as i8);
        (acc, x, qw)
    }

    #[test]
    fn output_matches_golden_model_bitwise() {
        let (acc, x, golden) = small_accel();
        let hw = acc.run(&x);
        let sw = golden.forward(&x);
        assert_eq!(hw.output.as_slice(), sw.as_slice(), "tiled datapath must be bit-exact");
    }

    #[test]
    fn reprogramming_without_resynthesis() {
        let (mut acc, _, _) = small_accel();
        let before_dsps = acc.design().resources.dsps;
        acc.program(RuntimeConfig { heads: 2, layers: 1, d_model: 64, seq_len: 4 }).unwrap();
        assert_eq!(acc.design().resources.dsps, before_dsps, "resources frozen");
        assert_eq!(acc.runtime().heads, 2);
    }

    #[test]
    fn over_capacity_program_rejected() {
        let (mut acc, _, _) = small_accel();
        let err = acc.program(RuntimeConfig { heads: 8, layers: 1, d_model: 4096, seq_len: 8 });
        assert!(err.is_err());
    }

    #[test]
    fn latency_linear_in_layers() {
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 4, d_model: 768, seq_len: 64 }).unwrap();
        let l4 = acc.timing_report().total.get();
        acc.program(RuntimeConfig { heads: 8, layers: 8, d_model: 768, seq_len: 64 }).unwrap();
        let l8 = acc.timing_report().total.get();
        assert_eq!(l8, 2 * l4, "Table I tests #4/#5: latency ∝ N");
    }

    #[test]
    fn overlap_beats_serial() {
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 64 }).unwrap();
        let with = acc.timing_report().total;
        acc.set_overlap(false);
        let without = acc.timing_report().total;
        assert!(with < without, "double buffering must help: {with} vs {without}");
    }

    #[test]
    fn ffn_dominates_cycle_budget() {
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 64 }).unwrap();
        let r = acc.timing_report();
        let ffn =
            r.phase_fraction("FFN1_CE") + r.phase_fraction("FFN2_CE") + r.phase_fraction("FFN3_CE");
        assert!(ffn > 0.7, "FFN fraction = {ffn:.2}");
    }

    #[test]
    fn batching_amortizes_weight_loads() {
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 32 }).unwrap();
        let single = acc.timing_report_batched(1).total.get();
        assert_eq!(single, acc.timing_report().total.get(), "batch=1 is the plain report");
        let b8 = acc.timing_report_batched(8).total.get();
        // strictly better than 8 independent runs (loads amortized)…
        assert!(b8 < 8 * single, "b8={b8} vs 8x single={}", 8 * single);
        // …and at least as much as the pure-compute lower bound
        assert!(b8 > 6 * single / 2, "sanity");
        // per-sequence latency improves with batch size; at SL=32 the
        // design is mostly compute-bound, so the saving is the unhidden
        // load fraction (~1 %) — strictly positive is the claim.
        let per_seq_1 = single as f64;
        let per_seq_8 = b8 as f64 / 8.0;
        assert!(per_seq_8 < per_seq_1 * 0.998, "per-seq {per_seq_8} vs {per_seq_1}");
    }

    #[test]
    fn dma_channel_sharing_slows_load_sensitive_workloads() {
        let cfg = RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 32 };
        let device = FpgaDevice::alveo_u55c();
        let dedicated = {
            let mut a = Accelerator::try_new(SynthesisConfig::paper_default(), &device)
                .expect("design must fit the device");
            a.program(cfg).unwrap();
            a.timing_report().total
        };
        let shared = {
            let syn = SynthesisConfig { dma_sharing: 8, ..SynthesisConfig::paper_default() };
            let mut a = Accelerator::try_new(syn, &device).expect("design must fit the device");
            a.program(cfg).unwrap();
            a.timing_report().total
        };
        assert!(shared > dedicated, "sharing 8 ways must cost: {shared} vs {dedicated}");
    }

    #[test]
    fn self_test_passes_on_healthy_hardware() {
        let (acc, _, _) = small_accel();
        assert_eq!(acc.self_test(), Ok(()));
    }

    #[test]
    fn pipelined_throughput_beats_latency_bound() {
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 64 }).unwrap();
        let report = acc.timing_report();
        let (interval, bottleneck) = acc.pipelined_interval();
        assert_eq!(bottleneck, "FFN2_CE", "FFN2 is the busiest engine");
        assert!(interval < report.total, "pipelining must beat serial");
        // FFN2 is ~55 % of the layer, so throughput ≈ 1.8× of 1/latency.
        let gain = report.total.get() as f64 / interval.get() as f64;
        assert!((1.5..2.2).contains(&gain), "pipelining gain = {gain:.2}");
    }

    #[test]
    fn run_batch_outputs_match_individual_runs() {
        let (acc, x, _) = small_accel();
        let mut x2 = x.clone();
        for v in x2.as_mut_slice() {
            *v = v.saturating_add(3);
        }
        let (outs, report) = acc.run_batch(&[x.clone(), x2.clone()]);
        assert_eq!(outs[0].as_slice(), acc.run(&x).output.as_slice());
        assert_eq!(outs[1].as_slice(), acc.run(&x2).output.as_slice());
        assert!(report.total.get() > 0);
    }

    #[test]
    fn program_through_bus_round_trips() {
        let (mut acc, _, _) = small_accel();
        let target = RuntimeConfig { heads: 3, layers: 2, d_model: 36, seq_len: 8 };
        let responses = acc.program_through_bus(target).unwrap();
        assert!(responses.iter().all(|&r| r == crate::bus::BusResponse::Okay));
        assert_eq!(*acc.runtime(), target);
        // an over-capacity target must error
        let bad = RuntimeConfig { heads: 8, layers: 1, d_model: 4096, seq_len: 8 };
        assert!(acc.program_through_bus(bad).is_err());
        assert_eq!(*acc.runtime(), target, "failed programming leaves registers intact");
    }

    #[test]
    #[should_panic(expected = "load_weights")]
    fn run_without_weights_panics() {
        let acc = Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        let x = Matrix::<i8>::zeros(64, 768);
        let _ = acc.run(&x);
    }

    #[test]
    fn try_new_reports_infeasible() {
        let err = Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::zcu102())
            .unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }), "{err:?}");
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn try_load_weights_reports_shape_mismatch() {
        let (mut acc, _, _) = small_accel();
        // registers say d_model = 96; offer a d_model = 64 image
        let wrong = QuantizedEncoder::from_float(
            &EncoderWeights::random(EncoderConfig::new(64, 4, 2, 8), 7),
            QuantSchedule::paper(),
        );
        let err = acc.try_load_weights(wrong).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::WeightShape { weights_d_model: 64, programmed_d_model: 96, .. }
            ),
            "{err:?}"
        );
        // fewer layers than programmed is the other rejection
        let shallow = QuantizedEncoder::from_float(
            &EncoderWeights::random(EncoderConfig::new(96, 4, 1, 8), 7),
            QuantSchedule::paper(),
        );
        assert!(matches!(
            acc.try_load_weights(shallow).unwrap_err(),
            CoreError::WeightShape { weights_layers: 1, programmed_layers: 2, .. }
        ));
    }

    #[test]
    fn weight_digest_sealed_at_load_and_verified() {
        let (mut acc, _, qw) = small_accel();
        let sealed = acc.weight_digest().expect("digest sealed at load");
        assert_eq!(sealed, crate::integrity::weight_digest(&qw));
        assert_eq!(acc.verify_weights(), Ok(sealed));
        // Flip one bit of the resident image behind the driver's back —
        // the silent corruption the digest exists to catch.
        let flipped = acc.weights.as_mut().unwrap().layers[0].wq.data[(0, 0)] ^ 0x01;
        acc.weights.as_mut().unwrap().layers[0].wq.data[(0, 0)] = flipped;
        match acc.verify_weights() {
            Err(CoreError::Integrity { context }) => {
                assert!(context.contains("digest mismatch"), "{context}");
            }
            other => panic!("expected Integrity, got {other:?}"),
        }
        let fresh =
            Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
                .unwrap();
        assert_eq!(fresh.weight_digest(), None);
        assert_eq!(fresh.verify_weights(), Err(CoreError::WeightsNotLoaded));
    }

    #[test]
    fn try_run_reports_missing_weights_and_bad_shape() {
        let acc = Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
            .unwrap();
        let x = Matrix::<i8>::zeros(64, 768);
        assert_eq!(acc.try_run(&x).unwrap_err(), CoreError::WeightsNotLoaded);
        let (acc, _, _) = small_accel();
        let bad = Matrix::<i8>::zeros(3, 96);
        assert!(matches!(
            acc.try_run(&bad).unwrap_err(),
            CoreError::InputShape { expected: (8, 96), got: (3, 96) }
        ));
    }

    #[test]
    fn try_run_batch_rejects_empty_and_ragged() {
        let (acc, x, _) = small_accel();
        assert_eq!(acc.try_run_batch(&[]).unwrap_err(), CoreError::EmptyBatch);
        let bad = Matrix::<i8>::zeros(4, 96);
        assert!(matches!(acc.try_run_batch(&[x, bad]).unwrap_err(), CoreError::InputShape { .. }));
    }

    #[test]
    fn faulty_timing_with_zero_rates_matches_batched_exactly() {
        use crate::fault::FaultRates;
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 4, d_model: 768, seq_len: 32 }).unwrap();
        let clean = acc.timing_report_batched(4);
        let mut quiet = FaultStream::seeded(7, 0, FaultRates::ZERO);
        let (r, stats) =
            acc.timing_report_faulty(4, &mut quiet, Watchdog::default(), RetryPolicy::default(), 0);
        let r = r.expect("zero-rate stream must never abort");
        assert_eq!(r.total, clean.total, "fault-free path must be bit-identical");
        assert_eq!(r.phases.len(), clean.phases.len());
        for (a, b) in r.phases.iter().zip(&clean.phases) {
            assert_eq!((a.name, a.cycles, a.load_stall), (b.name, b.cycles, b.load_stall));
        }
        assert!(!stats.any());
    }

    #[test]
    fn recoverable_faults_cost_cycles_and_are_counted() {
        use crate::fault::{FaultKind, FaultRates};
        let (mut acc, _, _) = small_accel();
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 32 }).unwrap();
        let clean = acc.timing_report_batched(2).total;
        // One stall, one correctable ECC, one hung transfer — all at the
        // very first tile loads of the run.
        let mut noisy = FaultStream::seeded(7, 0, FaultRates::ZERO).with_events([
            (0, FaultKind::AxiStall),
            (1, FaultKind::EccSingle),
            (2, FaultKind::AxiTimeout),
        ]);
        let wd = Watchdog { timeout_cycles: 5_000 };
        let (r, stats) = acc.timing_report_faulty(2, &mut noisy, wd, RetryPolicy::default(), 5);
        let r = r.expect("recoverable faults must not abort");
        assert!(r.total > clean, "faults must cost cycles: {} vs {clean}", r.total);
        assert_eq!(stats.stalls, 1);
        assert_eq!(stats.ecc_single, 1);
        assert_eq!(stats.watchdog_trips, 1);
        assert_eq!(stats.retries, 2);
        assert!(stats.stall_cycles > 0);
        assert!(stats.recovery_cycles >= wd.timeout_cycles, "watchdog wait must be priced");
        assert_eq!(stats.abort_cycles, 0, "completed runs record no abort position");
    }

    #[test]
    fn double_bit_ecc_aborts_with_fault_error() {
        use crate::fault::{FaultKind, FaultRates};
        let (acc, _, _) = small_accel();
        let mut lethal =
            FaultStream::seeded(7, 0, FaultRates::ZERO).with_events([(0, FaultKind::EccDouble)]);
        let (r, stats) = acc.timing_report_faulty(
            1,
            &mut lethal,
            Watchdog::default(),
            RetryPolicy::default(),
            0,
        );
        let err = r.expect_err("double-bit ECC must abort");
        assert!(
            matches!(&err, CoreError::Fault { kind: FaultKind::EccDouble, context }
                if context.contains("QKV_CE")),
            "{err:?}"
        );
        assert_eq!(stats.ecc_double, 1);
        assert!(stats.abort_cycles > 0, "abort position must be recorded");
    }

    #[test]
    fn exhausted_retries_abort() {
        use crate::fault::{FaultKind, FaultRates};
        let (acc, _, _) = small_accel();
        // Four timeouts in a row exhaust the default 4-attempt budget.
        let mut hung = FaultStream::seeded(7, 0, FaultRates::ZERO).with_events([
            (0, FaultKind::AxiTimeout),
            (1, FaultKind::AxiTimeout),
            (2, FaultKind::AxiTimeout),
            (3, FaultKind::AxiTimeout),
        ]);
        let (r, stats) =
            acc.timing_report_faulty(1, &mut hung, Watchdog::default(), RetryPolicy::default(), 5);
        let err = r.expect_err("retry exhaustion must abort");
        assert!(matches!(err, CoreError::Fault { kind: FaultKind::AxiTimeout, .. }), "{err:?}");
        assert_eq!(stats.watchdog_trips, 4);
        assert!(stats.abort_cycles >= 4 * Watchdog::default().timeout_cycles);
    }
}
