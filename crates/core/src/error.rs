//! The unified error type of the fallible public API.
//!
//! Every failure a host can trigger through the request path — a bad
//! model blob, a register write beyond the synthesized capacity, weights
//! that disagree with the programmed registers, an input of the wrong
//! shape, a design that does not fit the device — surfaces as one
//! [`CoreError`]. The `From` impls let `?` lift the layer-specific
//! errors ([`RegisterError`], [`DecodeError`], [`DriverError`]) without
//! call-site ceremony.

use crate::driver::DriverError;
use crate::registers::RegisterError;
use core::fmt;
use protea_mem::fault::FaultKind;
use protea_model::serialize::DecodeError;
use protea_model::KvCacheError;

/// Any error reachable through the accelerator's fallible API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A register write was rejected (over capacity or structurally
    /// invalid).
    Register(RegisterError),
    /// A serialized model blob failed to parse.
    Decode(DecodeError),
    /// The synthesized design does not fit the target device.
    Infeasible {
        /// Device name.
        device: String,
        /// Human-readable resource summary of the overflowing design.
        resources: String,
    },
    /// Loaded weights disagree with the programmed register file.
    WeightShape {
        /// `d_model` of the weight image.
        weights_d_model: usize,
        /// `d_model` in the register file.
        programmed_d_model: usize,
        /// Layer count of the weight image.
        weights_layers: usize,
        /// Layer count in the register file.
        programmed_layers: usize,
    },
    /// `run` was requested before any weights were loaded.
    WeightsNotLoaded,
    /// The input matrix does not match `SL × d_model`.
    InputShape {
        /// Shape the register file demands.
        expected: (usize, usize),
        /// Shape that was supplied.
        got: (usize, usize),
    },
    /// A batched call received zero sequences.
    EmptyBatch,
    /// A synthesis-time configuration is structurally invalid (zero
    /// field, non-divisor tile size, …) — caught by
    /// [`SynthesisConfigBuilder::build`](crate::synthesis::SynthesisConfigBuilder::build).
    InvalidConfig(String),
    /// A hardware fault the driver could not recover from: an
    /// uncorrectable ECC event, a transfer whose retry budget was
    /// exhausted, or a card that dropped off the bus mid-run. Emitted by
    /// the fault-injected timing path
    /// ([`Accelerator::timing_report_faulty`](crate::accelerator::Accelerator::timing_report_faulty));
    /// the layer above decides whether to fail over.
    Fault {
        /// The fault class that ended the run.
        kind: FaultKind,
        /// What the driver was doing when it gave up.
        context: String,
    },
    /// An error from the serving layer above `protea-core`, funneled
    /// into the unified error type (via `From<ServeError>` in
    /// `protea-serve`) so CLI surfaces map every failure to one exit
    /// code table.
    Serving(String),
    /// The serving layer refused admission under overload (bounded
    /// queue full, no sheddable lower-priority work). Distinct from
    /// [`CoreError::Serving`] because the correct caller response
    /// differs: an overloaded rejection is retryable elsewhere or
    /// later, a serving failure is not.
    Overloaded(String),
    /// A persisted fleet snapshot failed version negotiation or seal
    /// verification (unknown grammar version, tampered or bit-rotted
    /// `hash` trailer). Distinct from [`CoreError::Serving`] because
    /// the input *file* is untrusted: the correct caller response is
    /// to discard it, not retry or migrate it.
    SnapshotIntegrity(String),
    /// On-card data failed an integrity check: a weight image whose FNV
    /// digest no longer matches the sealed value (verified at load, at
    /// reprogram, and by periodic scrubs) or an ABFT checksum mismatch
    /// in a GEMM epilogue. Distinct from [`CoreError::Fault`] — no
    /// hardware error signal ever fired; the data is *silently* wrong
    /// and the correct response is to discard the affected results and
    /// re-image the card, not to retry the transfer.
    Integrity {
        /// What was being verified when the mismatch surfaced.
        context: String,
    },
    /// A decode step would grow a session's KV cache past the bound it
    /// was admitted with. Distinct from [`CoreError::Overloaded`]: the
    /// session itself outgrew its reservation mid-generation, so the
    /// correct caller response is to end *this* generation, not retry
    /// it elsewhere.
    KvCapacity {
        /// Positions already decoded.
        positions: usize,
        /// The cache's position bound.
        capacity: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Register(e) => write!(f, "register programming rejected: {e}"),
            CoreError::Decode(e) => write!(f, "model blob rejected: {e}"),
            CoreError::Infeasible { device, resources } => {
                write!(f, "design does not fit {device}: {resources}")
            }
            CoreError::WeightShape {
                weights_d_model,
                programmed_d_model,
                weights_layers,
                programmed_layers,
            } => write!(
                f,
                "weight image (d_model={weights_d_model}, layers={weights_layers}) \
                 incompatible with register file (d_model={programmed_d_model}, \
                 layers={programmed_layers})"
            ),
            CoreError::WeightsNotLoaded => {
                write!(f, "no weights loaded (call try_load_weights first)")
            }
            CoreError::InputShape { expected, got } => write!(
                f,
                "input shape {}×{} does not match programmed SL×d_model {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            CoreError::EmptyBatch => write!(f, "batch must contain at least one sequence"),
            CoreError::InvalidConfig(m) => write!(f, "invalid synthesis configuration: {m}"),
            CoreError::Fault { kind, context } => {
                write!(f, "unrecoverable hardware fault ({kind}): {context}")
            }
            CoreError::Serving(m) => write!(f, "serving error: {m}"),
            CoreError::Overloaded(m) => write!(f, "overloaded: {m}"),
            CoreError::SnapshotIntegrity(m) => write!(f, "snapshot rejected: {m}"),
            CoreError::Integrity { context } => {
                write!(f, "silent data corruption detected: {context}")
            }
            CoreError::KvCapacity { positions, capacity } => {
                write!(f, "KV cache full: {positions} positions decoded, capacity {capacity}")
            }
        }
    }
}

impl CoreError {
    /// The stable process exit code CLI front ends use for this error,
    /// uniform across subcommands: 2 = invalid configuration or register
    /// programming, 3 = model blob rejected, 4 = design infeasible,
    /// 5 = weight/input/batch mismatch on the request path, 6 =
    /// unrecoverable hardware fault, 7 = serving-layer rejection, 8 =
    /// overloaded (admission refused; retryable elsewhere or later),
    /// 9 = snapshot integrity failure (untrusted input file; discard),
    /// 10 = silent data corruption detected (weight digest or ABFT
    /// checksum mismatch; discard affected results and re-image),
    /// 11 = KV cache capacity exhausted mid-generation (end this
    /// session's generation; not retryable).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CoreError::Register(_) | CoreError::InvalidConfig(_) => 2,
            CoreError::Decode(_) => 3,
            CoreError::Infeasible { .. } => 4,
            CoreError::WeightShape { .. }
            | CoreError::WeightsNotLoaded
            | CoreError::InputShape { .. }
            | CoreError::EmptyBatch => 5,
            CoreError::Fault { .. } => 6,
            CoreError::Serving(_) => 7,
            CoreError::Overloaded(_) => 8,
            CoreError::SnapshotIntegrity(_) => 9,
            CoreError::Integrity { .. } => 10,
            CoreError::KvCapacity { .. } => 11,
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Register(e) => Some(e),
            CoreError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegisterError> for CoreError {
    fn from(e: RegisterError) -> Self {
        CoreError::Register(e)
    }
}

impl From<DecodeError> for CoreError {
    fn from(e: DecodeError) -> Self {
        CoreError::Decode(e)
    }
}

impl From<DriverError> for CoreError {
    fn from(e: DriverError) -> Self {
        match e {
            DriverError::Decode(d) => CoreError::Decode(d),
            DriverError::Register(r) => CoreError::Register(r),
        }
    }
}

impl From<KvCacheError> for CoreError {
    fn from(e: KvCacheError) -> Self {
        match e {
            KvCacheError::CapacityExhausted { positions, capacity } => {
                CoreError::KvCapacity { positions, capacity }
            }
            KvCacheError::RowShape { expected, got } => CoreError::InputShape { expected, got },
            KvCacheError::DimMismatch { cache, decoder } => CoreError::InvalidConfig(format!(
                "KV cache built for d_model={cache}, decoder has d_model={decoder}"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_register_error() {
        let e = RegisterError::Invalid("x".into());
        let c: CoreError = e.clone().into();
        assert_eq!(c, CoreError::Register(e));
    }

    #[test]
    fn from_driver_error_flattens() {
        let r = RegisterError::ExceedsCapacity { reg: "heads", requested: 9, max: 8 };
        let c: CoreError = DriverError::Register(r.clone()).into();
        assert_eq!(c, CoreError::Register(r));
        let d = DecodeError::BadMagic;
        let c: CoreError = DriverError::Decode(d.clone()).into();
        assert_eq!(c, CoreError::Decode(d));
    }

    #[test]
    fn display_is_informative() {
        let e = CoreError::InputShape { expected: (64, 768), got: (8, 96) };
        let s = e.to_string();
        assert!(s.contains("8×96") && s.contains("64×768"), "{s}");
        assert!(CoreError::WeightsNotLoaded.to_string().contains("try_load_weights"));
        let f = CoreError::Fault { kind: FaultKind::EccDouble, context: "FFN2 tile load".into() };
        assert!(f.to_string().contains("double-bit ECC"), "{f}");
    }

    /// One value of every variant, used by the audit tests below.
    fn every_variant() -> Vec<CoreError> {
        vec![
            CoreError::Register(RegisterError::Invalid("x".into())),
            CoreError::Decode(DecodeError::BadMagic),
            CoreError::Infeasible { device: "zcu102".into(), resources: "DSP 120%".into() },
            CoreError::WeightShape {
                weights_d_model: 64,
                programmed_d_model: 96,
                weights_layers: 1,
                programmed_layers: 2,
            },
            CoreError::WeightsNotLoaded,
            CoreError::InputShape { expected: (8, 96), got: (4, 96) },
            CoreError::EmptyBatch,
            CoreError::InvalidConfig("zero heads".into()),
            CoreError::Fault { kind: FaultKind::AxiTimeout, context: "QKV tile load".into() },
            CoreError::Serving("trace rejected".into()),
            CoreError::Overloaded("queue full (32 pending, limit 32)".into()),
            CoreError::SnapshotIntegrity("unknown snapshot version v9".into()),
            CoreError::Integrity { context: "weight digest mismatch on card 2".into() },
            CoreError::KvCapacity { positions: 64, capacity: 64 },
        ]
    }

    #[test]
    fn every_variant_has_a_nonempty_display() {
        for e in every_variant() {
            assert!(!e.to_string().trim().is_empty(), "{e:?} renders empty");
        }
    }

    #[test]
    fn exit_codes_are_stable_and_nonzero() {
        for e in every_variant() {
            assert!(e.exit_code() >= 2, "{e:?} must not collide with success/usage codes");
            assert!(e.exit_code() <= 11);
        }
        assert_eq!(
            CoreError::Fault { kind: FaultKind::CardCrash, context: String::new() }.exit_code(),
            6
        );
        assert_eq!(CoreError::Serving(String::new()).exit_code(), 7);
        assert_eq!(CoreError::Overloaded(String::new()).exit_code(), 8);
        assert_eq!(CoreError::SnapshotIntegrity(String::new()).exit_code(), 9);
        assert_eq!(CoreError::Integrity { context: String::new() }.exit_code(), 10);
        assert_eq!(CoreError::KvCapacity { positions: 64, capacity: 64 }.exit_code(), 11);
    }

    #[test]
    fn from_kv_cache_error_maps_each_variant() {
        let c: CoreError = KvCacheError::CapacityExhausted { positions: 3, capacity: 3 }.into();
        assert_eq!(c, CoreError::KvCapacity { positions: 3, capacity: 3 });
        let c: CoreError = KvCacheError::RowShape { expected: (1, 96), got: (2, 96) }.into();
        assert_eq!(c, CoreError::InputShape { expected: (1, 96), got: (2, 96) });
        let c: CoreError = KvCacheError::DimMismatch { cache: 96, decoder: 128 }.into();
        assert!(matches!(c, CoreError::InvalidConfig(m) if m.contains("96")));
    }
}
