//! The unified error type of the fallible public API.
//!
//! Every failure a host can trigger through the request path — a bad
//! model blob, a register write beyond the synthesized capacity, weights
//! that disagree with the programmed registers, an input of the wrong
//! shape, a design that does not fit the device — surfaces as one
//! [`CoreError`]. The `From` impls let `?` lift the layer-specific
//! errors ([`RegisterError`], [`DecodeError`], [`DriverError`]) without
//! call-site ceremony.

use crate::driver::DriverError;
use crate::registers::RegisterError;
use core::fmt;
use protea_model::serialize::DecodeError;

/// Any error reachable through the accelerator's fallible API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A register write was rejected (over capacity or structurally
    /// invalid).
    Register(RegisterError),
    /// A serialized model blob failed to parse.
    Decode(DecodeError),
    /// The synthesized design does not fit the target device.
    Infeasible {
        /// Device name.
        device: String,
        /// Human-readable resource summary of the overflowing design.
        resources: String,
    },
    /// Loaded weights disagree with the programmed register file.
    WeightShape {
        /// `d_model` of the weight image.
        weights_d_model: usize,
        /// `d_model` in the register file.
        programmed_d_model: usize,
        /// Layer count of the weight image.
        weights_layers: usize,
        /// Layer count in the register file.
        programmed_layers: usize,
    },
    /// `run` was requested before any weights were loaded.
    WeightsNotLoaded,
    /// The input matrix does not match `SL × d_model`.
    InputShape {
        /// Shape the register file demands.
        expected: (usize, usize),
        /// Shape that was supplied.
        got: (usize, usize),
    },
    /// A batched call received zero sequences.
    EmptyBatch,
    /// A synthesis-time configuration is structurally invalid (zero
    /// field, non-divisor tile size, …) — caught by
    /// [`SynthesisConfigBuilder::build`](crate::synthesis::SynthesisConfigBuilder::build).
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Register(e) => write!(f, "register programming rejected: {e}"),
            CoreError::Decode(e) => write!(f, "model blob rejected: {e}"),
            CoreError::Infeasible { device, resources } => {
                write!(f, "design does not fit {device}: {resources}")
            }
            CoreError::WeightShape {
                weights_d_model,
                programmed_d_model,
                weights_layers,
                programmed_layers,
            } => write!(
                f,
                "weight image (d_model={weights_d_model}, layers={weights_layers}) \
                 incompatible with register file (d_model={programmed_d_model}, \
                 layers={programmed_layers})"
            ),
            CoreError::WeightsNotLoaded => {
                write!(f, "no weights loaded (call try_load_weights first)")
            }
            CoreError::InputShape { expected, got } => write!(
                f,
                "input shape {}×{} does not match programmed SL×d_model {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            CoreError::EmptyBatch => write!(f, "batch must contain at least one sequence"),
            CoreError::InvalidConfig(m) => write!(f, "invalid synthesis configuration: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Register(e) => Some(e),
            CoreError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegisterError> for CoreError {
    fn from(e: RegisterError) -> Self {
        CoreError::Register(e)
    }
}

impl From<DecodeError> for CoreError {
    fn from(e: DecodeError) -> Self {
        CoreError::Decode(e)
    }
}

impl From<DriverError> for CoreError {
    fn from(e: DriverError) -> Self {
        match e {
            DriverError::Decode(d) => CoreError::Decode(d),
            DriverError::Register(r) => CoreError::Register(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_register_error() {
        let e = RegisterError::Invalid("x".into());
        let c: CoreError = e.clone().into();
        assert_eq!(c, CoreError::Register(e));
    }

    #[test]
    fn from_driver_error_flattens() {
        let r = RegisterError::ExceedsCapacity { reg: "heads", requested: 9, max: 8 };
        let c: CoreError = DriverError::Register(r.clone()).into();
        assert_eq!(c, CoreError::Register(r));
        let d = DecodeError::BadMagic;
        let c: CoreError = DriverError::Decode(d.clone()).into();
        assert_eq!(c, CoreError::Decode(d));
    }

    #[test]
    fn display_is_informative() {
        let e = CoreError::InputShape { expected: (64, 768), got: (8, 96) };
        let s = e.to_string();
        assert!(s.contains("8×96") && s.contains("64×768"), "{s}");
        assert!(CoreError::WeightsNotLoaded.to_string().contains("try_load_weights"));
    }
}
