//! Sparse-aware timing — what sparsity support would *actually* buy.
//!
//! Table II reasons about sparsity with `latency · (1 − s)`, which
//! implicitly assumes perfectly exploitable fine-grained sparsity. Real
//! hardware exploits sparsity at some granularity, and the achievable
//! speedup depends on *where the zeros are*:
//!
//! * **Tile skipping** — the cheapest retrofit of ProTEA's architecture:
//!   an all-zero weight tile's engine access is skipped entirely (one
//!   comparator on the DMA descriptor). Only block-structured pruning
//!   produces all-zero tiles; unstructured sparsity yields almost none.
//! * **Balanced-row reduction** — the [21]-style design point: with
//!   column-balanced pruning every PE keeps the same nonzero count, so
//!   the pipelined trip shrinks by the sparsity factor (requires index
//!   decoding hardware ProTEA does not have; modeled as the upper bound
//!   of a redesign).
//!
//! This module measures a loaded model's *actual* tile occupancy and
//! prices all three models (paper arithmetic / tile-skip / balanced),
//! so the ablation can show the gap between them.

use crate::accelerator::Accelerator;
use crate::engines::ffn::{FfnEngine, FfnStage};
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_hwsim::Cycles;
use protea_model::quantized::QuantMatrix;
use protea_tensor::TileGrid;

/// Sparsity exploitation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseMode {
    /// Skip engine accesses whose weight tile is entirely zero.
    TileSkip,
    /// Shrink every access's pipelined trip by the tile's nonzero
    /// fraction (balanced-sparsity redesign, upper bound).
    BalancedRows,
}

/// Per-stage result of the sparse timing analysis.
#[derive(Debug, Clone)]
pub struct SparsePhase {
    /// FFN stage.
    pub stage: FfnStage,
    /// Dense cycles (per layer, compute only).
    pub dense_cycles: u64,
    /// Cycles under the chosen sparse mode.
    pub sparse_cycles: u64,
    /// Fraction of weight tiles that are entirely zero.
    pub zero_tile_fraction: f64,
    /// Mean nonzero fraction across tiles.
    pub mean_occupancy: f64,
}

/// Measure tile occupancy of a weight matrix under the runtime tiling.
#[must_use]
pub fn tile_occupancy(w: &QuantMatrix, tile: usize) -> Vec<f64> {
    let grid = TileGrid::new(w.data.rows(), w.data.cols(), tile.max(1), tile.max(1));
    grid.iter()
        .map(|t| {
            let mut nz = 0usize;
            for r in t.r0..t.r0 + t.h {
                for c in t.c0..t.c0 + t.w {
                    if w.data[(r, c)] != 0 {
                        nz += 1;
                    }
                }
            }
            nz as f64 / t.area().max(1) as f64
        })
        .collect()
}

fn stage_weight(layer: &protea_model::quantized::QuantizedLayer, stage: FfnStage) -> &QuantMatrix {
    match stage {
        FfnStage::Ffn1 => &layer.wo,
        FfnStage::Ffn2 => &layer.w1,
        FfnStage::Ffn3 => &layer.w2,
    }
}

impl Accelerator {
    /// Sparse timing analysis of the loaded model's FFN stages (the
    /// engines that carry ~85 % of the cycles and all of the weight
    /// volume). Returns per-stage dense vs sparse cycles for the first
    /// layer (layers share structure under uniform pruning).
    ///
    /// # Panics
    /// Panics if weights are not loaded.
    #[must_use]
    pub fn sparse_analysis(&self, mode: SparseMode) -> Vec<SparsePhase> {
        let weights = self.weights().expect("load_weights before sparse_analysis");
        let syn = &self.design().config;
        let rt = self.runtime();
        let layer = &weights.layers[0];
        [FfnStage::Ffn1, FfnStage::Ffn2, FfnStage::Ffn3]
            .into_iter()
            .map(|stage| self.analyze_stage(stage, stage_weight(layer, stage), rt, syn, mode))
            .collect()
    }

    fn analyze_stage(
        &self,
        stage: FfnStage,
        w: &QuantMatrix,
        rt: &RuntimeConfig,
        syn: &SynthesisConfig,
        mode: SparseMode,
    ) -> SparsePhase {
        let tile = rt.ffn_tile_width(syn).max(1);
        let occupancy = tile_occupancy(w, tile);
        let trip = FfnEngine::access_trip(stage, rt, syn) as u64;
        let sl = rt.seq_len as u64;
        let per_access = syn.timing.ffn_access_cycles(sl, trip);
        // The plan's access count is frozen at synthesis; occupancy is
        // measured per geometric tile (the same count up to padding).
        let accesses = FfnEngine::access_count(stage, syn).min(occupancy.len().max(1));
        let dense = per_access * accesses as u64;
        let sparse = match mode {
            SparseMode::TileSkip => occupancy
                .iter()
                .take(accesses)
                .map(|&occ| if occ == 0.0 { 0 } else { per_access })
                .sum(),
            SparseMode::BalancedRows => occupancy
                .iter()
                .take(accesses)
                .map(|&occ| {
                    let eff_trip = ((trip as f64 * occ).ceil() as u64).max(1);
                    syn.timing.ffn_access_cycles(sl, eff_trip)
                })
                .sum(),
        };
        let zero_tiles = occupancy.iter().take(accesses).filter(|&&o| o == 0.0).count() as f64;
        SparsePhase {
            stage,
            dense_cycles: dense,
            sparse_cycles: sparse,
            zero_tile_fraction: zero_tiles / accesses.max(1) as f64,
            mean_occupancy: occupancy.iter().take(accesses).sum::<f64>() / accesses.max(1) as f64,
        }
    }

    /// Whole-model sparse-vs-dense FFN cycle totals for `mode`:
    /// `(dense, sparse)` per inference.
    #[must_use]
    pub fn sparse_speedup(&self, mode: SparseMode) -> (Cycles, Cycles) {
        let layers = self.runtime().layers as u64;
        let phases = self.sparse_analysis(mode);
        let dense: u64 = phases.iter().map(|p| p.dense_cycles).sum();
        let sparse: u64 = phases.iter().map(|p| p.sparse_cycles).sum();
        (Cycles(dense * layers), Cycles(sparse * layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::pruning::PruningScheme;
    use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};
    use protea_platform::FpgaDevice;

    fn accel_with(scheme: Option<(PruningScheme, f64)>) -> Accelerator {
        let cfg = EncoderConfig::new(768, 8, 1, 16);
        let mut w = EncoderWeights::random(cfg, 13);
        if let Some((s, frac)) = scheme {
            w.prune(s, frac);
        }
        let q = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
        let syn = SynthesisConfig::paper_default();
        let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        acc.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
        acc.try_load_weights(q).expect("weights must match the programmed registers");
        acc
    }

    #[test]
    fn dense_model_gets_no_sparse_benefit() {
        let acc = accel_with(None);
        let (dense, sparse) = acc.sparse_speedup(SparseMode::TileSkip);
        assert_eq!(dense, sparse, "no zero tiles in a dense model");
    }

    #[test]
    fn unstructured_pruning_barely_helps_tile_skip() {
        // 90 % magnitude pruning leaves almost no all-zero 128×128 tiles.
        let acc = accel_with(Some((PruningScheme::Magnitude, 0.9)));
        let (dense, sparse) = acc.sparse_speedup(SparseMode::TileSkip);
        let saving = 1.0 - sparse.get() as f64 / dense.get() as f64;
        assert!(saving < 0.1, "tile-skip saving on unstructured = {saving:.3}");
    }

    #[test]
    fn block_pruning_enables_tile_skip() {
        // Block pruning at the engine's own tile size zeroes whole tiles.
        let acc = accel_with(Some((PruningScheme::Blocks(128), 0.75)));
        let (dense, sparse) = acc.sparse_speedup(SparseMode::TileSkip);
        let saving = 1.0 - sparse.get() as f64 / dense.get() as f64;
        assert!(saving > 0.5, "tile-skip saving on block-pruned = {saving:.3}");
    }

    #[test]
    fn balanced_mode_approaches_paper_arithmetic() {
        // Column-balanced 90 % sparsity: the balanced-row model should
        // recover most of the paper's (1 − s) factor, minus pipeline
        // fill overheads.
        let acc = accel_with(Some((PruningScheme::ColumnBalanced, 0.9)));
        let (dense, sparse) = acc.sparse_speedup(SparseMode::BalancedRows);
        let ratio = sparse.get() as f64 / dense.get() as f64;
        assert!(
            (0.1..0.35).contains(&ratio),
            "balanced sparse/dense = {ratio:.3} (paper arithmetic: 0.10)"
        );
    }

    #[test]
    fn analysis_reports_occupancy() {
        let acc = accel_with(Some((PruningScheme::Magnitude, 0.5)));
        for p in acc.sparse_analysis(SparseMode::TileSkip) {
            assert!((0.45..0.55).contains(&p.mean_occupancy), "{:?}", p.stage);
            assert!(p.zero_tile_fraction < 0.01);
        }
    }
}
