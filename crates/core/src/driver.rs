//! The host-software driver — the MicroBlaze program's analogue.
//!
//! The paper's flow: models are trained in PyTorch, saved, parsed by "a
//! Python interpreter" for the hyperparameters, and the C++ driver on the
//! µB softcore "utilizes the extracted data to generate instructions and
//! control signals". Here the saved model is a `protea-model` weight
//! blob, the interpreter is [`peek_config`](protea_model::serialize::peek_config),
//! and the instruction stream is an explicit [`Instruction`] list the
//! accelerator replays.

use crate::accelerator::Accelerator;
use crate::registers::{Reg, RegisterError, RuntimeConfig};
use crate::synthesis::SynthesisConfig;
use protea_model::serialize::{decode, peek_config, DecodeError};
use protea_model::{QuantSchedule, QuantizedEncoder};

/// One controller instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// AXI-lite register write.
    WriteReg(Reg, u32),
    /// Point the weight DMA at layer `layer`'s image (`bytes` long).
    LoadWeights {
        /// Layer index.
        layer: u32,
        /// Image size in bytes.
        bytes: u64,
    },
    /// Kick the encoder pipeline.
    Start,
    /// Read back the output buffer.
    ReadOutput,
}

/// Errors the driver can surface.
#[derive(Debug)]
pub enum DriverError {
    /// The model blob failed to parse.
    Decode(DecodeError),
    /// The extracted hyperparameters exceed the synthesized capacity.
    Register(RegisterError),
}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DriverError::Decode(e) => write!(f, "model parse failed: {e}"),
            DriverError::Register(e) => write!(f, "programming rejected: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// The driver: owns the synthesis-time contract it programs against.
#[derive(Debug, Clone, Copy)]
pub struct Driver {
    synthesis: SynthesisConfig,
}

impl Driver {
    /// A driver for one synthesized design.
    #[must_use]
    pub fn new(synthesis: SynthesisConfig) -> Self {
        Self { synthesis }
    }

    /// Extract hyperparameters from a model blob and build the
    /// register + DMA instruction stream ("only minor software
    /// modifications are necessary" to switch models).
    pub fn compile(&self, blob: &[u8]) -> Result<(RuntimeConfig, Vec<Instruction>), DriverError> {
        let cfg = peek_config(blob).map_err(DriverError::Decode)?;
        let rt = RuntimeConfig::from_model(&cfg, &self.synthesis).map_err(DriverError::Register)?;
        // Register-write order matters: every intermediate state must be
        // valid on the AXI-Lite slave, so transit through heads = 1
        // (always divides) before changing dimensions, and set the final
        // head count last.
        let mut prog: Vec<Instruction> = vec![
            Instruction::WriteReg(Reg::Heads, 1),
            Instruction::WriteReg(Reg::DModel, rt.d_model as u32),
            Instruction::WriteReg(Reg::SeqLen, rt.seq_len as u32),
            Instruction::WriteReg(Reg::Layers, rt.layers as u32),
            Instruction::WriteReg(Reg::Heads, rt.heads as u32),
        ];
        // Per-layer weight image: 3 projections + output proj + 2 FFN
        // matrices + biases, at the quantized byte width.
        let d = cfg.d_model as u64;
        let f = cfg.d_ffn() as u64;
        let bytes = 4 * d * d + 2 * d * f + (3 * d + d + f + d) * 4;
        for layer in 0..cfg.layers as u32 {
            prog.push(Instruction::LoadWeights { layer, bytes });
        }
        prog.push(Instruction::Start);
        prog.push(Instruction::ReadOutput);
        Ok((rt, prog))
    }

    /// Full deployment: parse the blob, quantize the weights, program the
    /// accelerator and load the image. Returns the instruction stream it
    /// replayed.
    pub fn deploy(
        &self,
        accel: &mut Accelerator,
        blob: &[u8],
        schedule: QuantSchedule,
    ) -> Result<Vec<Instruction>, DriverError> {
        let (rt, prog) = self.compile(blob)?;
        let weights = decode(blob).map_err(DriverError::Decode)?;
        accel.program(rt).map_err(DriverError::Register)?;
        accel
            .try_load_weights(QuantizedEncoder::from_float(&weights, schedule))
            .map_err(|e| DriverError::Register(RegisterError::Invalid(e.to_string())))?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::serialize::encode;
    use protea_model::{EncoderConfig, EncoderWeights};
    use protea_platform::FpgaDevice;
    use protea_tensor::Matrix;

    fn blob(cfg: EncoderConfig, seed: u64) -> Vec<u8> {
        encode(&EncoderWeights::random(cfg, seed)).to_vec()
    }

    #[test]
    fn compile_emits_registers_then_dma_then_start() {
        let d = Driver::new(SynthesisConfig::paper_default());
        let cfg = EncoderConfig::new(256, 4, 3, 16);
        let (rt, prog) = d.compile(&blob(cfg, 5)).unwrap();
        assert_eq!(rt.d_model, 256);
        assert!(matches!(prog[0], Instruction::WriteReg(Reg::Heads, 1)));
        assert!(matches!(prog[4], Instruction::WriteReg(Reg::Heads, 4)));
        let dma_count =
            prog.iter().filter(|i| matches!(i, Instruction::LoadWeights { .. })).count();
        assert_eq!(dma_count, 3);
        assert_eq!(prog[prog.len() - 2], Instruction::Start);
        assert_eq!(prog[prog.len() - 1], Instruction::ReadOutput);
    }

    #[test]
    fn oversized_model_rejected_at_compile() {
        let d = Driver::new(SynthesisConfig::paper_default());
        let cfg = EncoderConfig::new(1536, 8, 1, 16);
        assert!(matches!(d.compile(&blob(cfg, 5)), Err(DriverError::Register(_))));
    }

    #[test]
    fn corrupt_blob_rejected() {
        let d = Driver::new(SynthesisConfig::paper_default());
        assert!(matches!(d.compile(b"garbage"), Err(DriverError::Decode(_))));
    }

    #[test]
    fn deploy_end_to_end() {
        let syn = SynthesisConfig::paper_default();
        let driver = Driver::new(syn);
        let mut accel = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        let cfg = EncoderConfig::new(96, 4, 1, 8);
        driver.deploy(&mut accel, &blob(cfg, 9), QuantSchedule::paper()).unwrap();
        let x = Matrix::from_fn(8, 96, |r, c| ((r + c) % 50) as i8);
        let out = accel.run(&x);
        assert_eq!(out.output.shape(), (8, 96));
        assert!(out.latency_ms > 0.0);
    }

    #[test]
    fn redeploy_swaps_models_without_resynthesis() {
        let syn = SynthesisConfig::paper_default();
        let driver = Driver::new(syn);
        let mut accel = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        driver
            .deploy(&mut accel, &blob(EncoderConfig::new(96, 4, 1, 8), 1), QuantSchedule::paper())
            .unwrap();
        let dsps = accel.design().resources.dsps;
        driver
            .deploy(&mut accel, &blob(EncoderConfig::new(256, 8, 2, 16), 2), QuantSchedule::paper())
            .unwrap();
        assert_eq!(accel.runtime().d_model, 256);
        assert_eq!(accel.design().resources.dsps, dsps);
    }
}
