//! An independent, fully event-driven layer scheduler — the timing
//! model's cross-check.
//!
//! [`Accelerator::timing_report`] prices each engine phase through the
//! double-buffer scheduler and sums phases. This module re-derives the
//! same schedule a second way: one flat event-driven simulation of the
//! whole layer on the `protea-hwsim` kernel, with explicit DMA-complete
//! and engine-complete events, phase handoffs as event chains, and
//! per-engine utilization tracked by the kernel's counters. Agreement
//! between the two implementations (asserted in tests, exact) is the
//! strongest internal-consistency check the timing path has: a bug in
//! either scheduler breaks the equality.

use crate::accelerator::Accelerator;
use crate::engines::ffn::{FfnEngine, FfnStage};
use crate::engines::ln::LnEngine;
use crate::engines::qk::QkEngine;
use crate::engines::qkv::QkvEngine;
use crate::engines::softmax::SoftmaxEngine;
use crate::engines::sv::SvEngine;
use crate::engines::Access;
use protea_hwsim::{Cycles, Simulator, Utilization};
use protea_mem::hbm::{bounded_transfer_cycles, ChannelShare};

/// State of the event-driven layer model.
struct LayerModel {
    /// Remaining phases, each a queue of (load, compute) accesses.
    phases: Vec<Vec<(Cycles, Cycles)>>,
    current: usize,
    /// Within the current phase: next access to load / to compute.
    next_load: usize,
    next_compute: usize,
    loads_done: usize,
    computes_done: usize,
    dma_busy: bool,
    engine_busy: bool,
    engine_util: Utilization,
    finished: bool,
}

impl LayerModel {
    fn phase_len(&self) -> usize {
        self.phases[self.current].len()
    }
}

fn advance(sim: &mut Simulator<LayerModel>, m: &mut LayerModel) {
    if m.finished {
        return;
    }
    // Phase complete → move to the next (engines are sequential).
    if m.computes_done == m.phase_len() {
        if m.current + 1 == m.phases.len() {
            m.finished = true;
            return;
        }
        m.current += 1;
        m.next_load = 0;
        m.next_compute = 0;
        m.loads_done = 0;
        m.computes_done = 0;
    }
    let phase = m.current;
    // Start the next load if the DMA is idle and double-buffering
    // permits (the buffer of access i frees when compute i-2 is done —
    // same policy as protea-mem::overlap).
    if !m.dma_busy && m.next_load < m.phases[phase].len() {
        let i = m.next_load;
        if i < 2 || m.computes_done >= i - 1 {
            m.dma_busy = true;
            m.next_load += 1;
            let dur = m.phases[phase][i].0;
            sim.schedule_in(dur, move |sim, m| {
                m.dma_busy = false;
                m.loads_done += 1;
                advance(sim, m);
            });
        }
    }
    // Start the next compute if the engine is idle and its data arrived.
    if !m.engine_busy && m.next_compute < m.phases[phase].len() && m.loads_done > m.next_compute {
        let i = m.next_compute;
        m.engine_busy = true;
        m.next_compute = i + 1;
        m.engine_util.begin(sim.now());
        let dur = m.phases[phase][i].1;
        sim.schedule_in(dur, move |sim, m| {
            m.engine_busy = false;
            m.computes_done += 1;
            m.engine_util.end(sim.now());
            advance(sim, m);
        });
    }
}

/// Event-driven total for one layer; returns `(cycles, busy_fraction)`.
#[must_use]
pub fn simulate_layer_des(accel: &Accelerator) -> (Cycles, f64) {
    let syn = &accel.design().config;
    let rt = accel.runtime();
    let freq_hz = accel.design().fmax_mhz * 1e6;
    let share =
        ChannelShare::of(&accel.design().device.memory, accel.design().config.dma_sharing, freq_hz);
    let to_cycles = |plan: Vec<Access>| -> Vec<(Cycles, Cycles)> {
        plan.into_iter()
            .map(|a| {
                (bounded_transfer_cycles(&syn.axi, &share, a.load_bytes), Cycles(a.compute_cycles))
            })
            .collect()
    };
    let phases = vec![
        to_cycles(QkvEngine::plan(rt, syn)),
        to_cycles(QkEngine::plan(rt, syn)),
        to_cycles(SoftmaxEngine::plan(rt, syn)),
        to_cycles(SvEngine::plan(rt, syn)),
        to_cycles(FfnEngine::plan(FfnStage::Ffn1, rt, syn)),
        to_cycles(LnEngine::plan(rt, syn)),
        to_cycles(FfnEngine::plan(FfnStage::Ffn2, rt, syn)),
        to_cycles(FfnEngine::plan(FfnStage::Ffn3, rt, syn)),
        to_cycles(LnEngine::plan(rt, syn)),
    ];
    let mut model = LayerModel {
        phases,
        current: 0,
        next_load: 0,
        next_compute: 0,
        loads_done: 0,
        computes_done: 0,
        dma_busy: false,
        engine_busy: false,
        engine_util: Utilization::new(),
        finished: false,
    };
    let mut sim = Simulator::new();
    sim.schedule_at(Cycles(0), advance);
    // Re-attempt progress after every event (the kernel is hookless, so
    // `advance` is re-entered from each completion callback above; the
    // initial event kicks it off).
    let total = sim.run(&mut model);
    debug_assert!(model.finished, "layer DES deadlocked");
    let busy = model.engine_util.fraction_of(total);
    (total, busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RunPlan;
    use crate::registers::RuntimeConfig;
    use crate::synthesis::SynthesisConfig;
    use protea_model::EncoderConfig;
    use protea_platform::FpgaDevice;

    fn accel_for(cfg: &EncoderConfig) -> Accelerator {
        let syn = SynthesisConfig::paper_default();
        let mut a = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        a.program(RuntimeConfig::from_model(cfg, &syn).unwrap()).unwrap();
        a
    }

    #[test]
    fn des_agrees_with_phase_summed_report_exactly() {
        for cfg in [
            EncoderConfig::paper_test1(),
            EncoderConfig::new(512, 8, 12, 64),
            EncoderConfig::new(768, 8, 12, 32),
            EncoderConfig::new(256, 4, 3, 16),
        ] {
            let a = accel_for(&cfg);
            let analytic_per_layer = a.timing_report().total.get() / cfg.layers as u64;
            let (des, _) = simulate_layer_des(&a);
            assert_eq!(
                des.get(),
                analytic_per_layer,
                "schedulers disagree for d={} SL={}",
                cfg.d_model,
                cfg.seq_len
            );

            // The unified pipeline must agree too — and turning the
            // span recorder on must not perturb a single cycle.
            let (plain, _) = a.execute(RunPlan::timing(1));
            let plain = plain.expect("fault-free timing cannot fail");
            let (traced, _) = a.execute(RunPlan::timing(1).with_trace());
            let traced = traced.expect("fault-free timing cannot fail");
            assert_eq!(
                plain.report.total, traced.report.total,
                "tracing changed the cycle total for d={} SL={}",
                cfg.d_model, cfg.seq_len
            );
            assert_eq!(plain.report.phases, traced.report.phases);
            assert_eq!(plain.report.layers, traced.report.layers);
            assert_eq!(
                plain.report.total.get() / cfg.layers as u64,
                des.get(),
                "pipeline disagrees with DES for d={} SL={}",
                cfg.d_model,
                cfg.seq_len
            );
            let trace = traced.trace.expect("traced run records spans");
            assert!(!trace.is_empty(), "traced run produced no spans");
            assert!(plain.trace.is_none(), "untraced run must not allocate a trace");
        }
    }

    #[test]
    fn engine_busy_fraction_is_high_when_compute_bound() {
        let a = accel_for(&EncoderConfig::paper_test1());
        let (_, busy) = simulate_layer_des(&a);
        assert!(busy > 0.95, "compute-bound layer busy = {busy:.3}");
    }

    #[test]
    fn busy_fraction_drops_at_short_sequences() {
        let a64 = accel_for(&EncoderConfig::paper_test1());
        let a8 = accel_for(&EncoderConfig::new(768, 8, 12, 8));
        let (_, b64) = simulate_layer_des(&a64);
        let (_, b8) = simulate_layer_des(&a8);
        assert!(b8 < b64, "short sequences expose loads: {b8:.3} vs {b64:.3}");
    }
}
