//! Cycle and performance reporting.

use core::fmt;
use protea_hwsim::{Cycles, Frequency};
use protea_model::OpCount;

/// Per-engine-phase cycle accounting, summed over all layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePhase {
    /// Engine name ("QKV_CE", "FFN2_CE", …).
    pub name: &'static str,
    /// Total cycles this phase occupied.
    pub cycles: Cycles,
    /// Cycles the engine stalled waiting on weight loads (zero for
    /// compute-only phases).
    pub load_stall: Cycles,
}

/// The timing result of one accelerator run.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// Per-phase breakdown (summed over layers).
    pub phases: Vec<EnginePhase>,
    /// Layers executed.
    pub layers: usize,
    /// Total cycles end to end.
    pub total: Cycles,
    /// The clock this design closed at.
    pub fmax_mhz: f64,
}

impl CycleReport {
    /// Wall-clock latency in milliseconds at the synthesized clock.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.total.to_millis(Frequency::mhz(self.fmax_mhz))
    }

    /// Throughput in GOPS for the given op count.
    #[must_use]
    pub fn gops(&self, ops: &OpCount) -> f64 {
        ops.gops(self.latency_ms())
    }

    /// Fraction of total cycles spent in a named phase.
    #[must_use]
    pub fn phase_fraction(&self, name: &str) -> f64 {
        if self.total.get() == 0 {
            return 0.0;
        }
        self.phases.iter().filter(|p| p.name == name).map(|p| p.cycles.get()).sum::<u64>() as f64
            / self.total.get() as f64
    }

    /// Total stall cycles across phases.
    #[must_use]
    pub fn total_stall(&self) -> Cycles {
        Cycles(self.phases.iter().map(|p| p.load_stall.get()).sum())
    }

    /// Engine-busy fraction of the total: `1 − stall/total` (1.0 for an
    /// empty report).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total.get() == 0 {
            return 1.0;
        }
        1.0 - self.total_stall().get() as f64 / self.total.get() as f64
    }

    /// Reconstruct the phase timeline: `(phase name, start, end)` spans
    /// in execution order (phases run sequentially within a layer, layers
    /// back to back).
    #[must_use]
    pub fn timeline(&self) -> Vec<(&'static str, Cycles, Cycles)> {
        let layers = self.layers.max(1) as u64;
        let mut spans = Vec::with_capacity(self.phases.len() * self.layers.max(1));
        let mut t = 0u64;
        for _layer in 0..layers {
            for p in &self.phases {
                let per_layer = p.cycles.get() / layers;
                spans.push(("", Cycles(t), Cycles(t + per_layer)));
                let idx = spans.len() - 1;
                spans[idx].0 = p.name;
                t += per_layer;
            }
        }
        spans
    }

    /// Export the run as a VCD waveform: one busy wire per engine phase
    /// and a phase-index bus, viewable in GTKWave.
    #[must_use]
    pub fn to_vcd(&self) -> String {
        let mut trace = protea_hwsim::VcdTrace::new("protea");
        let phase_bus = trace.add_signal("phase_idx", 8);
        let wires: Vec<_> =
            self.phases.iter().map(|p| trace.add_signal(&format!("{}_busy", p.name), 1)).collect();
        let name_index: std::collections::HashMap<&str, usize> =
            self.phases.iter().enumerate().map(|(i, p)| (p.name, i)).collect();
        // all idle at time zero
        for &w in &wires {
            trace.change(Cycles(0), w, 0);
        }
        for (name, start, end) in self.timeline() {
            let idx = name_index[name];
            trace.change(start, phase_bus, idx as u64);
            trace.change(start, wires[idx], 1);
            trace.change(end, wires[idx], 0);
        }
        trace.render()
    }

    /// A terminal Gantt chart of one layer's phases (`width` columns).
    #[must_use]
    pub fn gantt(&self, width: usize) -> String {
        let layers = self.layers.max(1) as u64;
        let layer_cycles = (self.total.get() / layers).max(1);
        let width = width.max(10);
        let mut out = String::new();
        let mut t = 0u64;
        for p in &self.phases {
            let per_layer = p.cycles.get() / layers;
            let start_col = (t * width as u64 / layer_cycles) as usize;
            let end_col =
                (((t + per_layer) * width as u64).div_ceil(layer_cycles) as usize).min(width);
            let bar: String =
                (0..width).map(|c| if c >= start_col && c < end_col { '█' } else { '·' }).collect();
            out.push_str(&format!(
                "{:<12} {bar} {:>5.1}%\n",
                p.name,
                per_layer as f64 / layer_cycles as f64 * 100.0
            ));
            t += per_layer;
        }
        out
    }
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CycleReport: {} cycles @ {:.1} MHz = {:.3} ms ({} layers)",
            self.total.get(),
            self.fmax_mhz,
            self.latency_ms(),
            self.layers
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<10} {:>12} cyc ({:>5.1}%)  stall {:>10}",
                p.name,
                p.cycles.get(),
                self.phase_fraction(p.name) * 100.0,
                p.load_stall.get()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CycleReport {
        CycleReport {
            phases: vec![
                EnginePhase { name: "QKV_CE", cycles: Cycles(100), load_stall: Cycles(10) },
                EnginePhase { name: "FFN2_CE", cycles: Cycles(300), load_stall: Cycles(0) },
            ],
            layers: 2,
            total: Cycles(400),
            fmax_mhz: 200.0,
        }
    }

    #[test]
    fn latency_arithmetic() {
        let r = report();
        // 400 cycles at 200 MHz = 2 µs
        assert!((r.latency_ms() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn fractions() {
        let r = report();
        assert!((r.phase_fraction("FFN2_CE") - 0.75).abs() < 1e-12);
        assert_eq!(r.phase_fraction("nonexistent"), 0.0);
        assert_eq!(r.total_stall(), Cycles(10));
    }

    #[test]
    fn display_includes_phases() {
        let text = report().to_string();
        assert!(text.contains("QKV_CE"));
        assert!(text.contains("200.0 MHz"));
    }

    #[test]
    fn timeline_is_contiguous_and_ordered() {
        let r = report();
        let spans = r.timeline();
        assert_eq!(spans.len(), 2 * 2); // phases × layers
                                        // contiguous: each span starts where the previous ended
        for pair in spans.windows(2) {
            assert_eq!(pair[0].2, pair[1].1);
        }
        assert_eq!(spans[0].1, Cycles(0));
        assert_eq!(spans.last().unwrap().2, r.total);
        // first layer's phases then the second layer's
        assert_eq!(spans[0].0, "QKV_CE");
        assert_eq!(spans[2].0, "QKV_CE");
    }

    #[test]
    fn vcd_export_is_well_formed() {
        let doc = report().to_vcd();
        assert!(doc.contains("$var wire 1"));
        assert!(doc.contains("QKV_CE_busy"));
        assert!(doc.contains("FFN2_CE_busy"));
        assert!(doc.contains("$enddefinitions"));
        assert!(doc.contains("#0"));
    }

    #[test]
    fn gantt_rows_cover_all_phases() {
        let g = report().gantt(40);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains("QKV_CE"));
        assert!(g.contains('█'));
    }
}
