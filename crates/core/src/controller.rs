//! The accelerator controller: instruction encoding and execution.
//!
//! The paper's software "utilizes the extracted data to generate
//! instructions and control signals. These signals guide the processor
//! in activating the relevant parts of the accelerator hardware." This
//! module gives those instructions a concrete binary form (one 64-bit
//! word each, the natural width for a MicroBlaze mailbox) and a
//! controller state machine that executes a program: register writes go
//! through the AXI-Lite [`bus`](crate::bus) model, weight-load
//! descriptors arm the DMA bookkeeping, and `START` is only accepted
//! once the register file and every programmed layer's weights are in
//! place — the same interlocks the RTL controller needs.

use crate::bus::{AxiLiteBus, BusResponse};
use crate::driver::Instruction;
use crate::registers::{Reg, RuntimeConfig};
use crate::synthesis::SynthesisConfig;

/// Instruction opcodes (bits 63:56 of the encoded word).
const OP_WRITE_REG: u8 = 0x01;
const OP_LOAD_WEIGHTS: u8 = 0x02;
const OP_START: u8 = 0x03;
const OP_READ_OUTPUT: u8 = 0x04;

/// Encoding/decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Register address field does not decode.
    BadRegister(u32),
    /// Field value out of range for the encoding.
    FieldOverflow,
}

impl core::fmt::Display for IsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsaError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            IsaError::BadRegister(a) => write!(f, "bad register address {a:#x}"),
            IsaError::FieldOverflow => write!(f, "instruction field overflow"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Encode one instruction to its 64-bit word.
///
/// Layout: `[63:56] opcode | [55:32] field | [31:0] immediate`.
/// `WriteReg`: field = register address, imm = value.
/// `LoadWeights`: field = layer index, imm = bytes (≤ 4 GiB per layer).
pub fn encode(instr: &Instruction) -> Result<u64, IsaError> {
    let word = |op: u8, field: u32, imm: u32| -> Result<u64, IsaError> {
        if field >= (1 << 24) {
            return Err(IsaError::FieldOverflow);
        }
        Ok((u64::from(op) << 56) | (u64::from(field) << 32) | u64::from(imm))
    };
    match instr {
        Instruction::WriteReg(reg, v) => word(OP_WRITE_REG, *reg as u32, *v),
        Instruction::LoadWeights { layer, bytes } => {
            let imm = u32::try_from(*bytes).map_err(|_| IsaError::FieldOverflow)?;
            word(OP_LOAD_WEIGHTS, *layer, imm)
        }
        Instruction::Start => word(OP_START, 0, 0),
        Instruction::ReadOutput => word(OP_READ_OUTPUT, 0, 0),
    }
}

/// Decode one 64-bit word.
pub fn decode(word: u64) -> Result<Instruction, IsaError> {
    let op = (word >> 56) as u8;
    let field = ((word >> 32) & 0xFF_FFFF) as u32;
    let imm = (word & 0xFFFF_FFFF) as u32;
    match op {
        OP_WRITE_REG => {
            let reg = match field {
                0x00 => Reg::Heads,
                0x04 => Reg::Layers,
                0x08 => Reg::DModel,
                0x0C => Reg::SeqLen,
                other => return Err(IsaError::BadRegister(other)),
            };
            Ok(Instruction::WriteReg(reg, imm))
        }
        OP_LOAD_WEIGHTS => Ok(Instruction::LoadWeights { layer: field, bytes: u64::from(imm) }),
        OP_START => Ok(Instruction::Start),
        OP_READ_OUTPUT => Ok(Instruction::ReadOutput),
        other => Err(IsaError::BadOpcode(other)),
    }
}

/// Assemble a program to its binary image.
pub fn assemble(program: &[Instruction]) -> Result<Vec<u64>, IsaError> {
    program.iter().map(encode).collect()
}

/// Execution errors the controller reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerError {
    /// A register write came back with a non-OKAY bus response.
    RegisterRejected {
        /// Which register.
        reg: &'static str,
        /// Attempted value.
        value: u32,
    },
    /// `START` issued before all programmed layers had weights loaded.
    StartBeforeWeights {
        /// Layers the register file expects.
        expected: u32,
        /// Layers with weights resident.
        loaded: u32,
    },
    /// `READ_OUTPUT` before any `START`.
    ReadBeforeStart,
    /// Malformed instruction word.
    Isa(IsaError),
}

impl core::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ControllerError::RegisterRejected { reg, value } => {
                write!(f, "register write rejected: {reg} = {value}")
            }
            ControllerError::StartBeforeWeights { expected, loaded } => {
                write!(f, "START with {loaded}/{expected} layer images loaded")
            }
            ControllerError::ReadBeforeStart => write!(f, "READ_OUTPUT before START"),
            ControllerError::Isa(e) => write!(f, "bad instruction: {e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

/// The controller state machine.
#[derive(Debug)]
pub struct Controller {
    bus: AxiLiteBus,
    layers_loaded: Vec<bool>,
    started: bool,
    /// AXI-Lite single-beat write cost (address + data + response).
    pub reg_write_cycles: u64,
    /// Instruction fetch/dispatch cost from the mailbox.
    pub dispatch_cycles: u64,
    control_cycles: u64,
}

impl Controller {
    /// A controller for one synthesized design.
    #[must_use]
    pub fn new(synthesis: SynthesisConfig) -> Self {
        Self {
            bus: AxiLiteBus::new(synthesis),
            layers_loaded: Vec::new(),
            started: false,
            reg_write_cycles: 4,
            dispatch_cycles: 2,
            control_cycles: 0,
        }
    }

    /// The register file after execution.
    #[must_use]
    pub fn config(&self) -> RuntimeConfig {
        self.bus.config()
    }

    /// Control-plane cycles spent (register writes + dispatch). This is
    /// the quantity that justifies ignoring control cost in the latency
    /// model: a full reprogram is ~30 cycles against ~10⁷ of compute.
    #[must_use]
    pub fn control_cycles(&self) -> u64 {
        self.control_cycles
    }

    /// Whether a START has been accepted.
    #[must_use]
    pub fn started(&self) -> bool {
        self.started
    }

    /// Execute one decoded instruction.
    pub fn step(&mut self, instr: &Instruction) -> Result<(), ControllerError> {
        self.control_cycles += self.dispatch_cycles;
        match instr {
            Instruction::WriteReg(reg, v) => {
                self.control_cycles += self.reg_write_cycles;
                let addr = *reg as u32;
                match self.bus.write(addr, *v) {
                    BusResponse::Okay => {
                        // resizing the model invalidates loaded weights
                        self.layers_loaded.clear();
                        self.started = false;
                        Ok(())
                    }
                    _ => Err(ControllerError::RegisterRejected {
                        reg: match reg {
                            Reg::Heads => "heads",
                            Reg::Layers => "layers",
                            Reg::DModel => "d_model",
                            Reg::SeqLen => "seq_len",
                        },
                        value: *v,
                    }),
                }
            }
            Instruction::LoadWeights { layer, .. } => {
                let idx = *layer as usize;
                if self.layers_loaded.len() <= idx {
                    self.layers_loaded.resize(idx + 1, false);
                }
                self.layers_loaded[idx] = true;
                Ok(())
            }
            Instruction::Start => {
                let expected = self.bus.config().layers as u32;
                let loaded =
                    self.layers_loaded.iter().take(expected as usize).filter(|&&l| l).count()
                        as u32;
                if loaded < expected {
                    return Err(ControllerError::StartBeforeWeights { expected, loaded });
                }
                self.started = true;
                Ok(())
            }
            Instruction::ReadOutput => {
                if !self.started {
                    return Err(ControllerError::ReadBeforeStart);
                }
                Ok(())
            }
        }
    }

    /// Execute a binary program image.
    pub fn execute_binary(&mut self, words: &[u64]) -> Result<(), ControllerError> {
        for &w in words {
            let instr = decode(w).map_err(ControllerError::Isa)?;
            self.step(&instr)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use protea_model::serialize::encode as encode_weights;
    use protea_model::{EncoderConfig, EncoderWeights};

    fn program_for(cfg: EncoderConfig) -> Vec<Instruction> {
        let blob = encode_weights(&EncoderWeights::random(cfg, 1));
        Driver::new(SynthesisConfig::paper_default()).compile(&blob).unwrap().1
    }

    #[test]
    fn encode_decode_round_trip() {
        for instr in [
            Instruction::WriteReg(Reg::Heads, 8),
            Instruction::WriteReg(Reg::DModel, 768),
            Instruction::LoadWeights { layer: 11, bytes: 7_077_888 },
            Instruction::Start,
            Instruction::ReadOutput,
        ] {
            let w = encode(&instr).unwrap();
            assert_eq!(decode(w).unwrap(), instr, "word {w:#018x}");
        }
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        for w in [0u64, u64::MAX, 0xFF00_0000_0000_0000, (0x01u64 << 56) | (0x55u64 << 32)] {
            let _ = decode(w); // Err or Ok, never panic
        }
        assert_eq!(decode(0xFF00_0000_0000_0000), Err(IsaError::BadOpcode(0xFF)));
        assert_eq!(decode((0x01u64 << 56) | (0x55u64 << 32)), Err(IsaError::BadRegister(0x55)));
    }

    #[test]
    fn full_program_executes() {
        let cfg = EncoderConfig::new(256, 4, 3, 16);
        let words = assemble(&program_for(cfg)).unwrap();
        let mut ctl = Controller::new(SynthesisConfig::paper_default());
        ctl.execute_binary(&words).unwrap();
        assert!(ctl.started());
        assert_eq!(ctl.config().d_model, 256);
        assert_eq!(ctl.config().layers, 3);
        // control plane is negligible vs compute (~10⁷ cycles)
        assert!(ctl.control_cycles() < 200, "control = {}", ctl.control_cycles());
    }

    #[test]
    fn start_interlock_requires_all_layers() {
        let cfg = EncoderConfig::new(128, 4, 2, 8);
        let prog = program_for(cfg);
        let mut ctl = Controller::new(SynthesisConfig::paper_default());
        // execute the 5 register writes + only the first layer load
        for instr in prog.iter().take(6) {
            ctl.step(instr).unwrap();
        }
        let err = ctl.step(&Instruction::Start).unwrap_err();
        assert!(matches!(err, ControllerError::StartBeforeWeights { expected: 2, loaded: 1 }));
    }

    #[test]
    fn read_before_start_rejected() {
        let mut ctl = Controller::new(SynthesisConfig::paper_default());
        assert_eq!(ctl.step(&Instruction::ReadOutput), Err(ControllerError::ReadBeforeStart));
    }

    #[test]
    fn reprogram_invalidates_weights() {
        let cfg = EncoderConfig::new(128, 4, 1, 8);
        let words = assemble(&program_for(cfg)).unwrap();
        let mut ctl = Controller::new(SynthesisConfig::paper_default());
        ctl.execute_binary(&words).unwrap();
        // shrinking the model mid-flight clears the weight-resident flags
        ctl.step(&Instruction::WriteReg(Reg::SeqLen, 4)).unwrap();
        assert!(!ctl.started());
        let err = ctl.step(&Instruction::Start).unwrap_err();
        assert!(matches!(err, ControllerError::StartBeforeWeights { .. }));
    }

    #[test]
    fn rejected_register_write_surfaces() {
        let mut ctl = Controller::new(SynthesisConfig::paper_default());
        let err = ctl.step(&Instruction::WriteReg(Reg::DModel, 4096)).unwrap_err();
        assert!(matches!(err, ControllerError::RegisterRejected { reg: "d_model", .. }));
    }

    #[test]
    fn field_overflow_checked() {
        let too_big = Instruction::LoadWeights { layer: 1 << 25, bytes: 0 };
        assert_eq!(encode(&too_big), Err(IsaError::FieldOverflow));
        let huge_bytes = Instruction::LoadWeights { layer: 0, bytes: u64::from(u32::MAX) + 1 };
        assert_eq!(encode(&huge_bytes), Err(IsaError::FieldOverflow));
    }
}
