//! Runtime-programmable registers — the paper's headline feature.
//!
//! "Each hyperparameter of TNN can be programmed during runtime up to a
//! maximum value by [the] MicroBlaze softcore processor." The maximum is
//! the synthesized capacity; this module validates register writes
//! against it the way the AXI-lite slave + controller would, and models
//! the register file as addressed 32-bit words.

use crate::synthesis::SynthesisConfig;
use core::fmt;
use protea_model::EncoderConfig;

/// Register addresses on the AXI-lite interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Reg {
    /// Number of active attention heads.
    Heads = 0x00,
    /// Number of encoder layers to run.
    Layers = 0x04,
    /// Embedding dimension.
    DModel = 0x08,
    /// Sequence length.
    SeqLen = 0x0C,
}

/// A rejected register write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// Value exceeds the synthesized capacity.
    ExceedsCapacity {
        /// Which register.
        reg: &'static str,
        /// Requested value.
        requested: u32,
        /// Synthesized maximum.
        max: u32,
    },
    /// Value is structurally invalid (zero, or heads ∤ d_model).
    Invalid(String),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::ExceedsCapacity { reg, requested, max } => {
                write!(
                    f,
                    "{reg} = {requested} exceeds synthesized capacity {max} (resynthesis required)"
                )
            }
            RegisterError::Invalid(m) => write!(f, "invalid register state: {m}"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// The live register file: the runtime model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Active attention heads (≤ synthesized head engines).
    pub heads: usize,
    /// Encoder layers to execute.
    pub layers: usize,
    /// Embedding dimension (≤ `d_max`).
    pub d_model: usize,
    /// Sequence length (≤ `sl_max`).
    pub seq_len: usize,
}

impl RuntimeConfig {
    /// Build from an [`EncoderConfig`], validating against `syn`.
    pub fn from_model(cfg: &EncoderConfig, syn: &SynthesisConfig) -> Result<Self, RegisterError> {
        let rt = Self {
            heads: cfg.heads,
            layers: cfg.layers,
            d_model: cfg.d_model,
            seq_len: cfg.seq_len,
        };
        rt.validate(syn)?;
        Ok(rt)
    }

    /// Validate against the synthesized capacity.
    pub fn validate(&self, syn: &SynthesisConfig) -> Result<(), RegisterError> {
        let check = |reg: &'static str, v: usize, max: usize| -> Result<(), RegisterError> {
            if v == 0 {
                return Err(RegisterError::Invalid(format!("{reg} must be nonzero")));
            }
            if v > max {
                return Err(RegisterError::ExceedsCapacity {
                    reg,
                    requested: v as u32,
                    max: max as u32,
                });
            }
            Ok(())
        };
        check("heads", self.heads, syn.heads)?;
        check("d_model", self.d_model, syn.d_max)?;
        check("seq_len", self.seq_len, syn.sl_max)?;
        if self.layers == 0 {
            return Err(RegisterError::Invalid("layers must be nonzero".into()));
        }
        if !self.d_model.is_multiple_of(self.heads) {
            return Err(RegisterError::Invalid(format!(
                "heads ({}) must divide d_model ({})",
                self.heads, self.d_model
            )));
        }
        Ok(())
    }

    /// Per-head dimension at this runtime configuration.
    #[must_use]
    pub fn dk(&self) -> usize {
        self.d_model / self.heads
    }

    /// Runtime MHA tile width: the tile *count* is frozen at synthesis,
    /// so the width scales with the runtime `d_model` (this is what makes
    /// Table I's latency linear in `d_model`). Never exceeds `TS_MHA`.
    #[must_use]
    pub fn mha_tile_width(&self, syn: &SynthesisConfig) -> usize {
        self.d_model.div_ceil(syn.tiles_mha())
    }

    /// Runtime FFN tile width (`d_model` over the frozen FFN tile count).
    #[must_use]
    pub fn ffn_tile_width(&self, syn: &SynthesisConfig) -> usize {
        self.d_model.div_ceil(syn.tiles_ffn())
    }

    /// Encode as (address, value) AXI-lite writes.
    #[must_use]
    pub fn register_writes(&self) -> [(Reg, u32); 4] {
        [
            (Reg::Heads, self.heads as u32),
            (Reg::Layers, self.layers as u32),
            (Reg::DModel, self.d_model as u32),
            (Reg::SeqLen, self.seq_len as u32),
        ]
    }

    /// Decode from register writes (missing registers keep `base`'s
    /// values) — what the controller does as words arrive.
    #[must_use]
    pub fn apply_writes(base: Self, writes: &[(Reg, u32)]) -> Self {
        let mut out = base;
        for &(reg, v) in writes {
            match reg {
                Reg::Heads => out.heads = v as usize,
                Reg::Layers => out.layers = v as usize,
                Reg::DModel => out.d_model = v as usize,
                Reg::SeqLen => out.seq_len = v as usize,
            }
        }
        out
    }

    /// View as a model configuration (for op counting etc.).
    #[must_use]
    pub fn to_model_config(&self) -> EncoderConfig {
        EncoderConfig::new(self.d_model, self.heads, self.layers, self.seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn() -> SynthesisConfig {
        SynthesisConfig::paper_default()
    }

    #[test]
    fn paper_test1_fits_capacity() {
        let rt = RuntimeConfig::from_model(&EncoderConfig::paper_test1(), &syn()).unwrap();
        assert_eq!(rt.dk(), 96);
        assert_eq!(rt.mha_tile_width(&syn()), 64);
        assert_eq!(rt.ffn_tile_width(&syn()), 128);
    }

    #[test]
    fn all_table1_configs_fit_one_synthesis() {
        // The paper's core claim: tests 1–9 share a single bitstream.
        for (name, cfg) in EncoderConfig::table1_tests() {
            let rt = RuntimeConfig::from_model(&cfg, &syn());
            assert!(rt.is_ok(), "{name} rejected: {:?}", rt.err());
        }
    }

    #[test]
    fn oversized_d_model_rejected() {
        let cfg = EncoderConfig::new(1024, 8, 1, 16);
        let err = RuntimeConfig::from_model(&cfg, &syn()).unwrap_err();
        assert!(matches!(err, RegisterError::ExceedsCapacity { reg: "d_model", .. }));
    }

    #[test]
    fn too_many_heads_rejected() {
        let cfg = EncoderConfig::new(768, 12, 1, 16);
        let err = RuntimeConfig::from_model(&cfg, &syn()).unwrap_err();
        assert!(matches!(err, RegisterError::ExceedsCapacity { reg: "heads", .. }));
    }

    #[test]
    fn runtime_tile_widths_scale_with_d() {
        let rt = RuntimeConfig { heads: 8, layers: 12, d_model: 512, seq_len: 64 };
        rt.validate(&syn()).unwrap();
        assert_eq!(rt.mha_tile_width(&syn()), 43); // ceil(512/12)
        assert_eq!(rt.ffn_tile_width(&syn()), 86); // ceil(512/6)
    }

    #[test]
    fn register_write_round_trip() {
        let rt = RuntimeConfig { heads: 4, layers: 6, d_model: 256, seq_len: 32 };
        let base = RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 64 };
        let back = RuntimeConfig::apply_writes(base, &rt.register_writes());
        assert_eq!(back, rt);
    }

    #[test]
    fn partial_writes_keep_base() {
        let base = RuntimeConfig { heads: 8, layers: 12, d_model: 768, seq_len: 64 };
        let out = RuntimeConfig::apply_writes(base, &[(Reg::Layers, 4)]);
        assert_eq!(out.layers, 4);
        assert_eq!(out.heads, 8);
        assert_eq!(out.d_model, 768);
    }

    #[test]
    fn indivisible_heads_rejected() {
        let rt = RuntimeConfig { heads: 5, layers: 1, d_model: 768, seq_len: 8 };
        assert!(matches!(rt.validate(&syn()), Err(RegisterError::Invalid(_))));
    }

    #[test]
    fn zero_register_rejected() {
        let rt = RuntimeConfig { heads: 8, layers: 0, d_model: 768, seq_len: 8 };
        assert!(rt.validate(&syn()).is_err());
    }
}
