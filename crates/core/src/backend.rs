//! Execution-backend selection for the functional datapath.
//!
//! The accelerator's functional model has two implementations that
//! produce **byte-identical** outputs:
//!
//! * [`Backend::Reference`] — the tile-accumulated engine path
//!   (`accumulate_tiled` + `finish_projection`), structured exactly like
//!   the hardware's tile schedule. It is the oracle: slow, obviously
//!   faithful, and the one the equivalence tests are written against.
//! * [`Backend::Fast`] — the throughput path: weights packed once at
//!   load time ([`PackedEncoder`]), every projection and attention GEMM
//!   routed through the widened-i16 packed microkernel
//!   (`protea_tensor::pack`), heads and batch items fanned out across
//!   threads. Integer accumulation is permutation-invariant, so the
//!   result is the same bytes — a contract pinned by the
//!   `backend_equiv` property tests, not an approximation.
//!
//! The default is [`Backend::Fast`]; set `PROTEA_BACKEND=reference` to
//! force the oracle (useful when bisecting a miscompare, or as the
//! control in benchmarks).

use protea_model::QuantizedEncoder;
use protea_tensor::PackedWeights;

/// Which functional datapath implementation the accelerator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Tile-accumulated engine path — the bit-exactness oracle.
    Reference,
    /// Packed-GEMM, thread-parallel path — identical bytes, much faster.
    #[default]
    Fast,
}

impl Backend {
    /// Resolve the backend from the `PROTEA_BACKEND` environment
    /// variable: `reference` (case-insensitive) selects the oracle,
    /// anything else — including unset — selects [`Backend::Fast`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("PROTEA_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => Self::Reference,
            _ => Self::Fast,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Reference => write!(f, "reference"),
            Self::Fast => write!(f, "fast"),
        }
    }
}

/// One layer's weight matrices, transposed/packed for the fast kernel.
#[derive(Debug, Clone)]
pub(crate) struct PackedLayer {
    pub wq: PackedWeights,
    pub wk: PackedWeights,
    pub wv: PackedWeights,
    pub wo: PackedWeights,
    pub w1: PackedWeights,
    pub w2: PackedWeights,
}

/// The whole encoder image packed once at `try_load_weights` — the
/// host-side analogue of the DMA engine reordering the DDR weight image
/// into BRAM-friendly strips before inference starts.
#[derive(Debug, Clone)]
pub(crate) struct PackedEncoder {
    pub layers: Vec<PackedLayer>,
}

impl PackedEncoder {
    /// Pack every projection matrix of every layer.
    #[must_use]
    pub fn pack(weights: &QuantizedEncoder) -> Self {
        let layers = weights
            .layers
            .iter()
            .map(|l| PackedLayer {
                wq: PackedWeights::pack(&l.wq.data),
                wk: PackedWeights::pack(&l.wk.data),
                wv: PackedWeights::pack(&l.wv.data),
                wo: PackedWeights::pack(&l.wo.data),
                w1: PackedWeights::pack(&l.w1.data),
                w2: PackedWeights::pack(&l.w2.data),
            })
            .collect();
        Self { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fast() {
        assert_eq!(Backend::default(), Backend::Fast);
    }

    #[test]
    fn display_round_trips_the_env_convention() {
        assert_eq!(Backend::Reference.to_string(), "reference");
        assert_eq!(Backend::Fast.to_string(), "fast");
    }
}
