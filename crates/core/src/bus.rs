//! The AXI4-Lite slave interface — the control plane.
//!
//! "The accelerator receives control signals from the processor through
//! an AXI-lite slave interface." This module is that interface as a bus
//! functional model: a word-addressed register file with AXI-style
//! responses (`OKAY` / `SLVERR` / `DECERR`), so the driver's register
//! writes go through the same address decoding and capacity checks the
//! RTL slave performs.

use crate::registers::{Reg, RuntimeConfig};
use crate::synthesis::SynthesisConfig;

/// AXI-Lite response codes (the two error kinds RTL slaves distinguish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusResponse {
    /// Transfer accepted.
    Okay,
    /// Address decoded but the slave rejected the value (capacity or
    /// validity violation).
    SlvErr,
    /// Address does not decode to any register.
    DecErr,
}

/// Status/identification read-only registers, above the config block.
const REG_STATUS: u32 = 0x10;
const REG_CAPACITY_D: u32 = 0x14;
const REG_CAPACITY_SL: u32 = 0x18;
const REG_CAPACITY_H: u32 = 0x1C;
const REG_ID: u32 = 0x20;

/// The device-ID word: "PTEA" in ASCII.
pub const PROTEA_ID: u32 = u32::from_le_bytes(*b"PTEA");

/// The AXI-Lite register file of one accelerator instance.
#[derive(Debug, Clone)]
pub struct AxiLiteBus {
    synthesis: SynthesisConfig,
    shadow: RuntimeConfig,
    busy: bool,
    writes_accepted: u64,
    writes_rejected: u64,
}

impl AxiLiteBus {
    /// A bus for a synthesized design, with the register file at the
    /// design's reset values.
    #[must_use]
    pub fn new(synthesis: SynthesisConfig) -> Self {
        Self {
            shadow: RuntimeConfig {
                heads: synthesis.heads,
                layers: 1,
                d_model: synthesis.d_max,
                seq_len: synthesis.sl_max.min(64),
            },
            synthesis,
            busy: false,
            writes_accepted: 0,
            writes_rejected: 0,
        }
    }

    /// The current (validated) register contents.
    #[must_use]
    pub fn config(&self) -> RuntimeConfig {
        self.shadow
    }

    /// Mark the accelerator busy/idle (writes are rejected while busy,
    /// as reprogramming mid-inference would corrupt the schedule).
    pub fn set_busy(&mut self, busy: bool) {
        self.busy = busy;
    }

    /// Write one word. Config writes validate the *resulting* register
    /// file against the synthesized capacity; an invalid combination
    /// leaves the registers unchanged and returns `SlvErr`.
    pub fn write(&mut self, addr: u32, value: u32) -> BusResponse {
        if self.busy {
            self.writes_rejected += 1;
            return BusResponse::SlvErr;
        }
        let reg = match addr {
            0x00 => Reg::Heads,
            0x04 => Reg::Layers,
            0x08 => Reg::DModel,
            0x0C => Reg::SeqLen,
            REG_STATUS | REG_CAPACITY_D | REG_CAPACITY_SL | REG_CAPACITY_H | REG_ID => {
                // read-only block
                self.writes_rejected += 1;
                return BusResponse::SlvErr;
            }
            _ => {
                self.writes_rejected += 1;
                return BusResponse::DecErr;
            }
        };
        let candidate = RuntimeConfig::apply_writes(self.shadow, &[(reg, value)]);
        match candidate.validate(&self.synthesis) {
            Ok(()) => {
                self.shadow = candidate;
                self.writes_accepted += 1;
                BusResponse::Okay
            }
            Err(_) => {
                self.writes_rejected += 1;
                BusResponse::SlvErr
            }
        }
    }

    /// Read one word. Unmapped addresses return `DecErr` with zero data.
    #[must_use]
    pub fn read(&self, addr: u32) -> (u32, BusResponse) {
        match addr {
            0x00 => (self.shadow.heads as u32, BusResponse::Okay),
            0x04 => (self.shadow.layers as u32, BusResponse::Okay),
            0x08 => (self.shadow.d_model as u32, BusResponse::Okay),
            0x0C => (self.shadow.seq_len as u32, BusResponse::Okay),
            REG_STATUS => (u32::from(self.busy), BusResponse::Okay),
            REG_CAPACITY_D => (self.synthesis.d_max as u32, BusResponse::Okay),
            REG_CAPACITY_SL => (self.synthesis.sl_max as u32, BusResponse::Okay),
            REG_CAPACITY_H => (self.synthesis.heads as u32, BusResponse::Okay),
            REG_ID => (PROTEA_ID, BusResponse::Okay),
            _ => (0, BusResponse::DecErr),
        }
    }

    /// Program a whole configuration atomically through individual word
    /// writes, in an order that keeps every intermediate state valid
    /// (shrink dimensions before heads grow relative to them, etc.).
    /// Returns the per-write responses.
    pub fn program(&mut self, target: RuntimeConfig) -> Vec<BusResponse> {
        // Writing heads before d_model (or vice versa) can transit an
        // invalid heads∤d_model state; the driver resolves this by first
        // dropping heads to 1 (always valid), then dims, then heads.
        let sequence = [
            (0x00u32, 1u32),
            (0x08, target.d_model as u32),
            (0x0C, target.seq_len as u32),
            (0x04, target.layers as u32),
            (0x00, target.heads as u32),
        ];
        sequence.into_iter().map(|(a, v)| self.write(a, v)).collect()
    }

    /// Accepted/rejected write counters (observability for the driver).
    #[must_use]
    pub fn write_stats(&self) -> (u64, u64) {
        (self.writes_accepted, self.writes_rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> AxiLiteBus {
        AxiLiteBus::new(SynthesisConfig::paper_default())
    }

    #[test]
    fn id_and_capacity_registers() {
        let b = bus();
        assert_eq!(b.read(REG_ID), (PROTEA_ID, BusResponse::Okay));
        assert_eq!(b.read(REG_CAPACITY_D).0, 768);
        assert_eq!(b.read(REG_CAPACITY_H).0, 8);
    }

    #[test]
    fn valid_write_updates_register() {
        let mut b = bus();
        assert_eq!(b.write(0x04, 12), BusResponse::Okay);
        assert_eq!(b.read(0x04), (12, BusResponse::Okay));
        assert_eq!(b.config().layers, 12);
    }

    #[test]
    fn over_capacity_write_rejected_and_register_unchanged() {
        let mut b = bus();
        let before = b.config();
        assert_eq!(b.write(0x08, 1024), BusResponse::SlvErr);
        assert_eq!(b.config(), before);
        assert_eq!(b.write_stats().1, 1);
    }

    #[test]
    fn unmapped_address_decerr() {
        let mut b = bus();
        assert_eq!(b.write(0x44, 1), BusResponse::DecErr);
        assert_eq!(b.read(0x44).1, BusResponse::DecErr);
    }

    #[test]
    fn read_only_block_rejects_writes() {
        let mut b = bus();
        assert_eq!(b.write(REG_ID, 0), BusResponse::SlvErr);
        assert_eq!(b.write(REG_STATUS, 0), BusResponse::SlvErr);
    }

    #[test]
    fn busy_blocks_reprogramming() {
        let mut b = bus();
        b.set_busy(true);
        assert_eq!(b.write(0x04, 4), BusResponse::SlvErr);
        assert_eq!(b.read(REG_STATUS).0, 1);
        b.set_busy(false);
        assert_eq!(b.write(0x04, 4), BusResponse::Okay);
    }

    #[test]
    fn program_sequence_avoids_invalid_transients() {
        let mut b = bus();
        // current d=768 h=8 → target d=96, h=4: writing d first with h=8
        // would be valid; target d=96 h=6... pick a case where naive
        // order fails: from (768, 8) to (36, 3)... 36 ≤ 768 ✓, 36 % 8 ≠ 0
        // so writing d first while h=8 would SlvErr; program() must
        // succeed via the h=1 transit.
        let target = RuntimeConfig { heads: 3, layers: 2, d_model: 36, seq_len: 8 };
        let responses = b.program(target);
        assert!(responses.iter().all(|&r| r == BusResponse::Okay), "{responses:?}");
        assert_eq!(b.config(), target);
    }

    #[test]
    fn invalid_head_divisor_rejected() {
        let mut b = bus();
        assert_eq!(b.write(0x00, 5), BusResponse::SlvErr); // 768 % 5 != 0
        assert_eq!(b.write(0x00, 6), BusResponse::Okay); // 768 % 6 == 0
    }
}
