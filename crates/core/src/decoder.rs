//! Decoder support on the ProTEA architecture — the paper's future work,
//! built "using the same design principles".
//!
//! A decoder layer maps onto the existing engines with two extra phases:
//! the masked self-attention reuses `QKV_CE`/`QK_CE`/softmax/`SV_CE`
//! (the mask is a comparator gating the softmax normalization — see
//! [`protea_fixed::SoftmaxUnit::forward_row_masked`]); the cross-attention
//! runs the same engines a second time with keys/values projected from
//! the encoder memory; `FFN1_CE` computes both attention output
//! projections; the FFN pair and the three add-&-norm modules are
//! unchanged. Timing uses the identical calibrated engine formulas over
//! the rectangular (target × source) iteration spaces.

use crate::accelerator::Accelerator;
use crate::engines::ffn::{FfnEngine, FfnStage};
use crate::engines::{accumulate_tiled, finish_projection, Access};
use crate::registers::{RegisterError, RuntimeConfig};
use crate::report::CycleReport;
use crate::synthesis::SynthesisConfig;
use protea_fixed::activation::ActivationLut;
use protea_fixed::{Requantizer, SoftmaxUnit};
use protea_hwsim::Cycles;
use protea_mem::kv as kv_mem;
use protea_model::decoder::{QuantizedDecoder, QuantizedDecoderLayer};
use protea_model::quantized::{add_norm, requant_logits, QuantMatrix};
use protea_model::QuantSchedule;
use protea_tensor::{matmul_i8_i32, transpose, Matrix, TileGrid};

/// Result of a decoder run.
#[derive(Debug, Clone)]
pub struct DecoderRunResult {
    /// The decoded output (`SL_tgt × d_model`).
    pub output: Matrix<i8>,
    /// Cycle accounting for the decoder stack.
    pub report: CycleReport,
    /// Latency in milliseconds at the synthesized clock.
    pub latency_ms: f64,
}

impl Accelerator {
    /// Run a full sequence-to-sequence transformer: encode `source` with
    /// the loaded encoder weights, then decode `target` against the
    /// memory. Returns the decoder output plus the combined latency.
    ///
    /// # Panics
    /// Panics if encoder weights are not loaded, or shapes/capacities
    /// mismatch.
    #[must_use]
    pub fn run_transformer(
        &self,
        transformer: &protea_model::QuantizedTransformer,
        source: &Matrix<i8>,
        target: &Matrix<i8>,
    ) -> DecoderRunResult {
        // encode (uses the accelerator's loaded weights check indirectly:
        // we run the encoder functionally from the transformer's own
        // weights to keep the pair consistent)
        let enc = &transformer.encoder;
        assert_eq!(
            source.shape(),
            (enc.config.seq_len, enc.config.d_model),
            "source must match the encoder config's SL × d_model"
        );
        let memory = enc.forward(source);
        // price the encoder pass at the source shape
        let enc_rt = RuntimeConfig {
            heads: enc.config.heads,
            layers: enc.config.layers,
            d_model: enc.config.d_model,
            seq_len: source.rows(),
        };
        enc_rt.validate(&self.design().config).expect("encoder fits capacity");
        let mut enc_accel = self.clone();
        enc_accel.program(enc_rt).expect("register write");
        let enc_report = enc_accel.timing_report();
        // decode
        let mut result = self.run_decoder(&transformer.decoder, target, &memory);
        let combined = Cycles(enc_report.total.get() + result.report.total.get());
        result.report.total = combined;
        result.latency_ms = result.report.latency_ms();
        result
    }

    /// Validate that a decoder workload fits the synthesized capacity:
    /// both sequence lengths bounded by `sl_max`, dims by the registers.
    pub fn validate_decoder(
        &self,
        dec: &QuantizedDecoder,
        src_len: usize,
    ) -> Result<(), RegisterError> {
        let syn = &self.design().config;
        if src_len == 0 || src_len > syn.sl_max {
            return Err(RegisterError::ExceedsCapacity {
                reg: "src_len",
                requested: src_len as u32,
                max: syn.sl_max as u32,
            });
        }
        let rt = RuntimeConfig {
            heads: dec.config.heads,
            layers: dec.config.layers,
            d_model: dec.config.d_model,
            seq_len: dec.config.seq_len,
        };
        rt.validate(syn)
    }

    /// Run a decoder stack: `x` is the target input (`SL_tgt × d`),
    /// `memory` the encoder output (`SL_src × d`). Functionally
    /// bit-identical to [`QuantizedDecoder::forward`]; timed with the
    /// calibrated engine formulas.
    ///
    /// # Panics
    /// Panics on shape mismatches or capacity violations.
    #[must_use]
    pub fn run_decoder(
        &self,
        dec: &QuantizedDecoder,
        x: &Matrix<i8>,
        memory: &Matrix<i8>,
    ) -> DecoderRunResult {
        self.validate_decoder(dec, memory.rows()).expect("decoder fits capacity");
        assert_eq!(x.cols(), dec.config.d_model);
        assert_eq!(memory.cols(), dec.config.d_model);

        let output = decoder_functional(self.design().config, dec, x, memory);
        let report = self.decoder_timing_report(dec, x.rows(), memory.rows());
        let latency_ms = report.latency_ms();
        DecoderRunResult { output, report, latency_ms }
    }

    /// Timing of one autoregressive decode step at `position` (0-based)
    /// with a KV cache: the engines process a single target row; the
    /// self-attention reduction spans the `position + 1` cached
    /// positions, the cross-attention spans `src_len`. Weight streaming
    /// is unchanged (every tile still loads — the dominant cost of
    /// single-token decoding, which is why generation is bandwidth-bound
    /// everywhere); the cache's own traffic — appending the new K/V row,
    /// streaming the cached rows back through the attention reductions —
    /// is charged over the same memory link.
    #[must_use]
    pub fn decode_step_timing(
        &self,
        dec: &QuantizedDecoder,
        position: usize,
        src_len: usize,
    ) -> CycleReport {
        let syn = &self.design().config;
        let cfg = &dec.config;
        let rt = RuntimeConfig {
            heads: cfg.heads,
            layers: cfg.layers,
            d_model: cfg.d_model,
            seq_len: 1,
        };
        let phase_plans = decode_step_plans(syn, &rt, (position + 1) as u64, src_len as u64, 1);
        // One decode step always overlaps loads with compute (the
        // decoder has no serial-ablation knob).
        self.price_phase_plans(&phase_plans, cfg.layers, 1, true, None)
    }

    /// Timing of a decoder stack without data.
    #[must_use]
    pub fn decoder_timing_report(
        &self,
        dec: &QuantizedDecoder,
        tgt_len: usize,
        src_len: usize,
    ) -> CycleReport {
        let syn = &self.design().config;
        let t = &syn.timing;
        let cfg = &dec.config;
        let rt = RuntimeConfig {
            heads: cfg.heads,
            layers: cfg.layers,
            d_model: cfg.d_model,
            seq_len: tgt_len,
        };
        let dk = rt.dk() as u64;
        let sl_t = tgt_len as u64;
        let sl_s = src_len as u64;

        // QKV-style projection phase: `rows` activation rows, the weight
        // strips tiled `tiles_mha` times.
        let proj_plan = |rows: u64| -> Vec<Access> {
            let tiles = syn.tiles_mha() as u64;
            let w = rt.mha_tile_width(syn) as u64;
            let h = rt.heads as u64;
            let load = h * (3 * dk * w + rows * w);
            let compute = t.qkv_tile_cycles(rows, dk);
            (0..tiles).map(|_| Access { load_bytes: load, compute_cycles: compute }).collect()
        };
        let compute_only = |cycles: u64| vec![Access { load_bytes: 0, compute_cycles: cycles }];

        let phase_plans: Vec<(&'static str, Vec<Access>)> = vec![
            ("SelfQKV", proj_plan(sl_t)),
            ("SelfQK", compute_only(t.qk_cycles_rect(sl_t, sl_t, dk, syn.dk_max() as u64))),
            ("SelfSoftmax", compute_only(t.softmax_cycles(sl_t))),
            ("SelfSV", compute_only(t.sv_cycles_rect(sl_t, sl_t, dk, syn.sl_unroll as u64))),
            ("SelfProj", FfnEngine::plan(FfnStage::Ffn1, &rt, syn)),
            ("AddNorm1", compute_only(t.ln_cycles(sl_t, rt.d_model as u64))),
            // cross attention: K/V projected from the (usually longer)
            // source stream share the engine pipeline with Q.
            ("CrossQKV", proj_plan(sl_t.max(sl_s))),
            ("CrossQK", compute_only(t.qk_cycles_rect(sl_t, sl_s, dk, syn.dk_max() as u64))),
            ("CrossSoftmax", compute_only(t.softmax_cycles(sl_t.max(sl_s)))),
            ("CrossSV", compute_only(t.sv_cycles_rect(sl_t, sl_s, dk, syn.sl_unroll as u64))),
            ("CrossProj", FfnEngine::plan(FfnStage::Ffn1, &rt, syn)),
            ("AddNorm2", compute_only(t.ln_cycles(sl_t, rt.d_model as u64))),
            ("FFN2_CE", FfnEngine::plan(FfnStage::Ffn2, &rt, syn)),
            ("FFN3_CE", FfnEngine::plan(FfnStage::Ffn3, &rt, syn)),
            ("AddNorm3", compute_only(t.ln_cycles(sl_t, rt.d_model as u64))),
        ];

        self.price_phase_plans(&phase_plans, cfg.layers, 1, true, None)
    }
}

/// QKV-style projection phase: `rows` activation rows, the weight strips
/// tiled `tiles_mha` times. Shared by every decoder plan builder.
fn proj_plan(syn: &SynthesisConfig, rt: &RuntimeConfig, rows: u64) -> Vec<Access> {
    let t = &syn.timing;
    let dk = rt.dk() as u64;
    let tiles = syn.tiles_mha() as u64;
    let w = rt.mha_tile_width(syn) as u64;
    let h = rt.heads as u64;
    let load = h * (3 * dk * w + rows * w);
    let compute = t.qkv_tile_cycles(rows, dk);
    (0..tiles).map(|_| Access { load_bytes: load, compute_cycles: compute }).collect()
}

/// Per-layer phase plans of one KV-cached decode step for `rows`
/// resident sessions in lockstep: each session contributes one target
/// row against `kv` cached self-attention positions and `sl_s` rows of
/// encoder memory. KV-cache residency is charged on the memory link —
/// every session's new K/V row is written once (`SelfQKV`) and each
/// session streams *its own* cached rows back through the attention
/// reductions, so cache traffic scales with the batch. The engines,
/// by contrast, stream the batch's rows back-to-back through a single
/// pipeline fill (the same rows-streaming model the encoder uses):
/// this is the weight-stationary amortization that makes batched
/// decode cheaper per token than single-stream. `rows = 1` reproduces
/// the historical single-session plan exactly. `rt.seq_len` must be 1.
pub(crate) fn decode_step_plans(
    syn: &SynthesisConfig,
    rt: &RuntimeConfig,
    kv: u64,
    sl_s: u64,
    rows: u64,
) -> Vec<(&'static str, Vec<Access>)> {
    let t = &syn.timing;
    let dk = rt.dk() as u64;
    let d = rt.d_model;
    let compute_only = |cycles: u64| vec![Access { load_bytes: 0, compute_cycles: cycles }];
    let kv_access = |per_session: u64, cycles: u64| {
        vec![Access {
            load_bytes: rows * kv_mem::attn_read_bytes(per_session, d),
            compute_cycles: cycles,
        }]
    };
    // FFN-style engines take their row count from the runtime's
    // sequence register; the batched step streams `rows` rows.
    let ffn_rt = RuntimeConfig { seq_len: rows as usize, ..*rt };
    let mut self_qkv = proj_plan(syn, rt, rows);
    self_qkv.push(Access { load_bytes: rows * kv_mem::step_write_bytes(d), compute_cycles: 0 });
    vec![
        ("SelfQKV", self_qkv),
        ("SelfQK", kv_access(kv, t.qk_cycles_rect(rows, kv, dk, syn.dk_max() as u64))),
        ("SelfSoftmax", compute_only((rows * t.softmax_cycles(1)).max(rows * kv))),
        ("SelfSV", kv_access(kv, t.sv_cycles_rect(rows, kv, dk, syn.sl_unroll as u64))),
        ("SelfProj", FfnEngine::plan(FfnStage::Ffn1, &ffn_rt, syn)),
        ("AddNorm1", compute_only(t.ln_cycles(rows, rt.d_model as u64))),
        ("CrossQKV", proj_plan(syn, rt, rows)), // memory K/V cached: only Q projects
        ("CrossQK", kv_access(sl_s, t.qk_cycles_rect(rows, sl_s, dk, syn.dk_max() as u64))),
        ("CrossSoftmax", compute_only((rows * t.softmax_cycles(1)).max(rows * sl_s))),
        ("CrossSV", kv_access(sl_s, t.sv_cycles_rect(rows, sl_s, dk, syn.sl_unroll as u64))),
        ("CrossProj", FfnEngine::plan(FfnStage::Ffn1, &ffn_rt, syn)),
        ("AddNorm2", compute_only(t.ln_cycles(rows, rt.d_model as u64))),
        ("FFN2_CE", FfnEngine::plan(FfnStage::Ffn2, &ffn_rt, syn)),
        ("FFN3_CE", FfnEngine::plan(FfnStage::Ffn3, &ffn_rt, syn)),
        ("AddNorm3", compute_only(t.ln_cycles(rows, rt.d_model as u64))),
    ]
}

/// Per-layer phase plans of a prefill pass: the whole `rt.seq_len`-row
/// prompt runs through the decoder stack once, *populating* the KV cache
/// — the self K/V rows of every prompt position are written out
/// (`SelfQKV`), the cross K/V of the `sl_s`-row encoder memory is
/// written once (`CrossQKV`), and the attention reductions stream the
/// freshly cached rows back. Compute shape matches the full
/// target-length decoder pass.
pub(crate) fn prefill_plans(
    syn: &SynthesisConfig,
    rt: &RuntimeConfig,
    sl_s: u64,
) -> Vec<(&'static str, Vec<Access>)> {
    let t = &syn.timing;
    let dk = rt.dk() as u64;
    let d = rt.d_model;
    let sl_t = rt.seq_len as u64;
    let compute_only = |cycles: u64| vec![Access { load_bytes: 0, compute_cycles: cycles }];
    let kv_access = |rows: u64, cycles: u64| {
        vec![Access { load_bytes: kv_mem::attn_read_bytes(rows, d), compute_cycles: cycles }]
    };
    let mut self_qkv = proj_plan(syn, rt, sl_t);
    self_qkv.push(Access { load_bytes: sl_t * kv_mem::step_write_bytes(d), compute_cycles: 0 });
    let mut cross_qkv = proj_plan(syn, rt, sl_t.max(sl_s));
    cross_qkv.push(Access { load_bytes: sl_s * kv_mem::step_write_bytes(d), compute_cycles: 0 });
    vec![
        ("SelfQKV", self_qkv),
        ("SelfQK", kv_access(sl_t, t.qk_cycles_rect(sl_t, sl_t, dk, syn.dk_max() as u64))),
        ("SelfSoftmax", compute_only(t.softmax_cycles(sl_t))),
        ("SelfSV", kv_access(sl_t, t.sv_cycles_rect(sl_t, sl_t, dk, syn.sl_unroll as u64))),
        ("SelfProj", FfnEngine::plan(FfnStage::Ffn1, rt, syn)),
        ("AddNorm1", compute_only(t.ln_cycles(sl_t, rt.d_model as u64))),
        ("CrossQKV", cross_qkv),
        ("CrossQK", kv_access(sl_s, t.qk_cycles_rect(sl_t, sl_s, dk, syn.dk_max() as u64))),
        ("CrossSoftmax", compute_only(t.softmax_cycles(sl_t.max(sl_s)))),
        ("CrossSV", kv_access(sl_s, t.sv_cycles_rect(sl_t, sl_s, dk, syn.sl_unroll as u64))),
        ("CrossProj", FfnEngine::plan(FfnStage::Ffn1, rt, syn)),
        ("AddNorm2", compute_only(t.ln_cycles(sl_t, rt.d_model as u64))),
        ("FFN2_CE", FfnEngine::plan(FfnStage::Ffn2, rt, syn)),
        ("FFN3_CE", FfnEngine::plan(FfnStage::Ffn3, rt, syn)),
        ("AddNorm3", compute_only(t.ln_cycles(sl_t, rt.d_model as u64))),
    ]
}

/// The tile-accumulated functional path (bit-identical to the golden
/// quantized decoder — integer tiling invariance again).
fn decoder_functional(
    syn: SynthesisConfig,
    dec: &QuantizedDecoder,
    x: &Matrix<i8>,
    memory: &Matrix<i8>,
) -> Matrix<i8> {
    let s = &dec.schedule;
    let act = ActivationLut::new(dec.config.activation, s.act_fmt);
    let mut h = x.clone();
    for layer in &dec.layers {
        h = decoder_layer(syn, dec, layer, &h, memory, s, &act);
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn decoder_layer(
    syn: SynthesisConfig,
    dec: &QuantizedDecoder,
    w: &QuantizedDecoderLayer,
    x: &Matrix<i8>,
    memory: &Matrix<i8>,
    s: &QuantSchedule,
    act: &ActivationLut,
) -> Matrix<i8> {
    let rt = RuntimeConfig {
        heads: dec.config.heads,
        layers: dec.config.layers,
        d_model: dec.config.d_model,
        seq_len: x.rows(),
    };
    let sa = tiled_attention(
        &syn, &rt, dec, x, x, &w.self_wq, &w.self_wk, &w.self_wv, &w.self_bq, &w.self_bk,
        &w.self_bv, &w.self_wo, &w.self_bo, true, s,
    );
    let x1 = add_norm(x, &sa, &w.ln[0], s);
    let ca = tiled_attention(
        &syn,
        &rt,
        dec,
        &x1,
        memory,
        &w.cross_wq,
        &w.cross_wk,
        &w.cross_wv,
        &w.cross_bq,
        &w.cross_bk,
        &w.cross_bv,
        &w.cross_wo,
        &w.cross_bo,
        false,
        s,
    );
    let x2 = add_norm(&x1, &ca, &w.ln[1], s);
    let hidden = FfnEngine::compute(&x2, &w.w1, &w.b1, &rt, &syn, s, Some(act));
    let ffn = FfnEngine::compute(&hidden, &w.w2, &w.b2, &rt, &syn, s, None);
    add_norm(&x2, &ffn, &w.ln[2], s)
}

/// Engine-tiled attention: projections accumulate over the frozen MHA
/// tile grid; logits, masked softmax and SV follow the golden stages.
#[allow(clippy::too_many_arguments)]
fn tiled_attention(
    syn: &SynthesisConfig,
    rt: &RuntimeConfig,
    dec: &QuantizedDecoder,
    q_src: &Matrix<i8>,
    kv_src: &Matrix<i8>,
    wq: &QuantMatrix,
    wk: &QuantMatrix,
    wv: &QuantMatrix,
    bq: &[i32],
    bk: &[i32],
    bv: &[i32],
    wo: &QuantMatrix,
    bo: &[i32],
    causal: bool,
    s: &QuantSchedule,
) -> Matrix<i8> {
    let d = rt.d_model;
    let dk = rt.dk();
    let sl_q = q_src.rows();
    let sl_kv = kv_src.rows();
    let grid = TileGrid::new(d, d, rt.mha_tile_width(syn), d);
    let proj = |src: &Matrix<i8>, w: &QuantMatrix, b: &[i32]| -> Matrix<i8> {
        let mut acc = Matrix::<i32>::zeros(src.rows(), d);
        accumulate_tiled(&mut acc, src, &w.data, &grid);
        finish_projection(acc, b, w.fmt, s)
    };
    let q = proj(q_src, wq, bq);
    let k = proj(kv_src, wk, bk);
    let v = proj(kv_src, wv, bv);

    let softmax = SoftmaxUnit::new(s.logit_fmt);
    let rq =
        Requantizer::new(s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(), s.act_fmt, s.rounding);
    let mut concat = Matrix::<i8>::zeros(sl_q, d);
    for head in 0..rt.heads {
        let c0 = head * dk;
        let qi = q.submatrix(0, c0, sl_q, dk);
        let ki = k.submatrix(0, c0, sl_kv, dk);
        let vi = v.submatrix(0, c0, sl_kv, dk);
        let acc = matmul_i8_i32(&qi, &transpose(&ki));
        let logits = requant_logits(&acc, &dec.config, s);
        let mut p = Matrix::<i8>::zeros(sl_q, sl_kv);
        for r in 0..sl_q {
            let valid = if causal { r + 1 } else { sl_kv };
            softmax.forward_row_masked(logits.row(r), valid, p.row_mut(r));
        }
        let acc_sv = matmul_i8_i32(&p, &vi);
        concat.write_submatrix(0, c0, &acc_sv.map(|a| rq.apply(a)));
    }
    // Output projection through the FFN1 tile geometry.
    FfnEngine::compute(&concat, wo, bo, rt, syn, s, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::decoder::DecoderWeights;
    use protea_model::EncoderConfig;
    use protea_platform::FpgaDevice;

    fn setup(cfg: EncoderConfig, seed: u64) -> (Accelerator, QuantizedDecoder) {
        let accel =
            Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
                .expect("design must fit the device");
        let dec = QuantizedDecoder::from_float(
            &DecoderWeights::random(cfg, seed),
            QuantSchedule::paper(),
        );
        (accel, dec)
    }

    #[test]
    fn decoder_matches_golden_model_bitwise() {
        let cfg = EncoderConfig::new(96, 4, 2, 8);
        let (accel, dec) = setup(cfg, 41);
        let x = Matrix::from_fn(8, 96, |r, c| (((r * 19 + c * 7) % 180) as i32 - 90) as i8);
        let mem = Matrix::from_fn(12, 96, |r, c| (((r * 23 + c * 3) % 180) as i32 - 90) as i8);
        let hw = accel.run_decoder(&dec, &x, &mem);
        let sw = dec.forward(&x, &mem);
        assert_eq!(hw.output.as_slice(), sw.as_slice());
    }

    #[test]
    fn decoder_timing_scales_with_source_length() {
        let cfg = EncoderConfig::new(768, 8, 6, 32);
        let (accel, dec) = setup(cfg, 1);
        let short = accel.decoder_timing_report(&dec, 32, 16).total;
        let long = accel.decoder_timing_report(&dec, 32, 128).total;
        assert!(long > short, "longer source memory must cost more");
    }

    #[test]
    fn decoder_layer_costs_more_than_encoder_layer() {
        // Same dims: a decoder layer adds a whole cross-attention block.
        let cfg = EncoderConfig::new(768, 8, 1, 64);
        let (mut accel, dec) = setup(cfg, 2);
        accel.program(RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 }).unwrap();
        let enc_cycles = accel.timing_report().total;
        let dec_cycles = accel.decoder_timing_report(&dec, 64, 64).total;
        assert!(dec_cycles.get() > enc_cycles.get());
        let ratio = dec_cycles.get() as f64 / enc_cycles.get() as f64;
        assert!((1.1..1.8).contains(&ratio), "decoder/encoder cycle ratio = {ratio:.2}");
    }

    #[test]
    fn decode_step_is_load_dominated_and_grows_slowly() {
        // Single-token decoding still streams every weight tile, so the
        // per-step latency barely depends on the position — the classic
        // bandwidth-bound generation profile.
        let cfg = EncoderConfig::new(768, 8, 2, 1);
        let (accel, dec) = setup(cfg, 7);
        let early = accel.decode_step_timing(&dec, 0, 64).total;
        let late = accel.decode_step_timing(&dec, 63, 64).total;
        assert!(late >= early);
        let growth = late.get() as f64 / early.get() as f64;
        assert!(growth < 1.3, "per-step growth = {growth:.2}");
        // and a step costs far less than a full 64-token forward
        let full = accel.decoder_timing_report(&dec, 64, 64).total;
        assert!(full.get() > 5 * late.get());
    }

    #[test]
    fn run_transformer_combines_both_stacks() {
        let cfg = EncoderConfig::new(64, 4, 1, 8);
        let t = protea_model::QuantizedTransformer::random(cfg, QuantSchedule::paper(), 77);
        let accel =
            Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
                .expect("design must fit the device");
        let src = Matrix::from_fn(8, 64, |r, c| ((r * 3 + c) % 90) as i8);
        let tgt = Matrix::from_fn(4, 64, |r, c| ((r * 7 + c * 2) % 90) as i8);
        let out = accel.run_transformer(&t, &src, &tgt);
        // bit-exact vs the software transformer
        assert_eq!(out.output.as_slice(), t.forward(&src, &tgt).as_slice());
        // combined latency exceeds the decoder-only report
        let dec_only = accel.decoder_timing_report(&t.decoder, 4, 8).total;
        assert!(out.report.total > dec_only);
    }

    #[test]
    fn oversized_source_rejected() {
        let cfg = EncoderConfig::new(96, 4, 1, 8);
        let (accel, dec) = setup(cfg, 3);
        assert!(accel.validate_decoder(&dec, 4096).is_err());
        assert!(accel.validate_decoder(&dec, 0).is_err());
        assert!(accel.validate_decoder(&dec, 64).is_ok());
    }

    #[test]
    fn causal_property_survives_the_tiled_path() {
        let cfg = EncoderConfig::new(64, 4, 1, 6);
        let (accel, dec) = setup(cfg, 4);
        let mem = Matrix::from_fn(5, 64, |r, c| ((r * 3 + c) % 90) as i8);
        let x1 = Matrix::from_fn(6, 64, |r, c| ((r * 11 + c * 5) % 90) as i8);
        let mut x2 = x1.clone();
        for v in x2.row_mut(5) {
            *v = v.saturating_add(7);
        }
        let y1 = accel.run_decoder(&dec, &x1, &mem).output;
        let y2 = accel.run_decoder(&dec, &x2, &mem).output;
        for r in 0..5 {
            assert_eq!(y1.row(r), y2.row(r), "tiled path leaked future info at row {r}");
        }
    }
}
