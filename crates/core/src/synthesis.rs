//! Synthesis-time configuration: what is frozen in the bitstream.
//!
//! "The programmable parameters can be adjusted at runtime, whereas the
//! tile size must be set before synthesis, as it cannot be modified
//! without resynthesizing the entire hardware." This module is that
//! boundary: a [`SynthesisConfig`] fixes the tile sizes, head-engine
//! count, maximum dimensions and timing preset; [`synthesize`] binds
//! resources on a device and estimates the achievable clock.

use crate::timing::TimingPreset;
use protea_hls::pragma::ArrayPartition;
use protea_hls::{ArraySpec, FunctionalUnitCost, PeCost};
use protea_mem::AxiPort;
use protea_platform::fmax::{CongestionModel, DesignPoint};
use protea_platform::{FpgaDevice, ResourceReport, ResourceVector};

/// Everything fixed at synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// MHA tile size (`TS_MHA`; paper: 64).
    pub ts_mha: usize,
    /// FFN tile size (`TS_FFN`; paper: 128).
    pub ts_ffn: usize,
    /// Number of head engines synthesized (paper: 8).
    pub heads: usize,
    /// Maximum embedding dimension (`d_model` capacity; paper: 768).
    pub d_max: usize,
    /// Maximum sequence length (Table I exercises up to 128).
    pub sl_max: usize,
    /// Unroll width of `SV_CE`'s sequence reduction (the Table I DSP
    /// budget implies 64 — see `protea-hls::cost`).
    pub sl_unroll: usize,
    /// Data width in bits (8 = the paper's fixed-point format).
    pub data_bits: u32,
    /// Engine timing parameters.
    pub timing: TimingPreset,
    /// AXI master port configuration for weight/input streaming.
    pub axi: AxiPort,
    /// DMA masters sharing each HBM channel (1 = dedicated channels,
    /// the calibrated default; >1 models a constrained platform where
    /// the weight streams contend — see `mem::arbiter`).
    pub dma_sharing: u32,
}

impl SynthesisConfig {
    /// Start a validated builder seeded with the paper's design point.
    ///
    /// ```
    /// use protea_core::SynthesisConfig;
    /// let syn = SynthesisConfig::builder().heads(8).d_max(512).sl_max(128).build().unwrap();
    /// assert_eq!(syn.dk_max(), 64);
    /// ```
    #[must_use]
    pub fn builder() -> SynthesisConfigBuilder {
        SynthesisConfigBuilder { cfg: Self::paper_default() }
    }

    /// The paper's synthesized design point.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ts_mha: 64,
            ts_ffn: 128,
            heads: 8,
            d_max: 768,
            sl_max: 128,
            sl_unroll: 64,
            data_bits: 8,
            timing: TimingPreset::paper(),
            axi: AxiPort::new(256),
            dma_sharing: 1,
        }
    }

    /// A design point from tile *counts* (Fig. 7's axes): `tiles_mha`
    /// tiles in MHA, `tiles_ffn` in FFN, everything else as the paper.
    ///
    /// # Panics
    /// Panics if the tile counts do not divide `d_max`.
    #[must_use]
    pub fn with_tile_counts(tiles_mha: usize, tiles_ffn: usize) -> Self {
        let base = Self::paper_default();
        assert!(
            tiles_mha > 0 && base.d_max.is_multiple_of(tiles_mha),
            "tiles_mha ({tiles_mha}) must divide d_max ({})",
            base.d_max
        );
        assert!(
            tiles_ffn > 0 && base.d_max.is_multiple_of(tiles_ffn),
            "tiles_ffn ({tiles_ffn}) must divide d_max ({})",
            base.d_max
        );
        Self { ts_mha: base.d_max / tiles_mha, ts_ffn: base.d_max / tiles_ffn, ..base }
    }

    /// Number of MHA tiles (`d_max / TS_MHA`): fixed loop count.
    #[must_use]
    pub fn tiles_mha(&self) -> usize {
        self.d_max.div_ceil(self.ts_mha)
    }

    /// Number of FFN tiles along `d` (`d_max / TS_FFN`).
    #[must_use]
    pub fn tiles_ffn(&self) -> usize {
        self.d_max.div_ceil(self.ts_ffn)
    }

    /// Synthesized per-head dimension capacity (`d_max / heads`).
    #[must_use]
    pub fn dk_max(&self) -> usize {
        self.d_max / self.heads
    }

    /// PE counts per engine, from the unroll widths of Algorithms 1–4.
    /// Order: QKV (all heads), QK, SV, FFN1, FFN2, FFN3.
    #[must_use]
    pub fn pe_breakdown(&self) -> [(&'static str, u64); 6] {
        let h = self.heads as u64;
        [
            ("QKV_CE", h * 3 * self.ts_mha as u64),
            ("QK_CE", h * self.dk_max() as u64),
            ("SV_CE", h * self.sl_unroll as u64),
            ("FFN1_CE", self.ts_ffn as u64),
            ("FFN2_CE", self.ts_ffn as u64),
            ("FFN3_CE", 4 * self.ts_ffn as u64),
        ]
    }

    /// Total PEs.
    #[must_use]
    pub fn pe_total(&self) -> u64 {
        self.pe_breakdown().iter().map(|(_, n)| n).sum()
    }

    /// The widest unrolled reduction (per engine unroll widths) — the
    /// Fmax model's width input.
    #[must_use]
    pub fn max_unroll_width(&self) -> u64 {
        [
            3 * self.ts_mha as u64, // three parallel chains in QKV_CE
            self.dk_max() as u64,
            self.sl_unroll as u64,
            self.ts_ffn as u64,
            4 * self.ts_ffn as u64,
        ]
        .into_iter()
        .max()
        .unwrap_or(1)
    }

    /// On-chip arrays of the design (Figs. 3–4): per-head weight and
    /// activation buffers, FFN weight tiles, intermediate buffers. All
    /// streamed buffers are double-buffered.
    #[must_use]
    // The buffer list reads as a build-up of named pushes, one per
    // hardware array; a vec![] literal would bury the structure.
    #[allow(clippy::vec_init_then_push)]
    pub fn arrays(&self) -> Vec<ArraySpec> {
        let eb = u64::from(self.data_bits);
        let h = self.heads as u64;
        let dk = self.dk_max() as u64;
        let ts_m = self.ts_mha as u64;
        let ts_f = self.ts_ffn as u64;
        let sl = self.sl_max as u64;
        let d = self.d_max as u64;
        let mut v = Vec::new();
        // Per-head MHA buffers (replicated h times via copies).
        v.push(
            ArraySpec::new("W_q", dk, ts_m, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2 * h),
        );
        v.push(
            ArraySpec::new("W_k", dk, ts_m, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2 * h),
        );
        v.push(
            ArraySpec::new("W_v", dk, ts_m, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2 * h),
        );
        v.push(
            ArraySpec::new("X_i", sl, ts_m, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2 * h),
        );
        // Q/K/V intermediate buffers (SL × dk per head).
        for name in ["Q_buf", "K_buf", "V_buf"] {
            v.push(
                ArraySpec::new(name, sl, dk, eb)
                    .partition_cols(ArrayPartition::Cyclic(16))
                    .with_copies(h),
            );
        }
        // Attention weight matrix S (SL × SL per head).
        v.push(
            ArraySpec::new("S_buf", sl, sl, eb)
                .partition_cols(ArrayPartition::Cyclic(16))
                .with_copies(h),
        );
        // FFN weight tiles (double buffered).
        v.push(
            ArraySpec::new("W_ffn1", ts_f, ts_f, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2),
        );
        v.push(
            ArraySpec::new("W_ffn2", ts_f, ts_f, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2),
        );
        v.push(
            ArraySpec::new("W_ffn3", ts_f, ts_f, eb)
                .partition_cols(ArrayPartition::Complete)
                .with_copies(2),
        );
        // Layer-wide activation buffers: attention out / x1 (SL × d) and
        // the FFN hidden (SL × 4d).
        v.push(ArraySpec::new("attn_buf", sl, d, eb).partition_cols(ArrayPartition::Cyclic(8)));
        v.push(ArraySpec::new("x1_buf", sl, d, eb).partition_cols(ArrayPartition::Cyclic(8)));
        v.push(
            ArraySpec::new("hidden_buf", sl, 4 * d, eb).partition_cols(ArrayPartition::Cyclic(8)),
        );
        v
    }

    /// Resource demand of the whole design.
    #[must_use]
    pub fn resources(&self) -> ResourceVector {
        let mut total = PeCost::calibrated().times(self.pe_total());
        total += FunctionalUnitCost::softmax_unit().times(self.heads as u64);
        total += FunctionalUnitCost::layernorm_unit().times(2);
        total += FunctionalUnitCost::base_infrastructure().resources();
        for a in self.arrays() {
            total += a.resources();
        }
        total
    }

    /// Automatic design-space search: find the fastest feasible
    /// configuration for `device` and `workload`, shrinking head-engine
    /// count and tile sizes as the device demands (the ZCU102 cannot hold
    /// the U55C design point). Greedy but exhaustive over the divisor
    /// lattice; returns `None` if even the smallest candidate overflows.
    #[must_use]
    pub fn fit_to_device(
        device: &FpgaDevice,
        workload: &protea_model::EncoderConfig,
    ) -> Option<SynthesizedDesign> {
        let base = Self::paper_default();
        let mut best: Option<(f64, SynthesizedDesign)> = None;
        for d_max in [768usize, 512, 384, 256] {
            if workload.d_model > d_max {
                continue;
            }
            for heads in [8usize, 4, 2, 1] {
                if workload.heads > heads || d_max % heads != 0 {
                    continue;
                }
                for ts_mha in [64usize, 32, 16] {
                    if d_max % ts_mha != 0 {
                        continue;
                    }
                    for ts_ffn in [128usize, 64, 32] {
                        if d_max % ts_ffn != 0 {
                            continue;
                        }
                        for sl_unroll in [64usize, 32] {
                            let cand = Self {
                                heads,
                                d_max,
                                ts_mha,
                                ts_ffn,
                                sl_unroll,
                                sl_max: base.sl_max.max(workload.seq_len),
                                ..base
                            };
                            let design = cand.synthesize(device);
                            if !design.feasible {
                                continue;
                            }
                            let Ok(rt) =
                                crate::registers::RuntimeConfig::from_model(workload, &cand)
                            else {
                                continue;
                            };
                            let cycles = estimate_workload_cycles(&cand, &rt);
                            let ms = cycles as f64 / (design.fmax_mhz * 1e3);
                            if best.as_ref().is_none_or(|(b, _)| ms < *b) {
                                best = Some((ms, design));
                            }
                        }
                    }
                }
            }
        }
        best.map(|(_, d)| d)
    }

    /// Synthesize onto a device: bind resources, estimate Fmax.
    #[must_use]
    pub fn synthesize(&self, device: &FpgaDevice) -> SynthesizedDesign {
        let resources = self.resources();
        let report = resources.utilization_of(&device.budget);
        let point = DesignPoint {
            lut_frac: report.lut_frac,
            max_unroll_width: self.max_unroll_width(),
            tile_product: (self.tiles_mha() * self.tiles_ffn()) as u64,
        };
        let est = CongestionModel::paper_calibrated().estimate(device, &point);
        SynthesizedDesign {
            config: *self,
            device: *device,
            resources,
            report,
            fmax_mhz: est.fmax_mhz,
            feasible: est.feasible && report.feasible(),
        }
    }
}

/// Builds a [`SynthesisConfig`] with structural validation at
/// [`build`](Self::build) time, so a bad tile size or head count is an
/// error value instead of a downstream panic. Unset fields keep the
/// paper design point's values.
#[derive(Debug, Clone)]
pub struct SynthesisConfigBuilder {
    cfg: SynthesisConfig,
}

impl SynthesisConfigBuilder {
    /// MHA tile size (`TS_MHA`).
    #[must_use]
    pub fn ts_mha(mut self, v: usize) -> Self {
        self.cfg.ts_mha = v;
        self
    }

    /// FFN tile size (`TS_FFN`).
    #[must_use]
    pub fn ts_ffn(mut self, v: usize) -> Self {
        self.cfg.ts_ffn = v;
        self
    }

    /// Number of head engines.
    #[must_use]
    pub fn heads(mut self, v: usize) -> Self {
        self.cfg.heads = v;
        self
    }

    /// Maximum embedding dimension.
    #[must_use]
    pub fn d_max(mut self, v: usize) -> Self {
        self.cfg.d_max = v;
        self
    }

    /// Maximum sequence length.
    #[must_use]
    pub fn sl_max(mut self, v: usize) -> Self {
        self.cfg.sl_max = v;
        self
    }

    /// `SV_CE` sequence-reduction unroll width.
    #[must_use]
    pub fn sl_unroll(mut self, v: usize) -> Self {
        self.cfg.sl_unroll = v;
        self
    }

    /// Engine timing parameters.
    #[must_use]
    pub fn timing(mut self, v: TimingPreset) -> Self {
        self.cfg.timing = v;
        self
    }

    /// AXI master port for weight/input streaming.
    #[must_use]
    pub fn axi(mut self, v: AxiPort) -> Self {
        self.cfg.axi = v;
        self
    }

    /// DMA masters sharing each HBM channel.
    #[must_use]
    pub fn dma_sharing(mut self, v: u32) -> Self {
        self.cfg.dma_sharing = v;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when any field is zero, the head
    /// count does not divide `d_max`, or a tile size does not divide
    /// `d_max` (the frozen loop counts would misprice a ragged final
    /// tile).
    pub fn build(self) -> Result<SynthesisConfig, crate::error::CoreError> {
        let c = self.cfg;
        let invalid = |m: String| Err(crate::error::CoreError::InvalidConfig(m));
        for (name, v) in [
            ("ts_mha", c.ts_mha),
            ("ts_ffn", c.ts_ffn),
            ("heads", c.heads),
            ("d_max", c.d_max),
            ("sl_max", c.sl_max),
            ("sl_unroll", c.sl_unroll),
        ] {
            if v == 0 {
                return invalid(format!("{name} must be nonzero"));
            }
        }
        if c.data_bits == 0 || c.dma_sharing == 0 {
            return invalid("data_bits and dma_sharing must be nonzero".into());
        }
        if !c.d_max.is_multiple_of(c.heads) {
            return invalid(format!("heads ({}) must divide d_max ({})", c.heads, c.d_max));
        }
        if c.ts_mha > c.d_max || !c.d_max.is_multiple_of(c.ts_mha) {
            return invalid(format!("ts_mha ({}) must divide d_max ({})", c.ts_mha, c.d_max));
        }
        if c.ts_ffn > c.d_max || !c.d_max.is_multiple_of(c.ts_ffn) {
            return invalid(format!("ts_ffn ({}) must divide d_max ({})", c.ts_ffn, c.d_max));
        }
        Ok(c)
    }
}

/// Rough per-inference cycle estimate used by the design-space search
/// (compute terms only — ranking, not reporting; the full co-simulation
/// prices the chosen point).
fn estimate_workload_cycles(syn: &SynthesisConfig, rt: &crate::registers::RuntimeConfig) -> u64 {
    let t = &syn.timing;
    let sl = rt.seq_len as u64;
    let dk = rt.dk() as u64;
    let rounds = (rt.heads as u64).div_ceil(syn.heads as u64).max(1);
    let mha = syn.tiles_mha() as u64 * t.qkv_tile_cycles(sl, dk)
        + t.qk_cycles(sl, dk, syn.dk_max() as u64)
        + t.softmax_cycles(sl)
        + t.sv_cycles(sl, dk, syn.sl_unroll as u64);
    let tf = syn.tiles_ffn() as u64;
    let w = rt.ffn_tile_width(syn) as u64;
    let ffn = tf * tf * t.ffn_access_cycles(sl, w)
        + 4 * tf * tf * t.ffn_access_cycles(sl, w)
        + 4 * tf * tf * t.ffn_access_cycles(sl, (rt.d_model as u64).div_ceil(4 * tf));
    let ln = 2 * t.ln_cycles(sl, rt.d_model as u64);
    rt.layers as u64 * (mha * rounds + ffn + ln)
}

impl SynthesizedDesign {
    /// A Vitis-style synthesis report: per-engine PEs, II, and the
    /// per-access latency at the synthesized maximum dimensions —
    /// the table an HLS user reads after a run.
    #[must_use]
    pub fn report_text(&self) -> String {
        use core::fmt::Write as _;
        let syn = &self.config;
        let t = &syn.timing;
        let sl = 64.min(syn.sl_max) as u64; // representative row count
        let dk = syn.dk_max() as u64;
        let rows: [(&str, u64, u32, u64, usize); 6] = [
            (
                "QKV_CE (x heads)",
                3 * syn.ts_mha as u64,
                t.ii_mha,
                t.qkv_tile_cycles(sl, dk),
                syn.tiles_mha(),
            ),
            ("QK_CE  (x heads)", dk, t.ii_mha, t.qk_cycles(sl, dk, dk), 1),
            (
                "SV_CE  (x heads)",
                syn.sl_unroll as u64,
                t.ii_mha,
                t.sv_cycles(sl, dk, syn.sl_unroll as u64),
                1,
            ),
            (
                "FFN1_CE",
                syn.ts_ffn as u64,
                t.ii_ffn,
                t.ffn_access_cycles(sl, syn.ts_ffn as u64),
                syn.tiles_ffn().pow(2),
            ),
            (
                "FFN2_CE",
                syn.ts_ffn as u64,
                t.ii_ffn,
                t.ffn_access_cycles(sl, syn.ts_ffn as u64),
                4 * syn.tiles_ffn().pow(2),
            ),
            (
                "FFN3_CE",
                4 * syn.ts_ffn as u64,
                t.ii_ffn,
                t.ffn_access_cycles(sl, syn.ts_ffn as u64 / 4),
                4 * syn.tiles_ffn().pow(2),
            ),
        ];
        let mut out = String::new();
        let _ = writeln!(out, "== Synthesis report: ProTEA on {} ==", self.device.name);
        let _ = writeln!(
            out,
            "   TS_MHA={} TS_FFN={} heads={} d_max={} sl_max={}",
            syn.ts_mha, syn.ts_ffn, syn.heads, syn.d_max, syn.sl_max
        );
        let _ = writeln!(out, "   Fmax {:.1} MHz | {}", self.fmax_mhz, self.report);
        let _ = writeln!(
            out,
            "   {:<18} {:>6} {:>4} {:>16} {:>10}",
            "engine", "PEs", "II", "cycles/access", "accesses"
        );
        for (name, pes, ii, cyc, acc) in rows {
            let _ = writeln!(out, "   {name:<18} {pes:>6} {ii:>4} {cyc:>16} {acc:>10}");
        }
        out
    }
}

/// The result of synthesis: a bound design on a device.
#[derive(Debug, Clone)]
pub struct SynthesizedDesign {
    /// The synthesis parameters.
    pub config: SynthesisConfig,
    /// The target device.
    pub device: FpgaDevice,
    /// Total resources demanded.
    pub resources: ResourceVector,
    /// Utilization vs the device.
    pub report: ResourceReport,
    /// Achievable clock (MHz) from the congestion model.
    pub fmax_mhz: f64,
    /// Whether the design fits.
    pub feasible: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_tile_counts() {
        let s = SynthesisConfig::paper_default();
        assert_eq!(s.tiles_mha(), 12);
        assert_eq!(s.tiles_ffn(), 6);
        assert_eq!(s.dk_max(), 96);
    }

    #[test]
    fn pe_total_matches_paper_reconstruction() {
        let s = SynthesisConfig::paper_default();
        assert_eq!(s.pe_total(), 3584);
        let map: std::collections::HashMap<_, _> = s.pe_breakdown().into_iter().collect();
        assert_eq!(map["QKV_CE"], 1536);
        assert_eq!(map["FFN3_CE"], 512);
    }

    #[test]
    fn dsp_count_matches_table1() {
        let s = SynthesisConfig::paper_default();
        assert_eq!(s.resources().dsps, 3612);
    }

    #[test]
    fn lut_ff_near_table1() {
        // LUTs include honest LUTRAM for the weight banks on top of the
        // calibrated per-PE cost, so allow a band around the published
        // 993107 / 704115.
        let r = SynthesisConfig::paper_default().resources();
        let lut_err = (r.luts as f64 - 993_107.0).abs() / 993_107.0;
        assert!(lut_err < 0.10, "luts = {} ({:.1}% off)", r.luts, lut_err * 100.0);
        assert_eq!(r.ffs, 704_115);
    }

    #[test]
    fn synthesis_on_u55c_is_feasible_near_200mhz() {
        let d = FpgaDevice::alveo_u55c();
        let syn = SynthesisConfig::paper_default().synthesize(&d);
        assert!(syn.feasible);
        assert!((syn.fmax_mhz - 200.0).abs() < 15.0, "fmax = {:.1}", syn.fmax_mhz);
        assert!((syn.report.dsp_frac - 0.40).abs() < 0.01);
    }

    #[test]
    fn fig7_optimum_is_12_by_6() {
        // Sweep the Fig. 7 axes: every divisor-valid tile count pair.
        let d = FpgaDevice::alveo_u55c();
        let mha_counts = [6usize, 8, 12, 16, 24, 48];
        let ffn_counts = [2usize, 3, 4, 6];
        let mut best = (0usize, 0usize, 0f64);
        for &tm in &mha_counts {
            for &tf in &ffn_counts {
                let syn = SynthesisConfig::with_tile_counts(tm, tf).synthesize(&d);
                if syn.feasible && syn.fmax_mhz > best.2 {
                    best = (tm, tf, syn.fmax_mhz);
                }
            }
        }
        assert_eq!((best.0, best.1), (12, 6), "fmax optimum at {best:?}");
    }

    #[test]
    fn with_tile_counts_round_trips() {
        let s = SynthesisConfig::with_tile_counts(12, 6);
        assert_eq!(s.ts_mha, 64);
        assert_eq!(s.ts_ffn, 128);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_divisor_tile_count_rejected() {
        let _ = SynthesisConfig::with_tile_counts(7, 6);
    }

    #[test]
    fn report_text_names_every_engine() {
        let design = SynthesisConfig::paper_default().synthesize(&FpgaDevice::alveo_u55c());
        let text = design.report_text();
        for engine in ["QKV_CE", "QK_CE", "SV_CE", "FFN1_CE", "FFN2_CE", "FFN3_CE"] {
            assert!(text.contains(engine), "missing {engine}");
        }
        assert!(text.contains("TS_MHA=64"));
        assert!(text.contains("Fmax"));
    }

    #[test]
    fn fit_to_device_scales_down_to_zcu102() {
        // EFA-Trans's board: the paper design point does not fit, but a
        // shrunk ProTEA does — automatically found.
        let workload = protea_model::EncoderConfig::new(256, 2, 2, 64);
        let zcu = FpgaDevice::zcu102();
        assert!(!SynthesisConfig::paper_default().synthesize(&zcu).feasible);
        let fitted = SynthesisConfig::fit_to_device(&zcu, &workload)
            .expect("a shrunk design must fit the ZCU102");
        assert!(fitted.feasible);
        assert!(fitted.resources.fits_within(&zcu.budget));
        assert!(fitted.config.d_max >= 256);
    }

    #[test]
    fn fit_to_device_picks_paper_point_on_u55c() {
        // On the paper's own board with the paper workload, the search
        // lands on the published design point's tile sizes.
        let fitted = SynthesisConfig::fit_to_device(
            &FpgaDevice::alveo_u55c(),
            &protea_model::EncoderConfig::paper_test1(),
        )
        .unwrap();
        assert_eq!(fitted.config.ts_mha, 64);
        assert_eq!(fitted.config.ts_ffn, 128);
        assert_eq!(fitted.config.heads, 8);
    }

    #[test]
    fn fit_to_device_none_when_impossible() {
        // A workload larger than every candidate capacity.
        let huge = protea_model::EncoderConfig::new(1536, 8, 1, 64);
        assert!(SynthesisConfig::fit_to_device(&FpgaDevice::zcu102(), &huge).is_none());
    }

    #[test]
    fn builder_defaults_to_paper_point() {
        let built = SynthesisConfig::builder().build().unwrap();
        assert_eq!(built, SynthesisConfig::paper_default());
    }

    #[test]
    fn builder_applies_setters() {
        let s = SynthesisConfig::builder().heads(4).d_max(512).sl_max(256).build().unwrap();
        assert_eq!((s.heads, s.d_max, s.sl_max), (4, 512, 256));
        assert_eq!(s.dk_max(), 128);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        use crate::error::CoreError;
        let cases: [(&str, super::SynthesisConfigBuilder); 4] = [
            ("zero heads", SynthesisConfig::builder().heads(0)),
            ("heads not dividing d_max", SynthesisConfig::builder().heads(7)),
            ("non-divisor ts_mha", SynthesisConfig::builder().ts_mha(100)),
            (
                "ts_ffn wider than d_max",
                SynthesisConfig::builder().d_max(96).ts_mha(96).ts_ffn(96).sl_unroll(0),
            ),
        ];
        for (what, b) in cases {
            let err = b.build().expect_err(what);
            assert!(matches!(err, CoreError::InvalidConfig(_)), "{what}: {err:?}");
        }
    }

    #[test]
    fn bram_demand_nonzero_and_fits() {
        let s = SynthesisConfig::paper_default();
        let r = s.resources();
        assert!(r.bram18 > 0);
        assert!(r.fits_within(&FpgaDevice::alveo_u55c().budget), "{r}");
    }
}
