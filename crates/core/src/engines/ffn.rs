//! `FFN1_CE`, `FFN2_CE`, `FFN3_CE` — the linear-transformation engines
//! (Algorithm 4, Figs. 4 and 6).
//!
//! All three share the tiled-linear pattern; they differ in matrix shape
//! and access structure:
//!
//! | engine | weight        | accesses (T = FFN tile count) | unroll |
//! |--------|---------------|-------------------------------|--------|
//! | FFN1   | `d × d` (attention output projection) | `T²`  | `TS`   |
//! | FFN2   | `d × 4d` (first transformation + act) | `4T²` | `TS`   |
//! | FFN3   | `4d × d` (second transformation)      | `4T²` | `4·TS` |
//!
//! Weights are tiled along **both** dimensions (Fig. 6); "results are
//! first accumulated along the columns, followed by accumulation along
//! the rows" — the tile-accumulated integer sums in
//! [`accumulate_tiled`](crate::engines::accumulate_tiled).

use crate::engines::{accumulate_tiled, finish_projection, Access};
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_fixed::activation::ActivationLut;
use protea_model::quantized::QuantMatrix;
use protea_model::QuantSchedule;
use protea_tensor::{Matrix, TileGrid};

/// Which of the three FFN engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FfnStage {
    /// Attention output projection (`d × d`), followed by add&norm.
    Ffn1,
    /// First FFN transformation (`d × 4d`), followed by the activation.
    Ffn2,
    /// Second FFN transformation (`4d × d`), followed by add&norm.
    Ffn3,
}

/// The FFN engine family.
#[derive(Debug, Clone, Copy)]
pub struct FfnEngine;

impl FfnEngine {
    /// Weight shape of `stage` at runtime `d`.
    #[must_use]
    pub fn weight_shape(stage: FfnStage, d: usize, ffn_mult: usize) -> (usize, usize) {
        match stage {
            FfnStage::Ffn1 => (d, d),
            FfnStage::Ffn2 => (d, ffn_mult * d),
            FfnStage::Ffn3 => (ffn_mult * d, d),
        }
    }

    /// Access count of `stage` (frozen at synthesis: `T²` or `4T²`).
    #[must_use]
    pub fn access_count(stage: FfnStage, syn: &SynthesisConfig) -> usize {
        let t = syn.tiles_ffn();
        match stage {
            FfnStage::Ffn1 => t * t,
            FfnStage::Ffn2 | FfnStage::Ffn3 => 4 * t * t,
        }
    }

    /// The pipelined trip per access: the runtime tile width for
    /// FFN1/FFN2, a quarter of it for FFN3 (whose unroll is 4× wider).
    #[must_use]
    pub fn access_trip(stage: FfnStage, rt: &RuntimeConfig, syn: &SynthesisConfig) -> usize {
        let w = rt.ffn_tile_width(syn);
        match stage {
            FfnStage::Ffn1 | FfnStage::Ffn2 => w,
            FfnStage::Ffn3 => rt.d_model.div_ceil(4 * syn.tiles_ffn()),
        }
    }

    /// Access plan for one layer's `stage` phase.
    #[must_use]
    pub fn plan(stage: FfnStage, rt: &RuntimeConfig, syn: &SynthesisConfig) -> Vec<Access> {
        let accesses = Self::access_count(stage, syn) as u64;
        let (rows, cols) = Self::weight_shape(stage, rt.d_model, 4);
        let elem = u64::from(syn.data_bits / 8).max(1);
        let total_bytes = (rows * cols) as u64 * elem;
        let load = total_bytes.div_ceil(accesses);
        let compute = syn
            .timing
            .ffn_access_cycles(rt.seq_len as u64, Self::access_trip(stage, rt, syn) as u64);
        (0..accesses).map(|_| Access { load_bytes: load, compute_cycles: compute }).collect()
    }

    /// Functional compute: tiled linear + bias + requantize, with an
    /// optional activation ROM applied in place (FFN2).
    #[must_use]
    pub fn compute(
        x: &Matrix<i8>,
        w: &QuantMatrix,
        bias: &[i32],
        rt: &RuntimeConfig,
        syn: &SynthesisConfig,
        s: &QuantSchedule,
        activation: Option<&ActivationLut>,
    ) -> Matrix<i8> {
        let tile = rt.ffn_tile_width(syn).max(1);
        let grid = TileGrid::ffn(w.data.rows(), w.data.cols(), tile, tile);
        let mut acc = Matrix::<i32>::zeros(x.rows(), w.data.cols());
        accumulate_tiled(&mut acc, x, &w.data, &grid);
        let mut out = finish_projection(acc, bias, w.fmt, s);
        if let Some(lut) = activation {
            lut.apply_slice(out.as_mut_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_fixed::{Activation, QFormat};
    use protea_model::quantized::project;

    #[test]
    fn access_counts_match_paper() {
        let syn = SynthesisConfig::paper_default(); // T = 6
        assert_eq!(FfnEngine::access_count(FfnStage::Ffn1, &syn), 36);
        assert_eq!(FfnEngine::access_count(FfnStage::Ffn2, &syn), 144);
        assert_eq!(FfnEngine::access_count(FfnStage::Ffn3, &syn), 144);
    }

    #[test]
    fn access_counts_frozen_across_runtime_d() {
        let syn = SynthesisConfig::paper_default();
        for d in [768usize, 512, 256] {
            let rt = RuntimeConfig { heads: 8, layers: 1, d_model: d, seq_len: 64 };
            assert_eq!(FfnEngine::plan(FfnStage::Ffn2, &rt, &syn).len(), 144, "d={d}");
        }
    }

    #[test]
    fn trips_scale_with_runtime_d() {
        let syn = SynthesisConfig::paper_default();
        let rt768 = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 };
        let rt512 = RuntimeConfig { heads: 8, layers: 1, d_model: 512, seq_len: 64 };
        assert_eq!(FfnEngine::access_trip(FfnStage::Ffn2, &rt768, &syn), 128);
        assert_eq!(FfnEngine::access_trip(FfnStage::Ffn2, &rt512, &syn), 86);
        assert_eq!(FfnEngine::access_trip(FfnStage::Ffn3, &rt768, &syn), 32);
    }

    #[test]
    fn functional_matches_untiled_project() {
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 3 };
        let s = QuantSchedule::paper();
        let x = Matrix::from_fn(3, 768, |r, c| (((r * 37 + c * 11) % 200) as i32 - 100) as i8);
        let w = QuantMatrix {
            data: Matrix::from_fn(768, 768, |r, c| (((r * 7 + c * 13) % 200) as i32 - 100) as i8),
            fmt: QFormat::new(8, 6),
        };
        let bias: Vec<i32> = (0..768).map(|i| (i % 64) - 32).collect();
        let golden = project(&x, &w, &bias, &s);
        let tiled = FfnEngine::compute(&x, &w, &bias, &rt, &syn, &s, None);
        assert_eq!(tiled.as_slice(), golden.as_slice());
    }

    #[test]
    fn activation_applies_after_requant() {
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 2 };
        let s = QuantSchedule::paper();
        let lut = ActivationLut::new(Activation::Relu, s.act_fmt);
        let x = Matrix::from_fn(2, 768, |_, c| if c % 2 == 0 { 50i8 } else { -50 });
        let w = QuantMatrix {
            data: Matrix::from_fn(768, 8, |r, c| if (r + c) % 3 == 0 { -90i8 } else { 40 }),
            fmt: QFormat::new(8, 6),
        };
        let bias = vec![0i32; 8];
        let out = FfnEngine::compute(&x, &w, &bias, &rt, &syn, &s, Some(&lut));
        assert!(out.as_slice().iter().all(|&v| v >= 0), "ReLU output must be nonneg");
    }

    #[test]
    fn load_bytes_cover_whole_weight() {
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 };
        for stage in [FfnStage::Ffn1, FfnStage::Ffn2, FfnStage::Ffn3] {
            let plan = FfnEngine::plan(stage, &rt, &syn);
            let total: u64 = plan.iter().map(|a| a.load_bytes).sum();
            let (r, c) = FfnEngine::weight_shape(stage, 768, 4);
            assert!(total >= (r * c) as u64, "{stage:?} streams the full matrix");
        }
    }
}
