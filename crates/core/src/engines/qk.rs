//! `QK_CE` — attention-weight computation `S = Q·Kᵀ / d` (Algorithm 2).
//!
//! "Since these matrices are relatively small, they are not tiled." The
//! engine's unrolled reduction is synthesized `d_max/h_syn` wide, so at
//! runtime with fewer active heads (larger `d_k`) the initiation interval
//! inflates — the effect visible as Table I tests #2/#3.

use crate::engines::Access;
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_model::quantized::requant_logits;
use protea_model::{EncoderConfig, QuantSchedule};
use protea_tensor::{matmul_i8_i32, transpose, Matrix};

/// The Q·Kᵀ engine bank.
#[derive(Debug, Clone, Copy)]
pub struct QkEngine;

impl QkEngine {
    /// Access plan: one untiled access per layer (all heads parallel),
    /// no weight streaming (operands live on chip).
    #[must_use]
    pub fn plan(rt: &RuntimeConfig, syn: &SynthesisConfig) -> Vec<Access> {
        let compute = syn.timing.qk_cycles(rt.seq_len as u64, rt.dk() as u64, syn.dk_max() as u64);
        vec![Access { load_bytes: 0, compute_cycles: compute }]
    }

    /// Functional compute for one head: scaled, requantized logits.
    #[must_use]
    pub fn compute_head(
        qi: &Matrix<i8>,
        ki: &Matrix<i8>,
        rt: &RuntimeConfig,
        s: &QuantSchedule,
    ) -> Matrix<i8> {
        let acc = matmul_i8_i32(qi, &transpose(ki));
        let cfg: EncoderConfig = rt.to_model_config();
        requant_logits(&acc, &cfg, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_costs_no_bandwidth() {
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 };
        let p = QkEngine::plan(&rt, &syn);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].load_bytes, 0);
    }

    #[test]
    fn fewer_heads_cost_more_cycles() {
        let syn = SynthesisConfig::paper_default();
        let mk = |h| {
            QkEngine::plan(&RuntimeConfig { heads: h, layers: 1, d_model: 768, seq_len: 64 }, &syn)
                [0]
            .compute_cycles
        };
        assert!(mk(2) > mk(4));
        assert!(mk(4) > mk(8));
    }

    #[test]
    fn logits_are_scaled_products() {
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 4 };
        let s = QuantSchedule::paper();
        let qi = Matrix::from_fn(4, 96, |r, c| ((r + c) % 64) as i8);
        let ki = qi.clone();
        let out = QkEngine::compute_head(&qi, &ki, &rt, &s);
        assert_eq!(out.shape(), (4, 4));
        // diagonal (self-similarity) should dominate each row
        for r in 0..4 {
            let diag = out[(r, r)];
            assert!(out.row(r).iter().all(|&v| v <= diag));
        }
        let _ = syn;
    }
}
