//! The add & layer-norm modules following `FFN1_CE` and `FFN3_CE`.

use crate::engines::Access;
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_fixed::layernorm::LayerNormUnit;
use protea_model::quantized::add_norm;
use protea_model::QuantSchedule;
use protea_tensor::Matrix;

/// The residual + layer-norm engine.
#[derive(Debug, Clone, Copy)]
pub struct LnEngine;

impl LnEngine {
    /// Access plan: one compute-only access.
    #[must_use]
    pub fn plan(rt: &RuntimeConfig, syn: &SynthesisConfig) -> Vec<Access> {
        vec![Access {
            load_bytes: 0,
            compute_cycles: syn.timing.ln_cycles(rt.seq_len as u64, rt.d_model as u64),
        }]
    }

    /// Functional compute: `LN(x + sub)` — delegates to the golden
    /// model's shared stage so divergence is impossible.
    #[must_use]
    pub fn compute(
        x: &Matrix<i8>,
        sub: &Matrix<i8>,
        unit: &LayerNormUnit,
        s: &QuantSchedule,
    ) -> Matrix<i8> {
        add_norm(x, sub, unit, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_scales_with_rows_and_d() {
        let syn = SynthesisConfig::paper_default();
        let mk = |d, sl| {
            LnEngine::plan(&RuntimeConfig { heads: 8, layers: 1, d_model: d, seq_len: sl }, &syn)[0]
                .compute_cycles
        };
        assert!(mk(768, 64) > mk(512, 64));
        assert!(mk(768, 128) > mk(768, 64));
    }

    #[test]
    fn compute_normalizes() {
        let s = QuantSchedule::paper();
        let unit = LayerNormUnit::identity(16, s.act_fmt);
        let x = Matrix::from_fn(2, 16, |_, c| (c as i8) * 4 - 30);
        let zero = Matrix::<i8>::zeros(2, 16);
        let out = LnEngine::compute(&x, &zero, &unit, &s);
        // normalized rows: mean near zero
        for r in 0..2 {
            let mean: f64 = out.row(r).iter().map(|&v| f64::from(v)).sum::<f64>() / 16.0;
            assert!(mean.abs() < 4.0);
        }
    }
}
