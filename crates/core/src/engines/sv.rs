//! `SV_CE` — attention score `S·V` (Algorithm 3).
//!
//! The reduction runs over the sequence dimension with an unroll width
//! fixed at synthesis (`sl_unroll`); runtime sequences longer than that
//! inflate the initiation interval (Table I test #8's superlinear SV
//! share).

use crate::engines::Access;
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_fixed::Requantizer;
use protea_model::QuantSchedule;
use protea_tensor::{matmul_i8_i32, Matrix};

/// The S·V engine bank.
#[derive(Debug, Clone, Copy)]
pub struct SvEngine;

impl SvEngine {
    /// Access plan: one untiled access, operands on chip.
    #[must_use]
    pub fn plan(rt: &RuntimeConfig, syn: &SynthesisConfig) -> Vec<Access> {
        let compute = syn.timing.sv_cycles(rt.seq_len as u64, rt.dk() as u64, syn.sl_unroll as u64);
        vec![Access { load_bytes: 0, compute_cycles: compute }]
    }

    /// Functional compute for one head: probabilities × values,
    /// requantized to the activation format (identical stage to the
    /// golden model).
    #[must_use]
    pub fn compute_head(probs: &Matrix<i8>, vi: &Matrix<i8>, s: &QuantSchedule) -> Matrix<i8> {
        let acc = matmul_i8_i32(probs, vi);
        let rq = Requantizer::new(
            s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(),
            s.act_fmt,
            s.rounding,
        );
        acc.map(|a| rq.apply(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_fixed::QFormat;

    #[test]
    fn uniform_attention_averages_values() {
        let s = QuantSchedule::paper();
        // 4 positions, uniform probs (32/128 = 0.25 each in Q0.7)
        let probs = Matrix::from_vec(1, 4, vec![32i8; 4]);
        let v = Matrix::from_vec(4, 2, vec![32i8, 0, 32, 0, 32, 0, 32, 0]); // 1.0 / 0.0
        let out = SvEngine::compute_head(&probs, &v, &s);
        // mean of four 1.0 values = 1.0 → raw 32 in Q2.5
        assert_eq!(out[(0, 0)], 32);
        assert_eq!(out[(0, 1)], 0);
        let _ = QFormat::q8_prob();
    }

    #[test]
    fn plan_ii_inflates_beyond_unroll() {
        let syn = SynthesisConfig::paper_default();
        let mk = |sl| {
            SvEngine::plan(&RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: sl }, &syn)
                [0]
            .compute_cycles
        };
        // 64 → within unroll (II=1); 128 → II=2 and rows double: ≈ 4×.
        let a = mk(64);
        let b = mk(128);
        assert!(b > 3 * a, "a={a} b={b}");
    }

    #[test]
    fn no_bandwidth_needed() {
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 };
        assert_eq!(SvEngine::plan(&rt, &syn)[0].load_bytes, 0);
    }
}
