//! `QKV_CE` — query/key/value generation (Algorithm 1, Fig. 3).
//!
//! One engine per head; all heads run in parallel, so the phase cost is a
//! single engine's. The weight matrices are tiled along the *input*
//! dimension only (Fig. 5: "tiling is applied only along the second
//! dimension (columns) … because the first dimension (rows) is already
//! reduced by the number of heads"), with the tile **count** frozen at
//! synthesis and the tile width scaling with the runtime `d_model`.

use crate::engines::{accumulate_tiled, finish_projection, Access};
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_model::quantized::QuantizedLayer;
use protea_model::QuantSchedule;
use protea_tensor::{Matrix, TileGrid};

/// The Q/K/V generation engine bank (one engine per active head).
#[derive(Debug, Clone, Copy)]
pub struct QkvEngine;

impl QkvEngine {
    /// The tile grid over the input dimension: `tiles_mha` strips.
    #[must_use]
    pub fn grid(rt: &RuntimeConfig, syn: &SynthesisConfig, out_cols: usize) -> TileGrid {
        TileGrid::new(rt.d_model, out_cols, rt.mha_tile_width(syn), out_cols.max(1))
    }

    /// Access plan for one layer's QKV phase.
    #[must_use]
    pub fn plan(rt: &RuntimeConfig, syn: &SynthesisConfig) -> Vec<Access> {
        let tiles = syn.tiles_mha() as u64;
        let w = rt.mha_tile_width(syn) as u64;
        let dk = rt.dk() as u64;
        let sl = rt.seq_len as u64;
        let h = rt.heads as u64;
        let elem = u64::from(syn.data_bits / 8).max(1);
        // Per tile, every active head streams its three weight strips
        // (d_k × w each) plus its input strip (SL × w).
        let load = h * (3 * dk * w + sl * w) * elem;
        let compute = syn.timing.qkv_tile_cycles(sl, dk);
        (0..tiles).map(|_| Access { load_bytes: load, compute_cycles: compute }).collect()
    }

    /// Functional compute: Q, K, V for all heads (tile-accumulated; the
    /// result is bit-identical to the golden model's `project`).
    #[must_use]
    pub fn compute(
        x: &Matrix<i8>,
        layer: &QuantizedLayer,
        rt: &RuntimeConfig,
        syn: &SynthesisConfig,
        s: &QuantSchedule,
    ) -> (Matrix<i8>, Matrix<i8>, Matrix<i8>) {
        let d = rt.d_model;
        let grid = TileGrid::new(d, d, rt.mha_tile_width(syn), d);
        let run = |w: &protea_model::quantized::QuantMatrix, bias: &[i32]| -> Matrix<i8> {
            let mut acc = Matrix::<i32>::zeros(rt.seq_len, d);
            accumulate_tiled(&mut acc, x, &w.data, &grid);
            finish_projection(acc, bias, w.fmt, s)
        };
        let q = run(&layer.wq, &layer.bq);
        let k = run(&layer.wk, &layer.bk);
        let v = run(&layer.wv, &layer.bv);
        (q, k, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::{EncoderConfig, EncoderWeights, QuantizedEncoder};

    fn setup() -> (QuantizedEncoder, RuntimeConfig, SynthesisConfig, Matrix<i8>) {
        let cfg = EncoderConfig::new(96, 4, 1, 8);
        let w = EncoderWeights::random(cfg, 17);
        let q = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
        let syn = SynthesisConfig::paper_default();
        let rt = RuntimeConfig::from_model(&cfg, &syn).unwrap();
        let x = Matrix::from_fn(8, 96, |r, c| (((r * 29 + c * 5) % 200) as i32 - 100) as i8);
        (q, rt, syn, x)
    }

    #[test]
    fn matches_golden_model_bitwise() {
        let (enc, rt, syn, x) = setup();
        let tr = enc.forward_layer(&x, &enc.layers[0]);
        let (q, k, v) = QkvEngine::compute(&x, &enc.layers[0], &rt, &syn, &enc.schedule);
        assert_eq!(q.as_slice(), tr.q.as_slice());
        assert_eq!(k.as_slice(), tr.k.as_slice());
        assert_eq!(v.as_slice(), tr.v.as_slice());
    }

    #[test]
    fn plan_has_frozen_tile_count() {
        let syn = SynthesisConfig::paper_default();
        for d in [768usize, 512, 256] {
            let rt = RuntimeConfig { heads: 8, layers: 1, d_model: d, seq_len: 64 };
            let plan = QkvEngine::plan(&rt, &syn);
            assert_eq!(plan.len(), 12, "tile count frozen regardless of d = {d}");
        }
    }

    #[test]
    fn load_bytes_scale_with_runtime_width() {
        let syn = SynthesisConfig::paper_default();
        let big = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 };
        let small = RuntimeConfig { heads: 8, layers: 1, d_model: 256, seq_len: 64 };
        assert!(
            QkvEngine::plan(&big, &syn)[0].load_bytes > QkvEngine::plan(&small, &syn)[0].load_bytes
        );
    }

    #[test]
    fn compute_cycles_grow_with_fewer_heads() {
        let syn = SynthesisConfig::paper_default();
        let h8 = RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: 64 };
        let h2 = RuntimeConfig { heads: 2, layers: 1, d_model: 768, seq_len: 64 };
        assert!(
            QkvEngine::plan(&h2, &syn)[0].compute_cycles
                > 3 * QkvEngine::plan(&h8, &syn)[0].compute_cycles
        );
    }
}
