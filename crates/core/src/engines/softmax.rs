//! The softmax unit — LUT exponentials + serial divider (per head).

use crate::engines::Access;
use crate::registers::RuntimeConfig;
use crate::synthesis::SynthesisConfig;
use protea_fixed::SoftmaxUnit;
use protea_model::QuantSchedule;
use protea_tensor::Matrix;

/// The softmax functional unit bank.
#[derive(Debug, Clone)]
pub struct SoftmaxEngine {
    unit: SoftmaxUnit,
}

impl SoftmaxEngine {
    /// Build with the ROM for the schedule's logit format.
    #[must_use]
    pub fn new(s: &QuantSchedule) -> Self {
        Self { unit: SoftmaxUnit::new(s.logit_fmt) }
    }

    /// Access plan: one compute-only access per layer.
    #[must_use]
    pub fn plan(rt: &RuntimeConfig, syn: &SynthesisConfig) -> Vec<Access> {
        vec![Access { load_bytes: 0, compute_cycles: syn.timing.softmax_cycles(rt.seq_len as u64) }]
    }

    /// Row-softmax of one head's logit matrix.
    #[must_use]
    pub fn compute_head(&self, logits: &Matrix<i8>) -> Matrix<i8> {
        let mut out = Matrix::<i8>::zeros(logits.rows(), logits.cols());
        self.unit.forward_matrix(logits.as_slice(), logits.cols(), out.as_mut_slice());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distributions() {
        let s = QuantSchedule::paper();
        let eng = SoftmaxEngine::new(&s);
        let logits = Matrix::from_fn(6, 6, |r, c| ((r * 17 + c * 5) % 120) as i8 - 60);
        let p = eng.compute_head(&logits);
        for r in 0..6 {
            let sum: i32 = p.row(r).iter().map(|&v| i32::from(v)).sum();
            assert!((sum - 128).unsigned_abs() <= 6, "row {r} sums {sum}");
        }
    }

    #[test]
    fn plan_scales_quadratically_with_sl() {
        let syn = SynthesisConfig::paper_default();
        let mk = |sl| {
            SoftmaxEngine::plan(
                &RuntimeConfig { heads: 8, layers: 1, d_model: 768, seq_len: sl },
                &syn,
            )[0]
            .compute_cycles
        };
        let a = mk(32);
        let b = mk(64);
        let c = mk(128);
        assert!(b > 3 * a && b < 5 * a, "a={a} b={b}");
        assert!(c > 3 * b && c < 5 * b, "b={b} c={c}");
    }
}
