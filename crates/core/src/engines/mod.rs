//! The seven compute engines (Figs. 3 and 4).
//!
//! Every engine exposes two faces:
//!
//! * **functional** — bit-exact int8/int32 arithmetic on *tiles*,
//!   accumulating partial sums across tile iterations exactly as the
//!   hardware's intermediate buffers do ("the final output is the
//!   cumulative sum of the results computed across all tiles"), finishing
//!   through the same requantization stages as `protea-model`'s golden
//!   model;
//! * **timing** — an access plan: one [`Access`] per engine invocation
//!   (tile visit), carrying the weight bytes to stream and the compute
//!   cycles, consumed by the double-buffer scheduler.

pub mod ffn;
pub mod ln;
pub mod qk;
pub mod qkv;
pub mod softmax;
pub mod sv;

use protea_fixed::{QFormat, Requantizer};
use protea_model::QuantSchedule;
use protea_tensor::Matrix;

/// One engine access: a tile's data movement and compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Weight/input bytes streamed from HBM for this access.
    pub load_bytes: u64,
    /// Compute cycles once the data is resident.
    pub compute_cycles: u64,
}

/// Finish a projection: add pre-scaled biases into the i32 accumulators
/// and requantize to the activation format — the identical tail to
/// `protea_model::quantized::project`, factored so the tiled path cannot
/// drift from the golden model.
#[must_use]
pub fn finish_projection(
    mut acc: Matrix<i32>,
    bias: &[i32],
    weight_fmt: QFormat,
    s: &QuantSchedule,
) -> Matrix<i8> {
    assert_eq!(acc.cols(), bias.len(), "bias length mismatch");
    for r in 0..acc.rows() {
        for (a, &b) in acc.row_mut(r).iter_mut().zip(bias.iter()) {
            *a = a.saturating_add(b);
        }
    }
    let rq =
        Requantizer::new(s.act_fmt.frac_bits() + weight_fmt.frac_bits(), s.act_fmt, s.rounding);
    acc.map(|a| rq.apply(a))
}

/// The requantizer [`finish_projection`] applies for a projection with
/// weights in `weight_fmt` — exposed so the fused GEMM epilogue and the
/// separate-pass pipeline derive the stage from one definition.
#[must_use]
pub fn projection_requantizer(weight_fmt: QFormat, s: &QuantSchedule) -> Requantizer {
    Requantizer::new(s.act_fmt.frac_bits() + weight_fmt.frac_bits(), s.act_fmt, s.rounding)
}

/// Fused linear projection: `requant(x·W ⊕ bias)` in one GEMM pass, the
/// bias add and requantization running in the kernel's store loop
/// instead of a second sweep over a materialized i32 matrix.
/// Byte-identical to `matmul` + [`finish_projection`] — same exact
/// accumulators, same saturating bias add, same [`Requantizer`].
/// Parallel across column panels inside the GEMM.
#[must_use]
pub fn fused_projection(
    x: &Matrix<i8>,
    w: &protea_tensor::PackedWeights,
    bias: &[i32],
    weight_fmt: QFormat,
    s: &QuantSchedule,
) -> Matrix<i8> {
    let rq = projection_requantizer(weight_fmt, s);
    protea_tensor::matmul_i8_requant_packed_parallel(x, w, Some(bias), rq)
}

/// Fused projection + activation: [`fused_projection`] with the
/// activation LUT applied to each requantized byte in the same store
/// loop — the FFN1 stage (`act(requant(x·W1 ⊕ b1))`) as a single pass.
#[must_use]
pub fn fused_projection_act(
    x: &Matrix<i8>,
    w: &protea_tensor::PackedWeights,
    bias: &[i32],
    weight_fmt: QFormat,
    s: &QuantSchedule,
    act: &protea_fixed::activation::ActivationLut,
) -> Matrix<i8> {
    let rq = projection_requantizer(weight_fmt, s);
    protea_tensor::matmul_i8_packed_epilogue_parallel(x, w, |j, acc| {
        act.apply(rq.apply(acc.saturating_add(bias[j])))
    })
}

/// Tile-accumulated matrix product: `acc += x[:, rows_of(w_tile)] ·
/// w_tile` over every tile of `w` in the grid — the engines' inner
/// pattern. The accumulator must be pre-shaped to `(x.rows, w.cols)`.
pub fn accumulate_tiled(
    acc: &mut Matrix<i32>,
    x: &Matrix<i8>,
    w: &Matrix<i8>,
    grid: &protea_tensor::TileGrid,
) {
    assert_eq!(acc.shape(), (x.rows(), w.cols()));
    assert_eq!(x.cols(), w.rows(), "inner dimensions must agree");
    assert_eq!(grid.extent(), (w.rows(), w.cols()), "grid must tile the weight");
    for t in grid.iter() {
        for i in 0..x.rows() {
            let x_row = x.row(i);
            // `k` strides both the input row and the weight rows; the
            // explicit index keeps the two walks visibly in lockstep.
            #[allow(clippy::needless_range_loop)]
            for k in t.r0..t.r0 + t.h {
                let xv = i32::from(x_row[k]);
                if xv == 0 {
                    continue;
                }
                let w_row = w.row(k);
                let acc_row = acc.row_mut(i);
                for j in t.c0..t.c0 + t.w {
                    acc_row[j] += xv * i32::from(w_row[j]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_tensor::{matmul_i8_i32, TileGrid};

    #[test]
    fn tiled_accumulation_equals_direct_matmul() {
        let x = Matrix::from_fn(5, 12, |r, c| ((r * 31 + c * 7) % 255) as i8);
        let w = Matrix::from_fn(12, 9, |r, c| ((r * 13 + c * 17) % 255) as i8);
        let direct = matmul_i8_i32(&x, &w);
        for (th, tw) in [(12, 9), (4, 3), (5, 4), (1, 1), (12, 2)] {
            let mut acc = Matrix::<i32>::zeros(5, 9);
            accumulate_tiled(&mut acc, &x, &w, &TileGrid::new(12, 9, th, tw));
            assert_eq!(acc.as_slice(), direct.as_slice(), "tile {th}x{tw}");
        }
    }

    #[test]
    fn finish_projection_matches_model_project() {
        use protea_model::quantized::{project, QuantMatrix};
        let s = QuantSchedule::paper();
        let x = Matrix::from_fn(4, 8, |r, c| ((r * 11 + c * 3) % 120) as i8 - 60);
        let wm = Matrix::from_fn(8, 6, |r, c| ((r * 7 + c * 19) % 120) as i8 - 60);
        let w = QuantMatrix { data: wm.clone(), fmt: QFormat::new(8, 6) };
        let bias: Vec<i32> = (0..6).map(|i| (i - 3) * 100).collect();
        let golden = project(&x, &w, &bias, &s);
        let mut acc = Matrix::<i32>::zeros(4, 6);
        accumulate_tiled(&mut acc, &x, &wm, &TileGrid::new(8, 6, 3, 2));
        let tiled = finish_projection(acc, &bias, w.fmt, &s);
        assert_eq!(tiled.as_slice(), golden.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_rejected() {
        let x = Matrix::<i8>::zeros(2, 3);
        let w = Matrix::<i8>::zeros(4, 2);
        let mut acc = Matrix::<i32>::zeros(2, 2);
        accumulate_tiled(&mut acc, &x, &w, &TileGrid::new(4, 2, 2, 2));
    }
}
