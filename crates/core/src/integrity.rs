//! Weight-image integrity: the FNV-sealed digest that closes ABFT's
//! blind spot.
//!
//! ABFT checksums ([`protea_tensor::abft`]) catch corruption of
//! activations and GEMM outputs, but a flip in the *resident weights*
//! is invisible to them — the checksum prediction is computed from the
//! same corrupted image and agrees perfectly. The defense for weights
//! is therefore content hashing: [`weight_digest`] streams every weight
//! matrix and bias vector of a [`QuantizedEncoder`] through FNV-1a, the
//! accelerator seals the value at
//! [`try_load_weights`](crate::Accelerator::try_load_weights), and
//! [`verify_weights`](crate::Accelerator::verify_weights) recomputes
//! and compares it — at load, at reprogram, and whenever the serving
//! layer's periodic scrub event fires. A mismatch surfaces as the typed
//! [`CoreError::Integrity`](crate::CoreError::Integrity) (exit code
//! 10): the card's image is untrusted and must be re-loaded, never
//! retried.
//!
//! The digest covers the model *content* (shape header, weights,
//! biases, layer-norm parameters are excluded only where they are
//! derived), is independent of the lazily packed fast-path copy, and is
//! stable across processes — two cards loaded from the same image
//! always agree.

use protea_hwsim::Fnv64;
use protea_model::quantized::{QuantMatrix, QuantizedEncoder};

/// Fold one quantized matrix into the digest: shape, then row-major
/// element bytes.
fn fold_matrix(h: &mut Fnv64, m: &QuantMatrix) {
    let (rows, cols) = m.data.shape();
    h.write_u64(rows as u64);
    h.write_u64(cols as u64);
    for &v in m.data.as_slice() {
        h.write(&[v as u8]);
    }
}

/// Fold one bias vector into the digest.
fn fold_bias(h: &mut Fnv64, b: &[i32]) {
    h.write_u64(b.len() as u64);
    for &v in b {
        h.write(&v.to_le_bytes());
    }
}

/// The FNV-1a digest of a model image's weight content: shape header,
/// then per layer the six weight matrices (`Wq Wk Wv Wo W1 W2`) and six
/// bias vectors in declaration order. Deterministic and
/// process-independent.
#[must_use]
pub fn weight_digest(weights: &QuantizedEncoder) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(weights.config.d_model as u64);
    h.write_u64(weights.config.layers as u64);
    for layer in &weights.layers {
        fold_matrix(&mut h, &layer.wq);
        fold_matrix(&mut h, &layer.wk);
        fold_matrix(&mut h, &layer.wv);
        fold_matrix(&mut h, &layer.wo);
        fold_matrix(&mut h, &layer.w1);
        fold_matrix(&mut h, &layer.w2);
        fold_bias(&mut h, &layer.bq);
        fold_bias(&mut h, &layer.bk);
        fold_bias(&mut h, &layer.bv);
        fold_bias(&mut h, &layer.bo);
        fold_bias(&mut h, &layer.b1);
        fold_bias(&mut h, &layer.b2);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_model::quantized::QuantSchedule;
    use protea_model::{EncoderConfig, EncoderWeights};

    fn image(seed: u64) -> QuantizedEncoder {
        let cfg = EncoderConfig::new(32, 2, 2, 8);
        QuantizedEncoder::from_float(&EncoderWeights::random(cfg, seed), QuantSchedule::paper())
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let a = image(7);
        assert_eq!(weight_digest(&a), weight_digest(&a.clone()));
        assert_ne!(weight_digest(&a), weight_digest(&image(8)), "different content must differ");
    }

    #[test]
    fn single_bit_flip_changes_the_digest() {
        let clean = image(7);
        let sealed = weight_digest(&clean);
        let mut corrupt = clean.clone();
        let flipped = corrupt.layers[1].w1.data[(3, 5)] ^ 0x10;
        corrupt.layers[1].w1.data[(3, 5)] = flipped;
        assert_ne!(weight_digest(&corrupt), sealed);
        let mut bias_flip = clean;
        bias_flip.layers[0].bo[2] ^= 1;
        assert_ne!(weight_digest(&bias_flip), sealed);
    }
}
