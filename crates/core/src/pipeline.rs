//! The unified execution pipeline: one internal path for every run.
//!
//! Historically each scenario grew its own entry point on
//! [`Accelerator`] — `try_run`, `try_run_batch`, `timing_report`,
//! `timing_report_batched`, `timing_report_faulty` — each
//! re-implementing config/weight/fault/batch plumbing. This module
//! collapses them: a [`RunPlan`] (batch size, optional functional
//! inputs, optional fault injection, tracing on/off) flows through
//! [`Accelerator::execute`] and yields a [`RunOutcome`] (outputs,
//! cycle report, utilization, latency/GOPS, optional trace). Every
//! public entry point is now a thin shim over `execute`.
//!
//! **Bit-exactness contract.** The pipeline preserves the historical
//! arithmetic exactly:
//!
//! * fault-free runs price each phase's tile schedule once and multiply
//!   by the layer count (layers are identical without faults);
//! * fault-injected runs price layer by layer, because faults land in
//!   specific layers; with a zero-rate stream the result equals the
//!   fault-free report bit-for-bit;
//! * `batch = 1` reduces exactly to the single-sequence report.
//!
//! **Zero overhead when off.** Tracing is observational: a traced run's
//! report is byte-identical to the untraced run (the report always
//! comes from the same event-driven simulation; span extraction runs
//! beside it, never instead of it), and an untraced run allocates
//! nothing — the same discipline the fault and overload knobs follow.
//!
//! Spans land on the `protea-hwsim` clock in a bounded
//! [`ExecTrace`] ring buffer: one [`SpanKind::Phase`] span per engine
//! phase per layer, [`SpanKind::Tile`] compute visits nested inside it
//! on the engine track, and [`SpanKind::Dma`] bursts on the DMA track.
//! Fault-free traces are laid out layer-major (layer 0's nine phases,
//! then layer 1's, …); fault-injected traces follow pricing order
//! (phase-major), since each layer's faulted schedule differs.

use crate::accelerator::{Accelerator, RunResult};
use crate::engines::Access;
use crate::error::CoreError;
use crate::fault::{faulty_load, FaultStats, FaultStream, RetryPolicy, Watchdog};
use crate::report::{CycleReport, EnginePhase};
use protea_hwsim::exec_trace::{track, ExecTrace, SpanKind};
use protea_hwsim::Cycles;
use protea_mem::hbm::{bounded_transfer_cycles, ChannelShare};
use protea_mem::overlap::{
    simulate_double_buffered, simulate_double_buffered_spans, simulate_serial,
    simulate_serial_spans, AccessSpans, OverlapReport,
};
use protea_model::OpCount;
use protea_tensor::Matrix;

/// Fault-injection arm of a [`RunPlan`]: the seeded stream plus the
/// driver's recovery machinery.
#[derive(Debug)]
pub struct FaultPlan<'a> {
    /// The per-card fault stream (stateful: each tile load draws).
    pub stream: &'a mut FaultStream,
    /// Hung-transfer detection budget.
    pub watchdog: Watchdog,
    /// Replay/backoff policy for recoverable faults.
    pub retry: RetryPolicy,
    /// Simulation timestamp of the run (fault streams are time-seeded).
    pub now_ns: u64,
}

/// Everything one run needs, in one value. Build with
/// [`RunPlan::timing`] or [`RunPlan::functional`], then arm options.
///
/// The shape and backend come from the [`Accelerator`] the plan is
/// executed on; the plan carries what varies per run.
#[derive(Debug, Default)]
pub struct RunPlan<'a> {
    batch: usize,
    inputs: Option<&'a [Matrix<i8>]>,
    faults: Option<FaultPlan<'a>>,
    trace_capacity: Option<usize>,
}

impl<'a> RunPlan<'a> {
    /// A timing-only run of `batch` weight-stationary sequences (no
    /// functional datapath, no weights required).
    #[must_use]
    pub fn timing(batch: usize) -> Self {
        Self { batch, ..Self::default() }
    }

    /// A functional run: every input goes through the bit-exact
    /// datapath, and the timing half prices the batch.
    #[must_use]
    pub fn functional(inputs: &'a [Matrix<i8>]) -> Self {
        Self { batch: inputs.len(), inputs: Some(inputs), ..Self::default() }
    }

    /// Arm fault injection: every tile load draws from the plan's
    /// stream and layers are priced individually.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan<'a>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arm span tracing with the default ring capacity.
    #[must_use]
    pub fn with_trace(self) -> Self {
        self.with_trace_capacity(ExecTrace::DEFAULT_CAPACITY)
    }

    /// Arm span tracing with an explicit ring capacity.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The batch size this plan prices.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Whether tracing is armed.
    #[must_use]
    pub fn traced(&self) -> bool {
        self.trace_capacity.is_some()
    }

    /// Whether the run is deterministic in the registers alone — no
    /// stateful fault stream — and its timing therefore memoizable.
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.faults.is_none()
    }

    /// The memoization key of this plan on `accel`, or `None` when the
    /// plan draws from a stateful fault stream. Two runs with equal
    /// keys produce byte-identical [`CycleReport`]s, which is what lets
    /// a serving layer cache them.
    #[must_use]
    pub fn memo_key(&self, accel: &Accelerator) -> Option<PlanKey> {
        if !self.deterministic() {
            return None;
        }
        let rt = accel.runtime();
        Some(PlanKey {
            heads: rt.heads,
            layers: rt.layers,
            d_model: rt.d_model,
            seq_len: rt.seq_len,
            batch: self.batch,
            overlap: accel.overlap_enabled(),
        })
    }
}

/// The deterministic-run memo key: the programmed registers, the batch
/// size, and the overlap knob — everything the timing half of a
/// deterministic [`RunPlan`] depends on for a given synthesized design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey {
    /// Programmed attention heads.
    pub heads: usize,
    /// Programmed encoder layers.
    pub layers: usize,
    /// Programmed embedding dimension.
    pub d_model: usize,
    /// Programmed (padded) sequence length.
    pub seq_len: usize,
    /// Weight-stationary batch size.
    pub batch: usize,
    /// Whether load/compute overlap is enabled.
    pub overlap: bool,
}

/// What one [`Accelerator::execute`] call produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Functional outputs, one per input (empty for timing-only plans).
    pub outputs: Vec<Matrix<i8>>,
    /// Cycle accounting for the whole batch.
    pub report: CycleReport,
    /// Engine-busy fraction of the total, `1 − stall/total`.
    pub utilization: f64,
    /// Batch latency in milliseconds at the synthesized clock.
    pub latency_ms: f64,
    /// Whole-batch throughput in GOPS.
    pub gops: f64,
    /// The recorded spans, when the plan armed tracing.
    pub trace: Option<ExecTrace>,
}

impl Accelerator {
    /// Run `plan` through the unified pipeline. This is *the* execution
    /// path: every other run/timing entry point is a shim over it.
    ///
    /// Returns the outcome alongside the run's [`FaultStats`] (all-zero
    /// for deterministic plans), mirroring the fault path's historical
    /// contract: on an aborted run the stats still carry the fault
    /// counts and the abort position.
    ///
    /// # Errors
    /// [`CoreError::EmptyBatch`], [`CoreError::WeightsNotLoaded`] and
    /// [`CoreError::InputShape`] from the functional half;
    /// [`CoreError::Fault`] when an armed fault stream aborts the run.
    ///
    /// # Panics
    /// Panics if a timing-only plan has a zero batch (a functional plan
    /// with no inputs errors with `EmptyBatch` instead).
    pub fn execute(&self, plan: RunPlan<'_>) -> (Result<RunOutcome, CoreError>, FaultStats) {
        let outputs = match plan.inputs {
            Some(xs) => match self.forward_batch(xs) {
                Ok(outputs) => outputs,
                Err(e) => return (Err(e), FaultStats::default()),
            },
            None => Vec::new(),
        };
        assert!(plan.batch > 0, "batch must be nonzero");
        let mut trace = plan.trace_capacity.map(ExecTrace::bounded);
        let (report, stats) = match plan.faults {
            Some(faults) => {
                let (report, stats) = self.faulty_phase_report(plan.batch, faults, trace.as_mut());
                match report {
                    Ok(report) => (report, stats),
                    Err(e) => return (Err(e), stats),
                }
            }
            None => {
                let plans = self.phase_plans();
                let report = self.price_phase_plans(
                    &plans,
                    self.runtime().layers,
                    plan.batch as u64,
                    self.overlap_enabled(),
                    trace.as_mut(),
                );
                (report, FaultStats::default())
            }
        };
        let ops = OpCount::for_config(&self.runtime().to_model_config());
        let outcome = RunOutcome {
            outputs,
            utilization: report.utilization(),
            latency_ms: report.latency_ms(),
            gops: report.gops(&ops) * plan.batch as f64,
            report,
            trace,
        };
        (Ok(outcome), stats)
    }

    /// Functional half: validate, then run every input through the
    /// bit-exact datapath (fanned out across threads on the fast
    /// backend — each sequence is computed whole in one task, so
    /// outputs are unchanged by the parallelism).
    fn forward_batch(&self, xs: &[Matrix<i8>]) -> Result<Vec<Matrix<i8>>, CoreError> {
        if xs.is_empty() {
            return Err(CoreError::EmptyBatch);
        }
        let weights = self.weights().ok_or(CoreError::WeightsNotLoaded)?;
        let rt = self.runtime();
        let expected = (rt.seq_len, rt.d_model);
        for x in xs {
            if x.shape() != expected {
                return Err(CoreError::InputShape { expected, got: x.shape() });
            }
        }
        let parallel_batch = self.backend() == crate::backend::Backend::Fast
            && xs.len() > 1
            && rayon::current_num_threads() > 1;
        if parallel_batch {
            let mut slots: Vec<Option<Matrix<i8>>> = (0..xs.len()).map(|_| None).collect();
            rayon::scope(|sc| {
                for (x, slot) in xs.iter().zip(slots.iter_mut()) {
                    sc.spawn(move |_| *slot = Some(self.forward_functional(x, weights)));
                }
            });
            Ok(slots.into_iter().map(|o| o.expect("every batch item is computed")).collect())
        } else {
            Ok(xs.iter().map(|x| self.forward_functional(x, weights)).collect())
        }
    }

    /// Price a sequence of named phase plans: each phase's schedule is
    /// simulated once (layers are identical without faults) and
    /// multiplied by `layers`. This is the single fault-free pricing
    /// loop — the encoder and both decoder timing paths all land here.
    ///
    /// `double_buffered` selects the overlap scheduler (the encoder's
    /// ablation knob; the decoder always overlaps). When `trace` is
    /// given, spans are laid out layer-major on the engine/DMA tracks.
    pub(crate) fn price_phase_plans(
        &self,
        plans: &[(&'static str, Vec<Access>)],
        layers: usize,
        batch: u64,
        double_buffered: bool,
        trace: Option<&mut ExecTrace>,
    ) -> CycleReport {
        let pricer = Pricer::of(self, batch, double_buffered);
        let lmul = layers as u64;
        let mut phases = Vec::with_capacity(plans.len());
        let mut priced: Vec<(OverlapReport, Vec<AccessSpans>)> = Vec::new();
        let mut total = Cycles::ZERO;
        for (name, plan) in plans {
            let schedule = pricer.schedule(plan);
            let r = pricer.simulate(&schedule);
            let cycles = Cycles(r.total.get() * lmul);
            let load_stall = Cycles(r.compute_stall.get() * lmul);
            total = total.saturating_add(cycles);
            phases.push(EnginePhase { name, cycles, load_stall });
            if trace.is_some() {
                priced.push((r, pricer.spans(&schedule)));
            }
        }
        if let Some(tr) = trace {
            emit_layer_major(tr, plans, &priced, lmul);
        }
        CycleReport { phases, layers, total, fmax_mhz: self.design().fmax_mhz }
    }

    /// The fault-injected pricing loop: every tile load draws from the
    /// stream, layers are priced individually, and an unrecoverable
    /// fault aborts with the occupied-cycle count in the stats.
    fn faulty_phase_report(
        &self,
        batch: usize,
        faults: FaultPlan<'_>,
        mut trace: Option<&mut ExecTrace>,
    ) -> (Result<CycleReport, CoreError>, FaultStats) {
        let FaultPlan { stream, watchdog, retry, now_ns } = faults;
        let pricer = Pricer::of(self, batch as u64, self.overlap_enabled());
        let mut stats = FaultStats::default();
        let layers = self.runtime().layers as u64;
        let mut phases = Vec::new();
        let mut total = Cycles::ZERO;
        let mut cursor: u64 = 0;
        for (name, plan) in self.phase_plans() {
            let mut phase_cycles: u64 = 0;
            let mut phase_stall: u64 = 0;
            for layer in 0..layers {
                let mut schedule: Vec<(Cycles, Cycles)> = Vec::with_capacity(plan.len());
                for a in &plan {
                    let clean = pricer.load_cycles(a.load_bytes).get();
                    match faulty_load(clean, stream, watchdog, retry, now_ns, &mut stats) {
                        Ok(load) => {
                            schedule.push((Cycles(load), Cycles(a.compute_cycles * pricer.batch)));
                        }
                        Err((kind, spent)) => {
                            let issued: u64 = schedule.iter().map(|(l, _)| l.get()).sum();
                            stats.abort_cycles = total
                                .get()
                                .saturating_add(phase_cycles)
                                .saturating_add(issued)
                                .saturating_add(spent);
                            let context = format!("{name} tile load, layer {layer}, batch {batch}");
                            return (Err(CoreError::Fault { kind, context }), stats);
                        }
                    }
                }
                let r = pricer.simulate(&schedule);
                phase_cycles = phase_cycles.saturating_add(r.total.get());
                phase_stall = phase_stall.saturating_add(r.compute_stall.get());
                if let Some(tr) = trace.as_deref_mut() {
                    emit_phase(tr, name, cursor, &r, &pricer.spans(&schedule));
                    cursor = cursor.saturating_add(r.total.get());
                }
            }
            total = total.saturating_add(Cycles(phase_cycles));
            phases.push(EnginePhase {
                name,
                cycles: Cycles(phase_cycles),
                load_stall: Cycles(phase_stall),
            });
        }
        let layers = self.runtime().layers;
        let report = CycleReport { phases, layers, total, fmax_mhz: self.design().fmax_mhz };
        (Ok(report), stats)
    }
}

/// The pricing context every path shares: the AXI/HBM channel model at
/// the synthesized clock, the batch multiplier, and the overlap knob.
struct Pricer<'a> {
    accel: &'a Accelerator,
    share: ChannelShare,
    batch: u64,
    double_buffered: bool,
}

impl<'a> Pricer<'a> {
    fn of(accel: &'a Accelerator, batch: u64, double_buffered: bool) -> Self {
        let design = accel.design();
        let freq_hz = design.fmax_mhz * 1e6;
        let share = ChannelShare::of(&design.device.memory, design.config.dma_sharing, freq_hz);
        Self { accel, share, batch, double_buffered }
    }

    fn load_cycles(&self, bytes: u64) -> Cycles {
        bounded_transfer_cycles(&self.accel.design().config.axi, &self.share, bytes)
    }

    /// An access plan priced into (load, compute) cycle pairs, compute
    /// scaled by the weight-stationary batch.
    fn schedule(&self, plan: &[Access]) -> Vec<(Cycles, Cycles)> {
        plan.iter()
            .map(|a| (self.load_cycles(a.load_bytes), Cycles(a.compute_cycles * self.batch)))
            .collect()
    }

    fn simulate(&self, schedule: &[(Cycles, Cycles)]) -> OverlapReport {
        if self.double_buffered {
            simulate_double_buffered(schedule)
        } else {
            simulate_serial(schedule)
        }
    }

    fn spans(&self, schedule: &[(Cycles, Cycles)]) -> Vec<AccessSpans> {
        if self.double_buffered {
            simulate_double_buffered_spans(schedule).1
        } else {
            simulate_serial_spans(schedule).1
        }
    }
}

/// Lay a fault-free run out layer-major: layer 0's phases back to back,
/// then layer 1's, … — each phase's span pattern repeating unchanged.
fn emit_layer_major(
    tr: &mut ExecTrace,
    plans: &[(&'static str, Vec<Access>)],
    priced: &[(OverlapReport, Vec<AccessSpans>)],
    layers: u64,
) {
    let layer_cycles: u64 = priced.iter().map(|(r, _)| r.total.get()).sum();
    for layer in 0..layers {
        let mut base = layer.saturating_mul(layer_cycles);
        for ((name, _), (r, spans)) in plans.iter().zip(priced) {
            emit_phase(tr, name, base, r, spans);
            base = base.saturating_add(r.total.get());
        }
    }
}

/// Emit one phase occurrence at absolute offset `base`: the phase span
/// on the engine track, tile visits nested inside it, DMA bursts on
/// the DMA track. Zero-length bursts/visits are skipped.
fn emit_phase(tr: &mut ExecTrace, name: &str, base: u64, r: &OverlapReport, spans: &[AccessSpans]) {
    tr.push(name, SpanKind::Phase, track::ENGINE, base, base.saturating_add(r.total.get()));
    for (i, s) in spans.iter().enumerate() {
        if s.load_end > s.load_start {
            tr.push(
                format!("DMA {name}"),
                SpanKind::Dma,
                track::DMA,
                base.saturating_add(s.load_start.get()),
                base.saturating_add(s.load_end.get()),
            );
        }
        if s.compute_end > s.compute_start {
            tr.push(
                format!("{name} tile {i}"),
                SpanKind::Tile,
                track::ENGINE,
                base.saturating_add(s.compute_start.get()),
                base.saturating_add(s.compute_end.get()),
            );
        }
    }
}

impl RunOutcome {
    /// Convenience view as the historical single-run result (first
    /// output, whole-batch metrics).
    ///
    /// # Panics
    /// Panics when the outcome has no functional outputs.
    #[must_use]
    pub fn into_run_result(mut self) -> RunResult {
        RunResult {
            output: self.outputs.pop().expect("functional outcome has an output"),
            report: self.report,
            latency_ms: self.latency_ms,
            gops: self.gops,
        }
    }
}
