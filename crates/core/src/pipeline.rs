//! The unified execution pipeline: one internal path for every run.
//!
//! Historically each scenario grew its own entry point on
//! [`Accelerator`] — `try_run`, `try_run_batch`, `timing_report`,
//! `timing_report_batched`, `timing_report_faulty` — each
//! re-implementing config/weight/fault/batch plumbing. This module
//! collapses them: a [`RunPlan`] (batch size, optional functional
//! inputs, optional fault injection, tracing on/off) flows through
//! [`Accelerator::execute`] and yields a [`RunOutcome`] (outputs,
//! cycle report, utilization, latency/GOPS, optional trace). Every
//! public entry point is now a thin shim over `execute`.
//!
//! **Bit-exactness contract.** The pipeline preserves the historical
//! arithmetic exactly:
//!
//! * fault-free runs price each phase's tile schedule once and multiply
//!   by the layer count (layers are identical without faults);
//! * fault-injected runs price layer by layer, because faults land in
//!   specific layers; with a zero-rate stream the result equals the
//!   fault-free report bit-for-bit;
//! * `batch = 1` reduces exactly to the single-sequence report.
//!
//! **Zero overhead when off.** Tracing is observational: a traced run's
//! report is byte-identical to the untraced run (the report always
//! comes from the same event-driven simulation; span extraction runs
//! beside it, never instead of it), and an untraced run allocates
//! nothing — the same discipline the fault and overload knobs follow.
//!
//! Spans land on the `protea-hwsim` clock in a bounded
//! [`ExecTrace`] ring buffer: one [`SpanKind::Phase`] span per engine
//! phase per layer, [`SpanKind::Tile`] compute visits nested inside it
//! on the engine track, and [`SpanKind::Dma`] bursts on the DMA track.
//! Fault-free traces are laid out layer-major (layer 0's nine phases,
//! then layer 1's, …); fault-injected traces follow pricing order
//! (phase-major), since each layer's faulted schedule differs.

use crate::accelerator::{Accelerator, RunResult};
use crate::decoder::{decode_step_plans, prefill_plans};
use crate::engines::Access;
use crate::error::CoreError;
use crate::fault::{faulty_load, FaultStats, FaultStream, RetryPolicy, Watchdog};
use crate::registers::{RegisterError, RuntimeConfig};
use crate::report::{CycleReport, EnginePhase};
use protea_hwsim::exec_trace::{track, ExecTrace, SpanKind};
use protea_hwsim::Cycles;
use protea_mem::hbm::{bounded_transfer_cycles, ChannelShare};
use protea_mem::overlap::{
    simulate_double_buffered, simulate_double_buffered_spans, simulate_serial,
    simulate_serial_spans, AccessSpans, OverlapReport,
};
use protea_model::{DecoderKvCache, OpCount, PackedDecoder, QuantizedDecoder};
use protea_tensor::Matrix;

/// Which execution phase a [`RunPlan`] prices. The default — and the
/// only phase encoder-only configurations ever see — is [`Phase::Encode`],
/// which preserves the historical pipeline byte for byte. The two
/// generation phases route the same unified path through the decoder's
/// phase-plan builders with KV-cache traffic charged on the memory link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// The encoder pass over the programmed `SL × d_model` shape —
    /// today's behavior, bit-identical.
    #[default]
    Encode,
    /// The prompt pass of a generation: the whole prompt runs through
    /// the decoder stack once, populating the KV cache.
    Prefill {
        /// Prompt rows (target-side positions processed in one pass).
        prompt_len: usize,
    },
    /// One autoregressive token step against a resident KV cache.
    Decode {
        /// 0-based generation step (bookkeeping only; the cost depends
        /// on `kv_len`).
        step: usize,
        /// Cached self-attention positions this step attends over
        /// (prompt + tokens decoded so far, ≥ 1 counting this row).
        kv_len: usize,
    },
}

/// The functional arm of a decode-phase plan: which decoder steps, with
/// what resident cache, on which input row. Attach with
/// [`RunPlan::with_session`]; the pipeline runs exactly one KV-cached
/// step (through the packed fast path when `packed` is given — output
/// bit-identical either way) and returns the `1 × d` row in
/// [`RunOutcome::outputs`].
#[derive(Debug)]
pub struct DecodeSession<'a> {
    /// The decoder being stepped.
    pub decoder: &'a QuantizedDecoder,
    /// Pre-packed projection weights for the SIMD fast path; `None`
    /// takes the scalar reference path.
    pub packed: Option<&'a PackedDecoder>,
    /// The session's resident KV cache (mutated: one position appended).
    pub cache: &'a mut DecoderKvCache,
    /// The `1 × d_model` input row for this position.
    pub x_row: &'a Matrix<i8>,
}

/// Fault-injection arm of a [`RunPlan`]: the seeded stream plus the
/// driver's recovery machinery.
#[derive(Debug)]
pub struct FaultPlan<'a> {
    /// The per-card fault stream (stateful: each tile load draws).
    pub stream: &'a mut FaultStream,
    /// Hung-transfer detection budget.
    pub watchdog: Watchdog,
    /// Replay/backoff policy for recoverable faults.
    pub retry: RetryPolicy,
    /// Simulation timestamp of the run (fault streams are time-seeded).
    pub now_ns: u64,
}

/// Everything one run needs, in one value. Build with
/// [`RunPlan::timing`] or [`RunPlan::functional`], then arm options.
///
/// The shape and backend come from the [`Accelerator`] the plan is
/// executed on; the plan carries what varies per run.
#[derive(Debug, Default)]
pub struct RunPlan<'a> {
    batch: usize,
    inputs: Option<&'a [Matrix<i8>]>,
    faults: Option<FaultPlan<'a>>,
    trace_capacity: Option<usize>,
    phase: Phase,
    session: Option<DecodeSession<'a>>,
}

impl<'a> RunPlan<'a> {
    /// A timing-only run of `batch` weight-stationary sequences (no
    /// functional datapath, no weights required).
    #[must_use]
    pub fn timing(batch: usize) -> Self {
        Self { batch, ..Self::default() }
    }

    /// A functional run: every input goes through the bit-exact
    /// datapath, and the timing half prices the batch.
    #[must_use]
    pub fn functional(inputs: &'a [Matrix<i8>]) -> Self {
        Self { batch: inputs.len(), inputs: Some(inputs), ..Self::default() }
    }

    /// A prefill pass: `batch` prompts of `prompt_len` rows run through
    /// the decoder stack once each, populating their KV caches. The
    /// programmed `seq_len` is the source/memory length the
    /// cross-attention spans.
    #[must_use]
    pub fn prefill(prompt_len: usize, batch: usize) -> Self {
        Self { batch, phase: Phase::Prefill { prompt_len }, ..Self::default() }
    }

    /// One autoregressive token step for a batch of `batch` concurrent
    /// sessions, each attending over `kv_len` cached positions. The
    /// programmed `seq_len` is the source/memory length.
    #[must_use]
    pub fn decode(step: usize, kv_len: usize, batch: usize) -> Self {
        Self { batch, phase: Phase::Decode { step, kv_len }, ..Self::default() }
    }

    /// Attach the functional arm of a decode step: the pipeline runs one
    /// KV-cached step of `session.decoder` and returns the output row.
    #[must_use]
    pub fn with_session(mut self, session: DecodeSession<'a>) -> Self {
        self.session = Some(session);
        self
    }

    /// The execution phase this plan prices.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Arm fault injection: every tile load draws from the plan's
    /// stream and layers are priced individually.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan<'a>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arm span tracing with the default ring capacity.
    #[must_use]
    pub fn with_trace(self) -> Self {
        self.with_trace_capacity(ExecTrace::DEFAULT_CAPACITY)
    }

    /// Arm span tracing with an explicit ring capacity.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The batch size this plan prices.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Whether tracing is armed.
    #[must_use]
    pub fn traced(&self) -> bool {
        self.trace_capacity.is_some()
    }

    /// Whether the run is deterministic in the registers alone — no
    /// stateful fault stream — and its timing therefore memoizable.
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.faults.is_none()
    }

    /// The memoization key of this plan on `accel`, or `None` when the
    /// plan draws from a stateful fault stream. Two runs with equal
    /// keys produce byte-identical [`CycleReport`]s, which is what lets
    /// a serving layer cache them.
    #[must_use]
    pub fn memo_key(&self, accel: &Accelerator) -> Option<PlanKey> {
        if !self.deterministic() {
            return None;
        }
        // The key does not carry a phase, so only encode plans (whose
        // cost the registers fully determine) are memoizable.
        if self.phase != Phase::Encode {
            return None;
        }
        let rt = accel.runtime();
        Some(PlanKey {
            heads: rt.heads,
            layers: rt.layers,
            d_model: rt.d_model,
            seq_len: rt.seq_len,
            batch: self.batch,
            overlap: accel.overlap_enabled(),
        })
    }
}

/// The deterministic-run memo key: the programmed registers, the batch
/// size, and the overlap knob — everything the timing half of a
/// deterministic [`RunPlan`] depends on for a given synthesized design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey {
    /// Programmed attention heads.
    pub heads: usize,
    /// Programmed encoder layers.
    pub layers: usize,
    /// Programmed embedding dimension.
    pub d_model: usize,
    /// Programmed (padded) sequence length.
    pub seq_len: usize,
    /// Weight-stationary batch size.
    pub batch: usize,
    /// Whether load/compute overlap is enabled.
    pub overlap: bool,
}

/// What one [`Accelerator::execute`] call produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Functional outputs, one per input (empty for timing-only plans).
    pub outputs: Vec<Matrix<i8>>,
    /// Cycle accounting for the whole batch.
    pub report: CycleReport,
    /// Engine-busy fraction of the total, `1 − stall/total`.
    pub utilization: f64,
    /// Batch latency in milliseconds at the synthesized clock.
    pub latency_ms: f64,
    /// Whole-batch throughput in GOPS.
    pub gops: f64,
    /// The recorded spans, when the plan armed tracing.
    pub trace: Option<ExecTrace>,
}

impl Accelerator {
    /// Run `plan` through the unified pipeline. This is *the* execution
    /// path: every other run/timing entry point is a shim over it.
    ///
    /// Returns the outcome alongside the run's [`FaultStats`] (all-zero
    /// for deterministic plans), mirroring the fault path's historical
    /// contract: on an aborted run the stats still carry the fault
    /// counts and the abort position.
    ///
    /// # Errors
    /// [`CoreError::EmptyBatch`], [`CoreError::WeightsNotLoaded`] and
    /// [`CoreError::InputShape`] from the functional half;
    /// [`CoreError::Fault`] when an armed fault stream aborts the run.
    ///
    /// # Panics
    /// Panics if a timing-only plan has a zero batch (a functional plan
    /// with no inputs errors with `EmptyBatch` instead).
    pub fn execute(&self, plan: RunPlan<'_>) -> (Result<RunOutcome, CoreError>, FaultStats) {
        let mut outputs = match plan.inputs {
            Some(xs) => match self.forward_batch(xs) {
                Ok(outputs) => outputs,
                Err(e) => return (Err(e), FaultStats::default()),
            },
            None => Vec::new(),
        };
        if let Some(session) = plan.session {
            let DecodeSession { decoder, packed, cache, x_row } = session;
            let step = match packed {
                Some(p) => decoder.try_decode_step_packed(p, cache, x_row),
                None => decoder.try_decode_step(cache, x_row),
            };
            match step {
                Ok(row) => outputs.push(row),
                Err(e) => return (Err(e.into()), FaultStats::default()),
            }
        }
        assert!(plan.batch > 0, "batch must be nonzero");
        let mut trace = plan.trace_capacity.map(ExecTrace::bounded);
        let (report, stats) = match (plan.faults, plan.phase) {
            (Some(faults), Phase::Encode) => {
                let (report, stats) = self.faulty_phase_report(plan.batch, faults, trace.as_mut());
                match report {
                    Ok(report) => (report, stats),
                    Err(e) => return (Err(e), stats),
                }
            }
            (Some(_), _) => {
                let e =
                    CoreError::InvalidConfig("fault injection covers the encode phase only".into());
                return (Err(e), FaultStats::default());
            }
            (None, Phase::Encode) => {
                let plans = self.phase_plans();
                let report = self.price_phase_plans(
                    &plans,
                    self.runtime().layers,
                    plan.batch as u64,
                    self.overlap_enabled(),
                    trace.as_mut(),
                );
                (report, FaultStats::default())
            }
            (None, Phase::Prefill { prompt_len }) => {
                if let Err(e) = self.check_phase_len("prompt_len", prompt_len) {
                    return (Err(e), FaultStats::default());
                }
                let base = *self.runtime();
                let rt = RuntimeConfig { seq_len: prompt_len, ..base };
                let plans = prefill_plans(&self.design().config, &rt, base.seq_len as u64);
                // Generation phases always overlap loads with compute
                // (the decoder has no serial-ablation knob).
                let report = self.price_phase_plans(
                    &plans,
                    rt.layers,
                    plan.batch as u64,
                    true,
                    trace.as_mut(),
                );
                (report, FaultStats::default())
            }
            (None, Phase::Decode { step: _, kv_len }) => {
                if let Err(e) = self.check_phase_len("kv_len", kv_len) {
                    return (Err(e), FaultStats::default());
                }
                let base = *self.runtime();
                let rt = RuntimeConfig { seq_len: 1, ..base };
                // The batch is baked into the plans as streamed rows
                // (weight-stationary amortization with per-session KV
                // traffic), so the pricer itself runs at batch 1 —
                // multiplying compute again would double-charge.
                let plans = decode_step_plans(
                    &self.design().config,
                    &rt,
                    kv_len as u64,
                    base.seq_len as u64,
                    plan.batch.max(1) as u64,
                );
                let report = self.price_phase_plans(&plans, rt.layers, 1, true, trace.as_mut());
                (report, FaultStats::default())
            }
        };
        let ops = OpCount::for_config(&self.runtime().to_model_config());
        let outcome = RunOutcome {
            outputs,
            utilization: report.utilization(),
            latency_ms: report.latency_ms(),
            gops: report.gops(&ops) * plan.batch as f64,
            report,
            trace,
        };
        (Ok(outcome), stats)
    }

    /// A generation-phase length must fit the synthesized sequence
    /// capacity, exactly like the programmed `seq_len`.
    fn check_phase_len(&self, reg: &'static str, len: usize) -> Result<(), CoreError> {
        let max = self.design().config.sl_max;
        if len == 0 || len > max {
            return Err(CoreError::Register(RegisterError::ExceedsCapacity {
                reg,
                requested: len as u32,
                max: max as u32,
            }));
        }
        Ok(())
    }

    /// Functional half: validate, then run every input through the
    /// bit-exact datapath (fanned out across threads on the fast
    /// backend — each sequence is computed whole in one task, so
    /// outputs are unchanged by the parallelism).
    fn forward_batch(&self, xs: &[Matrix<i8>]) -> Result<Vec<Matrix<i8>>, CoreError> {
        if xs.is_empty() {
            return Err(CoreError::EmptyBatch);
        }
        let weights = self.weights().ok_or(CoreError::WeightsNotLoaded)?;
        let rt = self.runtime();
        let expected = (rt.seq_len, rt.d_model);
        for x in xs {
            if x.shape() != expected {
                return Err(CoreError::InputShape { expected, got: x.shape() });
            }
        }
        let parallel_batch = self.backend() == crate::backend::Backend::Fast
            && xs.len() > 1
            && rayon::current_num_threads() > 1;
        if parallel_batch {
            let mut slots: Vec<Option<Matrix<i8>>> = (0..xs.len()).map(|_| None).collect();
            rayon::scope(|sc| {
                for (x, slot) in xs.iter().zip(slots.iter_mut()) {
                    sc.spawn(move |_| *slot = Some(self.forward_functional(x, weights)));
                }
            });
            Ok(slots.into_iter().map(|o| o.expect("every batch item is computed")).collect())
        } else {
            Ok(xs.iter().map(|x| self.forward_functional(x, weights)).collect())
        }
    }

    /// Price a sequence of named phase plans: each phase's schedule is
    /// simulated once (layers are identical without faults) and
    /// multiplied by `layers`. This is the single fault-free pricing
    /// loop — the encoder and both decoder timing paths all land here.
    ///
    /// `double_buffered` selects the overlap scheduler (the encoder's
    /// ablation knob; the decoder always overlaps). When `trace` is
    /// given, spans are laid out layer-major on the engine/DMA tracks.
    pub(crate) fn price_phase_plans(
        &self,
        plans: &[(&'static str, Vec<Access>)],
        layers: usize,
        batch: u64,
        double_buffered: bool,
        trace: Option<&mut ExecTrace>,
    ) -> CycleReport {
        let pricer = Pricer::of(self, batch, double_buffered);
        let lmul = layers as u64;
        let mut phases = Vec::with_capacity(plans.len());
        let mut priced: Vec<(OverlapReport, Vec<AccessSpans>)> = Vec::new();
        let mut total = Cycles::ZERO;
        for (name, plan) in plans {
            let schedule = pricer.schedule(plan);
            let r = pricer.simulate(&schedule);
            let cycles = Cycles(r.total.get() * lmul);
            let load_stall = Cycles(r.compute_stall.get() * lmul);
            total = total.saturating_add(cycles);
            phases.push(EnginePhase { name, cycles, load_stall });
            if trace.is_some() {
                priced.push((r, pricer.spans(&schedule)));
            }
        }
        if let Some(tr) = trace {
            emit_layer_major(tr, plans, &priced, lmul);
        }
        CycleReport { phases, layers, total, fmax_mhz: self.design().fmax_mhz }
    }

    /// The fault-injected pricing loop: every tile load draws from the
    /// stream, layers are priced individually, and an unrecoverable
    /// fault aborts with the occupied-cycle count in the stats.
    fn faulty_phase_report(
        &self,
        batch: usize,
        faults: FaultPlan<'_>,
        mut trace: Option<&mut ExecTrace>,
    ) -> (Result<CycleReport, CoreError>, FaultStats) {
        let FaultPlan { stream, watchdog, retry, now_ns } = faults;
        let pricer = Pricer::of(self, batch as u64, self.overlap_enabled());
        let mut stats = FaultStats::default();
        let layers = self.runtime().layers as u64;
        let mut phases = Vec::new();
        let mut total = Cycles::ZERO;
        let mut cursor: u64 = 0;
        for (name, plan) in self.phase_plans() {
            let mut phase_cycles: u64 = 0;
            let mut phase_stall: u64 = 0;
            for layer in 0..layers {
                let mut schedule: Vec<(Cycles, Cycles)> = Vec::with_capacity(plan.len());
                for a in &plan {
                    let clean = pricer.load_cycles(a.load_bytes).get();
                    match faulty_load(clean, stream, watchdog, retry, now_ns, &mut stats) {
                        Ok(load) => {
                            schedule.push((Cycles(load), Cycles(a.compute_cycles * pricer.batch)));
                        }
                        Err((kind, spent)) => {
                            let issued: u64 = schedule.iter().map(|(l, _)| l.get()).sum();
                            stats.abort_cycles = total
                                .get()
                                .saturating_add(phase_cycles)
                                .saturating_add(issued)
                                .saturating_add(spent);
                            let context = format!("{name} tile load, layer {layer}, batch {batch}");
                            return (Err(CoreError::Fault { kind, context }), stats);
                        }
                    }
                }
                let r = pricer.simulate(&schedule);
                phase_cycles = phase_cycles.saturating_add(r.total.get());
                phase_stall = phase_stall.saturating_add(r.compute_stall.get());
                if let Some(tr) = trace.as_deref_mut() {
                    emit_phase(tr, name, cursor, &r, &pricer.spans(&schedule));
                    cursor = cursor.saturating_add(r.total.get());
                }
            }
            total = total.saturating_add(Cycles(phase_cycles));
            phases.push(EnginePhase {
                name,
                cycles: Cycles(phase_cycles),
                load_stall: Cycles(phase_stall),
            });
        }
        let layers = self.runtime().layers;
        let report = CycleReport { phases, layers, total, fmax_mhz: self.design().fmax_mhz };
        (Ok(report), stats)
    }
}

/// The pricing context every path shares: the AXI/HBM channel model at
/// the synthesized clock, the batch multiplier, and the overlap knob.
struct Pricer<'a> {
    accel: &'a Accelerator,
    share: ChannelShare,
    batch: u64,
    double_buffered: bool,
}

impl<'a> Pricer<'a> {
    fn of(accel: &'a Accelerator, batch: u64, double_buffered: bool) -> Self {
        let design = accel.design();
        let freq_hz = design.fmax_mhz * 1e6;
        let share = ChannelShare::of(&design.device.memory, design.config.dma_sharing, freq_hz);
        Self { accel, share, batch, double_buffered }
    }

    fn load_cycles(&self, bytes: u64) -> Cycles {
        bounded_transfer_cycles(&self.accel.design().config.axi, &self.share, bytes)
    }

    /// An access plan priced into (load, compute) cycle pairs, compute
    /// scaled by the weight-stationary batch.
    fn schedule(&self, plan: &[Access]) -> Vec<(Cycles, Cycles)> {
        plan.iter()
            .map(|a| (self.load_cycles(a.load_bytes), Cycles(a.compute_cycles * self.batch)))
            .collect()
    }

    fn simulate(&self, schedule: &[(Cycles, Cycles)]) -> OverlapReport {
        if self.double_buffered {
            simulate_double_buffered(schedule)
        } else {
            simulate_serial(schedule)
        }
    }

    fn spans(&self, schedule: &[(Cycles, Cycles)]) -> Vec<AccessSpans> {
        if self.double_buffered {
            simulate_double_buffered_spans(schedule).1
        } else {
            simulate_serial_spans(schedule).1
        }
    }
}

/// Lay a fault-free run out layer-major: layer 0's phases back to back,
/// then layer 1's, … — each phase's span pattern repeating unchanged.
fn emit_layer_major(
    tr: &mut ExecTrace,
    plans: &[(&'static str, Vec<Access>)],
    priced: &[(OverlapReport, Vec<AccessSpans>)],
    layers: u64,
) {
    let layer_cycles: u64 = priced.iter().map(|(r, _)| r.total.get()).sum();
    for layer in 0..layers {
        let mut base = layer.saturating_mul(layer_cycles);
        for ((name, _), (r, spans)) in plans.iter().zip(priced) {
            emit_phase(tr, name, base, r, spans);
            base = base.saturating_add(r.total.get());
        }
    }
}

/// Emit one phase occurrence at absolute offset `base`: the phase span
/// on the engine track, tile visits nested inside it, DMA bursts on
/// the DMA track. Zero-length bursts/visits are skipped.
fn emit_phase(tr: &mut ExecTrace, name: &str, base: u64, r: &OverlapReport, spans: &[AccessSpans]) {
    tr.push(name, SpanKind::Phase, track::ENGINE, base, base.saturating_add(r.total.get()));
    for (i, s) in spans.iter().enumerate() {
        if s.load_end > s.load_start {
            tr.push(
                format!("DMA {name}"),
                SpanKind::Dma,
                track::DMA,
                base.saturating_add(s.load_start.get()),
                base.saturating_add(s.load_end.get()),
            );
        }
        if s.compute_end > s.compute_start {
            tr.push(
                format!("{name} tile {i}"),
                SpanKind::Tile,
                track::ENGINE,
                base.saturating_add(s.compute_start.get()),
                base.saturating_add(s.compute_end.get()),
            );
        }
    }
}

impl RunOutcome {
    /// Convenience view as the historical single-run result (first
    /// output, whole-batch metrics).
    ///
    /// # Panics
    /// Panics when the outcome has no functional outputs.
    #[must_use]
    pub fn into_run_result(mut self) -> RunResult {
        RunResult {
            output: self.outputs.pop().expect("functional outcome has an output"),
            report: self.report,
            latency_ms: self.latency_ms,
            gops: self.gops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::SynthesisConfig;
    use protea_model::{DecoderWeights, EncoderConfig, QuantSchedule};
    use protea_platform::FpgaDevice;

    fn accel(cfg: &EncoderConfig) -> Accelerator {
        let mut a =
            Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
                .expect("design fits");
        a.program(RuntimeConfig {
            heads: cfg.heads,
            layers: cfg.layers,
            d_model: cfg.d_model,
            seq_len: cfg.seq_len,
        })
        .expect("register write");
        a
    }

    fn decoder(cfg: EncoderConfig, seed: u64) -> QuantizedDecoder {
        QuantizedDecoder::from_float(&DecoderWeights::random(cfg, seed), QuantSchedule::paper())
    }

    #[test]
    fn decode_plan_matches_decode_step_timing_shim() {
        // The legacy decode_step_timing entry point and the phase-aware
        // pipeline must price a step identically.
        let cfg = EncoderConfig::new(96, 4, 2, 16);
        let a = accel(&cfg);
        let dec = decoder(cfg, 31);
        for pos in [0usize, 3, 7] {
            let (outcome, _) = a.execute(RunPlan::decode(pos, pos + 1, 1));
            let pipeline = outcome.expect("decode plan prices");
            let shim = a.decode_step_timing(&dec, pos, 16);
            assert_eq!(pipeline.report.total, shim.total, "position {pos}");
        }
    }

    #[test]
    fn decode_session_output_matches_full_forward() {
        let cfg = EncoderConfig::new(32, 4, 2, 8);
        let a = accel(&cfg);
        let dec = decoder(cfg, 33);
        let packed = dec.pack();
        let mem = Matrix::from_fn(8, 32, |r, c| ((r * 13 + c * 3) % 110) as i8 - 50);
        let x = Matrix::from_fn(6, 32, |r, c| ((r * 7 + c * 11) % 110) as i8 - 50);
        let full = dec.forward(&x, &mem);
        let mut cache = DecoderKvCache::new(&dec, &mem);
        for pos in 0..6 {
            let row = x.submatrix(pos, 0, 1, 32);
            let plan = RunPlan::decode(pos, pos + 1, 1).with_session(DecodeSession {
                decoder: &dec,
                packed: Some(&packed),
                cache: &mut cache,
                x_row: &row,
            });
            let (outcome, _) = a.execute(plan);
            let out = outcome.expect("decode step runs");
            assert_eq!(out.outputs.len(), 1);
            assert_eq!(out.outputs[0].row(0), full.row(pos), "position {pos} diverged");
            assert!(out.latency_ms > 0.0);
        }
    }

    #[test]
    fn session_capacity_error_lifts_to_core_error() {
        let cfg = EncoderConfig::new(32, 4, 1, 8);
        let a = accel(&cfg);
        let dec = decoder(cfg, 35);
        let mem = Matrix::from_fn(8, 32, |r, c| ((r + c) % 90) as i8);
        let mut cache = DecoderKvCache::bounded(&dec, &mem, 1);
        let row = Matrix::from_fn(1, 32, |_, c| (c % 40) as i8);
        let step = |cache: &mut DecoderKvCache, pos: usize| {
            let plan = RunPlan::decode(pos, pos + 1, 1).with_session(DecodeSession {
                decoder: &dec,
                packed: None,
                cache,
                x_row: &row,
            });
            a.execute(plan).0
        };
        assert!(step(&mut cache, 0).is_ok());
        let err = step(&mut cache, 1).unwrap_err();
        assert_eq!(err, CoreError::KvCapacity { positions: 1, capacity: 1 });
        assert_eq!(err.exit_code(), 11);
    }

    #[test]
    fn prefill_prices_between_one_step_and_full_forward_shape() {
        let cfg = EncoderConfig::new(96, 4, 2, 32);
        let a = accel(&cfg);
        let (one, _) = a.execute(RunPlan::decode(0, 1, 1));
        let (pre, _) = a.execute(RunPlan::prefill(16, 1));
        let one = one.expect("decode prices");
        let pre = pre.expect("prefill prices");
        assert!(
            pre.report.total > one.report.total,
            "a 16-row prefill must cost more than one token step"
        );
    }

    #[test]
    fn generation_phases_reject_oversized_lengths_and_faults() {
        let cfg = EncoderConfig::new(96, 4, 1, 16);
        let a = accel(&cfg);
        let sl_max = a.design().config.sl_max;
        assert!(matches!(
            a.execute(RunPlan::prefill(sl_max + 1, 1)).0.unwrap_err(),
            CoreError::Register(RegisterError::ExceedsCapacity { reg: "prompt_len", .. })
        ));
        assert!(matches!(
            a.execute(RunPlan::decode(0, 0, 1)).0.unwrap_err(),
            CoreError::Register(RegisterError::ExceedsCapacity { reg: "kv_len", .. })
        ));
        let mut stream = FaultStream::seeded(7, 0, crate::fault::FaultRates::scaled(1.0));
        let plan = RunPlan::decode(0, 1, 1).with_faults(FaultPlan {
            stream: &mut stream,
            watchdog: Watchdog::default(),
            retry: RetryPolicy::default(),
            now_ns: 0,
        });
        assert!(matches!(a.execute(plan).0.unwrap_err(), CoreError::InvalidConfig(_)));
    }

    #[test]
    fn decode_batch_scales_compute_not_loads() {
        // Weight streaming is shared across a decode batch (weight-
        // stationary), so batching tokens must cost less than pricing
        // each token alone.
        let cfg = EncoderConfig::new(768, 8, 2, 64);
        let a = accel(&cfg);
        let single = a.execute(RunPlan::decode(0, 32, 1)).0.unwrap().report.total;
        let batched = a.execute(RunPlan::decode(0, 32, 8)).0.unwrap().report.total;
        assert!(batched > single);
        assert!(
            batched.get() < 8 * single.get(),
            "batch 8 ({batched:?}) must beat 8 independent steps ({single:?} each)"
        );
    }

    #[test]
    fn non_encode_plans_are_not_memoizable() {
        let cfg = EncoderConfig::new(96, 4, 1, 16);
        let a = accel(&cfg);
        assert!(RunPlan::timing(1).memo_key(&a).is_some());
        assert!(RunPlan::prefill(4, 1).memo_key(&a).is_none());
        assert!(RunPlan::decode(0, 4, 1).memo_key(&a).is_none());
    }
}
