//! # protea-core — the ProTEA accelerator
//!
//! The paper's contribution, reproduced as a functional + cycle-accurate
//! co-simulation:
//!
//! * [`SynthesisConfig`] — everything frozen at synthesis time: tile sizes
//!   (`TS_MHA`, `TS_FFN`), the number of head engines, maximum model
//!   dimensions, engine initiation intervals, the AXI port. Synthesizing
//!   ([`SynthesisConfig::synthesize`]) binds resources and estimates the
//!   achievable clock — Fig. 7's axes.
//! * [`RuntimeConfig`] — the four runtime-programmable registers (heads,
//!   layers, `d_model`, `SL`), reprogrammable **without resynthesis**, the
//!   paper's headline feature. Register writes validate against the
//!   synthesized capacity exactly as the MicroBlaze driver's AXI-lite
//!   writes would.
//! * [`engines`] — the seven compute engines (`QKV_CE`, `QK_CE`, softmax,
//!   `SV_CE`, `FFN1..3_CE`, layer norm): each computes **bit-exactly**
//!   (tile-by-tile integer accumulation, shared requantization stages
//!   with `protea-model`) and prices itself in cycles via the
//!   `protea-hls` scheduling algebra.
//! * [`Accelerator`] — ties it together: runs an input through all layers,
//!   overlapping tile loads with compute through `protea-mem`'s
//!   double-buffer scheduler, and emits a [`CycleReport`] with
//!   per-engine breakdowns, latency in ms at the synthesized clock, and
//!   GOPS.
//! * [`driver`] — the host-software analogue of the paper's MicroBlaze
//!   program: extract hyperparameters from a serialized model, emit the
//!   register/instruction stream, reprogram at runtime.
//! * [`fault`] — the driver's response to injected hardware faults
//!   (`protea-mem`'s [`FaultStream`](fault::FaultStream)): a transfer
//!   [`Watchdog`], exponential-backoff [`RetryPolicy`], per-class
//!   [`FaultStats`], and the fault-injected timing path
//!   [`Accelerator::timing_report_faulty`].
//!
//! The equivalence contract: for any weights and input,
//! `Accelerator::run(...).output` equals
//! `protea_model::QuantizedEncoder::forward(...)` byte-for-byte.
//! Integration tests in the workspace root enforce it across shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod backend;
pub mod bus;
pub mod controller;
pub mod decoder;
pub mod desched;
pub mod driver;
pub mod engines;
pub mod error;
pub mod fault;
pub mod integrity;
pub mod pipeline;
pub mod registers;
pub mod report;
pub mod sparse;
pub mod synthesis;
pub mod timing;

pub use accelerator::{Accelerator, RunResult};
pub use backend::Backend;
pub use bus::{AxiLiteBus, BusResponse};
pub use controller::Controller;
pub use decoder::DecoderRunResult;
pub use desched::simulate_layer_des;
pub use driver::{Driver, DriverError, Instruction};
pub use error::CoreError;
pub use fault::{
    FaultEvent, FaultKind, FaultRates, FaultStats, FaultStream, RetryPolicy, SdcEvent, SdcHit,
    SdcSite, SdcStream, Watchdog,
};
pub use integrity::weight_digest;
pub use pipeline::{DecodeSession, FaultPlan, Phase, PlanKey, RunOutcome, RunPlan};
pub use registers::{RegisterError, RuntimeConfig};
pub use report::{CycleReport, EnginePhase};
pub use sparse::{SparseMode, SparsePhase};
pub use synthesis::{SynthesisConfig, SynthesisConfigBuilder, SynthesizedDesign};
pub use timing::TimingPreset;
