//! Property coverage for the execution pipeline's span traces.
//!
//! The trace is observational: the report must be byte-identical with
//! tracing on or off, spans on one track must tile without overlap,
//! tile visits must nest inside their phase span and sum to exactly
//! the engine-busy cycles, and a Chrome-JSON export must round-trip to
//! the identical span list (count, order, content).

use proptest::prelude::*;
use protea_core::{Accelerator, CycleReport, RunPlan, RuntimeConfig, SynthesisConfig};
use protea_hwsim::exec_trace::track;
use protea_hwsim::{ExecSpan, ExecTrace, SpanKind};
use protea_platform::FpgaDevice;

/// Nine engine phases per encoder layer (QKV, QK, Softmax, SV, FFN1,
/// LN, FFN2, FFN3, LN).
const PHASES_PER_LAYER: usize = 9;

/// A programmed timing-only accelerator for an arbitrary shape (no
/// weights: `RunPlan::timing` never touches the datapath).
fn accel_for(heads: usize, d_model: usize, layers: usize, seq_len: usize) -> Accelerator {
    let ts = (1..=64.min(d_model)).rev().find(|t| d_model.is_multiple_of(*t)).unwrap_or(1);
    let syn = SynthesisConfig::builder()
        .heads(heads)
        .d_max(d_model)
        .sl_max(seq_len)
        .ts_mha(ts)
        .ts_ffn(ts)
        .build()
        .expect("synthesis config must be valid");
    let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u250()).expect("design must fit");
    acc.program(RuntimeConfig { heads, layers, d_model, seq_len })
        .expect("runtime fits synthesized capacity");
    acc
}

fn assert_reports_identical(a: &CycleReport, b: &CycleReport) {
    assert_eq!(a.total, b.total, "cycle totals diverge");
    assert_eq!(a.layers, b.layers);
    assert_eq!(a.phases, b.phases, "phase breakdowns diverge");
    assert!((a.fmax_mhz - b.fmax_mhz).abs() < f64::EPSILON);
}

/// Spans of one `(track, kind)` group, sorted by start, must tile the
/// timeline without overlap: each resource (engine lane, DMA channel)
/// is sequential.
fn assert_no_overlap_per_group(spans: &[ExecSpan]) {
    let mut groups: std::collections::BTreeMap<(u32, SpanKind), Vec<&ExecSpan>> =
        std::collections::BTreeMap::new();
    for s in spans {
        groups.entry((s.track, s.kind)).or_default().push(s);
    }
    for ((track, kind), mut group) in groups {
        group.sort_by_key(|s| (s.start, s.end));
        for pair in group.windows(2) {
            assert!(
                pair[1].start >= pair[0].end,
                "{kind:?} spans overlap on track {track}: \
                 [{}, {}) then [{}, {})",
                pair[0].start,
                pair[0].end,
                pair[1].start,
                pair[1].end,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn traced_runs_obey_span_invariants(
        heads in 1usize..=6,
        dk in 1usize..=16,
        layers in 1usize..=3,
        sl in 1usize..=12,
        batch in 1usize..=4,
    ) {
        let acc = accel_for(heads, heads * dk, layers, sl);

        let (plain, _) = acc.execute(RunPlan::timing(batch));
        let plain = plain.expect("fault-free timing cannot fail");
        prop_assert!(plain.trace.is_none(), "untraced run must not allocate a trace");

        let (traced, _) = acc.execute(RunPlan::timing(batch).with_trace());
        let traced = traced.expect("fault-free timing cannot fail");
        assert_reports_identical(&plain.report, &traced.report);

        let trace = traced.trace.expect("traced run records spans");
        prop_assert_eq!(trace.dropped(), 0, "paper-scale runs fit the default ring");
        let spans: Vec<ExecSpan> = trace.spans().cloned().collect();

        // Per-resource sequentiality: no two same-kind spans overlap.
        assert_no_overlap_per_group(&spans);

        // One phase span per engine phase per layer, laid out
        // layer-major and contiguous: the phase spans tile [0, total).
        let mut phases: Vec<&ExecSpan> =
            spans.iter().filter(|s| s.kind == SpanKind::Phase).collect();
        prop_assert_eq!(phases.len(), PHASES_PER_LAYER * layers);
        phases.sort_by_key(|s| (s.start, s.end));
        prop_assert_eq!(phases[0].start, 0);
        for pair in phases.windows(2) {
            prop_assert_eq!(pair[1].start, pair[0].end, "phases must abut");
        }
        prop_assert_eq!(
            phases.last().expect("at least one phase").end,
            traced.report.total.get(),
            "phase spans must cover the reported total"
        );

        // Tile visits nest inside a phase span on the engine track and
        // sum to exactly the engine-busy cycles (total − load stalls).
        let mut tile_cycles: u64 = 0;
        for t in spans.iter().filter(|s| s.kind == SpanKind::Tile) {
            prop_assert_eq!(t.track, track::ENGINE);
            tile_cycles += t.duration();
            prop_assert!(
                phases.iter().any(|p| p.start <= t.start && t.end <= p.end),
                "tile [{}, {}) escapes every phase span", t.start, t.end
            );
        }
        let stall: u64 = traced.report.phases.iter().map(|p| p.load_stall.get()).sum();
        prop_assert_eq!(
            tile_cycles,
            traced.report.total.get() - stall,
            "tile visits must cover the busy cycles exactly"
        );

        // DMA bursts live on the DMA track and never outrun the run.
        for d in spans.iter().filter(|s| s.kind == SpanKind::Dma) {
            prop_assert_eq!(d.track, track::DMA);
            prop_assert!(d.end <= traced.report.total.get());
        }

        // Export → parse round trip: identical count, order, content.
        let parsed = ExecTrace::parse_chrome_json(&trace.to_chrome_json())
            .expect("own export must parse");
        prop_assert_eq!(parsed, spans);
    }
}

#[test]
fn bounded_capacity_drops_spans_but_never_perturbs_the_report() {
    let acc = accel_for(4, 64, 2, 8);
    let (full, _) = acc.execute(RunPlan::timing(2).with_trace());
    let full = full.unwrap();
    let (tiny, _) = acc.execute(RunPlan::timing(2).with_trace_capacity(4));
    let tiny = tiny.unwrap();
    assert_reports_identical(&full.report, &tiny.report);
    let tiny_trace = tiny.trace.unwrap();
    assert_eq!(tiny_trace.len(), 4, "ring keeps exactly its capacity");
    assert_eq!(
        tiny_trace.dropped() + 4,
        full.trace.unwrap().len() as u64,
        "every span beyond capacity is counted as dropped"
    );
}

#[test]
fn paper_shape_trace_names_every_engine_phase() {
    let acc = accel_for(8, 768, 1, 64);
    let (run, _) = acc.execute(RunPlan::timing(1).with_trace());
    let trace = run.unwrap().trace.unwrap();
    let names: Vec<String> =
        trace.spans().filter(|s| s.kind == SpanKind::Phase).map(|s| s.name.clone()).collect();
    for expected in
        ["QKV_CE", "QK_CE", "Softmax", "SV_CE", "FFN1_CE", "FFN2_CE", "FFN3_CE", "AddNorm"]
    {
        assert!(
            names.iter().any(|n| n.contains(expected)),
            "no phase span names {expected}: {names:?}"
        );
    }
    assert!(trace.spans().any(|s| s.kind == SpanKind::Dma), "paper shape must record DMA bursts");
}
