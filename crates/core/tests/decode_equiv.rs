//! Prefix equivalence of KV-cached decoding: for random prompts and
//! step counts, incremental decode through the phase-aware pipeline is
//! bit-identical to a full-forward recompute at every prefix length —
//! on every kernel ISA this host supports, and on both the scalar and
//! packed projection paths.
//!
//! This is the gate on the decode fast path: a kernel, packing, or
//! cache change that alters even one output byte at any position fails
//! here.

use proptest::prelude::*;
use protea_core::{Accelerator, DecodeSession, RunPlan, RuntimeConfig, SynthesisConfig};
use protea_model::decoder::{DecoderKvCache, DecoderWeights, QuantizedDecoder};
use protea_model::{EncoderConfig, QuantSchedule};
use protea_platform::FpgaDevice;
use protea_tensor::{force_kernel, supported_kernels, Matrix};

fn accel_for(cfg: &EncoderConfig, src_len: usize) -> Accelerator {
    let ts = (1..=64.min(cfg.d_model)).rev().find(|t| cfg.d_model.is_multiple_of(*t)).unwrap_or(1);
    let syn = SynthesisConfig::builder()
        .heads(cfg.heads)
        .d_max(cfg.d_model)
        .sl_max(src_len.max(cfg.seq_len).max(2))
        .ts_mha(ts)
        .ts_ffn(ts)
        .build()
        .expect("synthesis config must be valid");
    let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u250()).expect("design must fit");
    acc.program(RuntimeConfig {
        heads: cfg.heads,
        layers: cfg.layers,
        d_model: cfg.d_model,
        seq_len: src_len,
    })
    .expect("runtime fits synthesized capacity");
    acc
}

fn mat(rows: usize, cols: usize, salt: u64) -> Matrix<i8> {
    Matrix::from_fn(rows, cols, |r, c| {
        let v = (r as u64 * 131).wrapping_add(c as u64 * 31).wrapping_add(salt.wrapping_mul(7));
        ((v % 251) as i64 - 125) as i8
    })
}

/// Decode `steps` positions incrementally (prompt rows drawn from one
/// random target matrix) and check every prefix against the full
/// forward recompute, through both the scalar and packed session paths.
fn assert_prefix_equiv(cfg: &EncoderConfig, src_len: usize, steps: usize, seed: u64) {
    let accel = accel_for(cfg, src_len);
    let dec =
        QuantizedDecoder::from_float(&DecoderWeights::random(*cfg, seed), QuantSchedule::paper());
    let packed = dec.pack();
    let memory = mat(src_len, cfg.d_model, seed ^ 0x9e37);
    let x = mat(steps, cfg.d_model, seed ^ 0x85eb);

    let mut scalar_cache = DecoderKvCache::new(&dec, &memory);
    let mut packed_cache = DecoderKvCache::bounded(&dec, &memory, steps);
    for pos in 0..steps {
        let row = x.submatrix(pos, 0, 1, cfg.d_model);
        let scalar = accel
            .execute(RunPlan::decode(pos, pos + 1, 1).with_session(DecodeSession {
                decoder: &dec,
                packed: None,
                cache: &mut scalar_cache,
                x_row: &row,
            }))
            .0
            .expect("scalar decode step runs");
        let fast = accel
            .execute(RunPlan::decode(pos, pos + 1, 1).with_session(DecodeSession {
                decoder: &dec,
                packed: Some(&packed),
                cache: &mut packed_cache,
                x_row: &row,
            }))
            .0
            .expect("packed decode step runs");
        assert_eq!(
            scalar.outputs[0].row(0),
            fast.outputs[0].row(0),
            "scalar vs packed at position {pos}, cfg={cfg:?}"
        );
        // Full-forward recompute of the whole prefix must match the
        // incremental output at this position (and every earlier one —
        // the causal mask makes earlier rows invariant).
        let prefix = x.submatrix(0, 0, pos + 1, cfg.d_model);
        let full = dec.forward(&prefix, &memory);
        assert_eq!(
            fast.outputs[0].row(0),
            full.row(pos),
            "incremental vs full forward at prefix length {}, cfg={cfg:?}",
            pos + 1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random shapes, prompts and step counts: KV-cached incremental
    /// decoding equals full-forward recompute at every prefix length.
    #[test]
    fn prefix_equivalence_random_shapes(
        heads in 1usize..=4,
        dk_ix in 0usize..3,
        layers in 1usize..=2,
        src_len in 2usize..=10,
        steps in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let dk = [8usize, 16, 24][dk_ix];
        let d_model = heads * dk;
        let cfg = EncoderConfig::new(d_model, heads, layers, steps.max(1));
        assert_prefix_equiv(&cfg, src_len, steps, seed);
    }
}

/// The same prefix equivalence holds under every kernel ISA this host
/// supports — the dispatch layer may change *how* the GEMMs reduce,
/// never a single output byte.
#[test]
fn prefix_equivalence_on_every_kernel_isa() {
    let cfg = EncoderConfig::new(96, 4, 2, 6);
    for isa in supported_kernels() {
        force_kernel(Some(isa));
        assert_prefix_equiv(&cfg, 8, 6, 42);
    }
    force_kernel(None);
}
