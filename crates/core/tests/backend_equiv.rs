//! Cross-backend equivalence: the fast packed path must be
//! byte-identical to the reference tiled path and to the golden
//! software model, for arbitrary shapes, head counts and batches.
//!
//! This is the gate on every fast-path optimization: a kernel or
//! parallelization change that alters even one output byte fails here.

use proptest::prelude::*;
use protea_core::{Accelerator, Backend, RuntimeConfig, SynthesisConfig};
use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_tensor::Matrix;

/// Build a programmed, weight-loaded accelerator for an arbitrary shape.
fn accel_for(cfg: &EncoderConfig, seed: u64) -> (Accelerator, QuantizedEncoder) {
    // Tile sizes must divide d_model, and wide tiles at high head
    // counts blow the LUT budget: take the largest divisor ≤ 64.
    let ts = (1..=64.min(cfg.d_model)).rev().find(|t| cfg.d_model.is_multiple_of(*t)).unwrap_or(1);
    let syn = SynthesisConfig::builder()
        .heads(cfg.heads)
        .d_max(cfg.d_model)
        .sl_max(cfg.seq_len)
        .ts_mha(ts)
        .ts_ffn(ts)
        .build()
        .expect("synthesis config must be valid");
    let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u250()).expect("design must fit");
    acc.program(RuntimeConfig {
        heads: cfg.heads,
        layers: cfg.layers,
        d_model: cfg.d_model,
        seq_len: cfg.seq_len,
    })
    .expect("runtime fits synthesized capacity");
    let qw =
        QuantizedEncoder::from_float(&EncoderWeights::random(*cfg, seed), QuantSchedule::paper());
    acc.try_load_weights(qw.clone()).expect("weights match registers");
    (acc, qw)
}

fn input_for(cfg: &EncoderConfig, salt: u64) -> Matrix<i8> {
    Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
        let v = (r as u64 * 131).wrapping_add(c as u64 * 31).wrapping_add(salt.wrapping_mul(7));
        ((v % 251) as i64 - 125) as i8
    })
}

/// Run one shape through both backends and the golden model; assert all
/// three agree byte-for-byte.
fn assert_equiv(cfg: &EncoderConfig, seed: u64) {
    let (mut acc, golden) = accel_for(cfg, seed);
    let x = input_for(cfg, seed);

    acc.set_backend(Backend::Fast);
    assert_eq!(acc.backend(), Backend::Fast);
    let fast = acc.try_run(&x).expect("fast run succeeds").output;

    acc.set_backend(Backend::Reference);
    let reference = acc.try_run(&x).expect("reference run succeeds").output;

    assert_eq!(fast.as_slice(), reference.as_slice(), "fast vs reference, cfg={cfg:?}");

    let sw = golden.forward(&x);
    assert_eq!(fast.as_slice(), sw.as_slice(), "fast vs golden model, cfg={cfg:?}");
}

#[test]
fn paper_shape_agrees_across_backends() {
    assert_equiv(&EncoderConfig::new(96, 4, 2, 8), 31);
}

#[test]
fn twelve_heads_agree_across_backends() {
    // dk = 12: exercises ragged CB blocks inside each head's GEMMs.
    assert_equiv(&EncoderConfig::new(144, 12, 1, 9), 5);
}

#[test]
fn single_head_odd_seq_agrees_across_backends() {
    assert_equiv(&EncoderConfig::new(40, 1, 2, 7), 77);
}

#[test]
fn batch_outputs_identical_across_backends() {
    let cfg = EncoderConfig::new(64, 4, 2, 8);
    let (mut acc, _) = accel_for(&cfg, 13);
    let xs: Vec<Matrix<i8>> = (0..5).map(|i| input_for(&cfg, 100 + i)).collect();

    acc.set_backend(Backend::Fast);
    let (fast_outs, fast_rep) = acc.try_run_batch(&xs).expect("fast batch");
    // Batch fan-out must not reorder or alter per-item outputs.
    for (i, x) in xs.iter().enumerate() {
        let single = acc.try_run(x).expect("single run").output;
        assert_eq!(fast_outs[i].as_slice(), single.as_slice(), "item {i}");
    }

    acc.set_backend(Backend::Reference);
    let (ref_outs, ref_rep) = acc.try_run_batch(&xs).expect("reference batch");
    for (i, (f, r)) in fast_outs.iter().zip(&ref_outs).enumerate() {
        assert_eq!(f.as_slice(), r.as_slice(), "item {i}");
    }
    assert_eq!(fast_rep.total, ref_rep.total, "timing model is backend-independent");
}

#[test]
fn every_kernel_isa_agrees_across_backends() {
    // The dispatch gate: force each microkernel this host can run
    // (scalar control, portable fallback, and whatever explicit SIMD
    // variants the CPU supports) and require byte-identical outputs
    // from the fast path under every one of them. `force_kernel` takes
    // the same code path as a `PROTEA_KERNEL` override, minus the
    // once-per-process env cache.
    let cfg = EncoderConfig::new(144, 12, 1, 9);
    let (mut acc, golden) = accel_for(&cfg, 41);
    let x = input_for(&cfg, 41);
    acc.set_backend(Backend::Reference);
    let reference = acc.try_run(&x).expect("reference run").output;
    assert_eq!(reference.as_slice(), golden.forward(&x).as_slice(), "reference vs golden");

    acc.set_backend(Backend::Fast);
    for isa in protea_tensor::supported_kernels() {
        protea_tensor::force_kernel(Some(isa));
        let fast = acc.try_run(&x).expect("fast run").output;
        assert_eq!(fast.as_slice(), reference.as_slice(), "kernel {isa} diverged from reference");
    }
    protea_tensor::force_kernel(None);
}

#[test]
fn self_test_passes_on_both_backends() {
    let cfg = EncoderConfig::new(96, 4, 2, 8);
    let (mut acc, _) = accel_for(&cfg, 3);
    acc.set_backend(Backend::Fast);
    assert_eq!(acc.self_test(), Ok(()));
    acc.set_backend(Backend::Reference);
    assert_eq!(acc.self_test(), Ok(()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_shapes_agree_across_backends(
        heads in 1usize..=6,
        dk in 1usize..=16,
        layers in 1usize..=2,
        sl in 1usize..=12,
        seed in any::<u64>(),
    ) {
        let cfg = EncoderConfig::new(heads * dk, heads, layers, sl);
        assert_equiv(&cfg, seed);
    }
}
