//! Shim equivalence: every historical `Accelerator` entry point is a
//! thin shim over [`Accelerator::execute`], and this suite pins the
//! contract byte-for-byte — outputs, cycle reports, fault statistics
//! and error classification must be identical whether a caller goes
//! through a shim or builds the [`RunPlan`] directly, with identically
//! seeded fault streams, and with tracing on or off.

use protea_core::{
    Accelerator, CoreError, CycleReport, FaultKind, FaultPlan, FaultRates, FaultStream,
    RetryPolicy, RunPlan, RuntimeConfig, SynthesisConfig, Watchdog,
};
use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_tensor::Matrix;

/// A programmed, weight-loaded accelerator on the small test shape.
fn accel() -> Accelerator {
    let cfg = EncoderConfig::new(96, 4, 2, 8);
    let syn = SynthesisConfig::builder()
        .heads(cfg.heads)
        .d_max(cfg.d_model)
        .sl_max(cfg.seq_len)
        .ts_mha(32)
        .ts_ffn(32)
        .build()
        .expect("synthesis config must be valid");
    let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u250()).expect("design must fit");
    acc.program(RuntimeConfig {
        heads: cfg.heads,
        layers: cfg.layers,
        d_model: cfg.d_model,
        seq_len: cfg.seq_len,
    })
    .expect("runtime fits synthesized capacity");
    let qw = QuantizedEncoder::from_float(&EncoderWeights::random(cfg, 23), QuantSchedule::paper());
    acc.try_load_weights(qw).expect("weights match registers");
    acc
}

fn input(salt: u64) -> Matrix<i8> {
    Matrix::from_fn(8, 96, |r, c| {
        let v = (r as u64 * 131).wrapping_add(c as u64 * 31).wrapping_add(salt.wrapping_mul(7));
        ((v % 251) as i64 - 125) as i8
    })
}

fn assert_reports_identical(a: &CycleReport, b: &CycleReport) {
    assert_eq!(a.total, b.total, "cycle totals diverge");
    assert_eq!(a.layers, b.layers);
    assert_eq!(a.phases, b.phases, "phase breakdowns diverge");
    assert!((a.fmax_mhz - b.fmax_mhz).abs() < f64::EPSILON);
}

#[test]
fn try_run_shim_equals_direct_execute() {
    let acc = accel();
    let x = input(1);
    let shim = acc.try_run(&x).expect("run succeeds");
    let (direct, stats) = acc.execute(RunPlan::functional(std::slice::from_ref(&x)));
    let direct = direct.expect("run succeeds");
    assert!(!stats.any(), "deterministic plans report zero fault stats");
    assert_eq!(direct.outputs.len(), 1);
    assert_eq!(shim.output.as_slice(), direct.outputs[0].as_slice());
    assert_reports_identical(&shim.report, &direct.report);
    assert!((shim.latency_ms - direct.latency_ms).abs() < f64::EPSILON);
    assert!((shim.gops - direct.gops).abs() < f64::EPSILON);
}

#[test]
fn timing_report_shims_equal_direct_execute() {
    let acc = accel();
    let (single, _) = acc.execute(RunPlan::timing(1));
    assert_reports_identical(&acc.timing_report(), &single.unwrap().report);
    for batch in [1usize, 2, 7] {
        let (direct, _) = acc.execute(RunPlan::timing(batch));
        assert_reports_identical(&acc.timing_report_batched(batch), &direct.unwrap().report);
    }
}

#[test]
fn try_run_batch_shim_equals_direct_execute() {
    let acc = accel();
    let xs: Vec<Matrix<i8>> = (0..4).map(input).collect();
    let (shim_outs, shim_rep) = acc.try_run_batch(&xs).expect("batch succeeds");
    let (direct, _) = acc.execute(RunPlan::functional(&xs));
    let direct = direct.expect("batch succeeds");
    assert_eq!(shim_outs.len(), direct.outputs.len());
    for (s, d) in shim_outs.iter().zip(&direct.outputs) {
        assert_eq!(s.as_slice(), d.as_slice());
    }
    assert_reports_identical(&shim_rep, &direct.report);
}

#[test]
fn error_classification_is_identical_through_the_shim() {
    let acc = accel();
    let bad = Matrix::<i8>::zeros(3, 96);
    let shim = acc.try_run(&bad).unwrap_err();
    let (direct, _) = acc.execute(RunPlan::functional(std::slice::from_ref(&bad)));
    assert_eq!(shim, direct.unwrap_err());
    let (empty, _) = acc.execute(RunPlan::functional(&[]));
    assert_eq!(empty.unwrap_err(), CoreError::EmptyBatch);
}

/// Two identically seeded streams with the same scripted events must
/// drive the shim and the direct plan to bit-identical results.
#[test]
fn faulty_shim_equals_direct_execute_with_identical_streams() {
    let acc = accel();
    let events =
        [(0u64, FaultKind::AxiStall), (2, FaultKind::EccSingle), (5, FaultKind::AxiTimeout)];
    let mut shim_stream = FaultStream::seeded(41, 0, FaultRates::ZERO).with_events(events);
    let mut direct_stream = FaultStream::seeded(41, 0, FaultRates::ZERO).with_events(events);
    let wd = Watchdog { timeout_cycles: 5_000 };
    let retry = RetryPolicy::default();

    let (shim, shim_stats) = acc.timing_report_faulty(2, &mut shim_stream, wd, retry, 9);
    let plan = RunPlan::timing(2).with_faults(FaultPlan {
        stream: &mut direct_stream,
        watchdog: wd,
        retry,
        now_ns: 9,
    });
    let (direct, direct_stats) = acc.execute(plan);

    assert_eq!(shim_stats, direct_stats, "fault accounting diverges");
    assert_reports_identical(&shim.expect("recoverable"), &direct.expect("recoverable").report);
}

#[test]
fn faulty_abort_is_identical_through_the_shim() {
    let acc = accel();
    // Scripted events fire once their timestamp has passed: an event at
    // t=0 lands on the run's very first tile transfer.
    let events = [(0u64, FaultKind::EccDouble)];
    let mut shim_stream = FaultStream::seeded(7, 0, FaultRates::ZERO).with_events(events);
    let mut direct_stream = FaultStream::seeded(7, 0, FaultRates::ZERO).with_events(events);

    let (shim, shim_stats) = acc.timing_report_faulty(
        1,
        &mut shim_stream,
        Watchdog::default(),
        RetryPolicy::default(),
        0,
    );
    let plan = RunPlan::timing(1).with_faults(FaultPlan {
        stream: &mut direct_stream,
        watchdog: Watchdog::default(),
        retry: RetryPolicy::default(),
        now_ns: 0,
    });
    let (direct, direct_stats) = acc.execute(plan);

    assert_eq!(shim_stats, direct_stats, "abort accounting diverges");
    assert!(shim_stats.abort_cycles > 0, "abort position must be recorded");
    let shim_err = shim.unwrap_err();
    let direct_err = direct.unwrap_err();
    assert_eq!(shim_err.to_string(), direct_err.to_string());
    assert!(matches!(shim_err, CoreError::Fault { kind: FaultKind::EccDouble, .. }));
}

/// Tracing is observational on every path: the traced report (and, for
/// faulty runs, the stats) must be byte-identical to the untraced run.
#[test]
fn tracing_never_perturbs_any_path() {
    let acc = accel();

    let (plain, _) = acc.execute(RunPlan::timing(3));
    let (traced, _) = acc.execute(RunPlan::timing(3).with_trace());
    let traced = traced.unwrap();
    assert_reports_identical(&plain.unwrap().report, &traced.report);
    assert!(!traced.trace.expect("traced run records spans").is_empty());

    let events = [(1u64, FaultKind::AxiStall), (4, FaultKind::EccSingle)];
    let mut plain_stream = FaultStream::seeded(3, 0, FaultRates::ZERO).with_events(events);
    let mut traced_stream = FaultStream::seeded(3, 0, FaultRates::ZERO).with_events(events);
    let wd = Watchdog::default();
    let retry = RetryPolicy::default();
    let (plain, plain_stats) = acc.execute(RunPlan::timing(2).with_faults(FaultPlan {
        stream: &mut plain_stream,
        watchdog: wd,
        retry,
        now_ns: 5,
    }));
    let (traced, traced_stats) = acc.execute(
        RunPlan::timing(2)
            .with_faults(FaultPlan { stream: &mut traced_stream, watchdog: wd, retry, now_ns: 5 })
            .with_trace(),
    );
    let traced = traced.unwrap();
    assert_eq!(plain_stats, traced_stats);
    assert_reports_identical(&plain.unwrap().report, &traced.report);
    let trace = traced.trace.expect("traced faulty run records spans");
    // Faulty pricing is layer-by-layer: each phase appears once per layer.
    let phase_spans = trace.spans().filter(|s| s.kind == protea_hwsim::SpanKind::Phase).count();
    assert_eq!(phase_spans, 9 * 2, "nine phases per layer, two layers");
}
