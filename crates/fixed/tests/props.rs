//! Property-based tests of the fixed-point layer's algebraic contracts.

use proptest::prelude::*;
use protea_fixed::layernorm::isqrt_u64;
use protea_fixed::{
    dot_i8, dot_i8_unrolled, gelu_i8, relu_i8, requantize, Fx32, Fx8, QFormat, Rounding,
};

proptest! {
    #[test]
    fn quantization_round_trip_error_at_most_half_lsb(
        x in -200f64..200f64, frac in 0u8..8
    ) {
        let fmt = QFormat::new(8, frac);
        let q = Fx8::from_real(x, fmt);
        if x < fmt.real_max() && x > fmt.real_min() {
            prop_assert!((q.to_real() - x).abs() <= fmt.lsb() / 2.0 + 1e-12);
        } else {
            // saturated: output clamps to the range boundary
            prop_assert!(q.raw() == 127 || q.raw() == -128);
        }
    }

    #[test]
    fn sat_add_is_commutative_and_bounded(a in any::<i8>(), b in any::<i8>()) {
        let fmt = QFormat::q8_default();
        let x = Fx8::from_raw(a, fmt);
        let y = Fx8::from_raw(b, fmt);
        prop_assert_eq!(x.sat_add(y).raw(), y.sat_add(x).raw());
        let exact = i16::from(a) + i16::from(b);
        let got = i16::from(x.sat_add(y).raw());
        prop_assert_eq!(got, exact.clamp(-128, 127));
    }

    #[test]
    fn widening_mul_is_exact(a in any::<i8>(), b in any::<i8>()) {
        let fmt = QFormat::q8_default();
        let p = Fx8::from_raw(a, fmt).widening_mul(Fx8::from_raw(b, fmt));
        prop_assert_eq!(i32::from(p.raw()), i32::from(a) * i32::from(b));
    }

    #[test]
    fn mac_accumulates_exactly(pairs in prop::collection::vec((any::<i8>(), any::<i8>()), 0..64)) {
        let acc_fmt = QFormat::acc32(10);
        let fmt = QFormat::q8_default();
        let mut acc = Fx32::from_raw(0, acc_fmt);
        let mut expect = 0i64;
        for &(a, b) in &pairs {
            acc = acc.mac(Fx8::from_raw(a, fmt), Fx8::from_raw(b, fmt));
            expect += i64::from(a) * i64::from(b);
        }
        prop_assert_eq!(i64::from(acc.raw()), expect); // 64·2^14 ≪ i32::MAX
    }

    #[test]
    fn dot_matches_unrolled_for_all_factors(
        a in prop::collection::vec(any::<i8>(), 0..128),
        unroll in 1usize..40
    ) {
        let b: Vec<i8> = a.iter().rev().copied().collect();
        prop_assert_eq!(dot_i8(&a, &b), dot_i8_unrolled(&a, &b, unroll));
    }

    #[test]
    fn requantize_is_monotone_in_the_accumulator(
        a in -100_000i32..100_000, delta in 0i32..10_000, frac in 6u8..14
    ) {
        let t = QFormat::new(8, 5);
        for mode in [Rounding::Truncate, Rounding::NearestEven, Rounding::HalfUp] {
            let lo = requantize(a, frac, t, mode);
            let hi = requantize(a.saturating_add(delta), frac, t, mode);
            prop_assert!(hi >= lo, "{mode:?}: requantize must be monotone");
        }
    }

    #[test]
    fn relu_gelu_bounded_by_identity(x in any::<i8>()) {
        let fmt = QFormat::q8_default();
        prop_assert!(relu_i8(x) >= 0);
        prop_assert!(relu_i8(x) >= x.min(0));
        let g = gelu_i8(x, fmt);
        // gelu(x) ≤ max(x, 0) + 1 LSB and ≥ min(x, 0) − slack
        prop_assert!(i16::from(g) <= i16::from(x.max(0)) + 1);
        prop_assert!(i16::from(g) >= i16::from(x.min(0)) - 1);
    }

    #[test]
    fn isqrt_is_exact_floor_sqrt(x in any::<u64>()) {
        let s = isqrt_u64(x);
        prop_assert!(s.checked_mul(s).is_some_and(|sq| sq <= x));
        prop_assert!((s + 1).checked_mul(s + 1).is_none_or(|sq| sq > x));
    }

    #[test]
    fn rounding_modes_agree_on_exact_multiples(v in -1_000_000i64..1_000_000, s in 1u32..16) {
        let exact = v << s;
        for mode in [Rounding::Truncate, Rounding::NearestEven, Rounding::HalfUp] {
            prop_assert_eq!(mode.shift_right(exact, s), v);
        }
    }
}
