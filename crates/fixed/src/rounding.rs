//! Hardware rounding modes for right-shift requantization.
//!
//! When a wide accumulator is narrowed to storage width, the datapath
//! right-shifts by the difference in fractional bits and must decide what
//! happens to the discarded bits. Real HLS designs pick one of these
//! strategies (`AP_TRN`, `AP_RND`, `AP_RND_CONV` in `ap_fixed` terms).

/// Rounding strategy applied when discarding low-order bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Truncate toward negative infinity (drop bits; `AP_TRN`). Cheapest in
    /// hardware — a plain wire selection.
    Truncate,
    /// Round half away from zero (`AP_RND`): add half an LSB of the target
    /// format before truncating. One extra adder in hardware. This is the
    /// ProTEA default.
    #[default]
    NearestEven, // see note below: implemented as convergent rounding
    /// Round half up (toward +infinity): add `0.5 LSB` then floor.
    HalfUp,
}

impl Rounding {
    /// Shift `value` right by `shift` bits applying this rounding mode.
    ///
    /// `shift == 0` returns the value unchanged. `shift` up to 63 is
    /// supported; the result always fits in `i64` because rounding a
    /// right-shift can increase magnitude by at most one LSB.
    #[must_use]
    pub fn shift_right(self, value: i64, shift: u32) -> i64 {
        if shift == 0 {
            return value;
        }
        let shift = shift.min(63);
        match self {
            Rounding::Truncate => value >> shift,
            Rounding::HalfUp => {
                let half = 1i64 << (shift - 1);
                // Saturating add guards the pathological i64::MAX case.
                value.saturating_add(half) >> shift
            }
            Rounding::NearestEven => {
                let floor = value >> shift;
                let rem = value - (floor << shift);
                let half = 1i64 << (shift - 1);
                if rem > half || (rem == half && (floor & 1) == 1) {
                    floor + 1
                } else {
                    floor
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_is_floor_division() {
        let r = Rounding::Truncate;
        assert_eq!(r.shift_right(7, 1), 3);
        assert_eq!(r.shift_right(-7, 1), -4); // arithmetic shift floors
        assert_eq!(r.shift_right(8, 3), 1);
        assert_eq!(r.shift_right(-8, 3), -1);
    }

    #[test]
    fn half_up_rounds_ties_up() {
        let r = Rounding::HalfUp;
        assert_eq!(r.shift_right(3, 1), 2); // 1.5 -> 2
        assert_eq!(r.shift_right(-3, 1), -1); // -1.5 -> -1
        assert_eq!(r.shift_right(5, 2), 1); // 1.25 -> 1
        assert_eq!(r.shift_right(6, 2), 2); // 1.5 -> 2
    }

    #[test]
    fn nearest_even_breaks_ties_to_even() {
        let r = Rounding::NearestEven;
        assert_eq!(r.shift_right(2, 2), 0); // 0.5 -> 0 (even)
        assert_eq!(r.shift_right(6, 2), 2); // 1.5 -> 2 (even)
        assert_eq!(r.shift_right(10, 2), 2); // 2.5 -> 2 (even)
        assert_eq!(r.shift_right(-2, 2), 0); // -0.5 -> 0
        assert_eq!(r.shift_right(-6, 2), -2); // -1.5 -> -2
        assert_eq!(r.shift_right(3, 2), 1); // 0.75 -> 1
    }

    #[test]
    fn zero_shift_identity() {
        for &m in &[Rounding::Truncate, Rounding::HalfUp, Rounding::NearestEven] {
            assert_eq!(m.shift_right(12345, 0), 12345);
            assert_eq!(m.shift_right(-12345, 0), -12345);
        }
    }

    #[test]
    fn large_shift_clamps() {
        assert_eq!(Rounding::Truncate.shift_right(i64::MAX, 100), 0);
        assert_eq!(Rounding::Truncate.shift_right(i64::MIN, 100), -1);
    }

    #[test]
    fn rounding_error_bounded() {
        // |round(x/2^s) - x/2^s| <= 1 for truncation, <= 0.5 for nearest.
        for v in -1000i64..1000 {
            for s in 1..8u32 {
                let exact = v as f64 / f64::from(1u32 << s);
                let t = Rounding::Truncate.shift_right(v, s) as f64;
                let n = Rounding::NearestEven.shift_right(v, s) as f64;
                assert!((t - exact).abs() < 1.0 + 1e-12);
                assert!((n - exact).abs() <= 0.5 + 1e-12);
            }
        }
    }
}
