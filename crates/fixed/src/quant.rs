//! Per-tensor quantization: real data ↔ 8-bit fixed point.
//!
//! ProTEA's software driver quantizes trained weights offline ("data was
//! quantized to 8-bit fixed-point format"). With power-of-two scales the
//! quantization parameter is just a [`QFormat`], which keeps the hardware
//! requantization stage a pure shifter. The [`Quantizer`] selects the
//! format per tensor from its dynamic range.

use crate::qformat::QFormat;

/// Quantization parameters for one tensor: its storage format.
///
/// `value = raw * 2^-frac_bits`. Symmetric (zero-point-free) quantization,
/// as is standard for weight matrices and what a shifter-only datapath
/// requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantParams {
    fmt: QFormat,
}

impl QuantParams {
    /// Parameters using an explicit format.
    #[must_use]
    pub fn with_format(fmt: QFormat) -> Self {
        Self { fmt }
    }

    /// The storage format.
    #[must_use]
    pub fn format(self) -> QFormat {
        self.fmt
    }

    /// Quantize one real value.
    #[must_use]
    pub fn quantize(self, x: f32) -> i8 {
        self.fmt.real_to_raw(f64::from(x)) as i8
    }

    /// Dequantize one raw value.
    #[must_use]
    pub fn dequantize(self, raw: i8) -> f32 {
        self.fmt.raw_to_real(i64::from(raw)) as f32
    }
}

/// Chooses per-tensor formats and performs bulk conversions.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    storage_bits: u8,
    /// Fraction of the max-abs range to actually cover; values beyond
    /// saturate. 1.0 = cover everything (no clipping). Slight clipping
    /// (e.g. 0.999 with outliers) can improve SQNR, but the default is
    /// lossless-range.
    coverage: f64,
}

impl Default for Quantizer {
    fn default() -> Self {
        Self { storage_bits: 8, coverage: 1.0 }
    }
}

impl Quantizer {
    /// A quantizer targeting `storage_bits`-wide storage.
    #[must_use]
    pub fn new(storage_bits: u8) -> Self {
        Self { storage_bits, coverage: 1.0 }
    }

    /// Set range coverage in `(0, 1]` (1 = cover the full observed range).
    #[must_use]
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        assert!(coverage > 0.0 && coverage <= 1.0);
        self.coverage = coverage;
        self
    }

    /// Choose the best-precision format that covers `data`'s range.
    #[must_use]
    pub fn calibrate(&self, data: &[f32]) -> QuantParams {
        let max_abs =
            data.iter().filter(|x| x.is_finite()).fold(0f64, |m, &x| m.max(f64::from(x).abs()));
        QuantParams::with_format(QFormat::fit(self.storage_bits, max_abs * self.coverage))
    }

    /// Calibrate on `data` and quantize it in one pass.
    #[must_use]
    pub fn quantize(&self, data: &[f32]) -> (Vec<i8>, QuantParams) {
        let params = self.calibrate(data);
        let mut out = Vec::with_capacity(data.len());
        out.extend(data.iter().map(|&x| params.quantize(x)));
        (out, params)
    }
}

/// Quantize a slice with explicit parameters.
#[must_use]
pub fn quantize_slice(data: &[f32], params: QuantParams) -> Vec<i8> {
    data.iter().map(|&x| params.quantize(x)).collect()
}

/// Dequantize a slice with explicit parameters.
#[must_use]
pub fn dequantize_slice(raw: &[i8], params: QuantParams) -> Vec<f32> {
    raw.iter().map(|&r| params.dequantize(r)).collect()
}

/// Signal-to-quantization-noise ratio in dB between a reference and a
/// reconstruction; used by accuracy tests and the quantization example.
#[must_use]
pub fn sqnr_db(reference: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(reference.len(), reconstructed.len());
    let (mut sig, mut noise) = (0f64, 0f64);
    for (&r, &q) in reference.iter().zip(reconstructed.iter()) {
        sig += f64::from(r) * f64::from(r);
        let e = f64::from(r) - f64::from(q);
        noise += e * e;
    }
    if noise == 0.0 {
        f64::INFINITY
    } else if sig == 0.0 {
        0.0
    } else {
        10.0 * (sig / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_covers_range() {
        let data = [0.5f32, -1.75, 0.03, 1.2];
        let q = Quantizer::default();
        let params = q.calibrate(&data);
        assert!(params.format().real_max() >= 1.75);
        // and is the tightest such: doubling frac would not cover.
        let tighter = QFormat::new(8, params.format().frac_bits() + 1);
        assert!(tighter.real_max() < 1.75);
    }

    #[test]
    fn quantize_dequantize_error_bounded() {
        let data: Vec<f32> = (0..256).map(|i| ((i as f32) - 128.0) / 43.7).collect();
        let (raw, params) = Quantizer::default().quantize(&data);
        let back = dequantize_slice(&raw, params);
        let lsb = params.format().lsb() as f32;
        for (x, y) in data.iter().zip(back.iter()) {
            assert!((x - y).abs() <= lsb / 2.0 + 1e-6, "x={x} y={y}");
        }
    }

    #[test]
    fn nonfinite_inputs_do_not_poison_calibration() {
        let data = [1.0f32, f32::NAN, f32::INFINITY, -0.5];
        let params = Quantizer::default().calibrate(&data);
        assert!(params.format().real_max() >= 1.0);
        assert!(params.format().real_max() < 4.0);
    }

    #[test]
    fn sqnr_reasonable_for_8bit() {
        // 8-bit quantization of a well-scaled signal should exceed ~30 dB.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.017).sin()).collect();
        let (raw, params) = Quantizer::default().quantize(&data);
        let back = dequantize_slice(&raw, params);
        let s = sqnr_db(&data, &back);
        assert!(s > 30.0, "sqnr = {s}");
    }

    #[test]
    fn sqnr_edge_cases() {
        assert!(sqnr_db(&[1.0, 2.0], &[1.0, 2.0]).is_infinite());
        assert_eq!(sqnr_db(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn all_zero_tensor_quantizes() {
        let (raw, _params) = Quantizer::default().quantize(&[0.0; 16]);
        assert!(raw.iter().all(|&r| r == 0));
    }
}
