//! Activation functions for the FFN engines.
//!
//! The paper: "The first transformation includes activation functions such
//! as the Rectified Linear Unit (ReLU) or Gaussian Error Linear Unit
//! (GeLU), while the second transformation does not." ReLU is a sign
//! check; GELU is synthesized as a 256-entry ROM over the 8-bit input —
//! both are LUT/FF-only structures (no DSPs), matching the paper's
//! resource accounting.

use crate::qformat::QFormat;

/// Which nonlinearity the first FFN transformation applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit (BERT-variant encoders and the original
    /// transformer use ReLU or GELU; ReLU is the cheaper default).
    #[default]
    Relu,
    /// Gaussian error linear unit via lookup table.
    Gelu,
    /// No activation (used by the second/third transformations).
    Identity,
}

/// ReLU on a raw 8-bit value: negative codes clamp to zero. Format-agnostic
/// (sign is sign regardless of binary point).
#[must_use]
pub fn relu_i8(x: i8) -> i8 {
    x.max(0)
}

/// GELU on a raw 8-bit value in format `fmt`, computed the way a
/// synthesized ROM would: exact `gelu()` of the dequantized input,
/// requantized back into the same format.
#[must_use]
pub fn gelu_i8(x: i8, fmt: QFormat) -> i8 {
    let xf = fmt.raw_to_real(i64::from(x));
    // Exact GELU using erf; tanh approximations differ by < 1 output LSB
    // at 8-bit resolution, so the ROM contents are effectively identical.
    let g = 0.5 * xf * (1.0 + erf(xf / core::f64::consts::SQRT_2));
    fmt.real_to_raw(g) as i8
}

/// A synthesized activation ROM: 256 entries of i8, one per input code.
#[derive(Debug, Clone)]
pub struct ActivationLut {
    table: Box<[i8; 256]>,
    kind: Activation,
}

impl ActivationLut {
    /// Burn the ROM for `kind` at format `fmt`.
    #[must_use]
    pub fn new(kind: Activation, fmt: QFormat) -> Self {
        let mut table = Box::new([0i8; 256]);
        for (i, slot) in table.iter_mut().enumerate() {
            let raw = i as u8 as i8;
            *slot = match kind {
                Activation::Relu => relu_i8(raw),
                Activation::Gelu => gelu_i8(raw, fmt),
                Activation::Identity => raw,
            };
        }
        Self { table, kind }
    }

    /// Which activation this ROM implements.
    #[must_use]
    pub fn kind(&self) -> Activation {
        self.kind
    }

    /// Apply to one raw value (combinational ROM read).
    #[must_use]
    pub fn apply(&self, x: i8) -> i8 {
        self.table[x as u8 as usize]
    }

    /// Apply elementwise in place.
    pub fn apply_slice(&self, data: &mut [i8]) {
        for v in data {
            *v = self.apply(*v);
        }
    }
}

/// Error function via Abramowitz–Stegun 7.1.26 (|ε| < 1.5e-7, far below
/// 8-bit resolution). Avoids pulling in a special-functions dependency.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt() -> QFormat {
        QFormat::new(8, 5)
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu_i8(-1), 0);
        assert_eq!(relu_i8(-128), 0);
        assert_eq!(relu_i8(0), 0);
        assert_eq!(relu_i8(77), 77);
        assert_eq!(relu_i8(127), 127);
    }

    #[test]
    fn gelu_fixed_points() {
        // gelu(0) = 0; gelu(x) ≈ x for large positive x; ≈ 0 for large negative.
        assert_eq!(gelu_i8(0, fmt()), 0);
        let big = gelu_i8(127, fmt());
        assert!((i32::from(big) - 127).abs() <= 1, "gelu(+max) = {big}");
        let neg = gelu_i8(-128, fmt());
        assert!(neg.abs() <= 1, "gelu(-max) = {neg}");
    }

    #[test]
    fn gelu_monotone_above_dip() {
        // GELU is monotone increasing only for x ≳ −0.75 (it has a global
        // minimum of ≈ −0.17 near x = −0.75). Check monotonicity on the
        // increasing branch and the minimum's depth on the rest.
        let dip_raw = fmt().real_to_raw(-0.75) as i16;
        let mut prev = i16::from(i8::MIN);
        for raw in dip_raw..=127 {
            let g = i16::from(gelu_i8(raw as i8, fmt()));
            assert!(g >= prev - 1, "gelu non-monotone at {raw}");
            prev = g.max(prev);
        }
        let min = (-128i16..=127)
            .map(|raw| fmt().raw_to_real(i64::from(gelu_i8(raw as i8, fmt()))))
            .fold(f64::MAX, f64::min);
        assert!(min > -0.22 && min < -0.10, "gelu min = {min}");
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn lut_matches_direct_computation() {
        for kind in [Activation::Relu, Activation::Gelu, Activation::Identity] {
            let lut = ActivationLut::new(kind, fmt());
            for raw in -128i16..=127 {
                let x = raw as i8;
                let expect = match kind {
                    Activation::Relu => relu_i8(x),
                    Activation::Gelu => gelu_i8(x, fmt()),
                    Activation::Identity => x,
                };
                assert_eq!(lut.apply(x), expect, "kind={kind:?} raw={raw}");
            }
        }
    }

    #[test]
    fn apply_slice_in_place() {
        let lut = ActivationLut::new(Activation::Relu, fmt());
        let mut data = vec![-5i8, 5, -128, 127, 0];
        lut.apply_slice(&mut data);
        assert_eq!(data, vec![0, 5, 0, 127, 0]);
    }
}
