//! Fixed-point value types with explicit formats.
//!
//! These are the "typed" layer over raw integers: an [`Fx8`] is an `i8` raw
//! value tagged with its [`QFormat`]. Arithmetic checks format agreement in
//! debug builds and saturates like a hardware datapath. Bulk kernels in
//! [`crate::mac`] work on raw slices for speed; these types are used at API
//! boundaries and in tests where the format bookkeeping matters.

use crate::qformat::QFormat;
use crate::rounding::Rounding;

macro_rules! fx_type {
    ($(#[$doc:meta])* $name:ident, $raw:ty, $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            raw: $raw,
            fmt: QFormat,
        }

        impl $name {
            /// Construct from a raw integer and its format.
            ///
            /// # Panics
            /// Panics if `fmt.total_bits()` does not match this storage width.
            #[must_use]
            pub fn from_raw(raw: $raw, fmt: QFormat) -> Self {
                assert_eq!(
                    fmt.total_bits(),
                    $bits,
                    "format width {} does not match storage width {}",
                    fmt.total_bits(),
                    $bits
                );
                Self { raw, fmt }
            }

            /// Quantize a real number into this storage width with the given
            /// format, saturating at the representable range.
            #[must_use]
            pub fn from_real(x: f64, fmt: QFormat) -> Self {
                assert_eq!(fmt.total_bits(), $bits);
                Self { raw: fmt.real_to_raw(x) as $raw, fmt }
            }

            /// The raw stored integer.
            #[must_use]
            pub fn raw(self) -> $raw {
                self.raw
            }

            /// The value's format.
            #[must_use]
            pub fn format(self) -> QFormat {
                self.fmt
            }

            /// The real number this value represents.
            #[must_use]
            pub fn to_real(self) -> f64 {
                self.fmt.raw_to_real(self.raw as i64)
            }

            /// Saturating addition; both operands must share a format.
            #[must_use]
            pub fn sat_add(self, rhs: Self) -> Self {
                debug_assert_eq!(self.fmt, rhs.fmt, "format mismatch in sat_add");
                Self { raw: self.raw.saturating_add(rhs.raw), fmt: self.fmt }
            }

            /// Saturating subtraction; both operands must share a format.
            #[must_use]
            pub fn sat_sub(self, rhs: Self) -> Self {
                debug_assert_eq!(self.fmt, rhs.fmt, "format mismatch in sat_sub");
                Self { raw: self.raw.saturating_sub(rhs.raw), fmt: self.fmt }
            }

            /// Saturating negation (`-MIN` saturates to `MAX`).
            #[must_use]
            pub fn sat_neg(self) -> Self {
                Self { raw: self.raw.checked_neg().unwrap_or(<$raw>::MAX), fmt: self.fmt }
            }

            /// Convert to another format of the same width by shifting,
            /// rounding per `mode`, and saturating.
            #[must_use]
            pub fn convert(self, target: QFormat, mode: Rounding) -> Self {
                assert_eq!(target.total_bits(), $bits);
                let src_f = i32::from(self.fmt.frac_bits());
                let dst_f = i32::from(target.frac_bits());
                let v = self.raw as i64;
                let shifted = if dst_f >= src_f {
                    v.checked_shl((dst_f - src_f) as u32).unwrap_or(if v >= 0 { i64::MAX } else { i64::MIN })
                } else {
                    mode.shift_right(v, (src_f - dst_f) as u32)
                };
                let clamped = shifted.clamp(target.raw_min(), target.raw_max());
                Self { raw: clamped as $raw, fmt: target }
            }
        }
    };
}

fx_type!(
    /// 8-bit fixed-point value — the storage type of ProTEA's datapath.
    Fx8, i8, 8
);
fx_type!(
    /// 16-bit fixed-point value — exact product width of two 8-bit values
    /// (with one bit to spare).
    Fx16, i16, 16
);
fx_type!(
    /// 32-bit fixed-point value — the accumulator type (`int` in the HLS
    /// source; hardware DSP48 accumulators are 48-bit, of which at most 32
    /// are exercised by this design's trip counts).
    Fx32, i32, 32
);

impl Fx8 {
    /// Exact widening multiply: i8 × i8 → i16 never overflows
    /// (|−128 × −128| = 16384 < 32767). The exact product needs only 15
    /// bits; it is stored in the 16-bit type with the same binary point.
    #[must_use]
    pub fn widening_mul(self, rhs: Self) -> Fx16 {
        let prod = i16::from(self.raw) * i16::from(rhs.raw);
        let fmt = QFormat::new(16, self.fmt.frac_bits() + rhs.fmt.frac_bits());
        Fx16::from_raw(prod, fmt)
    }
}

impl Fx32 {
    /// Accumulate an exact i8×i8 product into this 32-bit accumulator
    /// (the PE inner operation). Saturating — a real DSP48 accumulator
    /// wraps at 48 bits, but this design's worst case
    /// (`768 · 128 · 128 < 2^24`) never reaches even 32 bits, which tests
    /// assert.
    #[must_use]
    pub fn mac(self, a: Fx8, b: Fx8) -> Fx32 {
        debug_assert_eq!(
            self.fmt.frac_bits(),
            a.format().frac_bits() + b.format().frac_bits(),
            "accumulator format must match product format"
        );
        let prod = i32::from(a.raw()) * i32::from(b.raw());
        Fx32 { raw: self.raw.saturating_add(prod), fmt: self.fmt }
    }

    /// Narrow this accumulator to 8-bit storage in `target` format.
    #[must_use]
    pub fn narrow_to_8(self, target: QFormat, mode: Rounding) -> Fx8 {
        assert_eq!(target.total_bits(), 8);
        let src_f = i32::from(self.fmt.frac_bits());
        let dst_f = i32::from(target.frac_bits());
        let v = i64::from(self.raw);
        let shifted = if dst_f >= src_f {
            v << (dst_f - src_f).min(62)
        } else {
            mode.shift_right(v, (src_f - dst_f) as u32)
        };
        Fx8::from_raw(shifted.clamp(target.raw_min(), target.raw_max()) as i8, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q85() -> QFormat {
        QFormat::new(8, 5)
    }

    #[test]
    fn real_round_trip() {
        let x = Fx8::from_real(1.5, q85());
        assert_eq!(x.raw(), 48);
        assert!((x.to_real() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_construction() {
        assert_eq!(Fx8::from_real(100.0, q85()).raw(), 127);
        assert_eq!(Fx8::from_real(-100.0, q85()).raw(), -128);
    }

    #[test]
    fn sat_add_saturates() {
        let a = Fx8::from_raw(120, q85());
        let b = Fx8::from_raw(20, q85());
        assert_eq!(a.sat_add(b).raw(), 127);
        let c = Fx8::from_raw(-120, q85());
        let d = Fx8::from_raw(-20, q85());
        assert_eq!(c.sat_add(d).raw(), -128);
    }

    #[test]
    fn sat_neg_of_min() {
        let m = Fx8::from_raw(i8::MIN, q85());
        assert_eq!(m.sat_neg().raw(), i8::MAX);
    }

    #[test]
    fn widening_mul_exact() {
        let a = Fx8::from_real(1.5, q85());
        let b = Fx8::from_real(-2.0, q85());
        let p = a.widening_mul(b);
        assert_eq!(p.format().frac_bits(), 10);
        assert_eq!(p.format().total_bits(), 16);
        assert!((p.to_real() + 3.0).abs() < 1e-9);
        // extreme corners don't overflow
        let lo = Fx8::from_raw(i8::MIN, q85());
        assert_eq!(lo.widening_mul(lo).raw(), 16384);
    }

    #[test]
    fn mac_accumulates_products() {
        let acc_fmt = QFormat::acc32(10);
        let mut acc = Fx32::from_raw(0, acc_fmt);
        let a = Fx8::from_real(1.0, q85());
        let b = Fx8::from_real(2.0, q85());
        for _ in 0..10 {
            acc = acc.mac(a, b);
        }
        assert!((acc.to_real() - 20.0).abs() < 0.1);
    }

    #[test]
    fn narrow_rounds_and_saturates() {
        let acc_fmt = QFormat::acc32(10);
        let acc = Fx32::from_real(3.515625, acc_fmt);
        let n = acc.narrow_to_8(q85(), Rounding::NearestEven);
        assert!((n.to_real() - 3.515625).abs() <= q85().lsb() / 2.0 + 1e-9);
        let big = Fx32::from_real(500.0, acc_fmt);
        assert_eq!(big.narrow_to_8(q85(), Rounding::NearestEven).raw(), 127);
    }

    #[test]
    fn convert_between_formats() {
        let x = Fx8::from_real(1.25, QFormat::new(8, 5));
        let y = x.convert(QFormat::new(8, 2), Rounding::NearestEven);
        assert!((y.to_real() - 1.25).abs() < 1e-12);
        // widening the fraction can saturate
        let big = Fx8::from_real(3.9, QFormat::new(8, 5));
        let z = big.convert(QFormat::new(8, 7), Rounding::NearestEven);
        assert_eq!(z.raw(), 127); // 3.9 not representable in Q0.7
    }

    #[test]
    #[should_panic(expected = "format width")]
    fn from_raw_rejects_wrong_width() {
        let _ = Fx8::from_raw(0, QFormat::new(16, 8));
    }
}
