//! # protea-fixed — fixed-point arithmetic substrate
//!
//! ProTEA (the paper) quantizes all data to an **8-bit fixed-point format**
//! and performs multiply-accumulate in DSP48 slices, which natively produce
//! wide products accumulated into a 48-bit register. This crate models that
//! datapath bit-accurately on a host CPU:
//!
//! * [`QFormat`] — a power-of-two fixed-point format `Qm.f` (signed, `m`
//!   integer bits, `f` fractional bits).
//! * [`Fx8`] / [`Fx16`] / [`Fx32`] — fixed-point values with an explicit
//!   format, saturating conversions and arithmetic.
//! * [`mac`] — i8×i8→i32 multiply-accumulate kernels (the PE datapath).
//! * [`requant`] — wide-accumulator → narrow-storage requantization with
//!   selectable [`Rounding`] and saturation, exactly as a hardware
//!   right-shift-round-saturate stage.
//! * [`quant`] — per-tensor quantizer (scale selection from data statistics).
//! * [`softmax`] — the LUT-based exponential + reciprocal softmax the paper
//!   implements "in LUTs and flip-flops".
//! * [`activation`] — ReLU and a LUT GELU for the first FFN transformation.
//! * [`layernorm`] — integer mean/variance/rsqrt layer normalization.
//!
//! Everything here is deterministic and panic-free on arbitrary inputs
//! (saturating, never overflowing), which the property tests exercise
//! heavily.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod fx;
pub mod layernorm;
pub mod mac;
pub mod qformat;
pub mod quant;
pub mod requant;
pub mod rounding;
pub mod softmax;

pub use activation::{gelu_i8, relu_i8, Activation};
pub use fx::{Fx16, Fx32, Fx8};
pub use mac::{axpy_i8, dot_i8, dot_i8_unrolled, mac_i8, Mac};
pub use qformat::QFormat;
pub use quant::{dequantize_slice, quantize_slice, QuantParams, Quantizer};
pub use requant::{requantize, Requantizer};
pub use rounding::Rounding;
pub use softmax::{softmax_fixed, ExpLut, SoftmaxUnit};
