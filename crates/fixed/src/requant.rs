//! Requantization: wide accumulator → narrow storage.
//!
//! After an engine finishes an output element, the 32-bit accumulator holds
//! a value in the *product* format (`frac_a + frac_b` fractional bits). The
//! hardware requantization stage shifts it back to the 8-bit storage format
//! and saturates. ProTEA's `QK_CE` additionally divides by the embedding
//! dimension (Algorithm 2, line 9) — a power-of-two-friendly scaling we
//! fold into the same shift where possible and model exactly otherwise.

use crate::qformat::QFormat;
use crate::rounding::Rounding;

/// Requantize one accumulator value from `acc_frac` fractional bits to the
/// `target` format, rounding per `mode` and saturating.
#[must_use]
pub fn requantize(acc: i32, acc_frac: u8, target: QFormat, mode: Rounding) -> i8 {
    debug_assert_eq!(target.total_bits(), 8, "requantize targets 8-bit storage");
    let src = i32::from(acc_frac);
    let dst = i32::from(target.frac_bits());
    let v = i64::from(acc);
    let shifted = if dst >= src {
        // Widening the fraction: left shift, saturating.
        let sh = (dst - src) as u32;
        v.checked_shl(sh).unwrap_or(if v >= 0 { i64::MAX } else { i64::MIN })
    } else {
        mode.shift_right(v, (src - dst) as u32)
    };
    shifted.clamp(-128, 127) as i8
}

/// A configured requantizer: fixed source fraction, target format, rounding
/// mode, and an optional extra integer divisor (for the `S/d_model` scaling
/// in Algorithm 2). One of these sits at the output of every engine.
#[derive(Debug, Clone, Copy)]
pub struct Requantizer {
    acc_frac: u8,
    target: QFormat,
    mode: Rounding,
    /// Extra right-shift applied before format conversion; used for the
    /// attention scaling `1/d_k^(1/2)` (the paper scales by the embedding
    /// dimension, a stronger power-of-two-able normalization).
    pre_shift: u8,
}

impl Requantizer {
    /// Build a requantizer from the accumulator fraction and target format.
    #[must_use]
    pub fn new(acc_frac: u8, target: QFormat, mode: Rounding) -> Self {
        Self { acc_frac, target, mode, pre_shift: 0 }
    }

    /// Add a power-of-two pre-scaling of `2^-shift` (e.g. `shift =
    /// log2(d_model)` for Algorithm 2's division by the embedding
    /// dimension).
    #[must_use]
    pub fn with_pre_shift(mut self, shift: u8) -> Self {
        self.pre_shift = shift;
        self
    }

    /// The target storage format.
    #[must_use]
    pub fn target(&self) -> QFormat {
        self.target
    }

    /// Requantize a single accumulator value.
    #[must_use]
    pub fn apply(&self, acc: i32) -> i8 {
        let pre = self.mode.shift_right(i64::from(acc), u32::from(self.pre_shift));
        // `pre` still fits i32 semantics (a right shift only shrinks), but
        // keep the wide path through requantize for uniform rounding.
        let src = i32::from(self.acc_frac);
        let dst = i32::from(self.target.frac_bits());
        let shifted = if dst >= src {
            let sh = (dst - src) as u32;
            pre.checked_shl(sh).unwrap_or(if pre >= 0 { i64::MAX } else { i64::MIN })
        } else {
            self.mode.shift_right(pre, (src - dst) as u32)
        };
        shifted.clamp(-128, 127) as i8
    }

    /// Requantize a slice of accumulators into an i8 buffer.
    pub fn apply_slice(&self, acc: &[i32], out: &mut [i8]) {
        assert_eq!(acc.len(), out.len());
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            *o = self.apply(a);
        }
    }

    /// The real-valued scale this requantizer divides by, for verifying
    /// against a float reference: `2^(acc_frac - target_frac + pre_shift)`.
    #[must_use]
    pub fn effective_shift(&self) -> i32 {
        i32::from(self.acc_frac) - i32::from(self.target.frac_bits()) + i32::from(self.pre_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requantize_identity_when_formats_match() {
        let t = QFormat::new(8, 5);
        assert_eq!(requantize(100, 5, t, Rounding::Truncate), 100);
        assert_eq!(requantize(-100, 5, t, Rounding::Truncate), -100);
    }

    #[test]
    fn requantize_shifts_down_product_format() {
        // acc holds Q.10 (two Q.5 inputs); target Q.5 → shift right 5.
        let t = QFormat::new(8, 5);
        assert_eq!(requantize(32 << 5, 10, t, Rounding::NearestEven), 32);
    }

    #[test]
    fn requantize_saturates() {
        let t = QFormat::new(8, 5);
        assert_eq!(requantize(i32::MAX, 10, t, Rounding::Truncate), 127);
        assert_eq!(requantize(i32::MIN, 10, t, Rounding::Truncate), -128);
    }

    #[test]
    fn requantize_widening_fraction() {
        let t = QFormat::new(8, 7);
        // acc = 1 in Q.5 (=1/32); in Q.7 it's raw 4.
        assert_eq!(requantize(1, 5, t, Rounding::Truncate), 4);
    }

    #[test]
    fn pre_shift_divides() {
        let t = QFormat::new(8, 5);
        let r = Requantizer::new(10, t, Rounding::Truncate).with_pre_shift(3);
        // acc = 8.0 in Q.10 → pre-shift /8 → 1.0 → Q.5 raw 32.
        assert_eq!(r.apply(8 << 10), 32);
        assert_eq!(r.effective_shift(), 10 - 5 + 3);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let t = QFormat::new(8, 4);
        let r = Requantizer::new(9, t, Rounding::NearestEven);
        let acc: Vec<i32> = (-20..20).map(|i| i * 137).collect();
        let mut out = vec![0i8; acc.len()];
        r.apply_slice(&acc, &mut out);
        for (i, &a) in acc.iter().enumerate() {
            assert_eq!(out[i], r.apply(a));
        }
    }

    #[test]
    fn requantize_error_within_half_lsb_of_target() {
        let t = QFormat::new(8, 5);
        for acc in (-4000i32..4000).step_by(7) {
            let real = f64::from(acc) / 1024.0; // Q.10
            let q = requantize(acc, 10, t, Rounding::NearestEven);
            let back = f64::from(q) / 32.0;
            if real.abs() < t.real_max() {
                assert!((back - real).abs() <= t.lsb() / 2.0 + 1e-12, "acc={acc}");
            }
        }
    }
}
