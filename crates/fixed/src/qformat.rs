//! Power-of-two fixed-point formats (`Qm.f`).
//!
//! A `QFormat` describes how raw integer bits are interpreted as a real
//! number: `value = raw / 2^frac_bits`. ProTEA synthesizes its datapath for
//! one storage width (8 bits in the paper) but the format — how many of
//! those bits are fractional — is a quantization-time decision made per
//! tensor by the software driver.

use core::fmt;

/// A signed fixed-point format with a total bit width and a binary point.
///
/// `total_bits` includes the sign bit. `frac_bits` may exceed
/// `total_bits - 1` (all-fractional formats with implicit leading zeros) or
/// be negative-equivalent is not supported: formats are `0 ..= 31` frac bits
/// and `2 ..= 32` total bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Create a format with `total_bits` total (including sign) and
    /// `frac_bits` fractional bits.
    ///
    /// # Panics
    /// Panics if `total_bits` is not in `2..=32` or `frac_bits > 31`.
    #[must_use]
    pub fn new(total_bits: u8, frac_bits: u8) -> Self {
        assert!(
            (2..=32).contains(&total_bits),
            "QFormat total_bits must be in 2..=32, got {total_bits}"
        );
        assert!(frac_bits <= 31, "QFormat frac_bits must be <= 31, got {frac_bits}");
        Self { total_bits, frac_bits }
    }

    /// The paper's default activation/weight format: 8 bits total, 5
    /// fractional bits (range ±4, resolution 1/32) — a good general format
    /// for layer-normalized transformer activations.
    #[must_use]
    pub const fn q8_default() -> Self {
        Self { total_bits: 8, frac_bits: 5 }
    }

    /// 8-bit all-but-sign fractional format (range ±1) used for softmax
    /// probabilities.
    #[must_use]
    pub const fn q8_prob() -> Self {
        Self { total_bits: 8, frac_bits: 7 }
    }

    /// A 32-bit accumulator format with the given fractional bits. DSP48
    /// accumulators are 48-bit in hardware; 32 bits is sufficient for the
    /// trip counts in this design and is what the HLS code uses for `int`
    /// accumulators.
    #[must_use]
    pub const fn acc32(frac_bits: u8) -> Self {
        Self { total_bits: 32, frac_bits }
    }

    /// Total storage bits, including sign.
    #[must_use]
    pub const fn total_bits(self) -> u8 {
        self.total_bits
    }

    /// Fractional bits (position of the binary point).
    #[must_use]
    pub const fn frac_bits(self) -> u8 {
        self.frac_bits
    }

    /// Integer (non-fractional, non-sign) bits; may be negative conceptually
    /// for sub-unity formats, so returned as `i16`.
    #[must_use]
    pub const fn int_bits(self) -> i16 {
        self.total_bits as i16 - 1 - self.frac_bits as i16
    }

    /// The real value of one least-significant bit: `2^-frac_bits`.
    #[must_use]
    pub fn lsb(self) -> f64 {
        (self.frac_bits as i32).checked_neg().map_or(1.0, |e| 2f64.powi(e))
    }

    /// Scale factor `2^frac_bits` used to convert real → raw.
    #[must_use]
    pub fn scale(self) -> f64 {
        2f64.powi(self.frac_bits as i32)
    }

    /// Maximum raw value representable (e.g. 127 for 8-bit).
    #[must_use]
    pub const fn raw_max(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Minimum raw value representable (e.g. -128 for 8-bit).
    #[must_use]
    pub const fn raw_min(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable real value.
    #[must_use]
    pub fn real_max(self) -> f64 {
        self.raw_max() as f64 * self.lsb()
    }

    /// Smallest (most negative) representable real value.
    #[must_use]
    pub fn real_min(self) -> f64 {
        self.raw_min() as f64 * self.lsb()
    }

    /// Convert a real number to the nearest raw value, saturating at the
    /// format bounds. Ties round away from zero (like `f64::round`).
    #[must_use]
    pub fn real_to_raw(self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let scaled = (x * self.scale()).round();
        if scaled >= self.raw_max() as f64 {
            self.raw_max()
        } else if scaled <= self.raw_min() as f64 {
            self.raw_min()
        } else {
            scaled as i64
        }
    }

    /// Convert a raw value in this format back to a real number.
    #[must_use]
    pub fn raw_to_real(self, raw: i64) -> f64 {
        raw as f64 * self.lsb()
    }

    /// Quantization round-trip: the representable value nearest `x`.
    #[must_use]
    pub fn round_trip(self, x: f64) -> f64 {
        self.raw_to_real(self.real_to_raw(x))
    }

    /// The format of an exact product of values in `self` and `rhs`:
    /// widths add (minus one duplicated sign bit), fractional bits add.
    #[must_use]
    pub fn product(self, rhs: Self) -> Self {
        let total = (self.total_bits as u16 + rhs.total_bits as u16 - 1).min(32) as u8;
        let frac = (self.frac_bits + rhs.frac_bits).min(31);
        Self { total_bits: total, frac_bits: frac }
    }

    /// Pick the format (for a fixed width) that covers `max_abs` with the
    /// most fractional precision. This is what the quantizer does per
    /// tensor: find the smallest number of integer bits whose range covers
    /// the observed dynamic range.
    #[must_use]
    pub fn fit(total_bits: u8, max_abs: f64) -> Self {
        assert!((2..=32).contains(&total_bits));
        let max_abs = if max_abs.is_finite() { max_abs.abs() } else { 1.0 };
        // Find the largest frac such that max_abs <= real_max.
        let mut best = Self::new(total_bits, 0);
        for frac in 0..=(31.min(total_bits as u32 + 15) as u8) {
            let f = Self::new(total_bits, frac);
            if f.real_max() >= max_abs {
                best = f;
            } else {
                break;
            }
        }
        best
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_default_range() {
        let q = QFormat::q8_default();
        assert_eq!(q.total_bits(), 8);
        assert_eq!(q.frac_bits(), 5);
        assert_eq!(q.raw_max(), 127);
        assert_eq!(q.raw_min(), -128);
        assert!((q.real_max() - 3.96875).abs() < 1e-12);
        assert!((q.real_min() + 4.0).abs() < 1e-12);
    }

    #[test]
    fn lsb_and_scale_are_reciprocal() {
        for frac in 0..=20u8 {
            let q = QFormat::new(16, frac);
            assert!((q.lsb() * q.scale() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn real_to_raw_saturates() {
        let q = QFormat::q8_default();
        assert_eq!(q.real_to_raw(1e9), 127);
        assert_eq!(q.real_to_raw(-1e9), -128);
        assert_eq!(q.real_to_raw(f64::NAN), 0);
        assert_eq!(q.real_to_raw(f64::INFINITY), 127);
        assert_eq!(q.real_to_raw(f64::NEG_INFINITY), -128);
    }

    #[test]
    fn round_trip_error_bounded_by_half_lsb() {
        let q = QFormat::new(8, 5);
        for i in -1000..1000 {
            let x = i as f64 * 0.003;
            if x <= q.real_max() && x >= q.real_min() {
                assert!((q.round_trip(x) - x).abs() <= q.lsb() / 2.0 + 1e-12, "x={x}");
            }
        }
    }

    #[test]
    fn product_format_widths_add() {
        let a = QFormat::new(8, 5);
        let p = a.product(a);
        assert_eq!(p.total_bits(), 15);
        assert_eq!(p.frac_bits(), 10);
    }

    #[test]
    fn fit_covers_max_abs() {
        for &m in &[0.1, 0.5, 1.0, 3.0, 7.9, 100.0, 0.0] {
            let q = QFormat::fit(8, m);
            assert!(q.real_max() >= m || q.frac_bits() == 0, "m={m} q={q}");
        }
        // 1.0 fits in Q1.6 (max 1.984) but not Q0.7 (max 0.992).
        assert_eq!(QFormat::fit(8, 1.0).frac_bits(), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(QFormat::new(8, 5).to_string(), "Q2.5");
        assert_eq!(QFormat::new(8, 7).to_string(), "Q0.7");
    }

    #[test]
    #[should_panic(expected = "total_bits")]
    fn new_rejects_tiny_width() {
        let _ = QFormat::new(1, 0);
    }
}
