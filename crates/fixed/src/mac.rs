//! Multiply-accumulate kernels — the PE datapath.
//!
//! Each ProTEA processing element is one DSP48 doing `acc += a * b` per
//! cycle on 8-bit operands. An engine's unrolled inner loop is a *row* of
//! PEs reducing in parallel. These kernels are the bit-exact software
//! equivalent: i8×i8 products accumulated in i32 (order-independent because
//! integer addition is associative — the property tests check permutation
//! invariance, something float kernels cannot offer).

/// The one i8 MAC step in the workspace: `acc + a·b` widened to i32.
///
/// Every i8 reduction — [`dot_i8`], [`dot_i8_unrolled`], [`axpy_i8`], the
/// tensor crate's GEMM kernels — routes its inner multiply-accumulate
/// through this function, so the PE datapath has exactly one software
/// definition that cannot drift between kernels.
#[inline(always)]
#[must_use]
pub fn mac_i8(acc: i32, a: i8, b: i8) -> i32 {
    acc + i32::from(a) * i32::from(b)
}

/// One accumulator lane of the reduction: the partial sum over indices
/// `i ≡ lane (mod stride)` — the shape an HLS `#pragma HLS unroll`
/// carves the loop into. `stride = 1` is the whole dot product.
#[inline]
fn lane_dot_i8(a: &[i8], b: &[i8], lane: usize, stride: usize) -> i32 {
    a.iter().zip(b.iter()).skip(lane).step_by(stride).fold(0i32, |acc, (&x, &y)| mac_i8(acc, x, y))
}

/// Dot product of two i8 slices accumulated exactly in i32.
///
/// The maximum magnitude is `len · 128 · 128`; callers keep `len < 2^17`
/// (true for every trip count in this design, max `4·d_model = 3072`) so
/// the accumulation cannot overflow i32. Debug builds assert this.
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    debug_assert!(a.len() < (1 << 17), "dot length {} risks i32 overflow", a.len());
    lane_dot_i8(a, b, 0, 1)
}

/// Dot product with an explicit unroll factor, mirroring how the HLS
/// `#pragma HLS unroll` splits the reduction into `unroll` parallel
/// accumulator chains that are summed at the end.
///
/// The result is identical to [`dot_i8`] (integer addition is associative);
/// both are sums of [`lane_dot_i8`] partial reductions over the same MAC
/// step, differing only in how the index space is carved into lanes.
#[must_use]
pub fn dot_i8_unrolled(a: &[i8], b: &[i8], unroll: usize) -> i32 {
    assert_eq!(a.len(), b.len());
    let unroll = unroll.max(1).min(a.len().max(1));
    (0..unroll).map(|lane| lane_dot_i8(a, b, lane, unroll)).sum()
}

/// Scaled row update `acc[j] += x · w[j]` — the packed GEMM microkernel's
/// inner loop (one input scalar against a resident weight row, exactly a
/// PE row firing in lockstep). Skips `x == 0` outright: adding zero is
/// the identity, so the skip cannot change any result, and zero
/// activations (ReLU outputs, batch padding rows) are common.
pub fn axpy_i8(acc: &mut [i32], x: i8, w: &[i8]) {
    assert_eq!(acc.len(), w.len(), "axpy operands must have equal length");
    if x == 0 {
        return;
    }
    for (a, &b) in acc.iter_mut().zip(w.iter()) {
        *a = mac_i8(*a, x, b);
    }
}

/// A stateful MAC unit: one PE. Used by the engine functional models where
/// the accumulator lives across tile iterations (the paper's intermediate
/// buffers that are "accumulated with results from previous iterations").
#[derive(Debug, Clone, Copy, Default)]
pub struct Mac {
    acc: i32,
}

impl Mac {
    /// A fresh PE with a zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// One cycle: `acc += a*b`.
    pub fn step(&mut self, a: i8, b: i8) {
        self.acc = self.acc.saturating_add(i32::from(a) * i32::from(b));
    }

    /// Fold a whole vector through the PE (models the pipelined loop).
    pub fn accumulate(&mut self, a: &[i8], b: &[i8]) {
        self.acc = self.acc.saturating_add(dot_i8(a, b));
    }

    /// Add a pre-scaled bias term directly into the accumulator (the
    /// paper loads biases into registers and adds them to Q/K/V).
    pub fn add_bias(&mut self, bias: i32) {
        self.acc = self.acc.saturating_add(bias);
    }

    /// Read the accumulator.
    #[must_use]
    pub fn value(&self) -> i32 {
        self.acc
    }

    /// Clear for the next output element (the `S_q ← 0` in Algorithm 1).
    pub fn reset(&mut self) {
        self.acc = 0;
    }
}

/// Row-of-PEs helper: `out[j] = dot(a, b_cols[j])` for a bank of `n`
/// parallel PEs sharing the `a` operand (one engine row step).
pub fn pe_row(a: &[i8], b_cols: &[&[i8]], out: &mut [i32]) {
    assert_eq!(b_cols.len(), out.len());
    for (o, col) in out.iter_mut().zip(b_cols.iter()) {
        *o = dot_i8(a, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_reference() {
        let a = [1i8, -2, 3, -4];
        let b = [5i8, 6, -7, 8];
        assert_eq!(dot_i8(&a, &b), 5 - 12 - 21 - 32);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn dot_extreme_values_no_overflow() {
        let a = vec![i8::MIN; 3072];
        let b = vec![i8::MIN; 3072];
        assert_eq!(dot_i8(&a, &b), 3072 * 128 * 128);
    }

    #[test]
    fn unrolled_equals_rolled() {
        let a: Vec<i8> = (0..97).map(|i| (i * 7 % 251) as i8).collect();
        let b: Vec<i8> = (0..97).map(|i| (i * 13 % 251) as i8).collect();
        let reference = dot_i8(&a, &b);
        for unroll in [1, 2, 3, 8, 16, 64, 97, 200] {
            assert_eq!(dot_i8_unrolled(&a, &b, unroll), reference, "unroll={unroll}");
        }
    }

    #[test]
    fn mac_step_equals_accumulate() {
        let a = [3i8, -5, 7, 11, -13];
        let b = [2i8, 4, -6, 8, 10];
        let mut pe1 = Mac::new();
        for (&x, &y) in a.iter().zip(b.iter()) {
            pe1.step(x, y);
        }
        let mut pe2 = Mac::new();
        pe2.accumulate(&a, &b);
        assert_eq!(pe1.value(), pe2.value());
    }

    #[test]
    fn mac_bias_and_reset() {
        let mut pe = Mac::new();
        pe.add_bias(42);
        pe.step(2, 3);
        assert_eq!(pe.value(), 48);
        pe.reset();
        assert_eq!(pe.value(), 0);
    }

    #[test]
    fn pe_row_computes_all_columns() {
        let a = [1i8, 2, 3];
        let c0 = [1i8, 0, 0];
        let c1 = [0i8, 1, 0];
        let c2 = [1i8, 1, 1];
        let mut out = [0i32; 3];
        pe_row(&a, &[&c0, &c1, &c2], &mut out);
        assert_eq!(out, [1, 2, 6]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot_i8(&[1, 2], &[1]);
    }

    #[test]
    fn axpy_matches_elementwise_reference() {
        let w = [3i8, -7, 11, 0, -128, 127];
        let mut acc = [10i32, -20, 30, -40, 50, -60];
        axpy_i8(&mut acc, -5, &w);
        let expect: Vec<i32> = [10i32, -20, 30, -40, 50, -60]
            .iter()
            .zip(w.iter())
            .map(|(&a, &b)| a + (-5i32) * i32::from(b))
            .collect();
        assert_eq!(acc.to_vec(), expect);
    }

    #[test]
    fn axpy_zero_scalar_is_identity() {
        let w = [1i8, 2, 3];
        let mut acc = [4i32, 5, 6];
        axpy_i8(&mut acc, 0, &w);
        assert_eq!(acc, [4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn axpy_rejects_mismatched_lengths() {
        axpy_i8(&mut [0i32; 2], 1, &[1i8; 3]);
    }
}
