//! Multiply-accumulate kernels — the PE datapath.
//!
//! Each ProTEA processing element is one DSP48 doing `acc += a * b` per
//! cycle on 8-bit operands. An engine's unrolled inner loop is a *row* of
//! PEs reducing in parallel. These kernels are the bit-exact software
//! equivalent: i8×i8 products accumulated in i32 (order-independent because
//! integer addition is associative — the property tests check permutation
//! invariance, something float kernels cannot offer).

/// Dot product of two i8 slices accumulated exactly in i32.
///
/// The maximum magnitude is `len · 128 · 128`; callers keep `len < 2^17`
/// (true for every trip count in this design, max `4·d_model = 3072`) so
/// the accumulation cannot overflow i32. Debug builds assert this.
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    debug_assert!(a.len() < (1 << 17), "dot length {} risks i32 overflow", a.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
}

/// Dot product with an explicit unroll factor, mirroring how the HLS
/// `#pragma HLS unroll` splits the reduction into `unroll` parallel
/// accumulator chains that are summed at the end.
///
/// The result is identical to [`dot_i8`] (integer addition is associative);
/// this variant exists to (a) document the hardware reduction shape and
/// (b) give the autovectorizer an easier pattern for benchmarking.
#[must_use]
pub fn dot_i8_unrolled(a: &[i8], b: &[i8], unroll: usize) -> i32 {
    assert_eq!(a.len(), b.len());
    let unroll = unroll.max(1).min(a.len().max(1));
    let mut lanes = vec![0i32; unroll];
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        lanes[i % unroll] += i32::from(x) * i32::from(y);
    }
    lanes.iter().sum()
}

/// A stateful MAC unit: one PE. Used by the engine functional models where
/// the accumulator lives across tile iterations (the paper's intermediate
/// buffers that are "accumulated with results from previous iterations").
#[derive(Debug, Clone, Copy, Default)]
pub struct Mac {
    acc: i32,
}

impl Mac {
    /// A fresh PE with a zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// One cycle: `acc += a*b`.
    pub fn step(&mut self, a: i8, b: i8) {
        self.acc = self.acc.saturating_add(i32::from(a) * i32::from(b));
    }

    /// Fold a whole vector through the PE (models the pipelined loop).
    pub fn accumulate(&mut self, a: &[i8], b: &[i8]) {
        self.acc = self.acc.saturating_add(dot_i8(a, b));
    }

    /// Add a pre-scaled bias term directly into the accumulator (the
    /// paper loads biases into registers and adds them to Q/K/V).
    pub fn add_bias(&mut self, bias: i32) {
        self.acc = self.acc.saturating_add(bias);
    }

    /// Read the accumulator.
    #[must_use]
    pub fn value(&self) -> i32 {
        self.acc
    }

    /// Clear for the next output element (the `S_q ← 0` in Algorithm 1).
    pub fn reset(&mut self) {
        self.acc = 0;
    }
}

/// Row-of-PEs helper: `out[j] = dot(a, b_cols[j])` for a bank of `n`
/// parallel PEs sharing the `a` operand (one engine row step).
pub fn pe_row(a: &[i8], b_cols: &[&[i8]], out: &mut [i32]) {
    assert_eq!(b_cols.len(), out.len());
    for (o, col) in out.iter_mut().zip(b_cols.iter()) {
        *o = dot_i8(a, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_reference() {
        let a = [1i8, -2, 3, -4];
        let b = [5i8, 6, -7, 8];
        assert_eq!(dot_i8(&a, &b), 5 - 12 - 21 - 32);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn dot_extreme_values_no_overflow() {
        let a = vec![i8::MIN; 3072];
        let b = vec![i8::MIN; 3072];
        assert_eq!(dot_i8(&a, &b), 3072 * 128 * 128);
    }

    #[test]
    fn unrolled_equals_rolled() {
        let a: Vec<i8> = (0..97).map(|i| (i * 7 % 251) as i8).collect();
        let b: Vec<i8> = (0..97).map(|i| (i * 13 % 251) as i8).collect();
        let reference = dot_i8(&a, &b);
        for unroll in [1, 2, 3, 8, 16, 64, 97, 200] {
            assert_eq!(dot_i8_unrolled(&a, &b, unroll), reference, "unroll={unroll}");
        }
    }

    #[test]
    fn mac_step_equals_accumulate() {
        let a = [3i8, -5, 7, 11, -13];
        let b = [2i8, 4, -6, 8, 10];
        let mut pe1 = Mac::new();
        for (&x, &y) in a.iter().zip(b.iter()) {
            pe1.step(x, y);
        }
        let mut pe2 = Mac::new();
        pe2.accumulate(&a, &b);
        assert_eq!(pe1.value(), pe2.value());
    }

    #[test]
    fn mac_bias_and_reset() {
        let mut pe = Mac::new();
        pe.add_bias(42);
        pe.step(2, 3);
        assert_eq!(pe.value(), 48);
        pe.reset();
        assert_eq!(pe.value(), 0);
    }

    #[test]
    fn pe_row_computes_all_columns() {
        let a = [1i8, 2, 3];
        let c0 = [1i8, 0, 0];
        let c1 = [0i8, 1, 0];
        let c2 = [1i8, 1, 1];
        let mut out = [0i32; 3];
        pe_row(&a, &[&c0, &c1, &c2], &mut out);
        assert_eq!(out, [1, 2, 6]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot_i8(&[1, 2], &[1]);
    }
}
