//! Integer layer normalization.
//!
//! ProTEA places a layer-normalization module after `FFN1_CE` and
//! `FFN3_CE` (each MHA and FFN sub-layer has residual + LN). The hardware
//! computes row mean, variance, an integer square root, and a reciprocal
//! multiply, all in fixed point with LUT/FF resources. This module is that
//! datapath, bit-exact and deterministic.

use crate::qformat::QFormat;
use crate::rounding::Rounding;

/// Internal precision of the normalized intermediate (`(x-μ)/σ` in Q.8):
/// the normalized value of a layer-normed row is bounded by `±sqrt(n)` but
/// in practice ±8 covers it; Q8.8 in an i32 never overflows here.
const NORM_FRAC: u32 = 8;

/// Integer square root: largest `s` with `s² ≤ x`. Newton's method, exact.
#[must_use]
pub fn isqrt_u64(x: u64) -> u64 {
    if x < 2 {
        return x;
    }
    // Initial guess from float sqrt, then correct — float sqrt of u64 can
    // be off by a few ULP, so settle with exact integer steps.
    let mut s = (x as f64).sqrt() as u64;
    while s.checked_mul(s).is_none_or(|sq| sq > x) {
        s -= 1;
    }
    while (s + 1).checked_mul(s + 1).is_some_and(|sq| sq <= x) {
        s += 1;
    }
    s
}

/// A layer-normalization unit with quantized affine parameters.
#[derive(Debug, Clone)]
pub struct LayerNormUnit {
    gamma: Vec<i8>,
    beta: Vec<i8>,
    gamma_fmt: QFormat,
    beta_fmt: QFormat,
    out_fmt: QFormat,
}

impl LayerNormUnit {
    /// Build from quantized affine parameters. `gamma` and `beta` must have
    /// the same length (the feature dimension).
    #[must_use]
    pub fn new(
        gamma: Vec<i8>,
        beta: Vec<i8>,
        gamma_fmt: QFormat,
        beta_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Self {
        assert_eq!(gamma.len(), beta.len(), "gamma/beta length mismatch");
        Self { gamma, beta, gamma_fmt, beta_fmt, out_fmt }
    }

    /// An identity-affine unit (γ=1, β=0) over `dim` features.
    #[must_use]
    pub fn identity(dim: usize, out_fmt: QFormat) -> Self {
        let gamma_fmt = QFormat::new(8, 6); // 1.0 representable as 64
        let beta_fmt = QFormat::new(8, 6);
        Self::new(vec![64; dim], vec![0; dim], gamma_fmt, beta_fmt, out_fmt)
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Output format.
    #[must_use]
    pub fn output_format(&self) -> QFormat {
        self.out_fmt
    }

    /// Normalize one row (`row.len()` may be ≤ `dim()` when the runtime
    /// `d_model` is below the synthesized maximum; the affine parameters
    /// are indexed from 0).
    pub fn forward_row(&self, row: &[i8], in_fmt: QFormat, out: &mut [i8]) {
        assert_eq!(row.len(), out.len());
        assert!(row.len() <= self.dim(), "row exceeds synthesized dimension");
        let n = row.len();
        if n == 0 {
            return;
        }
        // Mean in raw units, rounded to nearest.
        let sum: i64 = row.iter().map(|&x| i64::from(x)).sum();
        let mean = div_round_nearest(sum, n as i64);
        // Variance in raw² units (biased, as hardware implements).
        let var: i64 = row
            .iter()
            .map(|&x| {
                let c = i64::from(x) - mean;
                c * c
            })
            .sum::<i64>()
            / n as i64;
        // Standard deviation in raw units; epsilon = keep σ ≥ 1 LSB, the
        // integer analogue of the float eps guard.
        let sigma = isqrt_u64(var as u64).max(1);
        let inv_gain = 1i64 << NORM_FRAC;
        for i in 0..n {
            let c = i64::from(row[i]) - mean;
            // normalized t = c/σ in Q.NORM_FRAC
            let t = div_round_nearest(c * inv_gain, sigma as i64);
            // y = t*γ + β, accumulated at frac (NORM_FRAC + γ_frac)
            let acc_frac = NORM_FRAC + u32::from(self.gamma_fmt.frac_bits());
            let mut acc = t * i64::from(self.gamma[i]);
            let beta_shift = acc_frac as i32 - i32::from(self.beta_fmt.frac_bits());
            let beta_aligned = shift_signed(i64::from(self.beta[i]), beta_shift);
            acc += beta_aligned;
            // requantize acc (frac = acc_frac) to out_fmt
            let dst = i32::from(self.out_fmt.frac_bits());
            let shifted = shift_round(acc, acc_frac as i32 - dst);
            out[i] = shifted.clamp(-128, 127) as i8;
            // in_fmt participates only through the normalization being
            // scale-free: (x-μ)/σ cancels the input scale entirely.
            let _ = in_fmt;
        }
    }

    /// Normalize a row-major `rows × cols` matrix.
    pub fn forward_matrix(&self, data: &[i8], cols: usize, in_fmt: QFormat, out: &mut [i8]) {
        assert_eq!(data.len(), out.len());
        assert!(cols > 0 && data.len().is_multiple_of(cols));
        for (ri, ro) in data.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
            self.forward_row(ri, in_fmt, ro);
        }
    }
}

/// `num/den` rounded to nearest, ties away from zero. `den > 0`.
fn div_round_nearest(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    let half = den / 2;
    if num >= 0 {
        (num + half) / den
    } else {
        (num - half) / den
    }
}

/// Shift left for positive `sh`, rounding right shift for negative.
fn shift_signed(v: i64, sh: i32) -> i64 {
    if sh >= 0 {
        v << sh.min(62)
    } else {
        Rounding::NearestEven.shift_right(v, (-sh) as u32)
    }
}

/// Right shift by `sh` with round-to-nearest-even (left shift if negative).
fn shift_round(v: i64, sh: i32) -> i64 {
    if sh > 0 {
        Rounding::NearestEven.shift_right(v, sh as u32)
    } else {
        v << (-sh).min(62)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q85() -> QFormat {
        QFormat::new(8, 5)
    }

    #[test]
    fn isqrt_exact_small() {
        for x in 0u64..2000 {
            let s = isqrt_u64(x);
            assert!(s * s <= x);
            assert!((s + 1) * (s + 1) > x);
        }
    }

    #[test]
    fn isqrt_large_values() {
        for &x in &[u64::MAX, u64::MAX - 1, 1u64 << 62, (1u64 << 32) - 1] {
            let s = isqrt_u64(x);
            assert!(s.checked_mul(s).is_some_and(|sq| sq <= x));
            assert!((s + 1).checked_mul(s + 1).is_none_or(|sq| sq > x));
        }
    }

    #[test]
    fn constant_row_normalizes_to_beta() {
        let unit = LayerNormUnit::identity(8, q85());
        let row = vec![42i8; 8];
        let mut out = vec![0i8; 8];
        unit.forward_row(&row, q85(), &mut out);
        // zero variance → centered values are 0 → output β = 0.
        assert!(out.iter().all(|&y| y == 0), "{out:?}");
    }

    #[test]
    fn output_mean_near_zero_identity_affine() {
        let unit = LayerNormUnit::identity(16, q85());
        let row: Vec<i8> = (0..16).map(|i| (i * 8 - 60) as i8).collect();
        let mut out = vec![0i8; 16];
        unit.forward_row(&row, q85(), &mut out);
        let mean: f64 = out.iter().map(|&y| f64::from(y)).sum::<f64>() / 16.0;
        assert!(mean.abs() < 4.0, "mean = {mean}");
    }

    #[test]
    fn matches_float_layernorm() {
        let unit = LayerNormUnit::identity(32, q85());
        let row: Vec<i8> = (0..32).map(|i| ((i * 37 % 101) as i8).wrapping_sub(50)).collect();
        let mut out = vec![0i8; 32];
        unit.forward_row(&row, q85(), &mut out);
        // float reference (on raw values; LN is scale-invariant)
        let xs: Vec<f64> = row.iter().map(|&x| f64::from(x)).collect();
        let m = xs.iter().sum::<f64>() / 32.0;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / 32.0;
        let s = v.sqrt().max(1.0);
        for i in 0..32 {
            let expect = (xs[i] - m) / s;
            let got = unit.output_format().raw_to_real(i64::from(out[i]));
            assert!((got - expect).abs() < 0.15, "i={i} got={got} expect={expect}");
        }
    }

    #[test]
    fn affine_parameters_apply() {
        // γ = 2.0, β = 1.0 in Q1.6/Q1.6
        let gamma_fmt = QFormat::new(8, 5);
        let beta_fmt = QFormat::new(8, 5);
        let unit = LayerNormUnit::new(
            vec![64; 8], // 2.0 in Q.5
            vec![32; 8], // 1.0 in Q.5
            gamma_fmt,
            beta_fmt,
            QFormat::new(8, 4),
        );
        let row: Vec<i8> = vec![-40, -30, -20, -10, 10, 20, 30, 40];
        let mut out = vec![0i8; 8];
        unit.forward_row(&row, q85(), &mut out);
        // expectation: 2*(x-0)/σ + 1
        let v: f64 = row.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>() / 8.0;
        let s = v.sqrt();
        for i in 0..8 {
            let expect = 2.0 * f64::from(row[i]) / s + 1.0;
            let got = f64::from(out[i]) / 16.0;
            assert!((got - expect).abs() < 0.3, "i={i} got={got} expect={expect}");
        }
    }

    #[test]
    fn runtime_dim_below_synthesized_max() {
        let unit = LayerNormUnit::identity(768, q85());
        let row: Vec<i8> = (0..256).map(|i| (i % 100) as i8).collect();
        let mut out = vec![0i8; 256];
        unit.forward_row(&row, q85(), &mut out); // must not panic
    }

    #[test]
    #[should_panic(expected = "exceeds synthesized dimension")]
    fn over_dim_row_rejected() {
        let unit = LayerNormUnit::identity(4, q85());
        let row = vec![0i8; 8];
        let mut out = vec![0i8; 8];
        unit.forward_row(&row, q85(), &mut out);
    }

    #[test]
    fn div_round_nearest_behaviour() {
        assert_eq!(div_round_nearest(7, 2), 4);
        assert_eq!(div_round_nearest(-7, 2), -4);
        assert_eq!(div_round_nearest(6, 4), 2);
        assert_eq!(div_round_nearest(5, 10), 1);
    }
}
