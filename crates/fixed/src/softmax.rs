//! LUT-based fixed-point softmax.
//!
//! The paper: "The softmax function, implemented in HLS, utilizes LUTs and
//! flip-flops to compute the result." The standard hardware recipe — and
//! what we model bit-exactly — is:
//!
//! 1. row max (for range safety; keeps every exponent argument ≤ 0),
//! 2. `exp(x - max)` via a 256-entry lookup table indexed by the raw 8-bit
//!    difference (the table is burned into LUTs at synthesis, one per
//!    input format),
//! 3. integer sum of the table outputs,
//! 4. normalization `exp_i / sum` by integer division (a small sequential
//!    divider or reciprocal multiply in hardware).
//!
//! Output probabilities are Q0.7 (`i8`, 7 fractional bits), the natural
//! format for values in `[0, 1)`.

use crate::qformat::QFormat;

/// Number of entries in the exponential lookup table (one per i8 code).
pub const EXP_LUT_SIZE: usize = 256;

/// Fractional bits of the LUT output (u16 storage, Q0.15-ish unsigned).
pub const EXP_OUT_FRAC: u8 = 15;

/// A synthesized exponential lookup table for a given input format.
///
/// Entry `i` holds `round(exp(value_of(i as i8)) * 2^15)` for non-positive
/// inputs, clamped to `2^15` (exp(0) = 1.0). Positive inputs never occur
/// after max-subtraction but are clamped to 1.0 defensively, exactly as a
/// synthesized ROM would saturate.
#[derive(Debug, Clone)]
pub struct ExpLut {
    table: Box<[u16; EXP_LUT_SIZE]>,
    input_fmt: QFormat,
}

impl ExpLut {
    /// Build the ROM contents for inputs interpreted in `input_fmt`.
    #[must_use]
    pub fn new(input_fmt: QFormat) -> Self {
        assert_eq!(input_fmt.total_bits(), 8, "softmax LUT takes 8-bit inputs");
        let mut table = Box::new([0u16; EXP_LUT_SIZE]);
        let one = 1u32 << EXP_OUT_FRAC;
        for (i, slot) in table.iter_mut().enumerate() {
            let raw = i as u8 as i8;
            let x = input_fmt.raw_to_real(i64::from(raw));
            let e = if x >= 0.0 { 1.0 } else { x.exp() };
            *slot = ((e * f64::from(one)).round() as u32).min(u32::from(u16::MAX)) as u16;
        }
        Self { table, input_fmt }
    }

    /// The input format this ROM was synthesized for.
    #[must_use]
    pub fn input_format(&self) -> QFormat {
        self.input_fmt
    }

    /// Look up `exp(x)` for a raw 8-bit input. Pure combinational read.
    #[must_use]
    pub fn lookup(&self, raw: i8) -> u16 {
        self.table[raw as u8 as usize]
    }

    /// ROM size in bits, for the resource model (256 × 16 = 4096 bits,
    /// small enough that Vivado maps it to LUTs, matching the paper).
    #[must_use]
    pub const fn rom_bits() -> u32 {
        (EXP_LUT_SIZE as u32) * 16
    }
}

/// The softmax functional unit: one per attention head in ProTEA.
#[derive(Debug, Clone)]
pub struct SoftmaxUnit {
    lut: ExpLut,
}

impl SoftmaxUnit {
    /// Build a unit whose ROM matches `input_fmt`.
    #[must_use]
    pub fn new(input_fmt: QFormat) -> Self {
        Self { lut: ExpLut::new(input_fmt) }
    }

    /// The output probability format (Q0.7).
    #[must_use]
    pub fn output_format(&self) -> QFormat {
        QFormat::q8_prob()
    }

    /// Softmax over one row of raw attention logits, writing Q0.7
    /// probabilities. `out.len()` must equal `row.len()`.
    pub fn forward_row(&self, row: &[i8], out: &mut [i8]) {
        assert_eq!(row.len(), out.len());
        if row.is_empty() {
            return;
        }
        let max = row.iter().copied().max().expect("non-empty row");
        // Exponentials of (x - max): differences saturate at i8 range,
        // which the LUT covers (exp of anything ≤ -4 in Q2.5 is ~0 anyway).
        let mut sum: u32 = 0;
        let mut exps = [0u16; 512];
        assert!(row.len() <= exps.len(), "row longer than hardware SL_max");
        for (e, &x) in exps.iter_mut().zip(row.iter()) {
            let diff = i16::from(x) - i16::from(max);
            let raw = diff.clamp(-128, 127) as i8;
            *e = self.lut.lookup(raw);
            sum += u32::from(*e);
        }
        // Normalize: p = e * 128 / sum, clamped to Q0.7 max (127).
        // sum >= exp(0) = 2^15 > 0 always, since the max element maps to 1.0.
        for (o, &e) in out.iter_mut().zip(exps.iter().take(row.len())) {
            let p = (u64::from(e) << 7) / u64::from(sum);
            *o = p.min(127) as i8;
        }
    }

    /// Masked softmax over one row: positions at index ≥ `valid` receive
    /// zero probability and take no part in the normalization — the
    /// decoder's causal mask ("Mask(…)" in equation (1)), realized in
    /// hardware as a comparator gating the exponential lookup.
    pub fn forward_row_masked(&self, row: &[i8], valid: usize, out: &mut [i8]) {
        assert_eq!(row.len(), out.len());
        let valid = valid.min(row.len());
        if valid == 0 {
            out.fill(0);
            return;
        }
        self.forward_row(&row[..valid], &mut out[..valid]);
        out[valid..].fill(0);
    }

    /// Softmax over a row-major `rows × cols` matrix in place.
    pub fn forward_matrix(&self, data: &[i8], cols: usize, out: &mut [i8]) {
        assert_eq!(data.len(), out.len());
        assert!(cols > 0 && data.len().is_multiple_of(cols), "matrix shape mismatch");
        for (r_in, r_out) in data.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
            self.forward_row(r_in, r_out);
        }
    }
}

/// Convenience: softmax of a row with a freshly built LUT. Prefer keeping a
/// [`SoftmaxUnit`] around; this exists for tests and examples.
#[must_use]
pub fn softmax_fixed(row: &[i8], input_fmt: QFormat) -> Vec<i8> {
    let unit = SoftmaxUnit::new(input_fmt);
    let mut out = vec![0i8; row.len()];
    unit.forward_row(row, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt() -> QFormat {
        QFormat::new(8, 5)
    }

    #[test]
    fn lut_is_monotone_nonpositive_side() {
        let lut = ExpLut::new(fmt());
        // raw -128..=0 maps to increasing exp values.
        let mut prev = 0u16;
        for raw in -128i16..=0 {
            let v = lut.lookup(raw as i8);
            assert!(v >= prev, "lut not monotone at {raw}");
            prev = v;
        }
        assert_eq!(lut.lookup(0), 1 << EXP_OUT_FRAC);
    }

    #[test]
    fn lut_clamps_positive_inputs_to_one() {
        let lut = ExpLut::new(fmt());
        for raw in 1i16..=127 {
            assert_eq!(lut.lookup(raw as i8), 1 << EXP_OUT_FRAC);
        }
    }

    #[test]
    fn probabilities_sum_close_to_one() {
        let unit = SoftmaxUnit::new(fmt());
        let row: Vec<i8> = vec![10, -3, 64, 0, -128, 127, 5, 5];
        let mut out = vec![0i8; row.len()];
        unit.forward_row(&row, &mut out);
        let total: i32 = out.iter().map(|&p| i32::from(p)).sum();
        // Q0.7: 1.0 == 128. Flooring division loses < 1 LSB per element.
        assert!((total - 128).unsigned_abs() as usize <= row.len(), "sum = {total}");
        assert!(out.iter().all(|&p| p >= 0));
    }

    #[test]
    fn uniform_input_gives_uniform_output() {
        let unit = SoftmaxUnit::new(fmt());
        let row = vec![7i8; 8];
        let mut out = vec![0i8; 8];
        unit.forward_row(&row, &mut out);
        assert!(out.iter().all(|&p| p == out[0]));
        assert_eq!(out[0], 16); // 128/8
    }

    #[test]
    fn dominant_logit_takes_nearly_all_mass() {
        // Use Q4.3 so the representable logit gap (±16) makes the
        // non-dominant exponentials vanish at 16-bit LUT resolution.
        let wide = QFormat::new(8, 3);
        let unit = SoftmaxUnit::new(wide);
        let mut row = vec![-128i8; 16];
        row[3] = 127;
        let mut out = vec![0i8; 16];
        unit.forward_row(&row, &mut out);
        assert!(out[3] >= 120, "dominant got {}", out[3]);
        assert!(out.iter().enumerate().all(|(i, &p)| i == 3 || p <= 1));
    }

    #[test]
    fn narrow_format_dominant_logit_still_argmax() {
        // In Q2.5 the representable gap saturates at −4, so the tail mass
        // is nonzero — but the dominant logit must still dwarf each other
        // element (hardware behaviour with a narrow logit format).
        let unit = SoftmaxUnit::new(fmt());
        let mut row = vec![-128i8; 16];
        row[3] = 127;
        let mut out = vec![0i8; 16];
        unit.forward_row(&row, &mut out);
        let rest_max = out.iter().enumerate().filter(|&(i, _)| i != 3).map(|(_, &p)| p).max();
        assert!(out[3] >= 10 * rest_max.unwrap_or(0).max(1));
    }

    #[test]
    fn matches_float_softmax_shape() {
        let unit = SoftmaxUnit::new(fmt());
        let row: Vec<i8> = vec![32, 16, 0, -16, -32, 48];
        let mut out = vec![0i8; row.len()];
        unit.forward_row(&row, &mut out);
        // float reference
        let xs: Vec<f64> = row.iter().map(|&r| fmt().raw_to_real(i64::from(r))).collect();
        let m = xs.iter().cloned().fold(f64::MIN, f64::max);
        let es: Vec<f64> = xs.iter().map(|x| (x - m).exp()).collect();
        let s: f64 = es.iter().sum();
        for (i, &p) in out.iter().enumerate() {
            let pf = f64::from(p) / 128.0;
            assert!((pf - es[i] / s).abs() < 0.02, "i={i} fixed={pf} float={}", es[i] / s);
        }
    }

    #[test]
    fn shift_invariance() {
        // softmax(x) == softmax(x + c) exactly, thanks to max subtraction.
        let unit = SoftmaxUnit::new(fmt());
        let row: Vec<i8> = vec![1, 2, 3, 4, 5];
        let shifted: Vec<i8> = row.iter().map(|&x| x + 40).collect();
        let mut a = vec![0i8; 5];
        let mut b = vec![0i8; 5];
        unit.forward_row(&row, &mut a);
        unit.forward_row(&shifted, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_forward_is_rowwise() {
        let unit = SoftmaxUnit::new(fmt());
        let data: Vec<i8> = vec![1, 2, 3, 4, 9, 8, 7, 6];
        let mut out = vec![0i8; 8];
        unit.forward_matrix(&data, 4, &mut out);
        let mut r0 = vec![0i8; 4];
        unit.forward_row(&data[..4], &mut r0);
        assert_eq!(&out[..4], &r0[..]);
    }

    #[test]
    fn empty_row_is_noop() {
        let unit = SoftmaxUnit::new(fmt());
        let mut out: Vec<i8> = vec![];
        unit.forward_row(&[], &mut out);
    }

    #[test]
    fn masked_softmax_zeroes_future_positions() {
        let unit = SoftmaxUnit::new(fmt());
        let row: Vec<i8> = vec![10, 20, 30, 40, 50, 60];
        let mut out = vec![0i8; 6];
        unit.forward_row_masked(&row, 3, &mut out);
        assert!(out[3..].iter().all(|&p| p == 0), "masked tail must be zero");
        let sum: i32 = out[..3].iter().map(|&p| i32::from(p)).sum();
        assert!((sum - 128).unsigned_abs() <= 3, "visible prefix normalizes: {sum}");
        // prefix must equal an unmasked softmax of the prefix
        let mut prefix = vec![0i8; 3];
        unit.forward_row(&row[..3], &mut prefix);
        assert_eq!(&out[..3], &prefix[..]);
    }

    #[test]
    fn masked_softmax_edge_valid_counts() {
        let unit = SoftmaxUnit::new(fmt());
        let row = vec![5i8; 4];
        let mut out = vec![0i8; 4];
        unit.forward_row_masked(&row, 0, &mut out);
        assert_eq!(out, vec![0; 4]);
        unit.forward_row_masked(&row, 1, &mut out);
        assert_eq!(out[0], 127); // all mass on the single visible position
        unit.forward_row_masked(&row, 99, &mut out); // valid beyond len clamps
        assert!(out.iter().all(|&p| p == 32));
    }
}
