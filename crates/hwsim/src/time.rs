//! Simulation time: clock cycles and frequencies.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, measured in clock cycles.
///
/// Cycles are the natural unit for a synchronous design: the HLS latency
/// model counts them directly, and conversion to wall time happens only at
/// reporting boundaries via [`Frequency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction (`None` if `rhs > self`).
    #[must_use]
    pub fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_sub(rhs.0).map(Cycles)
    }

    /// Convert to seconds at `freq`.
    #[must_use]
    pub fn to_seconds(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.hz()
    }

    /// Convert to milliseconds at `freq` (the unit of every latency table
    /// in the paper).
    #[must_use]
    pub fn to_millis(self, freq: Frequency) -> f64 {
        self.to_seconds(freq) * 1e3
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_add(rhs.0).expect("cycle count overflow"))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_sub(rhs.0).expect("negative cycle duration"))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency(f64);

impl Frequency {
    /// From megahertz (the unit Fig. 7 reports).
    ///
    /// # Panics
    /// Panics on non-positive or non-finite input.
    #[must_use]
    pub fn mhz(f: f64) -> Self {
        assert!(f.is_finite() && f > 0.0, "frequency must be positive, got {f}");
        Self(f * 1e6)
    }

    /// From gigahertz.
    #[must_use]
    pub fn ghz(f: f64) -> Self {
        Self::mhz(f * 1e3)
    }

    /// In hertz.
    #[must_use]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// In megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Cycles elapsed in `seconds` at this frequency, rounded up.
    #[must_use]
    pub fn cycles_in(self, seconds: f64) -> Cycles {
        assert!(seconds >= 0.0 && seconds.is_finite());
        Cycles((seconds * self.0).ceil() as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MHz", self.as_mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles(100);
        let b = Cycles(50);
        assert_eq!(a + b, Cycles(150));
        assert_eq!(a - b, Cycles(50));
        assert_eq!(a.max(b), a);
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    #[should_panic(expected = "negative cycle duration")]
    fn negative_duration_panics() {
        let _ = Cycles(1) - Cycles(2);
    }

    #[test]
    fn wall_time_conversion() {
        let f = Frequency::mhz(200.0);
        // 200 MHz → 55.8 M cycles = 279 ms (Table I test #1's headline).
        let cycles = Cycles(55_800_000);
        assert!((cycles.to_millis(f) - 279.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_round_trip() {
        let f = Frequency::ghz(1.4);
        assert!((f.as_mhz() - 1400.0).abs() < 1e-9);
        assert_eq!(f.cycles_in(1e-6), Cycles(1400));
    }

    #[test]
    fn cycles_in_rounds_up() {
        let f = Frequency::mhz(1.0);
        assert_eq!(f.cycles_in(1.5e-6), Cycles(2));
        assert_eq!(f.cycles_in(0.0), Cycles(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::mhz(0.0);
    }
}
