//! # protea-hwsim — a deterministic discrete-event simulation kernel
//!
//! The ProTEA reproduction needs cycle-level timing for hardware that we
//! cannot run: engines computing while DMA channels stream the next weight
//! tile out of HBM, with the layer latency emerging from their overlap.
//! This crate is the simulation substrate: a classic event-driven kernel
//! with
//!
//! * [`Cycles`] — simulation time as clock cycles, convertible to wall
//!   time at a chosen frequency,
//! * [`Simulator`] — an event queue of `FnOnce` callbacks over a
//!   user-provided model type, with **deterministic FIFO tie-breaking**
//!   (two events at the same cycle fire in scheduling order — property
//!   tested, because nondeterministic simulators are unreproducible
//!   simulators),
//! * [`Fifo`] — bounded queues with occupancy high-water tracking for
//!   buffer sizing studies,
//! * [`stats`] — counters, busy/utilization trackers and log₂ histograms.
//!
//! The kernel is intentionally small and has no dependencies; everything
//! is `#![forbid(unsafe_code)]` and single-threaded (determinism beats
//! parallelism inside a *model of* parallel hardware — the modeled
//! parallelism is in the event timeline, not the host threads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec_trace;
pub mod fifo;
pub mod kernel;
pub mod stats;
pub mod time;
pub mod trace;

pub use exec_trace::{ExecSpan, ExecTrace, SpanKind};
pub use fifo::Fifo;
pub use kernel::{EventId, Simulator};
pub use stats::{Counter, Histogram, Utilization};
pub use time::{Cycles, Frequency};
pub use trace::{SignalId, VcdTrace};
