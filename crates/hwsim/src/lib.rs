//! # protea-hwsim — a deterministic discrete-event simulation kernel
//!
//! The ProTEA reproduction needs cycle-level timing for hardware that we
//! cannot run: engines computing while DMA channels stream the next weight
//! tile out of HBM, with the layer latency emerging from their overlap.
//! This crate is the simulation substrate: a classic event-driven kernel
//! with
//!
//! * [`Cycles`] — simulation time as clock cycles, convertible to wall
//!   time at a chosen frequency,
//! * [`Simulator`] — an event queue of `FnOnce` callbacks over a
//!   user-provided model type, with **deterministic FIFO tie-breaking**
//!   (two events at the same cycle fire in scheduling order — property
//!   tested, because nondeterministic simulators are unreproducible
//!   simulators),
//! * [`EventQueue`] — a typed-event (plain data, not closures) queue
//!   with `(time, rank, seq)` ordering, so models that must snapshot
//!   and resume can serialize their pending events,
//! * [`Fnv64`] — FNV-1a 64-bit state fingerprinting for verifying that
//!   a resumed simulation is bit-identical to an uninterrupted one,
//! * [`Fifo`] — bounded queues with occupancy high-water tracking for
//!   buffer sizing studies,
//! * [`stats`] — counters, busy/utilization trackers and log₂ histograms.
//!
//! The kernel is intentionally small and has no dependencies; everything
//! is `#![forbid(unsafe_code)]` and single-threaded (determinism beats
//! parallelism inside a *model of* parallel hardware — the modeled
//! parallelism is in the event timeline, not the host threads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod exec_trace;
pub mod fifo;
pub mod fnv;
pub mod kernel;
pub mod stats;
pub mod time;
pub mod trace;

pub use des::EventQueue;
pub use exec_trace::{ExecSpan, ExecTrace, SpanKind};
pub use fifo::Fifo;
pub use fnv::Fnv64;
pub use kernel::{EventId, Simulator};
pub use stats::{Counter, Histogram, Utilization};
pub use time::{Cycles, Frequency};
pub use trace::{SignalId, VcdTrace};
