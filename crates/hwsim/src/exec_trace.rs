//! Structured execution spans and Chrome trace-event export.
//!
//! Every run of the unified execution pipeline can record *spans* —
//! named, categorized intervals on the simulation clock — into a
//! bounded [`ExecTrace`] ring buffer: engine phases, DMA bursts, tile
//! visits at the core level; reprogramming, batch service, hedging and
//! cancellation at the fleet level. The buffer exports the [Chrome
//! trace-event format] (an array of `"ph": "X"` complete events), which
//! loads directly in `chrome://tracing` and [Perfetto].
//!
//! Like [`VcdTrace`](crate::VcdTrace), the writer — and the minimal
//! parser used by the round-trip tests — is dependency-free: the subset
//! of JSON we emit is flat enough that hand-rolling it is cheaper than
//! growing a serializer dependency.
//!
//! Timestamps are raw simulation ticks (cycles in the core pipeline,
//! nanoseconds in the serving fleet) carried as exact integers, so an
//! export → parse round trip is lossless. Viewers label the axis "µs";
//! only the relative layout matters.
//!
//! [Chrome trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use core::fmt::Write as _;

/// What a span represents; becomes the `cat` field of the export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One engine phase of one layer (QKV_CE, Softmax, …).
    Phase,
    /// One tile's compute visit inside a phase.
    Tile,
    /// One DMA burst (tile load) on the memory channel.
    Dma,
    /// A card being reprogrammed / reloaded with weights.
    Reprogram,
    /// A batch occupying a card from dispatch to completion.
    Batch,
    /// A hedged second leg of a straggling batch.
    Hedge,
    /// A leg cancelled because its partner finished first (zero width).
    Cancel,
}

impl SpanKind {
    /// The `cat` string used in the Chrome export.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Tile => "tile",
            SpanKind::Dma => "dma",
            SpanKind::Reprogram => "reprogram",
            SpanKind::Batch => "batch",
            SpanKind::Hedge => "hedge",
            SpanKind::Cancel => "cancel",
        }
    }

    fn from_str(s: &str) -> Option<SpanKind> {
        Some(match s {
            "phase" => SpanKind::Phase,
            "tile" => SpanKind::Tile,
            "dma" => SpanKind::Dma,
            "reprogram" => SpanKind::Reprogram,
            "batch" => SpanKind::Batch,
            "hedge" => SpanKind::Hedge,
            "cancel" => SpanKind::Cancel,
            _ => return None,
        })
    }
}

/// One completed interval on a named track of the simulation clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecSpan {
    /// Display name (e.g. `"QKV_CE"`, `"DMA QKV_CE"`, `"reprogram"`).
    pub name: String,
    /// Category of work this span covers.
    pub kind: SpanKind,
    /// Track (exported as `tid`); spans on one track belong to one
    /// sequential resource (an engine lane, the DMA channel, a card).
    pub track: u32,
    /// Start tick (inclusive).
    pub start: u64,
    /// End tick (`end >= start`; `end == start` renders as an instant).
    pub end: u64,
}

impl ExecSpan {
    /// Duration in ticks.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Well-known track ids shared by the core pipeline and the fleet.
pub mod track {
    /// Engine phases and their nested tile visits.
    pub const ENGINE: u32 = 1;
    /// DMA bursts.
    pub const DMA: u32 = 2;
    /// First per-card track in fleet traces (card *i* → `CARD0 + i`).
    pub const CARD0: u32 = 100;
}

/// A bounded ring buffer of [`ExecSpan`]s.
///
/// Recording never fails and never reallocates past the capacity: once
/// full, the oldest span is overwritten and [`dropped`](Self::dropped)
/// counts the loss — a flight recorder, not an unbounded log. The
/// default capacity ([`ExecTrace::DEFAULT_CAPACITY`]) holds every span
/// of any single paper-scale run.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    spans: std::collections::VecDeque<ExecSpan>,
    capacity: usize,
    dropped: u64,
}

impl ExecTrace {
    /// Default ring capacity (spans).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// An empty trace with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::bounded(Self::DEFAULT_CAPACITY)
    }

    /// An empty trace holding at most `capacity` spans (min 1).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { spans: std::collections::VecDeque::new(), capacity, dropped: 0 }
    }

    /// Record one span; evicts the oldest span when full.
    pub fn record(&mut self, span: ExecSpan) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Record a span from its parts.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        kind: SpanKind,
        track: u32,
        start: u64,
        end: u64,
    ) {
        self.record(ExecSpan { name: name.into(), kind, track, start, end });
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &ExecSpan> {
        self.spans.iter()
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merge another trace's spans into this one (ring bound applies).
    pub fn absorb(&mut self, other: ExecTrace) {
        self.dropped += other.dropped;
        for span in other.spans {
            self.record(span);
        }
    }

    /// Export as Chrome trace-event JSON: a `traceEvents` array of
    /// complete (`"ph": "X"`) events plus `thread_name` metadata for
    /// each track, loadable in `chrome://tracing` and Perfetto.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut tracks: Vec<u32> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in tracks {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&track_name(t)),
            );
        }
        for s in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{}}}",
                escape(&s.name),
                s.kind.as_str(),
                s.start,
                s.duration(),
                s.track,
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parse a trace previously written by [`to_chrome_json`]
    /// (metadata events are skipped). This is the test half of the
    /// round-trip contract, not a general JSON parser: it accepts
    /// exactly the flat object shape this module emits.
    ///
    /// [`to_chrome_json`]: Self::to_chrome_json
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed event.
    pub fn parse_chrome_json(text: &str) -> Result<Vec<ExecSpan>, String> {
        let mut spans = Vec::new();
        for (i, obj) in ObjectScanner::new(text).enumerate() {
            let field = |key: &str| extract_field(obj, key);
            match field("ph") {
                Some("M") => continue,
                Some("X") => {}
                other => return Err(format!("event {i}: unsupported ph {other:?}")),
            }
            let name = field("name").ok_or_else(|| format!("event {i}: missing name"))?;
            let kind = field("cat")
                .and_then(SpanKind::from_str)
                .ok_or_else(|| format!("event {i}: bad cat"))?;
            let num = |key: &str| -> Result<u64, String> {
                field(key)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("event {i}: bad {key}"))
            };
            let (ts, dur, tid) = (num("ts")?, num("dur")?, num("tid")?);
            spans.push(ExecSpan {
                name: unescape(name),
                kind,
                track: u32::try_from(tid).map_err(|_| format!("event {i}: tid overflow"))?,
                start: ts,
                end: ts + dur,
            });
        }
        Ok(spans)
    }
}

/// Human-readable name for a track id.
#[must_use]
pub fn track_name(t: u32) -> String {
    match t {
        track::ENGINE => "engine".to_string(),
        track::DMA => "dma".to_string(),
        t if t >= track::CARD0 => format!("card {}", t - track::CARD0),
        t => format!("track {t}"),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Iterates over the top-level `{...}` objects inside the exported
/// `traceEvents` array, honoring string quoting (the emitted objects
/// are flat except for the one-level `args` of metadata events).
struct ObjectScanner<'a> {
    rest: &'a str,
}

impl<'a> ObjectScanner<'a> {
    fn new(text: &'a str) -> Self {
        // Skip to the start of the traceEvents array, tolerating a bare
        // top-level array as well.
        let rest = match text.find("\"traceEvents\"") {
            Some(i) => &text[i..],
            None => text,
        };
        Self { rest: rest.trim_start_matches(|c| c != '[') }
    }
}

impl<'a> Iterator for ObjectScanner<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let open = self.rest.find('{')?;
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escaped = false;
        for (i, c) in self.rest[open..].char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' if !in_str => depth += 1,
                '}' if !in_str => {
                    depth -= 1;
                    if depth == 0 {
                        let obj = &self.rest[open..=open + i];
                        self.rest = &self.rest[open + i + 1..];
                        return Some(obj);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// Extract the raw value of `"key":` from a flat JSON object: quoted
/// strings come back without quotes, numbers as their digit run.
fn extract_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(&stripped[..i]);
            }
        }
        None
    } else {
        let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        (end > 0).then(|| &rest[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, kind: SpanKind, track: u32, start: u64, end: u64) -> ExecSpan {
        ExecSpan { name: name.to_string(), kind, track, start, end }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut t = ExecTrace::bounded(3);
        for i in 0..5u64 {
            t.push(format!("s{i}"), SpanKind::Phase, track::ENGINE, i, i + 1);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let names: Vec<&str> = t.spans().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s2", "s3", "s4"], "oldest spans evicted first");
    }

    #[test]
    fn chrome_round_trip_is_lossless() {
        let mut t = ExecTrace::new();
        t.record(span("QKV_CE", SpanKind::Phase, track::ENGINE, 0, 128));
        t.record(span("DMA QKV_CE", SpanKind::Dma, track::DMA, 0, 40));
        t.record(span("odd \"name\"\\with\nescapes", SpanKind::Tile, track::ENGINE, 5, 5));
        let json = t.to_chrome_json();
        let parsed = ExecTrace::parse_chrome_json(&json).expect("own output parses");
        let original: Vec<ExecSpan> = t.spans().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn export_emits_thread_names_and_complete_events() {
        let mut t = ExecTrace::new();
        t.record(span("FFN1_CE", SpanKind::Phase, track::ENGINE, 10, 20));
        t.record(span("reprogram", SpanKind::Reprogram, track::CARD0 + 1, 0, 7));
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"engine\""));
        assert!(json.contains("\"name\":\"card 1\""));
        assert!(json.contains("\"ts\":10,\"dur\":10"));
    }

    #[test]
    fn parser_rejects_garbage_fields() {
        assert!(ExecTrace::parse_chrome_json(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"cat\":\"nope\",\
             \"ts\":0,\"dur\":1,\"pid\":0,\"tid\":1}]}"
        )
        .is_err());
        assert!(ExecTrace::parse_chrome_json(
            "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"a\",\"cat\":\"phase\",\
             \"ts\":0,\"dur\":1,\"pid\":0,\"tid\":1}]}"
        )
        .is_err());
    }

    #[test]
    fn absorb_merges_and_keeps_bound() {
        let mut a = ExecTrace::bounded(2);
        a.record(span("x", SpanKind::Batch, track::CARD0, 0, 1));
        let mut b = ExecTrace::bounded(4);
        b.record(span("y", SpanKind::Hedge, track::CARD0, 1, 2));
        b.record(span("z", SpanKind::Cancel, track::CARD0, 2, 2));
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
        let names: Vec<&str> = a.spans().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["y", "z"]);
    }
}
