//! The event-driven simulation kernel.
//!
//! A [`Simulator<M>`] owns a priority queue of events; each event is a
//! boxed `FnOnce(&mut Simulator<M>, &mut M)` fired at its scheduled cycle.
//! The model type `M` holds all mutable hardware state (engine status,
//! buffers, counters); callbacks receive both so they can schedule
//! follow-up events.
//!
//! Determinism contract: events at equal timestamps fire in the order
//! they were scheduled (a monotone sequence number breaks ties). Replays
//! of the same model + schedule are bit-identical.

use crate::time::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event (its tie-breaking sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<M> = Box<dyn FnOnce(&mut Simulator<M>, &mut M)>;

struct Scheduled<M> {
    time: Cycles,
    seq: u64,
    f: EventFn<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The discrete-event simulator.
pub struct Simulator<M> {
    now: Cycles,
    seq: u64,
    fired: u64,
    queue: BinaryHeap<Scheduled<M>>,
}

impl<M> Default for Simulator<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulator<M> {
    /// An empty simulator at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: Cycles::ZERO, seq: 0, fired: 0, queue: BinaryHeap::new() }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute cycle `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (would violate causality).
    pub fn schedule_at(
        &mut self,
        time: Cycles,
        f: impl FnOnce(&mut Simulator<M>, &mut M) + 'static,
    ) -> EventId {
        assert!(time >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        let id = EventId(self.seq);
        self.queue.push(Scheduled { time, seq: self.seq, f: Box::new(f) });
        self.seq += 1;
        id
    }

    /// Schedule `f` after `delay` cycles from now.
    pub fn schedule_in(
        &mut self,
        delay: Cycles,
        f: impl FnOnce(&mut Simulator<M>, &mut M) + 'static,
    ) -> EventId {
        self.schedule_at(self.now.saturating_add(delay), f)
    }

    /// Run until the queue drains. Returns the final simulation time.
    pub fn run(&mut self, model: &mut M) -> Cycles {
        while self.step(model) {}
        self.now
    }

    /// Run until the queue drains or `deadline` is reached (events at
    /// exactly `deadline` still fire; later events stay queued). The
    /// clock is left at the last fired event — it does not jump to the
    /// deadline, so a subsequent `run` resumes seamlessly. Returns the
    /// final time.
    pub fn run_until(&mut self, model: &mut M, deadline: Cycles) -> Cycles {
        while let Some(next) = self.queue.peek().map(|e| e.time) {
            if next > deadline {
                break;
            }
            self.step(model);
        }
        self.now
    }

    /// Fire the single earliest event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self, model: &mut M) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "event queue time went backwards");
                self.now = ev.time;
                self.fired += 1;
                (ev.f)(self, model);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log {
        entries: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::<Log>::new();
        let mut log = Log::default();
        sim.schedule_at(Cycles(30), |s, m| m.entries.push((s.now().get(), "c")));
        sim.schedule_at(Cycles(10), |s, m| m.entries.push((s.now().get(), "a")));
        sim.schedule_at(Cycles(20), |s, m| m.entries.push((s.now().get(), "b")));
        sim.run(&mut log);
        assert_eq!(log.entries, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn equal_time_events_fire_fifo() {
        let mut sim = Simulator::<Log>::new();
        let mut log = Log::default();
        for (i, name) in ["first", "second", "third", "fourth"].iter().enumerate() {
            let _ = i;
            sim.schedule_at(Cycles(5), move |_, m| m.entries.push((5, name)));
        }
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn cascading_events() {
        // An event that schedules more events: a 5-stage chain.
        struct Chain {
            hops: u64,
        }
        fn hop(sim: &mut Simulator<Chain>, m: &mut Chain) {
            m.hops += 1;
            if m.hops < 5 {
                sim.schedule_in(Cycles(7), hop);
            }
        }
        let mut sim = Simulator::new();
        let mut m = Chain { hops: 0 };
        sim.schedule_at(Cycles(0), hop);
        let end = sim.run(&mut m);
        assert_eq!(m.hops, 5);
        assert_eq!(end, Cycles(28)); // 0,7,14,21,28
        assert_eq!(sim.events_fired(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::<Log>::new();
        let mut log = Log::default();
        sim.schedule_at(Cycles(10), |_, m| m.entries.push((10, "early")));
        sim.schedule_at(Cycles(100), |_, m| m.entries.push((100, "late")));
        sim.run_until(&mut log, Cycles(50));
        assert_eq!(log.entries.len(), 1);
        assert_eq!(sim.events_pending(), 1);
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut sim = Simulator::<Log>::new();
        let mut log = Log::default();
        sim.schedule_at(Cycles(10), |s, _m| {
            s.schedule_at(Cycles(5), |_, _| {});
        });
        sim.run(&mut log);
    }

    #[test]
    fn determinism_two_runs_identical() {
        fn build_and_run() -> Vec<(u64, &'static str)> {
            let mut sim = Simulator::<Log>::new();
            let mut log = Log::default();
            // interleaved same-time and cascading events
            sim.schedule_at(Cycles(3), |s, m| {
                m.entries.push((s.now().get(), "x"));
                s.schedule_in(Cycles(0), |s2, m2| m2.entries.push((s2.now().get(), "x-child")));
            });
            sim.schedule_at(Cycles(3), |s, m| m.entries.push((s.now().get(), "y")));
            sim.schedule_at(Cycles(1), |s, m| m.entries.push((s.now().get(), "z")));
            sim.run(&mut log);
            log.entries
        }
        assert_eq!(build_and_run(), build_and_run());
    }

    #[test]
    fn same_time_child_fires_after_existing_same_time_events() {
        // FIFO tie-break: a zero-delay child scheduled during t=3 gets a
        // later sequence number than the pre-existing t=3 event.
        let mut sim = Simulator::<Log>::new();
        let mut log = Log::default();
        sim.schedule_at(Cycles(3), |s, m| {
            m.entries.push((3, "parent"));
            s.schedule_in(Cycles(0), |_, m2| m2.entries.push((3, "child")));
        });
        sim.schedule_at(Cycles(3), |_, m| m.entries.push((3, "sibling")));
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["parent", "sibling", "child"]);
    }
}
