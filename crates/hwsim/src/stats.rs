//! Simulation statistics: counters, utilization tracking, histograms.

use crate::time::Cycles;
use core::fmt;

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Tracks how many cycles a unit was busy, for utilization reports
/// (e.g. per-engine busy fraction in the cycle report).
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    busy: u64,
    busy_since: Option<Cycles>,
}

impl Utilization {
    /// A fresh, idle tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark busy starting at `now`. Idempotent if already busy.
    pub fn begin(&mut self, now: Cycles) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Mark idle at `now`, accumulating the busy interval.
    ///
    /// # Panics
    /// Panics if `now` precedes the matching [`begin`](Self::begin).
    pub fn end(&mut self, now: Cycles) {
        if let Some(start) = self.busy_since.take() {
            assert!(now >= start, "utilization interval ends before it begins");
            self.busy += now.get() - start.get();
        }
    }

    /// Directly account a busy duration (for analytically-timed units).
    pub fn add_busy(&mut self, duration: Cycles) {
        self.busy = self.busy.saturating_add(duration.get());
    }

    /// Total busy cycles accumulated.
    #[must_use]
    pub fn busy_cycles(&self) -> Cycles {
        Cycles(self.busy)
    }

    /// Busy fraction of `total` (0.0 if `total` is zero).
    #[must_use]
    pub fn fraction_of(&self, total: Cycles) -> f64 {
        if total.get() == 0 {
            0.0
        } else {
            self.busy as f64 / total.get() as f64
        }
    }
}

/// A power-of-two bucketed histogram of u64 samples (bucket `i` counts
/// samples in `[2^(i-1), 2^i)`, bucket 0 counts zeros and ones).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        let bucket = if sample <= 1 { 0 } else { 64 - (sample - 1).leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count in bucket `i` (`[2^(i-1), 2^i)`; bucket 0 = {0, 1}).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={:?} max={:?}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn utilization_intervals() {
        let mut u = Utilization::new();
        u.begin(Cycles(10));
        u.end(Cycles(30));
        u.begin(Cycles(50));
        u.end(Cycles(60));
        assert_eq!(u.busy_cycles(), Cycles(30));
        assert!((u.fraction_of(Cycles(100)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn utilization_begin_idempotent() {
        let mut u = Utilization::new();
        u.begin(Cycles(10));
        u.begin(Cycles(20)); // ignored: already busy since 10
        u.end(Cycles(30));
        assert_eq!(u.busy_cycles(), Cycles(20));
    }

    #[test]
    fn utilization_end_without_begin_is_noop() {
        let mut u = Utilization::new();
        u.end(Cycles(100));
        assert_eq!(u.busy_cycles(), Cycles(0));
    }

    #[test]
    fn utilization_zero_total() {
        let u = Utilization::new();
        assert_eq!(u.fraction_of(Cycles(0)), 0.0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        for s in [0, 1, 2, 3, 4, 5, 8, 9, 1024] {
            h.record(s);
        }
        assert_eq!(h.bucket(0), 2); // 0, 1
        assert_eq!(h.bucket(1), 1); // 2
        assert_eq!(h.bucket(2), 2); // 3, 4
        assert_eq!(h.bucket(3), 2); // 5, 8 (bucket i covers (2^(i-1), 2^i])
        assert_eq!(h.bucket(4), 1); // 9
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // bucket(i) covers (2^(i-1), 2^i] for i ≥ 1 with this encoding:
        // sample s>1 → bucket = 64 - leading_zeros(s-1) → s=2 → 1, s=3..4 → 2,
        // s=5..8 → 3, s=9..16 → 4.
        let mut h = Histogram::new();
        h.record(8);
        assert_eq!(h.bucket(3), 1);
        h.record(16);
        assert_eq!(h.bucket(4), 1);
        h.record(17);
        assert_eq!(h.bucket(5), 1);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new();
        for s in [10, 20, 30] {
            h.record(s);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }
}
