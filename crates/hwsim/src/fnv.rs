//! FNV-1a 64-bit hashing for simulation state fingerprints.
//!
//! Snapshot/replay needs a cheap, dependency-free, portable digest: a
//! resumed simulation recomputes the hash of its canonical state bytes
//! and compares it to the one recorded at snapshot time, so any restore
//! infidelity (or a desync later in the run) is detected as a hash
//! mismatch instead of silently wrong results. FNV-1a is not
//! cryptographic — it guards against *bugs*, not adversaries — which is
//! exactly the job here.

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: Self::OFFSET_BASIS }
    }

    /// Absorb `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot digest of `bytes`.
    #[must_use]
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Self::new();
        h.write(bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv64::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv64::hash(b"foobar"));
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish(), "a state hash must notice reordered state");
    }
}
