//! Bounded FIFOs with occupancy statistics.
//!
//! Hardware streams (AXI read data, inter-engine buffers) are bounded
//! queues; sizing them is a design decision the simulator should inform.
//! [`Fifo`] tracks the high-water mark and total traffic so buffer-depth
//! studies fall out of a normal run.

use std::collections::VecDeque;

/// A bounded FIFO queue.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
    rejected: u64,
}

impl<T> Fifo<T> {
    /// A FIFO holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be nonzero");
        Self {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            high_water: 0,
            total_pushed: 0,
            rejected: 0,
        }
    }

    /// Attempt to enqueue; returns `Err(item)` back if full (the caller —
    /// usually a producer component — must apply backpressure).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed (buffer sizing signal).
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total accepted pushes.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Pushes rejected because the FIFO was full (backpressure events).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn backpressure_on_full() {
        let mut f = Fifo::new(2);
        f.push('a').unwrap();
        f.push('b').unwrap();
        assert!(f.is_full());
        assert_eq!(f.push('c'), Err('c'));
        assert_eq!(f.rejected(), 1);
        f.pop();
        assert!(f.push('c').is_ok());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(10);
        for i in 0..7 {
            f.push(i).unwrap();
        }
        for _ in 0..5 {
            f.pop();
        }
        f.push(99).unwrap();
        assert_eq!(f.high_water(), 7);
        assert_eq!(f.total_pushed(), 8);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut f = Fifo::new(2);
        f.push(5).unwrap();
        assert_eq!(f.front(), Some(&5));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
