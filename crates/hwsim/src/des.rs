//! A typed discrete-event queue for snapshot-capable simulations.
//!
//! The closure-based [`Simulator`](crate::Simulator) is ideal for
//! models that never need to pause: an event is a boxed `FnOnce` and
//! the captured environment is the event's payload. It is also exactly
//! why such models *cannot* pause — a closure cannot be serialized, so
//! a simulation built on it cannot checkpoint its pending events.
//!
//! [`EventQueue`] is the snapshot-friendly alternative: events are
//! plain data (any `E` the model chooses), the model runs its own
//! `while let Some((now, ev)) = queue.pop()` loop and matches on the
//! payload. Because every pending event is inspectable, the whole queue
//! can be drained to a canonical serial form and rebuilt later.
//!
//! ## Ordering contract
//!
//! Events fire in ascending `(time, rank, seq)` order:
//!
//! * `time` — the simulated timestamp (same unit discipline as
//!   [`Cycles`]);
//! * `rank` — a caller-chosen class priority for same-time events.
//!   Lower ranks fire first. This exists so a model converted from the
//!   closure kernel can reproduce its historical firing order: there,
//!   same-time order was scheduling order, and pre-scheduled event
//!   classes (e.g. all arrivals, then all crashes) implicitly outranked
//!   dynamically scheduled ones. With lazy scheduling the insertion
//!   order changes, so the class order must be made explicit;
//! * `seq` — a monotone insertion counter breaking remaining ties FIFO,
//!   exactly like the closure kernel.
//!
//! Determinism: replays of the same push sequence pop identically, and
//! [`EventQueue::drain_sorted`] yields pending events in precisely the
//! order they would fire — so a queue serialized from that order and
//! re-pushed into a fresh queue (fresh seqs, same order) fires
//! identically. That round-trip is the snapshot/replay foundation.

use crate::time::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: Cycles,
    rank: u8,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.rank, self.seq) == (other.time, other.rank, other.seq)
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest pops first.
        (other.time, other.rank, other.seq).cmp(&(self.time, self.rank, self.seq))
    }
}

/// A deterministic priority queue of typed events (see module docs for
/// the `(time, rank, seq)` ordering contract).
pub struct EventQueue<E> {
    now: Cycles,
    seq: u64,
    fired: u64,
    heap: BinaryHeap<Entry<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: Cycles::ZERO, seq: 0, fired: 0, heap: BinaryHeap::new() }
    }

    /// Current simulation time: the timestamp of the last popped event
    /// (or the starting time before any pop).
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Force the clock (used when resuming from a snapshot). Pending
    /// events older than `now` would violate causality; callers restore
    /// the clock before re-pushing events.
    pub fn set_now(&mut self, now: Cycles) {
        self.now = now;
    }

    /// Events popped so far (not restored across snapshots — it is a
    /// live diagnostic, not model state).
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute `time` with class `rank`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (would violate causality).
    pub fn push(&mut self, time: Cycles, rank: u8, event: E) {
        assert!(time >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        self.heap.push(Entry { time, rank, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now, "event queue time went backwards");
        self.now = e.time;
        self.fired += 1;
        Some((e.time, e.event))
    }

    /// Drain every pending event in exactly the order it would fire
    /// (`(time, rank, seq)` ascending), consuming the queue. This is
    /// the canonical serial form for snapshots: re-pushing the yielded
    /// `(time, rank, event)` triples into a fresh queue — which assigns
    /// fresh, ascending seqs — reproduces the identical firing order.
    #[must_use]
    pub fn drain_sorted(self) -> Vec<(Cycles, u8, E)> {
        let mut entries: Vec<Entry<E>> = self.heap.into_vec();
        entries.sort_by_key(|e| (e.time, e.rank, e.seq));
        entries.into_iter().map(|e| (e.time, e.rank, e.event)).collect()
    }

    /// Like [`drain_sorted`](Self::drain_sorted) but non-consuming:
    /// clones every pending event into firing order, leaving the queue
    /// untouched. This is what a *mid-run* snapshot uses — the
    /// simulation keeps going after the capture.
    #[must_use]
    pub fn sorted_events(&self) -> Vec<(Cycles, u8, E)>
    where
        E: Clone,
    {
        let mut entries: Vec<(Cycles, u8, u64, E)> =
            self.heap.iter().map(|e| (e.time, e.rank, e.seq, e.event.clone())).collect();
        entries.sort_by_key(|&(t, r, s, _)| (t, r, s));
        entries.into_iter().map(|(t, r, _, e)| (t, r, e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_rank_seq_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(5), 2, "dyn@5");
        q.push(Cycles(5), 0, "arrival@5");
        q.push(Cycles(3), 2, "dyn@3");
        q.push(Cycles(5), 1, "crash@5");
        q.push(Cycles(5), 2, "dyn2@5");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["dyn@3", "arrival@5", "crash@5", "dyn@5", "dyn2@5"]);
    }

    #[test]
    fn rank_beats_insertion_order_at_equal_time() {
        // The exact hazard the rank exists for: a pre-scheduled wake at
        // time t must not outrank a later-inserted arrival at t.
        let mut q = EventQueue::new();
        q.push(Cycles(7), 2, "wake");
        q.push(Cycles(7), 0, "arrival");
        assert_eq!(q.pop().unwrap().1, "arrival");
        assert_eq!(q.pop().unwrap().1, "wake");
    }

    #[test]
    fn drain_then_repush_fires_identically() {
        let mut q = EventQueue::new();
        for (t, r, n) in [(9u64, 2u8, "a"), (4, 1, "b"), (9, 0, "c"), (4, 1, "d"), (2, 2, "e")] {
            q.push(Cycles(t), r, n);
        }
        let mut reference = EventQueue::new();
        for (t, r, n) in [(9u64, 2u8, "a"), (4, 1, "b"), (9, 0, "c"), (4, 1, "d"), (2, 2, "e")] {
            reference.push(Cycles(t), r, n);
        }
        let mut rebuilt = EventQueue::new();
        for (t, r, e) in q.drain_sorted() {
            rebuilt.push(t, r, e);
        }
        let a: Vec<_> = std::iter::from_fn(|| reference.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(a, b, "snapshot round-trip preserves the firing order");
    }

    #[test]
    fn sorted_events_matches_drain_and_preserves_queue() {
        let mut q = EventQueue::new();
        for (t, r, n) in [(9u64, 2u8, "a"), (4, 1, "b"), (9, 0, "c"), (4, 1, "d")] {
            q.push(Cycles(t), r, n);
        }
        let peeked = q.sorted_events();
        assert_eq!(q.len(), 4, "non-consuming");
        assert_eq!(peeked, q.drain_sorted());
    }

    #[test]
    fn clock_advances_and_resumes() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), 2, ());
        q.pop();
        assert_eq!(q.now(), Cycles(10));
        q.push(Cycles(10), 2, ());
        let mut resumed = EventQueue::new();
        resumed.set_now(Cycles(10));
        resumed.push(Cycles(10), 2, ());
        assert_eq!(q.pop().unwrap().0, resumed.pop().unwrap().0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_push_panics() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), 0, ());
        q.pop();
        q.push(Cycles(5), 0, ());
    }
}
