//! VCD (Value Change Dump) trace output.
//!
//! A hardware simulator earns trust when you can *look* at what it did.
//! This module renders signal activity — engine busy flags, FIFO
//! occupancy, phase IDs — to the standard VCD format, viewable in
//! GTKWave or any waveform viewer. Self-contained writer, no
//! dependencies.

use crate::time::Cycles;
use core::fmt::Write as _;

/// Handle to a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

struct Signal {
    name: String,
    width: u32,
    ident: String,
}

/// A VCD trace under construction.
pub struct VcdTrace {
    signals: Vec<Signal>,
    /// (time, signal, value) — kept in insertion order, stably sorted by
    /// time at render.
    changes: Vec<(u64, usize, u64)>,
    module: String,
}

impl VcdTrace {
    /// A trace whose signals live under `module` in the hierarchy.
    #[must_use]
    pub fn new(module: &str) -> Self {
        Self { signals: Vec::new(), changes: Vec::new(), module: module.to_string() }
    }

    /// Declare a signal of `width` bits (1 = wire, >1 = bus).
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 64.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64, got {width}");
        let ident = Self::ident_for(self.signals.len());
        self.signals.push(Signal { name: sanitize(name), width, ident });
        SignalId(self.signals.len() - 1)
    }

    /// Record a value change at `time`.
    ///
    /// # Panics
    /// Panics if `value` does not fit the signal's width.
    pub fn change(&mut self, time: Cycles, id: SignalId, value: u64) {
        let sig = &self.signals[id.0];
        if sig.width < 64 {
            assert!(
                value < (1u64 << sig.width),
                "value {value} exceeds {}-bit signal {}",
                sig.width,
                sig.name
            );
        }
        self.changes.push((time.get(), id.0, value));
    }

    /// Number of recorded changes.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Render the full VCD document. Changes are emitted in time order
    /// (stable for equal timestamps); every signal gets an `x` initial
    /// value in `$dumpvars` unless changed at time 0.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date protea-hwsim $end");
        let _ = writeln!(out, "$version protea-hwsim VCD writer $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.module));
        for s in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, s.ident, s.name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // initial values
        let _ = writeln!(out, "$dumpvars");
        for s in &self.signals {
            if s.width == 1 {
                let _ = writeln!(out, "x{}", s.ident);
            } else {
                let _ = writeln!(out, "bx {}", s.ident);
            }
        }
        let _ = writeln!(out, "$end");

        let mut ordered: Vec<(u64, usize, u64)> = self.changes.clone();
        ordered.sort_by_key(|&(t, ..)| t);
        let mut last_time: Option<u64> = None;
        for (t, idx, v) in ordered {
            if last_time != Some(t) {
                let _ = writeln!(out, "#{t}");
                last_time = Some(t);
            }
            let s = &self.signals[idx];
            if s.width == 1 {
                let _ = writeln!(out, "{}{}", v & 1, s.ident);
            } else {
                let _ = writeln!(out, "b{v:b} {}", s.ident);
            }
        }
        out
    }

    /// VCD short identifiers: printable ASCII 33..=126, multi-char when
    /// exhausted.
    fn ident_for(mut n: usize) -> String {
        const BASE: usize = 94;
        let mut s = String::new();
        loop {
            s.push((33 + (n % BASE)) as u8 as char);
            n /= BASE;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        s
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_declarations() {
        let mut t = VcdTrace::new("protea core");
        t.add_signal("qkv busy", 1);
        t.add_signal("phase", 4);
        let doc = t.render();
        assert!(doc.contains("$scope module protea_core $end"));
        assert!(doc.contains("$var wire 1 ! qkv_busy $end"));
        assert!(doc.contains("$var wire 4 \" phase $end"));
        assert!(doc.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_render_in_time_order() {
        let mut t = VcdTrace::new("m");
        let a = t.add_signal("a", 1);
        let b = t.add_signal("b", 8);
        t.change(Cycles(20), a, 1);
        t.change(Cycles(5), b, 0b1010);
        t.change(Cycles(5), a, 0);
        let doc = t.render();
        let p5 = doc.find("#5").unwrap();
        let p20 = doc.find("#20").unwrap();
        assert!(p5 < p20);
        // same-time changes keep insertion order (b then a)
        let seg = &doc[p5..p20];
        assert!(seg.find("b1010").unwrap() < seg.find("0!").unwrap());
    }

    #[test]
    fn identifiers_are_unique_at_scale() {
        let mut t = VcdTrace::new("m");
        let ids: Vec<String> = (0..300).map(VcdTrace::ident_for).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "identifier collision");
        let _ = t.add_signal("x", 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_rejected() {
        let mut t = VcdTrace::new("m");
        let s = t.add_signal("nibble", 4);
        t.change(Cycles(0), s, 16);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let mut t = VcdTrace::new("m");
        let _ = t.add_signal("bad", 0);
    }

    #[test]
    fn wide_signal_full_range() {
        let mut t = VcdTrace::new("m");
        let s = t.add_signal("wide", 64);
        t.change(Cycles(1), s, u64::MAX);
        assert!(t.render().contains(&format!("b{:b} ", u64::MAX)));
    }

    #[test]
    fn empty_trace_still_valid() {
        let t = VcdTrace::new("m");
        let doc = t.render();
        assert!(doc.contains("$dumpvars"));
        assert!(!doc.contains('#'));
    }
}
