//! Achievable clock frequency vs congestion — the Fig. 7 substitute.
//!
//! The paper sweeps the synthesis-time tile sizes and reports the post-
//! route clock: the optimum is 12 MHA tiles × 6 FFN tiles at 200 MHz, with
//! frequency falling off in *both* directions. We cannot run Vivado, so
//! this module provides an empirical congestion model with three terms,
//! each tied to a physical effect reported in the FPGA placement
//! literature:
//!
//! 1. **Routing pressure** — quadratic penalty above ~50 % LUT
//!    utilization (dense designs route slowly and long).
//! 2. **Unroll width** — the widest unrolled reduction (PE row) sets the
//!    adder-tree span and register fanout; penalty strongly super-linear
//!    in width (wide trees span clock regions).
//! 3. **Control fanout** — more tiles mean more loop iterations, address
//!    muxing and FSM states touching every bank; penalty linear in the
//!    tile-count product.
//!
//! The coefficients in [`CongestionModel::paper_calibrated`] are fitted so
//! that the published optimum is the model's optimum and the published
//! frequency (200 MHz) is hit there. The *shape* is the claim being
//! reproduced, not absolute MHz elsewhere — see DESIGN.md.

use crate::device::FpgaDevice;

/// Inputs the Fmax model needs about a synthesized design point.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// Fraction of device LUTs consumed (may exceed 1.0 — infeasible).
    pub lut_frac: f64,
    /// Widest fully-unrolled reduction in the design (PEs in one row).
    pub max_unroll_width: u64,
    /// Product of tile counts across the design's tiled loops
    /// (`tiles_MHA × tiles_FFN` for ProTEA).
    pub tile_product: u64,
}

/// Result of an Fmax estimation.
#[derive(Debug, Clone, Copy)]
pub struct FmaxEstimate {
    /// Achievable frequency in MHz.
    pub fmax_mhz: f64,
    /// Whether the design fits the device at all (`lut_frac <= 1`).
    pub feasible: bool,
    /// The three penalty terms, for ablation reporting.
    pub route_penalty: f64,
    /// See [`FmaxEstimate::route_penalty`].
    pub width_penalty: f64,
    /// See [`FmaxEstimate::route_penalty`].
    pub fanout_penalty: f64,
}

/// The congestion model: `fmax = ceiling / (1 + Σ penalties)`.
#[derive(Debug, Clone, Copy)]
pub struct CongestionModel {
    /// Utilization knee above which routing pressure accrues.
    pub route_knee: f64,
    /// Routing pressure coefficient (per squared excess utilization).
    pub route_coeff: f64,
    /// Width penalty at the reference width.
    pub width_coeff: f64,
    /// Reference unroll width for the width penalty.
    pub width_ref: f64,
    /// Exponent of the width penalty (super-linear: a 2× wider adder
    /// tree routes far worse than 2× as slowly — it spans more clock
    /// regions and multiplies register fanout).
    pub width_exp: f64,
    /// Fanout penalty at the reference tile product, growing linearly.
    pub fanout_coeff: f64,
    /// Reference tile product for the fanout penalty.
    pub fanout_ref: f64,
    /// Floor frequency (MHz) below which the model clamps — even terrible
    /// designs close at *some* clock.
    pub floor_mhz: f64,
}

impl CongestionModel {
    /// Coefficients fitted to Fig. 7 (see module docs).
    #[must_use]
    pub const fn paper_calibrated() -> Self {
        Self {
            route_knee: 0.5,
            route_coeff: 1.2,
            width_coeff: 0.175,
            width_ref: 512.0,
            width_exp: 4.0,
            fanout_coeff: 0.28,
            fanout_ref: 72.0,
            floor_mhz: 50.0,
        }
    }

    /// Estimate achievable frequency for `point` on `device`.
    #[must_use]
    pub fn estimate(&self, device: &FpgaDevice, point: &DesignPoint) -> FmaxEstimate {
        let excess = (point.lut_frac - self.route_knee).max(0.0);
        let route_penalty = self.route_coeff * excess * excess;
        let wn = point.max_unroll_width as f64 / self.width_ref;
        let width_penalty = self.width_coeff * wn.powf(self.width_exp);
        let fanout_penalty = self.fanout_coeff * point.tile_product as f64 / self.fanout_ref;
        let raw = device.fmax_ceiling_mhz / (1.0 + route_penalty + width_penalty + fanout_penalty);
        FmaxEstimate {
            fmax_mhz: raw.max(self.floor_mhz),
            feasible: point.lut_frac <= 1.0,
            route_penalty,
            width_penalty,
            fanout_penalty,
        }
    }
}

impl Default for CongestionModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u55c() -> FpgaDevice {
        FpgaDevice::alveo_u55c()
    }

    /// The published optimum design point: 12 MHA tiles (TS=64), 6 FFN
    /// tiles (TS=128) → 76 % LUTs, widest reduction 4·TS_FFN = 512 PEs.
    fn optimum() -> DesignPoint {
        DesignPoint { lut_frac: 0.76, max_unroll_width: 512, tile_product: 72 }
    }

    #[test]
    fn published_optimum_hits_200mhz() {
        let m = CongestionModel::paper_calibrated();
        let est = m.estimate(&u55c(), &optimum());
        assert!(est.feasible);
        assert!((est.fmax_mhz - 200.0).abs() < 10.0, "fmax = {:.1}", est.fmax_mhz);
    }

    #[test]
    fn more_luts_lower_fmax() {
        let m = CongestionModel::paper_calibrated();
        let lo = m.estimate(&u55c(), &DesignPoint { lut_frac: 0.55, ..optimum() });
        let hi = m.estimate(&u55c(), &DesignPoint { lut_frac: 0.95, ..optimum() });
        assert!(lo.fmax_mhz > hi.fmax_mhz);
    }

    #[test]
    fn wider_unroll_lower_fmax() {
        let m = CongestionModel::paper_calibrated();
        let lo = m.estimate(&u55c(), &DesignPoint { max_unroll_width: 256, ..optimum() });
        let hi = m.estimate(&u55c(), &DesignPoint { max_unroll_width: 1536, ..optimum() });
        assert!(lo.fmax_mhz > hi.fmax_mhz);
    }

    #[test]
    fn more_tiles_lower_fmax() {
        let m = CongestionModel::paper_calibrated();
        let lo = m.estimate(&u55c(), &DesignPoint { tile_product: 36, ..optimum() });
        let hi = m.estimate(&u55c(), &DesignPoint { tile_product: 288, ..optimum() });
        assert!(lo.fmax_mhz > hi.fmax_mhz);
    }

    #[test]
    fn overfull_design_is_infeasible_but_reports() {
        let m = CongestionModel::paper_calibrated();
        let est = m.estimate(&u55c(), &DesignPoint { lut_frac: 1.1, ..optimum() });
        assert!(!est.feasible);
        assert!(est.fmax_mhz >= m.floor_mhz);
    }

    #[test]
    fn floor_clamps_pathological_points() {
        let m = CongestionModel::paper_calibrated();
        let est = m.estimate(
            &u55c(),
            &DesignPoint { lut_frac: 3.0, max_unroll_width: 100_000, tile_product: 100_000 },
        );
        assert_eq!(est.fmax_mhz, m.floor_mhz);
    }

    #[test]
    fn penalties_are_reported_and_nonnegative() {
        let m = CongestionModel::paper_calibrated();
        let est = m.estimate(&u55c(), &optimum());
        assert!(est.route_penalty >= 0.0);
        assert!(est.width_penalty > 0.0);
        assert!(est.fanout_penalty > 0.0);
    }
}
