//! Typed FPGA resource accounting.

use core::fmt;
use core::ops::{Add, AddAssign, Mul};

/// A vector of FPGA resource quantities.
///
/// Used both for budgets (a device's totals) and for demands (what a
/// synthesized design consumes). Arithmetic is saturating-free and panics
/// on overflow — a resource count that overflows `u64` is a bug, not a
/// condition to mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceVector {
    /// Look-up tables (logic).
    pub luts: u64,
    /// Flip-flops (registers).
    pub ffs: u64,
    /// DSP48 slices (multipliers).
    pub dsps: u64,
    /// BRAM18 blocks (two per BRAM36).
    pub bram18: u64,
    /// UltraRAM blocks.
    pub uram: u64,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector =
        ResourceVector { luts: 0, ffs: 0, dsps: 0, bram18: 0, uram: 0 };

    /// Construct with all five quantities.
    #[must_use]
    pub const fn new(luts: u64, ffs: u64, dsps: u64, bram18: u64, uram: u64) -> Self {
        Self { luts, ffs, dsps, bram18, uram }
    }

    /// Whether this demand fits within `budget` on every axis.
    #[must_use]
    pub fn fits_within(&self, budget: &ResourceVector) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.dsps <= budget.dsps
            && self.bram18 <= budget.bram18
            && self.uram <= budget.uram
    }

    /// Component-wise utilization fractions of `budget` (axes with a zero
    /// budget report 0.0 when unused, infinity when demanded).
    #[must_use]
    pub fn utilization_of(&self, budget: &ResourceVector) -> ResourceReport {
        fn frac(demand: u64, budget: u64) -> f64 {
            if budget == 0 {
                if demand == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                demand as f64 / budget as f64
            }
        }
        ResourceReport {
            demand: *self,
            lut_frac: frac(self.luts, budget.luts),
            ff_frac: frac(self.ffs, budget.ffs),
            dsp_frac: frac(self.dsps, budget.dsps),
            bram_frac: frac(self.bram18, budget.bram18),
            uram_frac: frac(self.uram, budget.uram),
        }
    }

    /// The axis with the highest utilization — the binding constraint
    /// ("further DSP utilization was limited by the available LUTs").
    #[must_use]
    pub fn binding_constraint(&self, budget: &ResourceVector) -> (&'static str, f64) {
        let r = self.utilization_of(budget);
        let axes = [
            ("LUT", r.lut_frac),
            ("FF", r.ff_frac),
            ("DSP", r.dsp_frac),
            ("BRAM", r.bram_frac),
            ("URAM", r.uram_frac),
        ];
        axes.into_iter().fold(("none", 0.0), |acc, x| if x.1 > acc.1 { x } else { acc })
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            luts: self.luts.checked_add(rhs.luts).expect("LUT count overflow"),
            ffs: self.ffs.checked_add(rhs.ffs).expect("FF count overflow"),
            dsps: self.dsps.checked_add(rhs.dsps).expect("DSP count overflow"),
            bram18: self.bram18.checked_add(rhs.bram18).expect("BRAM count overflow"),
            uram: self.uram.checked_add(rhs.uram).expect("URAM count overflow"),
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: u64) -> ResourceVector {
        ResourceVector {
            luts: self.luts.checked_mul(k).expect("LUT count overflow"),
            ffs: self.ffs.checked_mul(k).expect("FF count overflow"),
            dsps: self.dsps.checked_mul(k).expect("DSP count overflow"),
            bram18: self.bram18.checked_mul(k).expect("BRAM count overflow"),
            uram: self.uram.checked_mul(k).expect("URAM count overflow"),
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {} / FF {} / DSP {} / BRAM18 {} / URAM {}",
            self.luts, self.ffs, self.dsps, self.bram18, self.uram
        )
    }
}

/// Utilization fractions of a demand against one device's budget.
#[derive(Debug, Clone, Copy)]
pub struct ResourceReport {
    /// The absolute demand this report describes.
    pub demand: ResourceVector,
    /// LUT utilization fraction.
    pub lut_frac: f64,
    /// FF utilization fraction.
    pub ff_frac: f64,
    /// DSP utilization fraction.
    pub dsp_frac: f64,
    /// BRAM18 utilization fraction.
    pub bram_frac: f64,
    /// URAM utilization fraction.
    pub uram_frac: f64,
}

impl ResourceReport {
    /// Whether every axis is at or under 100 %.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.lut_frac <= 1.0
            && self.ff_frac <= 1.0
            && self.dsp_frac <= 1.0
            && self.bram_frac <= 1.0
            && self.uram_frac <= 1.0
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP {} ({:.0}%), LUT {} ({:.0}%), FF {} ({:.0}%), BRAM18 {} ({:.0}%)",
            self.demand.dsps,
            self.dsp_frac * 100.0,
            self.demand.luts,
            self.lut_frac * 100.0,
            self.demand.ffs,
            self.ff_frac * 100.0,
            self.demand.bram18,
            self.bram_frac * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = ResourceVector::new(10, 20, 3, 4, 1);
        let b = ResourceVector::new(1, 2, 3, 4, 5);
        assert_eq!(a + b, ResourceVector::new(11, 22, 6, 8, 6));
        assert_eq!(a * 3, ResourceVector::new(30, 60, 9, 12, 3));
    }

    #[test]
    fn fits_is_componentwise() {
        let budget = ResourceVector::new(100, 100, 100, 100, 100);
        assert!(ResourceVector::new(100, 50, 1, 0, 0).fits_within(&budget));
        assert!(!ResourceVector::new(101, 0, 0, 0, 0).fits_within(&budget));
    }

    #[test]
    fn utilization_paper_row() {
        // Table I: 3612 DSP = 40 %, 993107 LUT = 76 %, 704115 FF = 27 % on U55C.
        let u55c = ResourceVector::new(1_303_680, 2_607_360, 9_024, 4_032, 960);
        let design =
            ResourceVector { luts: 993_107, ffs: 704_115, dsps: 3_612, bram18: 1_000, uram: 0 };
        let r = design.utilization_of(&u55c);
        assert!((r.dsp_frac - 0.40).abs() < 0.005, "dsp {:.3}", r.dsp_frac);
        assert!((r.lut_frac - 0.76).abs() < 0.005, "lut {:.3}", r.lut_frac);
        assert!((r.ff_frac - 0.27).abs() < 0.005, "ff {:.3}", r.ff_frac);
        assert!(r.feasible());
    }

    #[test]
    fn binding_constraint_is_lut_for_protea() {
        let u55c = ResourceVector::new(1_303_680, 2_607_360, 9_024, 4_032, 960);
        let design =
            ResourceVector { luts: 993_107, ffs: 704_115, dsps: 3_612, bram18: 1_000, uram: 0 };
        let (axis, frac) = design.binding_constraint(&u55c);
        assert_eq!(axis, "LUT");
        assert!(frac > 0.7);
    }

    #[test]
    fn zero_budget_semantics() {
        let zero_uram = ResourceVector::new(10, 10, 10, 10, 0);
        let none = ResourceVector::new(1, 1, 1, 1, 0).utilization_of(&zero_uram);
        assert_eq!(none.uram_frac, 0.0);
        let some = ResourceVector::new(1, 1, 1, 1, 1).utilization_of(&zero_uram);
        assert!(some.uram_frac.is_infinite());
        assert!(!some.feasible());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let big = ResourceVector::new(u64::MAX, 0, 0, 0, 0);
        let _ = big + ResourceVector::new(1, 0, 0, 0, 0);
    }
}
