//! # protea-platform — FPGA device database and physical models
//!
//! The paper synthesizes one bitstream for a Xilinx **Alveo U55C** and
//! compares against accelerators on U200, U250, ZCU102 and VCU118 parts.
//! This crate holds the per-device facts every other layer consumes:
//!
//! * [`FpgaDevice`] — resource budgets (LUT/FF/DSP/BRAM/URAM) and external
//!   memory characteristics for the five devices in the paper's tables,
//! * [`ResourceVector`] / [`ResourceReport`] — typed resource accounting
//!   with utilization fractions (the `40 % DSP / 76 % LUT / 27 % FF` row
//!   of Table I),
//! * [`fmax`] — the achievable-frequency model substituting for Vivado
//!   place & route in the Fig. 7 tile-size sweep: frequency degrades with
//!   routing congestion (LUT pressure from wide unrolls) and with BRAM
//!   multiplexing depth (many small tiles). The curve is calibrated so the
//!   published optimum (12 MHA tiles × 6 FFN tiles → 200 MHz) is the
//!   model's optimum; see `DESIGN.md` for the substitution rationale.
//! * [`membw`] — external memory (HBM2 / DDR4) bandwidth figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod fmax;
pub mod membw;
pub mod resources;

pub use device::{FpgaDevice, MemoryKind};
pub use fmax::{CongestionModel, FmaxEstimate};
pub use membw::ExternalMemory;
pub use resources::{ResourceReport, ResourceVector};
