//! External memory models: HBM2 and DDR4 bandwidth.

/// An external memory system attached to an FPGA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExternalMemory {
    /// Marketing name ("HBM2", "DDR4-2400 x4").
    pub name: &'static str,
    /// Independent channels (pseudo-channels for HBM: the U55C exposes 32
    /// AXI ports into 16 GB of HBM2).
    pub channels: u32,
    /// Peak bandwidth per channel in bytes/second.
    pub peak_bytes_per_sec_per_channel: f64,
    /// Achievable efficiency for long sequential bursts (protocol +
    /// refresh overheads); 0 < eff ≤ 1.
    pub stream_efficiency: f64,
}

impl ExternalMemory {
    /// Alveo U55C HBM2: 16 GB, 460 GB/s aggregate over 32 pseudo-channels.
    #[must_use]
    pub const fn hbm2_u55c() -> Self {
        Self {
            name: "HBM2 (U55C, 460 GB/s)",
            channels: 32,
            peak_bytes_per_sec_per_channel: 460.0e9 / 32.0,
            stream_efficiency: 0.85,
        }
    }

    /// Alveo U280-class HBM2 (same stack family; for cross-checks).
    #[must_use]
    pub const fn hbm2_u280() -> Self {
        Self {
            name: "HBM2 (U280, 460 GB/s)",
            channels: 32,
            peak_bytes_per_sec_per_channel: 460.0e9 / 32.0,
            stream_efficiency: 0.85,
        }
    }

    /// Single-bank DDR4-2400 (ZCU102-class embedded board).
    #[must_use]
    pub const fn ddr4_zcu102() -> Self {
        Self {
            name: "DDR4-2400 (ZCU102, 19.2 GB/s)",
            channels: 1,
            peak_bytes_per_sec_per_channel: 19.2e9,
            stream_efficiency: 0.75,
        }
    }

    /// Four-bank DDR4 (U200/U250/VCU118 cards, 77 GB/s aggregate).
    #[must_use]
    pub const fn ddr4_alveo() -> Self {
        Self {
            name: "DDR4 x4 (Alveo, 77 GB/s)",
            channels: 4,
            peak_bytes_per_sec_per_channel: 77.0e9 / 4.0,
            stream_efficiency: 0.75,
        }
    }

    /// Aggregate peak bandwidth (bytes/second).
    #[must_use]
    pub fn peak_total(&self) -> f64 {
        self.peak_bytes_per_sec_per_channel * f64::from(self.channels)
    }

    /// Effective streaming bandwidth of one channel.
    #[must_use]
    pub fn effective_per_channel(&self) -> f64 {
        self.peak_bytes_per_sec_per_channel * self.stream_efficiency
    }

    /// Bytes one channel delivers per accelerator clock cycle at `freq_hz`.
    /// This is the number the AXI/DMA model consumes: a kernel clocked at
    /// 200 MHz reading a 256-bit AXI port cannot exceed 32 B/cycle no
    /// matter how fast the HBM is, so the caller takes the `min` of this
    /// and the port width.
    #[must_use]
    pub fn bytes_per_cycle_per_channel(&self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0);
        self.effective_per_channel() / freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_aggregate_bandwidth() {
        let m = ExternalMemory::hbm2_u55c();
        assert!((m.peak_total() - 460.0e9).abs() < 1e6);
        assert_eq!(m.channels, 32);
    }

    #[test]
    fn per_cycle_bandwidth_at_200mhz() {
        let m = ExternalMemory::hbm2_u55c();
        let bpc = m.bytes_per_cycle_per_channel(200.0e6);
        // 460/32 GB/s * 0.85 / 200 MHz ≈ 61 B/cycle — far above a 128-bit
        // AXI port's 16 B/cycle, so the port is the binding constraint.
        assert!(bpc > 16.0, "bpc = {bpc}");
    }

    #[test]
    fn ddr_is_slower_than_hbm() {
        assert!(
            ExternalMemory::ddr4_alveo().peak_total() < ExternalMemory::hbm2_u55c().peak_total()
        );
        assert!(
            ExternalMemory::ddr4_zcu102().peak_total() < ExternalMemory::ddr4_alveo().peak_total()
        );
    }

    #[test]
    fn efficiency_bounded() {
        for m in [
            ExternalMemory::hbm2_u55c(),
            ExternalMemory::hbm2_u280(),
            ExternalMemory::ddr4_zcu102(),
            ExternalMemory::ddr4_alveo(),
        ] {
            assert!(m.stream_efficiency > 0.0 && m.stream_efficiency <= 1.0);
            assert!(m.effective_per_channel() <= m.peak_bytes_per_sec_per_channel);
        }
    }
}
