//! The FPGA device database.
//!
//! Resource totals are the public Xilinx/AMD datasheet numbers for the
//! parts used in the paper's Tables I–II. Table I's utilization
//! percentages cross-check them: 3612 DSP / 40 % and 993107 LUT / 76 %
//! imply exactly the XCU55C's 9024 DSPs and 1.304 M LUTs.

use crate::membw::ExternalMemory;
use crate::resources::ResourceVector;

/// External memory technology attached to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// High-bandwidth memory stacks (Alveo U55C/U280).
    Hbm2,
    /// Discrete DDR4 banks.
    Ddr4,
}

/// One FPGA device/card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaDevice {
    /// Card name as the paper spells it.
    pub name: &'static str,
    /// Part resources.
    pub budget: ResourceVector,
    /// Memory technology.
    pub memory_kind: MemoryKind,
    /// External memory model.
    pub memory: ExternalMemory,
    /// Nominal kernel clock ceiling for HLS designs on this part (MHz) —
    /// the no-congestion asymptote of the Fmax model.
    pub fmax_ceiling_mhz: f64,
}

impl FpgaDevice {
    /// Xilinx Alveo U55C — the paper's platform.
    /// XCU55C: 1,303,680 LUTs; 2,607,360 FFs; 9,024 DSPs; 2,016 BRAM36
    /// (= 4,032 BRAM18); 960 URAM; 16 GB HBM2 @ 460 GB/s.
    #[must_use]
    pub const fn alveo_u55c() -> Self {
        Self {
            name: "Alveo U55C",
            budget: ResourceVector::new(1_303_680, 2_607_360, 9_024, 4_032, 960),
            memory_kind: MemoryKind::Hbm2,
            memory: ExternalMemory::hbm2_u55c(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Xilinx Alveo U200 (used by Peng et al. [21] and Qi et al. [28]).
    #[must_use]
    pub const fn alveo_u200() -> Self {
        Self {
            name: "Alveo U200",
            budget: ResourceVector::new(1_182_240, 2_364_480, 6_840, 4_320, 960),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_alveo(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Xilinx Alveo U250 (used by Wojcicki et al. [23]).
    #[must_use]
    pub const fn alveo_u250() -> Self {
        Self {
            name: "Alveo U250",
            budget: ResourceVector::new(1_728_000, 3_456_000, 12_288, 5_376, 1_280),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_alveo(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Xilinx ZCU102 (ZU9EG; used by EFA-Trans [25]).
    #[must_use]
    pub const fn zcu102() -> Self {
        Self {
            name: "ZCU102",
            budget: ResourceVector::new(274_080, 548_160, 2_520, 1_824, 0),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_zcu102(),
            fmax_ceiling_mhz: 350.0,
        }
    }

    /// Xilinx VCU118 (VU9P; used by FTRANS [29]).
    #[must_use]
    pub const fn vcu118() -> Self {
        Self {
            name: "VCU118",
            budget: ResourceVector::new(1_182_240, 2_364_480, 6_840, 4_320, 960),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_alveo(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Total external DRAM on the card, in bytes. The bandwidth model
    /// ([`ExternalMemory`]) deliberately carries no capacity field — it
    /// prices transfers, not residency — so the canonical board
    /// capacities live here: 16 GB HBM2 on the U55C, 64 GB DDR4 on the
    /// big Alveo/VCU boards, 4 GB on the ZCU102's PS-side DDR4.
    #[must_use]
    pub fn dram_capacity_bytes(&self) -> u64 {
        match self.memory_kind {
            MemoryKind::Hbm2 => 16 << 30,
            MemoryKind::Ddr4 => {
                if self.name == "ZCU102" {
                    4 << 30
                } else {
                    64 << 30
                }
            }
        }
    }

    /// All devices in the database.
    #[must_use]
    pub fn all() -> Vec<FpgaDevice> {
        vec![
            Self::alveo_u55c(),
            Self::alveo_u200(),
            Self::alveo_u250(),
            Self::zcu102(),
            Self::vcu118(),
        ]
    }

    /// Look a device up by (case-insensitive) name substring.
    #[must_use]
    pub fn by_name(name: &str) -> Option<FpgaDevice> {
        let needle = name.to_ascii_lowercase();
        Self::all().into_iter().find(|d| d.name.to_ascii_lowercase().contains(&needle))
    }

    /// A dimensionless throughput weight for fleet placement: DSP budget
    /// × clock ceiling, normalized so the paper's U55C scores 1.0.
    /// Capacity-aware schedulers balance load in units of this weight
    /// instead of raw busy nanoseconds, so a big card absorbs
    /// proportionally more work than a small one.
    #[must_use]
    pub fn relative_capacity(&self) -> f64 {
        let u55c = Self::alveo_u55c();
        (self.budget.dsps as f64 * self.fmax_ceiling_mhz)
            / (u55c.budget.dsps as f64 * u55c.fmax_ceiling_mhz)
    }

    /// Parse a comma-separated roster spec (e.g. `"u55c,u200,u250"`)
    /// into per-card devices via [`by_name`](Self::by_name). An element
    /// may carry a `xN` repeat suffix (`"u55c x3"` or `"u55cx3"` are
    /// not accepted — spell it `"u55c*3"`), so `"u55c*2,u200"` is a
    /// three-card roster.
    ///
    /// # Errors
    /// A message naming the offending element and the known devices.
    pub fn parse_roster(spec: &str) -> Result<Vec<FpgaDevice>, String> {
        let known =
            || Self::all().iter().map(|d| d.name.to_string()).collect::<Vec<_>>().join(", ");
        let mut roster = Vec::new();
        for raw in spec.split(',') {
            let elem = raw.trim();
            if elem.is_empty() {
                return Err(format!("empty roster element in {spec:?}"));
            }
            let (name, count) = match elem.split_once('*') {
                Some((n, c)) => {
                    let count: usize = c
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad repeat count in roster element {elem:?}"))?;
                    if count == 0 {
                        return Err(format!("repeat count must be nonzero in {elem:?}"));
                    }
                    (n.trim(), count)
                }
                None => (elem, 1),
            };
            let device = Self::by_name(name)
                .ok_or_else(|| format!("unknown device {name:?} (known: {})", known()))?;
            roster.extend(std::iter::repeat_n(device, count));
        }
        if roster.is_empty() {
            return Err("roster is empty".into());
        }
        Ok(roster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_matches_paper_percentages() {
        let d = FpgaDevice::alveo_u55c();
        // Table I: 3612 DSPs = 40 %, 993107 LUTs = 76 %, 704115 FFs = 27 %.
        assert_eq!((3612.0 / d.budget.dsps as f64 * 100.0).round() as i64, 40);
        assert_eq!((993_107.0 / d.budget.luts as f64 * 100.0).round() as i64, 76);
        assert_eq!((704_115.0 / d.budget.ffs as f64 * 100.0).round() as i64, 27);
    }

    #[test]
    fn database_has_all_paper_devices() {
        let names: Vec<_> = FpgaDevice::all().iter().map(|d| d.name).collect();
        for expect in ["Alveo U55C", "Alveo U200", "Alveo U250", "ZCU102", "VCU118"] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn lookup_by_substring() {
        assert_eq!(FpgaDevice::by_name("u55c").unwrap().name, "Alveo U55C");
        assert_eq!(FpgaDevice::by_name("ZCU102").unwrap().name, "ZCU102");
        assert!(FpgaDevice::by_name("virtex-4").is_none());
    }

    #[test]
    fn zcu102_is_smallest() {
        let z = FpgaDevice::zcu102();
        for d in FpgaDevice::all() {
            assert!(z.budget.dsps <= d.budget.dsps);
            assert!(z.budget.luts <= d.budget.luts);
        }
    }

    #[test]
    fn relative_capacity_is_u55c_normalized() {
        assert!((FpgaDevice::alveo_u55c().relative_capacity() - 1.0).abs() < 1e-12);
        assert!(FpgaDevice::alveo_u250().relative_capacity() > 1.0, "U250 outmuscles U55C");
        assert!(FpgaDevice::zcu102().relative_capacity() < 1.0, "ZCU102 is the small part");
        for d in FpgaDevice::all() {
            assert!(d.relative_capacity() > 0.0 && d.relative_capacity().is_finite());
        }
    }

    #[test]
    fn roster_spec_parses_repeats_and_rejects_garbage() {
        let r = FpgaDevice::parse_roster("u55c*2, u200").unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].name, "Alveo U55C");
        assert_eq!(r[1].name, "Alveo U55C");
        assert_eq!(r[2].name, "Alveo U200");
        assert!(FpgaDevice::parse_roster("").is_err());
        assert!(FpgaDevice::parse_roster("u55c,,u200").is_err());
        assert!(FpgaDevice::parse_roster("virtex-4").unwrap_err().contains("known:"));
        assert!(FpgaDevice::parse_roster("u55c*0").is_err());
        assert!(FpgaDevice::parse_roster("u55c*x").is_err());
    }

    #[test]
    fn hbm_only_on_u55c() {
        for d in FpgaDevice::all() {
            let is_hbm = d.memory_kind == MemoryKind::Hbm2;
            assert_eq!(is_hbm, d.name == "Alveo U55C");
        }
    }
}
