//! The FPGA device database.
//!
//! Resource totals are the public Xilinx/AMD datasheet numbers for the
//! parts used in the paper's Tables I–II. Table I's utilization
//! percentages cross-check them: 3612 DSP / 40 % and 993107 LUT / 76 %
//! imply exactly the XCU55C's 9024 DSPs and 1.304 M LUTs.

use crate::membw::ExternalMemory;
use crate::resources::ResourceVector;

/// External memory technology attached to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// High-bandwidth memory stacks (Alveo U55C/U280).
    Hbm2,
    /// Discrete DDR4 banks.
    Ddr4,
}

/// One FPGA device/card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaDevice {
    /// Card name as the paper spells it.
    pub name: &'static str,
    /// Part resources.
    pub budget: ResourceVector,
    /// Memory technology.
    pub memory_kind: MemoryKind,
    /// External memory model.
    pub memory: ExternalMemory,
    /// Nominal kernel clock ceiling for HLS designs on this part (MHz) —
    /// the no-congestion asymptote of the Fmax model.
    pub fmax_ceiling_mhz: f64,
}

impl FpgaDevice {
    /// Xilinx Alveo U55C — the paper's platform.
    /// XCU55C: 1,303,680 LUTs; 2,607,360 FFs; 9,024 DSPs; 2,016 BRAM36
    /// (= 4,032 BRAM18); 960 URAM; 16 GB HBM2 @ 460 GB/s.
    #[must_use]
    pub const fn alveo_u55c() -> Self {
        Self {
            name: "Alveo U55C",
            budget: ResourceVector::new(1_303_680, 2_607_360, 9_024, 4_032, 960),
            memory_kind: MemoryKind::Hbm2,
            memory: ExternalMemory::hbm2_u55c(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Xilinx Alveo U200 (used by Peng et al. [21] and Qi et al. [28]).
    #[must_use]
    pub const fn alveo_u200() -> Self {
        Self {
            name: "Alveo U200",
            budget: ResourceVector::new(1_182_240, 2_364_480, 6_840, 4_320, 960),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_alveo(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Xilinx Alveo U250 (used by Wojcicki et al. [23]).
    #[must_use]
    pub const fn alveo_u250() -> Self {
        Self {
            name: "Alveo U250",
            budget: ResourceVector::new(1_728_000, 3_456_000, 12_288, 5_376, 1_280),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_alveo(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// Xilinx ZCU102 (ZU9EG; used by EFA-Trans [25]).
    #[must_use]
    pub const fn zcu102() -> Self {
        Self {
            name: "ZCU102",
            budget: ResourceVector::new(274_080, 548_160, 2_520, 1_824, 0),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_zcu102(),
            fmax_ceiling_mhz: 350.0,
        }
    }

    /// Xilinx VCU118 (VU9P; used by FTRANS [29]).
    #[must_use]
    pub const fn vcu118() -> Self {
        Self {
            name: "VCU118",
            budget: ResourceVector::new(1_182_240, 2_364_480, 6_840, 4_320, 960),
            memory_kind: MemoryKind::Ddr4,
            memory: ExternalMemory::ddr4_alveo(),
            fmax_ceiling_mhz: 300.0,
        }
    }

    /// All devices in the database.
    #[must_use]
    pub fn all() -> Vec<FpgaDevice> {
        vec![
            Self::alveo_u55c(),
            Self::alveo_u200(),
            Self::alveo_u250(),
            Self::zcu102(),
            Self::vcu118(),
        ]
    }

    /// Look a device up by (case-insensitive) name substring.
    #[must_use]
    pub fn by_name(name: &str) -> Option<FpgaDevice> {
        let needle = name.to_ascii_lowercase();
        Self::all().into_iter().find(|d| d.name.to_ascii_lowercase().contains(&needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_matches_paper_percentages() {
        let d = FpgaDevice::alveo_u55c();
        // Table I: 3612 DSPs = 40 %, 993107 LUTs = 76 %, 704115 FFs = 27 %.
        assert_eq!((3612.0 / d.budget.dsps as f64 * 100.0).round() as i64, 40);
        assert_eq!((993_107.0 / d.budget.luts as f64 * 100.0).round() as i64, 76);
        assert_eq!((704_115.0 / d.budget.ffs as f64 * 100.0).round() as i64, 27);
    }

    #[test]
    fn database_has_all_paper_devices() {
        let names: Vec<_> = FpgaDevice::all().iter().map(|d| d.name).collect();
        for expect in ["Alveo U55C", "Alveo U200", "Alveo U250", "ZCU102", "VCU118"] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn lookup_by_substring() {
        assert_eq!(FpgaDevice::by_name("u55c").unwrap().name, "Alveo U55C");
        assert_eq!(FpgaDevice::by_name("ZCU102").unwrap().name, "ZCU102");
        assert!(FpgaDevice::by_name("virtex-4").is_none());
    }

    #[test]
    fn zcu102_is_smallest() {
        let z = FpgaDevice::zcu102();
        for d in FpgaDevice::all() {
            assert!(z.budget.dsps <= d.budget.dsps);
            assert!(z.budget.luts <= d.budget.luts);
        }
    }

    #[test]
    fn hbm_only_on_u55c() {
        for d in FpgaDevice::all() {
            let is_hbm = d.memory_kind == MemoryKind::Hbm2;
            assert_eq!(is_hbm, d.name == "Alveo U55C");
        }
    }
}
