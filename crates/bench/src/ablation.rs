//! Ablations of the paper's design choices (DESIGN.md §4).
//!
//! * **Tiling** — what happens without it: a no-tiling design point
//!   (one tile = the whole matrix) demands more LUTs than any Alveo has;
//!   tiling is what makes the design synthesizable at all.
//! * **Overlap** — double-buffered load/compute vs serialized.
//! * **Head parallelism** — h parallel head engines (ProTEA) vs a single
//!   shared attention engine (the Lu et al. [18] baseline structure).
//! * **Initiation intervals** — the paper-calibrated engine IIs vs an
//!   idealized II=1 datapath.

use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig, TimingPreset};
use protea_model::EncoderConfig;
use protea_platform::{FpgaDevice, ResourceVector};

/// Tiling ablation result.
#[derive(Debug, Clone)]
pub struct TilingAblation {
    /// Tile counts (MHA, FFN).
    pub tiles: (usize, usize),
    /// Resource demand.
    pub resources: ResourceVector,
    /// Whether it fits the U55C.
    pub feasible: bool,
    /// Latency if feasible (test #1 workload).
    pub latency_ms: Option<f64>,
}

/// Compare tiled designs against the untiled extreme.
#[must_use]
pub fn tiling() -> Vec<TilingAblation> {
    let device = FpgaDevice::alveo_u55c();
    let workload = EncoderConfig::paper_test1();
    [(1usize, 1usize), (3, 2), (6, 3), (12, 6), (24, 6), (48, 6)]
        .into_iter()
        .map(|(tm, tf)| {
            let syn = SynthesisConfig::with_tile_counts(tm, tf);
            let design = syn.synthesize(&device);
            let latency_ms = design.feasible.then(|| {
                let mut acc =
                    Accelerator::try_new(syn, &device).expect("design must fit the device");
                acc.program(RuntimeConfig::from_model(&workload, &syn).unwrap()).unwrap();
                acc.timing_report().latency_ms()
            });
            TilingAblation {
                tiles: (tm, tf),
                resources: design.resources,
                feasible: design.feasible,
                latency_ms,
            }
        })
        .collect()
}

/// Overlap ablation: (overlapped_ms, serialized_ms) for a workload.
#[must_use]
pub fn overlap(cfg: &EncoderConfig) -> (f64, f64) {
    let syn = SynthesisConfig::paper_default();
    let mut acc =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    acc.program(RuntimeConfig::from_model(cfg, &syn).unwrap()).unwrap();
    let with = acc.timing_report().latency_ms();
    acc.set_overlap(false);
    let without = acc.timing_report().latency_ms();
    (with, without)
}

/// Head-parallelism ablation result.
#[derive(Debug, Clone)]
pub struct HeadsAblation {
    /// Synthesized head engines.
    pub heads: usize,
    /// DSPs consumed.
    pub dsps: u64,
    /// Latency of a `(768, h, 12, 64)` model (ms).
    pub latency_ms: f64,
}

/// Parallel head engines vs a shared engine bank: the same 8-head model,
/// but with only `e` head engines the MHA phases serialize `8/e` rounds
/// (Lu et al. [18] built a single-head engine — `e = 1`). The FFN
/// engines are unaffected; DSPs scale with the head-engine count.
#[must_use]
pub fn heads() -> Vec<HeadsAblation> {
    let device = FpgaDevice::alveo_u55c();
    let syn = SynthesisConfig::paper_default();
    let cfg = EncoderConfig::paper_test1();
    let mut acc = Accelerator::try_new(syn, &device).expect("design must fit the device");
    acc.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
    let report = acc.timing_report();
    let mha_phases = ["QKV_CE", "QK_CE", "Softmax", "SV_CE"];
    let mha: u64 =
        report.phases.iter().filter(|p| mha_phases.contains(&p.name)).map(|p| p.cycles.get()).sum();
    let rest = report.total.get() - mha;
    // Per-head engine DSP cost (QKV + QK + SV PEs for one head).
    let per_head_dsps: u64 =
        syn.pe_breakdown().iter().take(3).map(|(_, n)| n / syn.heads as u64).sum();
    let base_dsps = acc.design().resources.dsps - per_head_dsps * syn.heads as u64;
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|e| {
            let rounds = (syn.heads / e) as u64;
            let cycles = rest + mha * rounds;
            let ms = protea_hwsim::Cycles(cycles)
                .to_millis(protea_hwsim::Frequency::mhz(report.fmax_mhz));
            HeadsAblation { heads: e, dsps: base_dsps + per_head_dsps * e as u64, latency_ms: ms }
        })
        .collect()
}

/// HBM channel-sharing ablation: the QKV phase's per-tile load when the
/// 8 head DMAs share one channel (round-robin arbitrated) vs dedicated
/// channels. Returns `(dedicated_cycles, shared_cycles)` per tile for
/// the test #1 geometry — the mechanism candidate for the Table I #9
/// residual (EXPERIMENTS.md).
#[must_use]
pub fn channel_sharing() -> (u64, u64) {
    use protea_mem::arbiter::arbitrate_round_robin;
    use protea_mem::hbm::bounded_transfer_cycles;
    use protea_mem::{AxiPort, ChannelShare};
    let syn = SynthesisConfig::paper_default();
    let port = AxiPort::new(256);
    let device = FpgaDevice::alveo_u55c();
    let share = ChannelShare::of(&device.memory, 1, 191.0e6);
    // per head, per tile: 3 weight strips (96×64) + input strip (64×64)
    let per_head_bytes = 3 * 96 * 64 + 64 * 64;
    let dedicated = bounded_transfer_cycles(&port, &share, per_head_bytes).get();
    let shared = arbitrate_round_robin(&vec![per_head_bytes; syn.heads], &port, &share).total.get();
    (dedicated, shared)
}

/// Batch-throughput ablation: per-sequence latency at batch sizes 1–16
/// (weight-stationary batching amortizes tile loads). Returns
/// `(batch, per_seq_ms)` pairs for a load-sensitive workload.
#[must_use]
pub fn batching() -> Vec<(usize, f64)> {
    let syn = SynthesisConfig::paper_default();
    let mut acc =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    acc.program(RuntimeConfig::from_model(&EncoderConfig::new(768, 8, 12, 32), &syn).unwrap())
        .unwrap();
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|b| (b, acc.timing_report_batched(b).latency_ms() / b as f64))
        .collect()
}

/// Bit-width ablation: the paper notes the design "can be easily
/// modified in the HLS code" for wider data, "which will impact both
/// resource utilization and latency". Synthesize the same architecture
/// at 8 and 16 bits and report `(bits, bram18, lutram_luts_total,
/// latency_ms, feasible)` for the test #1 workload — the doubled weight
/// traffic shows up wherever loads are exposed.
#[must_use]
pub fn bitwidth() -> Vec<(u32, u64, u64, Option<f64>, bool)> {
    let device = FpgaDevice::alveo_u55c();
    let workload = EncoderConfig::paper_test1();
    [8u32, 16]
        .into_iter()
        .map(|bits| {
            let syn = SynthesisConfig { data_bits: bits, ..SynthesisConfig::paper_default() };
            let design = syn.synthesize(&device);
            let mem_luts: u64 = syn.arrays().iter().map(|a| a.bind().lutram_luts).sum();
            let latency = design.feasible.then(|| {
                let mut acc =
                    Accelerator::try_new(syn, &device).expect("design must fit the device");
                acc.program(RuntimeConfig::from_model(&workload, &syn).unwrap()).unwrap();
                acc.timing_report().latency_ms()
            });
            (bits, design.resources.bram18, mem_luts, latency, design.feasible)
        })
        .collect()
}

/// Sparse-exploitation ablation: prune a model three ways at the same
/// target sparsity and price the FFN stages under tile-skipping and
/// balanced-row hardware. Returns
/// `(scheme name, measured sparsity, tile-skip saving, balanced saving)`.
#[must_use]
pub fn sparsity_exploitation(target: f64) -> Vec<(&'static str, f64, f64, f64)> {
    use protea_core::SparseMode;
    use protea_model::PruningScheme;
    use protea_model::{EncoderWeights, QuantSchedule, QuantizedEncoder};
    let cfg = EncoderConfig::new(768, 8, 1, 16);
    let syn = SynthesisConfig::paper_default();
    [
        ("magnitude (unstructured)", PruningScheme::Magnitude),
        ("column-balanced ([21])", PruningScheme::ColumnBalanced),
        ("blocks 128x128 ([29]-style)", PruningScheme::Blocks(128)),
    ]
    .into_iter()
    .map(|(name, scheme)| {
        let mut w = EncoderWeights::random(cfg, 17);
        let measured = w.prune(scheme, target);
        let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        acc.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
        acc.try_load_weights(QuantizedEncoder::from_float(&w, QuantSchedule::paper()))
            .expect("weights must match the programmed registers");
        let saving = |mode: SparseMode| {
            let (dense, sparse) = acc.sparse_speedup(mode);
            1.0 - sparse.get() as f64 / dense.get().max(1) as f64
        };
        (name, measured, saving(SparseMode::TileSkip), saving(SparseMode::BalancedRows))
    })
    .collect()
}

/// Initiation-interval ablation: paper-calibrated vs idealized timing.
#[must_use]
pub fn initiation_intervals() -> (f64, f64) {
    let device = FpgaDevice::alveo_u55c();
    let cfg = EncoderConfig::paper_test1();
    let run = |timing: TimingPreset| -> f64 {
        let syn = SynthesisConfig { timing, ..SynthesisConfig::paper_default() };
        let mut acc = Accelerator::try_new(syn, &device).expect("design must fit the device");
        acc.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
        acc.timing_report().latency_ms()
    };
    (run(TimingPreset::paper()), run(TimingPreset::ideal()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untiled_design_does_not_fit_any_alveo() {
        let rows = tiling();
        let untiled = &rows[0];
        assert_eq!(untiled.tiles, (1, 1));
        assert!(!untiled.feasible, "untiled must exceed the device");
        assert!(untiled.resources.luts > FpgaDevice::alveo_u250().budget.luts);
    }

    #[test]
    fn paper_tiling_is_the_fastest_feasible() {
        let rows = tiling();
        let best = rows
            .iter()
            .filter(|r| r.feasible)
            .min_by(|a, b| a.latency_ms.unwrap().total_cmp(&b.latency_ms.unwrap()))
            .unwrap();
        assert_eq!(best.tiles, (12, 6));
    }

    #[test]
    fn overlap_saves_time() {
        let (with, without) = overlap(&EncoderConfig::paper_test1());
        assert!(with < without);
        // At SL=64 the design is compute-bound, so the saving is a few
        // percent; at SL=32 loads matter more.
        let (w32, wo32) = overlap(&EncoderConfig::new(768, 8, 12, 32));
        assert!((wo32 - w32) / w32 > (without - with) / with * 0.8);
    }

    #[test]
    fn more_head_engines_cost_dsps_but_cut_latency() {
        let rows = heads();
        for pair in rows.windows(2) {
            assert!(pair[1].dsps > pair[0].dsps, "DSPs grow with engines");
            assert!(
                pair[1].latency_ms < pair[0].latency_ms,
                "latency falls with engines: {} vs {}",
                pair[1].latency_ms,
                pair[0].latency_ms
            );
        }
        // A single shared engine (Lu et al. structure) serializes all 8
        // heads' MHA work; at SL=64 the FFN still dominates, so the
        // penalty is real but bounded.
        let h1 = &rows[0];
        let h8 = &rows[3];
        assert!(h1.latency_ms > 1.05 * h8.latency_ms);
        assert!(h1.latency_ms < 2.0 * h8.latency_ms);
    }

    #[test]
    fn channel_sharing_costs_roughly_headcount() {
        let (dedicated, shared) = channel_sharing();
        assert!(shared > dedicated);
        let ratio = shared as f64 / dedicated as f64;
        assert!((6.0..10.0).contains(&ratio), "8 masters on one channel ≈ 8×, got {ratio:.1}");
    }

    #[test]
    fn batching_improves_per_sequence_latency_monotonically() {
        let rows = batching();
        for pair in rows.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "batch {} per-seq {} vs batch {} per-seq {}",
                pair[1].0,
                pair[1].1,
                pair[0].0,
                pair[0].1
            );
        }
    }

    #[test]
    fn wider_data_costs_memory_and_bandwidth() {
        let rows = bitwidth();
        let (b8, b16) = (&rows[0], &rows[1]);
        assert_eq!(b8.0, 8);
        assert_eq!(b16.0, 16);
        // memory roughly doubles (BRAM + LUTRAM combined)
        let mem8 = b8.1 * 18 * 1024 + b8.2 * 64;
        let mem16 = b16.1 * 18 * 1024 + b16.2 * 64;
        assert!(mem16 as f64 / mem8 as f64 > 1.6, "16-bit memory {mem16} vs 8-bit {mem8}");
        // if both fit, the 16-bit build is never faster
        if let (Some(l8), Some(l16)) = (b8.3, b16.3) {
            assert!(l16 >= l8);
        }
    }

    #[test]
    fn sparsity_exploitation_depends_on_structure() {
        let rows = sparsity_exploitation(0.9);
        let by_name: std::collections::HashMap<_, _> =
            rows.iter().map(|r| (r.0, (r.2, r.3))).collect();
        // unstructured: tile-skip ≈ nothing; balanced HW would need
        // index decoding it can't use here either — but the balanced
        // *model* prices trips by occupancy, so it still shrinks.
        let (tile_unstruct, _) = by_name["magnitude (unstructured)"];
        assert!(tile_unstruct < 0.1, "unstructured tile-skip = {tile_unstruct}");
        // block pruning at the engine tile size: tile-skip ≈ sparsity.
        let (tile_block, _) = by_name["blocks 128x128 ([29]-style)"];
        assert!(tile_block > 0.6, "block tile-skip = {tile_block}");
        // column-balanced + balanced HW recovers most of (1 − s).
        let (_, bal_cb) = by_name["column-balanced ([21])"];
        assert!(bal_cb > 0.6, "balanced saving = {bal_cb}");
    }

    #[test]
    fn ideal_iis_roughly_halve_latency() {
        let (paper, ideal) = initiation_intervals();
        assert!(ideal < paper);
        let ratio = paper / ideal;
        assert!((1.5..3.0).contains(&ratio), "II ablation ratio = {ratio:.2}");
    }
}
