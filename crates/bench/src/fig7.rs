//! Fig. 7 — choosing the optimum tile size.
//!
//! The paper sweeps MHA tile count 6→48 and FFN tile count 2→6 and plots
//! achievable frequency (MHz) and latency normalized to the minimum; the
//! optimum is 12 MHA tiles × 6 FFN tiles at 200 MHz. Each sweep point
//! here is a full re-synthesis (new tile sizes → new PE counts, resource
//! binding, Fmax) followed by a timed run of the test #1 workload.

use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig};
use protea_model::EncoderConfig;
use protea_platform::FpgaDevice;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// MHA tile count (`d_max / TS_MHA`).
    pub tiles_mha: usize,
    /// FFN tile count (`d_max / TS_FFN`).
    pub tiles_ffn: usize,
    /// Achievable frequency (MHz).
    pub fmax_mhz: f64,
    /// Latency of the test #1 workload (ms).
    pub latency_ms: f64,
    /// Whether the design fits the U55C.
    pub feasible: bool,
}

/// The sweep result with normalization.
#[derive(Debug, Clone)]
pub struct Fig7Sweep {
    /// All points, row-major over (tiles_mha, tiles_ffn).
    pub points: Vec<Fig7Point>,
}

impl Fig7Sweep {
    /// Latency of a point normalized to the sweep minimum (the paper's
    /// y-axis).
    #[must_use]
    pub fn normalized_latency(&self, p: &Fig7Point) -> f64 {
        let min = self
            .points
            .iter()
            .filter(|q| q.feasible)
            .map(|q| q.latency_ms)
            .fold(f64::MAX, f64::min);
        p.latency_ms / min
    }

    /// The feasible point with the highest frequency.
    #[must_use]
    pub fn fmax_optimum(&self) -> Fig7Point {
        *self
            .points
            .iter()
            .filter(|p| p.feasible)
            .max_by(|a, b| a.fmax_mhz.total_cmp(&b.fmax_mhz))
            .expect("at least one feasible point")
    }

    /// The feasible point with the lowest latency.
    #[must_use]
    pub fn latency_optimum(&self) -> Fig7Point {
        *self
            .points
            .iter()
            .filter(|p| p.feasible)
            .min_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms))
            .expect("at least one feasible point")
    }
}

/// The tile counts the paper sweeps (divisors of 768 within the ranges).
#[must_use]
pub fn sweep_axes() -> (Vec<usize>, Vec<usize>) {
    (vec![6, 8, 12, 16, 24, 32, 48], vec![2, 3, 4, 6])
}

/// Run the sweep.
#[must_use]
pub fn run() -> Fig7Sweep {
    let device = FpgaDevice::alveo_u55c();
    let workload = EncoderConfig::paper_test1();
    let (mha_axis, ffn_axis) = sweep_axes();
    let mut points = Vec::new();
    for &tm in &mha_axis {
        for &tf in &ffn_axis {
            let syn = SynthesisConfig::with_tile_counts(tm, tf);
            let design = syn.synthesize(&device);
            let latency_ms = if design.feasible {
                let mut acc =
                    Accelerator::try_new(syn, &device).expect("design must fit the device");
                let rt = RuntimeConfig::from_model(&workload, &syn).expect("workload fits");
                acc.program(rt).expect("register write");
                acc.timing_report().latency_ms()
            } else {
                f64::INFINITY
            };
            points.push(Fig7Point {
                tiles_mha: tm,
                tiles_ffn: tf,
                fmax_mhz: design.fmax_mhz,
                latency_ms,
                feasible: design.feasible,
            });
        }
    }
    Fig7Sweep { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_12_mha_by_6_ffn_for_both_metrics() {
        let sweep = run();
        let f = sweep.fmax_optimum();
        assert_eq!((f.tiles_mha, f.tiles_ffn), (12, 6), "fmax optimum");
        let l = sweep.latency_optimum();
        assert_eq!((l.tiles_mha, l.tiles_ffn), (12, 6), "latency optimum");
        assert!((f.fmax_mhz - 200.0).abs() < 15.0, "fmax at optimum = {:.1}", f.fmax_mhz);
    }

    #[test]
    fn sweep_covers_paper_ranges() {
        let sweep = run();
        assert_eq!(sweep.points.len(), 7 * 4);
        assert!(sweep.points.iter().any(|p| p.tiles_mha == 6));
        assert!(sweep.points.iter().any(|p| p.tiles_mha == 48));
        assert!(sweep.points.iter().any(|p| p.tiles_ffn == 2));
    }

    #[test]
    fn normalized_latency_is_one_at_optimum() {
        let sweep = run();
        let opt = sweep.latency_optimum();
        assert!((sweep.normalized_latency(&opt) - 1.0).abs() < 1e-12);
        // every other feasible point is ≥ 1
        for p in sweep.points.iter().filter(|p| p.feasible) {
            assert!(sweep.normalized_latency(p) >= 1.0);
        }
    }

    #[test]
    fn big_tiles_are_infeasible_or_slow() {
        // (6, 2): the largest tiles — oversubscribes the U55C's LUTs.
        let sweep = run();
        let p = sweep.points.iter().find(|p| p.tiles_mha == 6 && p.tiles_ffn == 2).unwrap();
        assert!(!p.feasible || sweep.normalized_latency(p) > 1.3);
    }
}
