//! Overload scenario: goodput vs offered load under deadlines.
//!
//! The serving and availability sweeps ask what the fleet does when it
//! is healthy or faulted; this one asks what it does when it is simply
//! *asked for too much*. The sweep crosses offered load with deadline
//! budgets and fleet sizes on one request mix, with the overload
//! controls armed (bounded queues, AIMD admission, a retry budget).
//! The interesting shape is the **goodput knee**: goodput — completions
//! that met their deadline, per second — rises with offered load until
//! the fleet saturates, then *plateaus* as admission control sheds the
//! excess, instead of collapsing the way an unbounded queue would (every
//! request admitted, every request late, goodput → 0). Every cell also
//! re-checks the conservation invariant:
//! `completed + shed + expired + failed == submitted`.

use protea_serve::{
    AimdConfig, BatchPolicy, Fleet, FleetConfig, OverloadConfig, ServeError, ServePlan,
    ServeReport, Workload,
};

/// One (offered load, deadline, fleet size) measurement.
#[derive(Debug, Clone)]
pub struct OverloadRow {
    /// Poisson arrival rate the workload was synthesized at (req/s).
    pub offered_rps: f64,
    /// Relative completion deadline stamped on every request (ns).
    pub deadline_ns: u64,
    /// Cards in the fleet.
    pub cards: usize,
    /// The cell's full report (goodput, shed/expired tallies, SLO).
    pub report: ServeReport,
}

/// Seed for the arrival streams; fixed so every run of the harness
/// reproduces the same tables.
pub const SEED: u64 = 0x0AD5;

/// Requests per cell in [`standard_rows`]' workloads.
pub const REQUESTS: usize = 192;

/// The overload controls every cell runs with: bounded per-bucket
/// queues, an AIMD limiter sized to the fleet (a couple of batch
/// windows per card, so a load spike cannot park a deadline's worth of
/// work in the queue before the first expiry sweep reins the limit in),
/// and the default retry budget. Hedging stays off here — it is a
/// tail-latency tool, and this sweep isolates the admission story.
#[must_use]
pub fn standard_config(cards: usize) -> FleetConfig {
    FleetConfig {
        cards,
        policy: BatchPolicy { max_batch: 8, max_queue: Some(32), ..BatchPolicy::default() },
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig {
                initial: 16 * cards,
                min: 4,
                max: 32 * cards,
                ..AimdConfig::default()
            }),
            retry_budget: Some(Default::default()),
            hedge: None,
        }),
        ..FleetConfig::default()
    }
}

/// Cross `offered_rps` with `deadlines_ns` and `card_counts`. Each cell
/// synthesizes a fresh Poisson trace at the offered rate (same seed, so
/// cells differ only in what the knobs say), stamps the deadline, and
/// serves it with [`standard_config`].
///
/// # Errors
/// Propagates any [`ServeError`]; also surfaces a broken conservation
/// invariant as a serving error so the harness fails loudly rather than
/// printing a corrupt table.
pub fn run_sweep(
    offered_rps: &[f64],
    deadlines_ns: &[u64],
    card_counts: &[usize],
) -> Result<Vec<OverloadRow>, ServeError> {
    let mut rows = Vec::with_capacity(offered_rps.len() * deadlines_ns.len() * card_counts.len());
    for &cards in card_counts {
        let fleet = Fleet::try_new(standard_config(cards))?;
        for &deadline_ns in deadlines_ns {
            for &rate in offered_rps {
                let workload = Workload::poisson(REQUESTS, rate, &[(96, 4, 2)], (8, 32), SEED)
                    .with_deadline(deadline_ns);
                let report = fleet.run(ServePlan::workload(&workload))?.report;
                if !report.accounted() {
                    return Err(ServeError::Core(protea_core::CoreError::Serving(format!(
                        "conservation broken at {rate} req/s x {deadline_ns} ns x {cards} cards: \
                         {} completed + {} shed + {} expired + {} failed != {} submitted",
                        report.completed,
                        report.shed.len(),
                        report.expired.len(),
                        report.failed.len(),
                        report.submitted
                    ))));
                }
                rows.push(OverloadRow { offered_rps: rate, deadline_ns, cards, report });
            }
        }
    }
    Ok(rows)
}

/// The goodput-knee check over one (deadline, cards) slice of `rows`,
/// in ascending offered-load order: returns `(peak_goodput, floor)`
/// where `floor` is the lowest goodput at any offered load *at or
/// beyond* the peak. A healthy overload-controlled fleet keeps
/// `floor` close to `peak` (the plateau); an uncontrolled one lets it
/// collapse toward zero. `None` when the slice is empty.
#[must_use]
pub fn knee(rows: &[OverloadRow], deadline_ns: u64, cards: usize) -> Option<(f64, f64)> {
    let slice: Vec<&OverloadRow> =
        rows.iter().filter(|r| r.deadline_ns == deadline_ns && r.cards == cards).collect();
    let peak_at = slice
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.report.goodput_rps.partial_cmp(&b.report.goodput_rps).expect("goodput is finite")
        })
        .map(|(i, _)| i)?;
    let peak = slice[peak_at].report.goodput_rps;
    let floor = slice[peak_at..].iter().map(|r| r.report.goodput_rps).fold(f64::INFINITY, f64::min);
    Some((peak, floor))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATES: [f64; 4] = [100.0, 250.0, 500.0, 1_000.0];
    const DEADLINE: u64 = 100_000_000; // 100 ms

    #[test]
    fn every_cell_conserves_requests() {
        let rows = run_sweep(&RATES, &[DEADLINE], &[2]).unwrap();
        assert_eq!(rows.len(), RATES.len());
        for r in &rows {
            assert!(r.report.accounted(), "cell at {} req/s leaked a request", r.offered_rps);
            assert!(r.report.goodput_rps <= r.report.throughput_rps + 1e-9);
        }
    }

    #[test]
    fn goodput_plateaus_past_the_knee() {
        let rows = run_sweep(&RATES, &[DEADLINE], &[2]).unwrap();
        let (peak, floor) = knee(&rows, DEADLINE, 2).unwrap();
        assert!(peak > 0.0, "the fleet must do useful work somewhere in the sweep");
        assert!(
            floor >= 0.5 * peak,
            "goodput collapsed past the knee: peak {peak:.1}, floor {floor:.1}"
        );
        // Overload is actually reached at the top rate — otherwise the
        // plateau assertion above is vacuous.
        let top = rows.last().unwrap();
        assert!(
            !top.report.shed.is_empty() || !top.report.expired.is_empty(),
            "highest offered load never overloaded the fleet"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_sweep(&[500.0], &[DEADLINE], &[2]).unwrap();
        let b = run_sweep(&[500.0], &[DEADLINE], &[2]).unwrap();
        assert_eq!(a[0].report.completed, b[0].report.completed);
        assert_eq!(a[0].report.shed, b[0].report.shed);
        assert_eq!(a[0].report.expired, b[0].report.expired);
        assert!((a[0].report.goodput_rps - b[0].report.goodput_rps).abs() < 1e-12);
    }
}
