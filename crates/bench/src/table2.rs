//! Table II — comparison with published FPGA accelerators.

use protea_baselines::table_configs::{table2_rows, Table2Row};
use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig};
use protea_model::OpCount;
use protea_platform::FpgaDevice;

/// One reproduced Table II pairing.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// The row definition (comparator + reported ProTEA numbers).
    pub row: Table2Row,
    /// Our simulated ProTEA latency for the reconstructed config (ms).
    pub sim_latency_ms: f64,
    /// Our simulated GOPS (paper convention).
    pub sim_gops: f64,
    /// Our simulated (GOPS/DSP)×1000.
    pub sim_gops_per_dsp_x1000: f64,
    /// Speedup of the comparator over simulated ProTEA (>1 means the
    /// comparator is faster), from reported comparator latency.
    pub comparator_speedup_over_sim: f64,
    /// The paper's sparsity-adjusted ProTEA latency for this row, using
    /// our simulated dense latency (the `l·(1−s)` arithmetic).
    pub sim_sparsity_adjusted_ms: Option<f64>,
}

/// Run all five pairings.
#[must_use]
pub fn run() -> Vec<Table2Result> {
    let syn = SynthesisConfig::paper_default();
    let mut acc =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let dsps = acc.design().resources.dsps as f64;
    table2_rows()
        .into_iter()
        .map(|row| {
            let rt = RuntimeConfig::from_model(&row.protea_config, &syn)
                .expect("reconstructed configs fit capacity");
            acc.program(rt).expect("register write");
            let lat = acc.timing_report().latency_ms();
            let ops = OpCount::paper_convention(&row.protea_config) as f64;
            let gops = ops / (lat * 1e-3) / 1e9;
            let sparsity = row.comparator.sparsity;
            Table2Result {
                sim_latency_ms: lat,
                sim_gops: gops,
                sim_gops_per_dsp_x1000: gops / dsps * 1000.0,
                comparator_speedup_over_sim: lat / row.comparator.latency_ms,
                sim_sparsity_adjusted_ms: (sparsity > 0.0).then_some(lat * (1.0 - sparsity)),
                row,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_latencies_match_reported_protea_rows() {
        for r in run() {
            let ratio = r.sim_latency_ms / r.row.protea_reported_latency_ms;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "{}: sim {:.3} vs reported {:.3}",
                r.row.comparator.cite,
                r.sim_latency_ms,
                r.row.protea_reported_latency_ms
            );
        }
    }

    #[test]
    fn derived_ratios_reproduce_paper_claims() {
        let rows = run();
        // vs [23]: ProTEA ≈ 2.8× faster (paper's claim, from reported
        // numbers 1.2/0.425; with our simulated latency the ratio stays
        // well above 2×).
        let wojcicki = &rows[1];
        let speedup = wojcicki.row.comparator.latency_ms / wojcicki.sim_latency_ms;
        assert!(speedup > 2.2, "speedup over [23] = {speedup:.2}");
        // vs [28]: faster (sim), and the paper's 1.7× GOPS claim is
        // recoverable from the reported numbers (132 / 75.94). Our
        // op-count convention yields lower absolute GOPS at this shape —
        // EXPERIMENTS.md discusses the gap — so the GOPS claim is
        // checked on the reported column.
        let qi = &rows[3];
        assert!(qi.sim_latency_ms < qi.row.comparator.latency_ms);
        let reported_ratio = qi.row.protea_reported_gops / qi.row.comparator.gops;
        assert!((reported_ratio - 1.74).abs() < 0.05, "reported GOPS ratio {reported_ratio:.2}");
        // EFA-Trans [25] remains faster than ProTEA (paper: 3.5×).
        let efa = &rows[2];
        let efa_adv = efa.sim_latency_ms / efa.row.comparator.latency_ms;
        assert!((2.5..=4.5).contains(&efa_adv), "EFA-Trans advantage = {efa_adv:.2}");
        // [21] with 90 % sparsity is much faster (paper: 14×).
        let peng = &rows[0];
        let peng_adv = peng.sim_latency_ms / peng.row.comparator.latency_ms;
        assert!(peng_adv > 10.0, "[21] advantage = {peng_adv:.1}");
    }

    #[test]
    fn sparsity_adjustment_matches_paper_arithmetic() {
        let rows = run();
        // Paper: at 90 % sparsity ProTEA's 4.48 → 0.448, making [21] only
        // 1.4× faster. Reproduce with our simulated latency.
        let peng = &rows[0];
        let adj = peng.sim_sparsity_adjusted_ms.unwrap();
        assert!((adj - peng.sim_latency_ms * 0.1).abs() < 1e-9);
        let residual_gap = adj / peng.row.comparator.latency_ms;
        assert!((1.0..2.2).contains(&residual_gap), "post-adjust gap = {residual_gap:.2}");
        // FTRANS row: 93 % compression → ProTEA would be faster.
        let ftrans = &rows[4];
        let adj93 = ftrans.sim_sparsity_adjusted_ms.unwrap();
        assert!(adj93 < ftrans.row.comparator.latency_ms, "adjusted ProTEA beats FTRANS");
    }

    #[test]
    fn gops_per_dsp_beats_ftrans() {
        // Paper: ProTEA has ~2× the GOPS/DSP of FTRANS. The reported
        // column gives 22 vs 11; our simulated (stricter op convention)
        // still clears FTRANS's reported 10.6.
        let rows = run();
        let ftrans = &rows[4];
        let reported_ratio =
            ftrans.row.protea_reported_gops_per_dsp / ftrans.row.comparator.gops_per_dsp_x1000();
        assert!((reported_ratio - 2.07).abs() < 0.1, "reported ratio {reported_ratio:.2}");
        assert!(ftrans.sim_gops_per_dsp_x1000 > ftrans.row.comparator.gops_per_dsp_x1000());
    }
}
