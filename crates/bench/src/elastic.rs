//! Elastic-fleet scenario: goodput and per-tenant SLO attainment under
//! runtime card churn.
//!
//! The overload sweep asks what a *fixed* fleet does when asked for too
//! much; this one asks what a *moving* fleet does when its capacity is
//! the thing that changes. The sweep crosses fleet compositions
//! (uniform and heterogeneous device rosters) with churn intensities
//! (seeded [`ChurnPlan`]s of increasing event counts) on one
//! three-tenant request mix — an interactive tenant with a tight
//! deadline, a normal tenant, and a best-effort tenant. The brownout
//! ladder is armed, so when crashes and drains pull live capacity down,
//! the fleet sheds the best-effort class first and the interesting
//! shape is **SLO triage**: interactive attainment should degrade last.
//!
//! Every cell re-checks both halves of the conservation law — fleet
//! level (`completed + shed + expired + failed == submitted`) and per
//! tenant ([`ServeReport::tenants_accounted`]) — and aborts the sweep
//! on a violation rather than printing a corrupt table.

use protea_platform::FpgaDevice;
use protea_serve::{
    AimdConfig, BatchPolicy, BrownoutLadder, ChurnPlan, Fleet, FleetConfig, OverloadConfig,
    PlacementPolicy, ServeError, ServePlan, ServeReport, TenantPolicy, Workload,
};

/// One (composition, churn intensity) measurement.
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// Name of the fleet composition the cell ran on.
    pub composition: &'static str,
    /// Cards in the roster.
    pub cards: usize,
    /// Scripted churn events injected over the horizon.
    pub churn_events: usize,
    /// The cell's full report (goodput, churn tallies, per-tenant SLO).
    pub report: ServeReport,
}

/// Seed for the arrival and churn streams; fixed so every run of the
/// harness reproduces the same tables.
pub const SEED: u64 = 0xE1A5;

/// Requests per cell in the sweep's workloads.
pub const REQUESTS: usize = 192;

/// Poisson arrival rate for every cell (req/s). Just above the ~650
/// inf/s a calm three-card fleet sustains on this mix: high enough
/// that a shrinking fleet actually queues and sheds, low enough that
/// the full fleet nearly clears it and deadlines are meetable.
pub const OFFERED_RPS: f64 = 800.0;

/// Churn horizon: at [`OFFERED_RPS`] the 192-request trace arrives
/// over ~240 ms, so a 150 ms horizon lands churn throughout the bulk
/// of the run rather than only at its start.
pub const HORIZON_NS: u64 = 150_000_000;

/// The fleet compositions the sweep crosses: a uniform baseline, a
/// mixed two-device roster, and a three-way heterogeneous roster.
/// All placement runs capacity-aware so big cards soak proportionally
/// more work.
#[must_use]
pub fn compositions() -> Vec<(&'static str, Vec<FpgaDevice>)> {
    vec![
        ("uniform-u55c", vec![FpgaDevice::alveo_u55c(); 3]),
        (
            "mixed-u55c-u250",
            vec![FpgaDevice::alveo_u55c(), FpgaDevice::alveo_u250(), FpgaDevice::alveo_u55c()],
        ),
        (
            "hetero-u250-u200-u55c",
            vec![FpgaDevice::alveo_u250(), FpgaDevice::alveo_u200(), FpgaDevice::alveo_u55c()],
        ),
    ]
}

/// The three-tenant mix every cell serves: tenant 0 interactive with a
/// 50 ms deadline (a couple of batch windows — tight but meetable on a
/// healthy fleet), tenant 1 normal with a 200 ms deadline, tenant 2
/// best-effort with no deadline (first to brown out).
#[must_use]
pub fn tenant_mix() -> TenantPolicy {
    TenantPolicy::parse("0=interactive@50,1=normal@200,2=best-effort")
        .expect("static tenant spec parses")
}

/// The elastic config every cell runs with: the given roster under
/// capacity-aware placement, the seeded churn plan, the tenant mix,
/// the default brownout ladder, and the same bounded-queue + AIMD
/// overload controls as the overload sweep (shedding needs authority
/// for brownout to act through).
#[must_use]
pub fn standard_config(roster: Vec<FpgaDevice>, churn: ChurnPlan) -> FleetConfig {
    let cards = roster.len();
    FleetConfig {
        cards,
        roster: Some(roster),
        placement: PlacementPolicy::CapacityAware,
        churn: Some(churn),
        tenants: Some(tenant_mix()),
        brownout: Some(BrownoutLadder::default()),
        policy: BatchPolicy { max_batch: 8, max_queue: Some(32), ..BatchPolicy::default() },
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig {
                initial: 16 * cards,
                min: 4,
                max: 32 * cards,
                ..AimdConfig::default()
            }),
            retry_budget: Some(Default::default()),
            hedge: None,
        }),
        ..FleetConfig::default()
    }
}

/// The workload every cell serves: `requests` Poisson arrivals at
/// [`OFFERED_RPS`] with tenants 0/1/2 stamped round-robin. Priorities
/// and deadlines come from the [`tenant_mix`] policy at admission, not
/// from the trace.
#[must_use]
pub fn standard_workload(requests: usize) -> Workload {
    let mut workload = Workload::poisson(requests, OFFERED_RPS, &[(96, 4, 2)], (8, 32), SEED);
    for (i, r) in workload.requests.iter_mut().enumerate() {
        r.tenant = (i % 3) as u32;
    }
    workload
}

/// Cross [`compositions`] with `churn_event_counts`. Each cell derives
/// its churn plan from the same seed (so cells differ only in how many
/// events fire) and serves the same stamped workload.
///
/// # Errors
/// Propagates any [`ServeError`]; also surfaces a broken fleet-level or
/// per-tenant conservation invariant as a serving error so the harness
/// fails loudly rather than printing a corrupt table.
pub fn run_sweep(
    churn_event_counts: &[usize],
    requests: usize,
) -> Result<Vec<ElasticRow>, ServeError> {
    let workload = standard_workload(requests);
    let mut rows = Vec::with_capacity(compositions().len() * churn_event_counts.len());
    for (name, roster) in compositions() {
        for &n in churn_event_counts {
            let cards = roster.len();
            let churn = ChurnPlan::seeded(SEED ^ n as u64, cards, HORIZON_NS, n);
            let fleet = Fleet::try_new(standard_config(roster.clone(), churn))?;
            let report = fleet.run(ServePlan::workload(&workload))?.report;
            if !report.accounted() || !report.tenants_accounted() {
                return Err(ServeError::Core(protea_core::CoreError::Serving(format!(
                    "conservation broken at {name} x {n} churn events: \
                     {} completed + {} shed + {} expired + {} failed != {} submitted \
                     (tenants accounted: {})",
                    report.completed,
                    report.shed.len(),
                    report.expired.len(),
                    report.failed.len(),
                    report.submitted,
                    report.tenants_accounted()
                ))));
            }
            rows.push(ElasticRow { composition: name, cards, churn_events: n, report });
        }
    }
    Ok(rows)
}

/// Serialize the sweep as the committed `BENCH_elastic.json` artifact:
/// one object per cell with goodput, churn tallies, and a per-tenant
/// SLO attainment array.
#[must_use]
pub fn to_json(rows: &[ElasticRow]) -> String {
    let mut s = String::from("{\n  \"seed\": ");
    s.push_str(&format!("{SEED},\n  \"offered_rps\": {OFFERED_RPS:.1},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        let tenants: Vec<String> = r
            .report
            .tenant_slo
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\": {}, \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
                     \"expired\": {}, \"failed\": {}, \"attainment\": {:.4}}}",
                    t.tenant,
                    t.submitted,
                    t.completed,
                    t.shed,
                    t.expired,
                    t.failed,
                    t.attainment()
                )
            })
            .collect();
        s.push_str(&format!(
            "    {{\"composition\": \"{}\", \"cards\": {}, \"churn_events\": {}, \
             \"joins\": {}, \"drains\": {}, \"throughput_rps\": {:.1}, \
             \"goodput_rps\": {:.1}, \"completed\": {}, \"shed\": {}, \"expired\": {}, \
             \"failed\": {}, \"tenants\": [{}]}}{}\n",
            r.composition,
            r.cards,
            r.churn_events,
            r.report.joins,
            r.report.drains,
            r.report.throughput_rps,
            r.report.goodput_rps,
            r.report.completed,
            r.report.shed.len(),
            r.report.expired.len(),
            r.report.failed.len(),
            tenants.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_conserves_requests_per_tenant() {
        let rows = run_sweep(&[0, 6], 64).unwrap();
        assert_eq!(rows.len(), compositions().len() * 2);
        for r in &rows {
            assert!(
                r.report.accounted(),
                "{} x {} leaked a request",
                r.composition,
                r.churn_events
            );
            assert!(
                r.report.tenants_accounted(),
                "{} x {} leaked a request from a tenant ledger",
                r.composition,
                r.churn_events
            );
            assert_eq!(r.report.tenant_slo.len(), 3, "three tenants always submit");
            let per_tenant: usize = r.report.tenant_slo.iter().map(|t| t.submitted).sum();
            assert_eq!(per_tenant, r.report.submitted);
        }
    }

    #[test]
    fn churn_actually_churns_and_the_sweep_is_deterministic() {
        let a = run_sweep(&[6], 64).unwrap();
        let b = run_sweep(&[6], 64).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report, y.report, "{} must replay bit-identically", x.composition);
        }
        assert!(
            a.iter().any(|r| r.report.joins + r.report.drains > 0),
            "a 6-event churn plan must land at least one join or drain somewhere"
        );
    }

    #[test]
    fn json_artifact_carries_per_tenant_attainment() {
        let rows = run_sweep(&[0], 48).unwrap();
        let json = to_json(&rows);
        assert!(json.contains("\"tenants\": ["));
        assert!(json.contains("\"attainment\": "));
        assert!(json.contains("uniform-u55c"));
    }
}
