//! Availability scenario: serving under deterministic fault injection.
//!
//! Extends the serving scenario with the robustness question: how much
//! throughput, tail latency, and availability does a fleet retain when
//! its cards suffer ECC flips, AXI stalls/timeouts, and crashes? The
//! sweep crosses per-transfer fault rates with fleet sizes on one fixed
//! workload and compares every cell against the fault-free run of the
//! same fleet, asserting the zero-drop invariant along the way:
//! `completed + failed == submitted` in every cell.

use protea_core::FaultRates;
use protea_serve::{
    BatchPolicy, FaultConfig, Fleet, FleetConfig, ServeError, ServePlan, ServeReport, Workload,
};

/// One (fault rate, fleet size) measurement.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// Per-transfer fault rate fed to [`FaultRates::scaled`].
    pub fault_rate: f64,
    /// Cards in the fleet.
    pub cards: usize,
    /// The faulted run's report (availability, fault tally, health).
    pub report: ServeReport,
    /// Throughput as a fraction of the same fleet's fault-free run.
    pub throughput_vs_clean: f64,
    /// p99 latency as a multiple of the same fleet's fault-free run.
    pub p99_vs_clean: f64,
}

/// The scenario workload: the serving scenario's Poisson stream, reused
/// so fault-free cells here cross-check the serving sweep's numbers.
#[must_use]
pub fn standard_workload() -> Workload {
    crate::serving::standard_workload()
}

/// Seed for the fault streams; fixed so every run of the harness
/// reproduces the same tables.
pub const SEED: u64 = 0xC4A0;

/// Cross `fault_rates` with `card_counts` over `workload`. Each cell
/// serves the trace under seeded faults and is normalized against the
/// fault-free run of the same fleet size.
///
/// # Errors
/// Propagates any [`ServeError`] from fleet construction or serving;
/// also surfaces a broken conservation invariant (a dropped request) as
/// a [`ServeError::Core`] serving error, so the harness fails loudly
/// rather than printing a corrupt table.
pub fn run_sweep(
    workload: &Workload,
    fault_rates: &[f64],
    card_counts: &[usize],
) -> Result<Vec<AvailabilityRow>, ServeError> {
    let policy = BatchPolicy { max_batch: 8, ..BatchPolicy::default() };
    let mut rows = Vec::with_capacity(fault_rates.len() * card_counts.len());
    for &cards in card_counts {
        let base = FleetConfig { cards, policy: policy.clone(), ..FleetConfig::default() };
        let clean = Fleet::try_new(base.clone())?.run(ServePlan::workload(workload))?.report;
        for &rate in fault_rates {
            let faults =
                FaultConfig { rates: FaultRates::scaled(rate), ..FaultConfig::seeded(SEED, rate) };
            let report = Fleet::try_new(FleetConfig { faults: Some(faults), ..base.clone() })?
                .run(ServePlan::workload(workload))?
                .report;
            let accounted = report.completed + report.failed.len();
            if accounted != report.submitted {
                return Err(ServeError::Core(protea_core::CoreError::Serving(format!(
                    "dropped request at rate {rate} x {cards} cards: \
                     {accounted} accounted vs {} submitted",
                    report.submitted
                ))));
            }
            rows.push(AvailabilityRow {
                fault_rate: rate,
                cards,
                throughput_vs_clean: report.throughput_rps / clean.throughput_rps,
                p99_vs_clean: report.latency_ms.p99 / clean.latency_ms.p99.max(f64::MIN_POSITIVE),
                report,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> Workload {
        Workload::poisson(32, 60_000.0, &[(96, 4, 2)], (8, 32), 2024)
    }

    #[test]
    fn zero_rate_cell_is_the_clean_run() {
        let w = small_workload();
        let rows = run_sweep(&w, &[0.0], &[2]).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.report.completed, w.requests.len());
        assert!(r.report.failed.is_empty());
        assert!((r.throughput_vs_clean - 1.0).abs() < 1e-12);
        assert!((r.p99_vs_clean - 1.0).abs() < 1e-12);
        assert!((r.report.availability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nothing_dropped_anywhere_in_the_grid() {
        let w = small_workload();
        let rows = run_sweep(&w, &[0.0, 0.02, 0.08], &[1, 2]).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(
                r.report.completed + r.report.failed.len(),
                w.requests.len(),
                "rate {} x {} cards dropped a request",
                r.fault_rate,
                r.cards
            );
            assert!((0.0..=1.0).contains(&r.report.availability));
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let w = small_workload();
        let a = run_sweep(&w, &[0.05], &[2]).unwrap();
        let b = run_sweep(&w, &[0.05], &[2]).unwrap();
        assert_eq!(a[0].report.completed, b[0].report.completed);
        assert_eq!(a[0].report.failed, b[0].report.failed);
        assert_eq!(a[0].report.faults, b[0].report.faults);
        assert!((a[0].report.throughput_rps - b[0].report.throughput_rps).abs() < 1e-12);
    }
}
