//! Silent-data-corruption sweep: detection coverage and goodput
//! overhead across injection rates and scrub intervals (extension).
//!
//! The availability sweep measures *loud* faults — ECC traps, stalls,
//! crashes the driver can see. This one measures the faults the driver
//! cannot see: seeded bit flips into weight SRAM and activation
//! datapaths that complete "successfully" and serve a wrong answer.
//! The sweep crosses SDC hit rates with defense postures on one fixed
//! workload:
//!
//! * **clean** — no SDC machinery at all: the goodput yardstick.
//! * **exposed** — injection armed, no detector: every hit is served,
//!   `sdc_missed` counts the silent wrongs.
//! * **defended** — ABFT epilogue checksums plus a periodic
//!   weight-digest scrub at each interval in the grid: hits resolve as
//!   detected and the recovery ladder (re-execute, quarantine,
//!   reprogram) restores service.
//!
//! Each cell reports detection coverage (`detected / (detected +
//! missed)`) and goodput overhead relative to the clean baseline; the
//! `--check` gate in the binary holds the defended cells to the
//! headline claim: ≥ 99% coverage at ≤ 5% goodput overhead.

use protea_serve::{FaultConfig, Fleet, FleetConfig, SdcConfig, ServeError, ServePlan, Workload};

/// One (rate, posture) measurement.
#[derive(Debug, Clone)]
pub struct IntegrityRow {
    /// Defense posture of the cell: `clean`, `exposed`, or `defended`.
    pub posture: &'static str,
    /// Per-batch silent-corruption probability.
    pub sdc_rate: f64,
    /// Scrub interval in ns (`None` when no scrub is armed).
    pub scrub_every_ns: Option<u64>,
    /// Whether ABFT epilogue checksums ran.
    pub abft: bool,
    /// The cell's full report (integrity counters included).
    pub report: protea_serve::ServeReport,
    /// Goodput overhead vs the clean baseline: `1 - good/clean`
    /// (clamped at zero — scheduling noise can favor the defended run).
    pub overhead: f64,
}

impl IntegrityRow {
    /// Detection coverage of the cell's resolved hits.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.report.sdc_coverage()
    }
}

/// Seed for the arrival and corruption streams; fixed so every run of
/// the harness reproduces the same table.
pub const SEED: u64 = 0x5DC1;

/// Requests per cell.
pub const REQUESTS: usize = 256;

/// Poisson arrival rate (req/s). Well under the ~400 inf/s two cards
/// sustain on this mix, so the fleet has headroom: re-executed batches
/// and quarantine reloads absorb into idle time and the overhead
/// column isolates the *defense's* cost, not a saturation artifact.
pub const OFFERED_RPS: f64 = 250.0;

/// The injection rates the sweep crosses (probability an executed
/// batch takes a hit). High enough that 256 requests yield a
/// statistically meaningful hit count in every injected cell, low
/// enough that the quarantine ladder's health debits don't retire the
/// whole fleet mid-run (a card that corrupts 20%+ of its batches *is*
/// escalated to dead, by design — but that regime measures the health
/// ladder, not detection coverage).
pub const RATES: [f64; 3] = [0.02, 0.05, 0.1];

/// The scrub intervals the defended cells cross (ns).
pub const SCRUBS: [u64; 2] = [500_000, 2_000_000];

/// The workload every cell serves: two capacity classes so the
/// load-time digest rung participates alongside the periodic scrub.
#[must_use]
pub fn standard_workload(requests: usize) -> Workload {
    Workload::poisson(requests, OFFERED_RPS, &[(96, 4, 2), (64, 4, 1)], (8, 32), SEED)
}

/// The fleet every cell runs: two cards under a zero-rate loud-fault
/// config, so *every* cell (clean included) takes the managed dispatch
/// path and the goodput comparison is apples to apples.
fn fleet(sdc: Option<SdcConfig>) -> Result<Fleet, ServeError> {
    Fleet::try_new(FleetConfig {
        cards: 2,
        faults: Some(FaultConfig::seeded(SEED, 0.0)),
        sdc,
        ..FleetConfig::default()
    })
}

/// Cross [`RATES`] with the defense postures. Every cell serves the
/// same workload; cells differ only in their SDC knobs.
///
/// # Errors
/// Propagates any [`ServeError`]; a cell that breaks the conservation
/// law aborts the sweep rather than printing a corrupt table.
pub fn run_sweep(requests: usize) -> Result<Vec<IntegrityRow>, ServeError> {
    let workload = standard_workload(requests);
    let mut rows = Vec::new();
    let cell = |sdc: Option<SdcConfig>,
                posture: &'static str,
                rate: f64,
                scrub: Option<u64>,
                abft: bool,
                clean_goodput: Option<f64>|
     -> Result<IntegrityRow, ServeError> {
        let report = fleet(sdc)?.run(ServePlan::workload(&workload))?.report;
        if !report.accounted() {
            return Err(ServeError::Core(protea_core::CoreError::Serving(format!(
                "conservation broken at {posture} rate {rate}: {report:?}"
            ))));
        }
        let overhead =
            clean_goodput.map_or(0.0, |clean| (1.0 - report.goodput_rps / clean).max(0.0));
        Ok(IntegrityRow { posture, sdc_rate: rate, scrub_every_ns: scrub, abft, report, overhead })
    };
    let clean = cell(None, "clean", 0.0, None, false, None)?;
    let clean_goodput = clean.report.goodput_rps;
    rows.push(clean);
    // The defense's own price, injected-hit-free: ABFT tax + scrubs.
    for scrub in SCRUBS {
        rows.push(cell(
            Some(SdcConfig {
                seed: SEED,
                abft: true,
                scrub_every_ns: Some(scrub),
                ..SdcConfig::default()
            }),
            "defended",
            0.0,
            Some(scrub),
            true,
            Some(clean_goodput),
        )?);
    }
    for rate in RATES {
        rows.push(cell(
            Some(SdcConfig { seed: SEED, rate, ..SdcConfig::default() }),
            "exposed",
            rate,
            None,
            false,
            Some(clean_goodput),
        )?);
        for scrub in SCRUBS {
            rows.push(cell(
                Some(SdcConfig::defended(SEED, rate, scrub)),
                "defended",
                rate,
                Some(scrub),
                true,
                Some(clean_goodput),
            )?);
        }
    }
    Ok(rows)
}

/// Serialize the sweep as the committed `BENCH_integrity.json`
/// artifact: one object per cell with the integrity counters, coverage,
/// and overhead.
#[must_use]
pub fn to_json(rows: &[IntegrityRow]) -> String {
    let mut s = String::from("{\n  \"seed\": ");
    s.push_str(&format!("{SEED},\n  \"offered_rps\": {OFFERED_RPS:.1},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"posture\": \"{}\", \"sdc_rate\": {:.2}, \"scrub_every_ns\": {}, \
             \"abft\": {}, \"injected\": {}, \"detected\": {}, \"missed\": {}, \
             \"re_execs\": {}, \"scrubs\": {}, \"coverage\": {:.4}, \
             \"goodput_rps\": {:.1}, \"overhead\": {:.4}, \"completed\": {}, \
             \"failed\": {}}}{}\n",
            r.posture,
            r.sdc_rate,
            r.scrub_every_ns.map_or_else(|| "null".into(), |v| v.to_string()),
            r.abft,
            r.report.sdc_injected,
            r.report.sdc_detected,
            r.report.sdc_missed,
            r.report.re_execs,
            r.report.scrubs,
            r.coverage(),
            r.report.goodput_rps,
            r.overhead,
            r.report.completed,
            r.report.failed.len(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defended_cells_hold_the_headline_claim() {
        let rows = run_sweep(96).unwrap();
        for r in rows.iter().filter(|r| r.posture == "defended" && r.sdc_rate > 0.0) {
            assert!(
                r.report.sdc_injected > 0,
                "rate {} must actually strike: {:?}",
                r.sdc_rate,
                r.report
            );
            assert!(
                r.coverage() >= 0.99,
                "defended coverage at rate {} scrub {:?}: {} ({:?})",
                r.sdc_rate,
                r.scrub_every_ns,
                r.coverage(),
                r.report
            );
        }
        let exposed_missed: u64 =
            rows.iter().filter(|r| r.posture == "exposed").map(|r| r.report.sdc_missed).sum();
        assert!(exposed_missed > 0, "undefended cells must serve silent wrongs");
    }

    #[test]
    fn sweep_is_deterministic_and_the_artifact_carries_coverage() {
        let a = run_sweep(64).unwrap();
        let b = run_sweep(64).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report, y.report, "{} rate {} must replay", x.posture, x.sdc_rate);
        }
        let json = to_json(&a);
        assert!(json.contains("\"coverage\": "));
        assert!(json.contains("\"posture\": \"defended\""));
        assert!(json.contains("\"posture\": \"exposed\""));
    }
}
