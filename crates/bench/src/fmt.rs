//! Minimal table rendering for the harness binaries.

/// Render a table: header row + data rows, columns padded to content.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_owned: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_owned, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format a float with sensible precision for latency/GOPS cells.
#[must_use]
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() < 0.01 {
        format!("{v:.5}")
    } else if v.abs() < 10.0 {
        format!("{v:.2}")
    } else if v.abs() < 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header, separator, two data rows
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains('a'));
        assert!(lines[3].contains("longer"));
        // all lines equal width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn num_precision_tiers() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.0017), "0.00170");
        assert_eq!(num(4.48), "4.48");
        assert_eq!(num(279.3), "279.3");
        assert_eq!(num(9124.0), "9124");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
