//! # protea-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation; each returns
//! structured results (so the integration tests can assert the claims)
//! and the `bin/` wrappers print them in the paper's layout:
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Table I (runtime programmability, tests 1–9) | [`table1`] | `table1` |
//! | Table II (vs FPGA accelerators)              | [`table2`] | `table2` |
//! | Table III (vs CPUs/GPUs)                     | [`table3`] | `table3` |
//! | Fig. 7 (tile-size sweep)                     | [`fig7`]   | `fig7`   |
//! | Design-choice ablations (DESIGN.md §4)       | [`ablation`] | `ablations` |
//! | GPU batch-crossover analysis (extension)     | [`crossover`] | `crossover` |
//! | Batched multi-card serving (extension)       | [`serving`] | `serving` |
//! | Availability under fault injection (extension) | [`availability`] | `availability` |
//! | Goodput knee under overload (extension)      | [`overload`] | `overload` |
//! | Elastic fleets under churn (extension)       | [`elastic`] | `elastic` |
//! | SDC defense: coverage vs overhead (extension) | [`integrity`] | `integrity` |
//! | Fast-backend kernels (extension)             | [`kernels`] | `kernels` |
//! | Everything above in sequence                 | —          | `repro_all` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod availability;
pub mod crossover;
pub mod decode;
pub mod elastic;
pub mod fig7;
pub mod fmt;
pub mod integrity;
pub mod kernels;
pub mod overload;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod table3;
