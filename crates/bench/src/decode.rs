//! Decode-serving scenario: tokens/s scaling with decode batch width.
//!
//! The serving sweep measures encoder request throughput; this one
//! measures *generation* throughput. Each cell starts `batch`
//! same-shape sessions at time zero on a single card, so the scheduler
//! forms one decode batch of exactly that width, and the fleet runs it
//! to completion: one shared prefill, then `steps` token rounds with
//! the KV cache resident on the card. Because decode is memory-bound
//! per step while the weight-stationary card amortizes its per-round
//! cost across the batch, tokens/s should scale strongly with width —
//! the `--check` gate demands the widest batch clear at least twice
//! the single-stream rate.
//!
//! Every cell re-checks token conservation (`emitted + shed ==
//! requested`) and aborts the sweep on a violation rather than
//! printing a corrupt table.

use protea_serve::{
    BatchPolicy, Fleet, FleetConfig, Priority, ServeError, ServePlan, ServeReport, ServeRequest,
    Workload,
};

/// One decode-batch-width measurement.
#[derive(Debug, Clone)]
pub struct DecodeRow {
    /// Sessions decoding together in the one batch.
    pub batch: usize,
    /// The cell's full report (tokens/s, prefill/decode split).
    pub report: ServeReport,
}

/// Seed stamped into the JSON artifact (the workload itself is fully
/// deterministic — same-shape sessions at time zero — so the seed only
/// documents provenance).
pub const SEED: u64 = 0xDEC0;

/// Prompt length every session prefills (pads to the 16-token bucket).
pub const PROMPT_LEN: usize = 16;

/// Tokens each session generates after its prefill.
pub const STEPS: u32 = 64;

/// The batch widths the sweep crosses.
pub const WIDTHS: [usize; 3] = [1, 4, 8];

/// `batch` identical generation sessions arriving at time zero: same
/// paper-scale shape (d=768, 8 heads — wide enough that a single
/// row's weight traffic dominates its compute, the regime where
/// batching pays), same prompt bucket, so the scheduler forms one
/// full batch.
#[must_use]
pub fn session_workload(batch: usize, steps: u32) -> Workload {
    let requests = (0..batch as u64)
        .map(|i| ServeRequest {
            id: i,
            arrival_ns: 0,
            d_model: 768,
            heads: 8,
            layers: 2,
            seq_len: PROMPT_LEN,
            deadline_ns: None,
            priority: Priority::Normal,
            tenant: 0,
            decode_steps: steps,
            token_deadline_ns: None,
        })
        .collect();
    Workload { requests }
}

/// The one-card config a cell runs with: `max_batch` pinned to the
/// cell's width so the batch is exactly that wide, everything else at
/// defaults.
#[must_use]
pub fn standard_config(batch: usize) -> FleetConfig {
    FleetConfig {
        cards: 1,
        policy: BatchPolicy { max_batch: batch, ..BatchPolicy::default() },
        ..FleetConfig::default()
    }
}

/// Run one cell per width in `widths`, each generating `steps` tokens
/// per session.
///
/// # Errors
/// Propagates any [`ServeError`]; also surfaces a broken token
/// conservation invariant or a short emission as a serving error so
/// the harness fails loudly rather than printing a corrupt table.
pub fn run_sweep(widths: &[usize], steps: u32) -> Result<Vec<DecodeRow>, ServeError> {
    let mut rows = Vec::with_capacity(widths.len());
    for &batch in widths {
        let workload = session_workload(batch, steps);
        let fleet = Fleet::try_new(standard_config(batch))?;
        let report = fleet.run(ServePlan::workload(&workload))?.report;
        let expected = (batch as u64) * u64::from(steps);
        if !report.tokens_accounted() || report.tokens_emitted != expected {
            return Err(ServeError::Core(protea_core::CoreError::Serving(format!(
                "token conservation broken at batch {batch}: {} emitted + {} shed != {} \
                 requested (expected {expected} emitted)",
                report.tokens_emitted, report.tokens_shed, report.tokens_requested
            ))));
        }
        rows.push(DecodeRow { batch, report });
    }
    Ok(rows)
}

/// Batched tokens/s over single-stream tokens/s, for a widths row
/// relative to the sweep's first (narrowest) row.
#[must_use]
pub fn speedup_vs_single(rows: &[DecodeRow], row: &DecodeRow) -> f64 {
    let single = rows.first().map_or(0.0, |r| r.report.tokens_per_s);
    if single <= 0.0 {
        0.0
    } else {
        row.report.tokens_per_s / single
    }
}

/// Serialize the sweep as the committed `BENCH_decode.json` artifact:
/// one object per width with tokens/s and the prefill/decode latency
/// split.
#[must_use]
pub fn to_json(rows: &[DecodeRow], steps: u32) -> String {
    let mut s = format!(
        "{{\n  \"seed\": {SEED},\n  \"prompt_len\": {PROMPT_LEN},\n  \"decode_steps\": \
         {steps},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"batch\": {}, \"tokens_emitted\": {}, \"tokens_per_s\": {:.1}, \
             \"prefill_ms\": {:.4}, \"decode_ms_per_token\": {:.4}, \
             \"speedup_vs_single\": {:.2}}}{}\n",
            r.batch,
            r.report.tokens_emitted,
            r.report.tokens_per_s,
            r.report.prefill_ms_mean,
            r.report.decode_ms_per_token,
            speedup_vs_single(rows, r),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_emits_and_conserves() {
        let rows = run_sweep(&WIDTHS, 8).unwrap();
        assert_eq!(rows.len(), WIDTHS.len());
        for r in &rows {
            assert!(r.report.tokens_accounted());
            assert_eq!(r.report.tokens_emitted, (r.batch as u64) * 8);
            assert!(r.report.tokens_per_s > 0.0);
            assert!(r.report.prefill_ms_mean > 0.0);
            assert!(r.report.decode_ms_per_token > 0.0);
        }
    }

    #[test]
    fn batching_amortizes_decode_cost() {
        let rows = run_sweep(&WIDTHS, 16).unwrap();
        let widest = rows.last().unwrap();
        assert!(
            speedup_vs_single(&rows, widest) >= 2.0,
            "batch {} tokens/s must be at least twice single-stream: {:.1} vs {:.1}",
            widest.batch,
            widest.report.tokens_per_s,
            rows[0].report.tokens_per_s
        );
    }
}
