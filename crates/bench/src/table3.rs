//! Table III — cross-platform comparison (CPUs and GPUs).

use protea_baselines::roofline::PlatformModel;
use protea_baselines::table_configs::{table3_rows, Table3Row};
use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig};
use protea_model::OpCount;
use protea_platform::FpgaDevice;

/// One baseline entry within a model group.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Platform name.
    pub platform: &'static str,
    /// Clock in GHz as the paper lists it.
    pub freq_ghz: f64,
    /// Published latency (ms).
    pub latency_ms: f64,
    /// Speedup over the base row (the paper's "Speed Up" column).
    pub speedup_vs_base: f64,
    /// Compute efficiency this published latency implies on a roofline
    /// model of the platform (flags framework-bound baselines).
    pub implied_efficiency: Option<f64>,
}

/// One reproduced Table III group (model #1–#4).
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// The row definition.
    pub row: Table3Row,
    /// The baselines with recomputed speedups.
    pub baselines: Vec<BaselineEntry>,
    /// Simulated ProTEA latency (ms) at 0.2 GHz-class clock.
    pub sim_latency_ms: f64,
    /// ProTEA speedup over the base row (sim).
    pub sim_speedup_vs_base: f64,
    /// ProTEA speedup over the base row using the paper's reported
    /// ProTEA latency (the published column).
    pub reported_speedup_vs_base: f64,
}

fn platform_model(name: &str) -> Option<PlatformModel> {
    PlatformModel::all().into_iter().find(|p| p.name == name)
}

/// Run all four model groups.
#[must_use]
pub fn run() -> Vec<Table3Result> {
    let syn = SynthesisConfig::paper_default();
    let mut acc =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    table3_rows()
        .into_iter()
        .map(|row| {
            let rt = RuntimeConfig::from_model(&row.config, &syn).expect("config fits");
            acc.program(rt).expect("register write");
            let sim = acc.timing_report().latency_ms();
            let base = row
                .baselines
                .iter()
                .find(|b| b.is_base)
                .expect("each model has a base row")
                .latency_ms;
            let ops = OpCount::paper_convention(&row.config);
            let baselines = row
                .baselines
                .iter()
                .map(|b| BaselineEntry {
                    platform: b.platform,
                    freq_ghz: b.freq_ghz,
                    latency_ms: b.latency_ms,
                    speedup_vs_base: base / b.latency_ms,
                    implied_efficiency: platform_model(b.platform)
                        .map(|p| p.implied_efficiency(ops, b.latency_ms)),
                })
                .collect();
            Table3Result {
                sim_latency_ms: sim,
                sim_speedup_vs_base: base / sim,
                reported_speedup_vs_base: base / row.protea_reported_latency_ms,
                row,
                baselines,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_speedup_columns_reproduce() {
        let rows = run();
        // Model #2: 2.5× faster than the Titan XP (the abstract's claim).
        assert!((rows[1].reported_speedup_vs_base - 2.5).abs() < 0.05);
        assert!(
            rows[1].sim_speedup_vs_base > 2.0,
            "sim speedup {:.2}",
            rows[1].sim_speedup_vs_base
        );
        // Model #4: 16× faster than the Titan XP.
        assert!((rows[3].reported_speedup_vs_base - 16.1).abs() < 0.3);
        assert!(rows[3].sim_speedup_vs_base > 13.0);
        // Model #1: ProTEA *slower* than the i5 CPU (0.79×).
        assert!((rows[0].reported_speedup_vs_base - 0.79).abs() < 0.02);
        assert!(rows[0].sim_speedup_vs_base < 1.0);
        // Model #3: slower than both baselines (0.89× vs CPU).
        assert!(rows[2].sim_speedup_vs_base < 1.0);
    }

    #[test]
    fn jetson_column_matches_paper() {
        let rows = run();
        let jetson = rows[0].baselines.iter().find(|b| b.platform.contains("Jetson")).unwrap();
        assert!((jetson.speedup_vs_base - 5.26).abs() < 0.05, "paper reports 5.3×");
    }

    #[test]
    fn slow_gpu_baselines_are_flagged_as_framework_bound() {
        let rows = run();
        // Model #4's 147 ms Titan XP row implies ~0.01 % of peak.
        let titan = rows[3].baselines.iter().find(|b| b.platform.contains("Titan")).unwrap();
        assert!(titan.implied_efficiency.unwrap() < 0.001);
    }

    #[test]
    fn every_group_has_a_base() {
        for r in run() {
            assert!(r.baselines.iter().any(|b| (b.speedup_vs_base - 1.0).abs() < 1e-9));
        }
    }
}
