//! Regenerates Table II: comparison with published FPGA accelerators.

use protea_bench::fmt::{num, render_table};
use protea_bench::table2;

fn main() {
    let rows = table2::run();
    println!("TABLE II — COMPARISON WITH FPGA ACCELERATORS");
    println!("(comparator rows are published numbers; ProTEA rows are our simulation,");
    println!(" with the paper's reported ProTEA values alongside)\n");
    let header = [
        "Accelerator",
        "Precision",
        "FPGA",
        "DSP",
        "Latency (ms)",
        "GOPS",
        "(GOPS/DSP)x1000",
        "Method",
        "Sparsity",
    ];
    let mut body = Vec::new();
    for r in &rows {
        let c = &r.row.comparator;
        body.push(vec![
            c.cite.to_string(),
            c.precision.to_string(),
            c.platform.to_string(),
            c.dsps.to_string(),
            num(c.latency_ms),
            num(c.gops),
            num(c.gops_per_dsp_x1000()),
            c.method.to_string(),
            format!("{:.0}%", c.sparsity * 100.0),
        ]);
        body.push(vec![
            format!(
                "ProTEA sim (paper: {} / {})",
                num(r.row.protea_reported_latency_ms),
                num(r.row.protea_reported_gops)
            ),
            "Fix8".into(),
            "Alveo U55C".into(),
            "3612".into(),
            num(r.sim_latency_ms),
            num(r.sim_gops),
            num(r.sim_gops_per_dsp_x1000),
            "HLS (sim)".into(),
            "0%".into(),
        ]);
    }
    println!("{}", render_table(&header, &body));

    println!("\nDerived claims:");
    for r in &rows {
        let c = &r.row.comparator;
        let speed = c.latency_ms / r.sim_latency_ms;
        if speed >= 1.0 {
            println!("  ProTEA is {speed:.1}x faster than {} {}", c.cite, c.name);
        } else {
            println!("  {} {} is {:.1}x faster than ProTEA", c.cite, c.name, 1.0 / speed);
        }
        if let Some(adj) = r.sim_sparsity_adjusted_ms {
            println!(
                "    at {}'s {:.0}% sparsity, ProTEA's dense {} ms would become {} ms ({})",
                c.cite,
                c.sparsity * 100.0,
                num(r.sim_latency_ms),
                num(adj),
                if adj < c.latency_ms { "faster than the comparator" } else { "still slower" }
            );
        }
    }
}
