//! Batched multi-card serving scenario (extension beyond the paper).

use protea_bench::fmt::render_table;
use protea_bench::serving;

fn main() {
    println!("SERVING — batched fleet vs serial single-card replay\n");
    let workload = serving::standard_workload();
    println!(
        "workload: {} Poisson requests (d=96, 4 heads, 2 layers, SL 8-32), {:.1} ms of arrivals\n",
        workload.requests.len(),
        workload.span_s() * 1e3
    );
    let serial = match serving::serial_baseline(&workload) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let rows = match serving::run_sweep(&workload, &[1, 2, 4, 8]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut body = vec![vec![
        "serial (1 card, batch=1)".to_string(),
        format!("{:.1}", serial.throughput_rps),
        format!("{:.1}", serial.gops),
        format!("{:.2}", serial.latency_ms.p50),
        format!("{:.2}", serial.latency_ms.p99),
        "1.00x".to_string(),
    ]];
    for r in &rows {
        body.push(vec![
            format!("batched, {} card(s)", r.cards),
            format!("{:.1}", r.report.throughput_rps),
            format!("{:.1}", r.report.gops),
            format!("{:.2}", r.report.latency_ms.p50),
            format!("{:.2}", r.report.latency_ms.p99),
            format!("{:.2}x", r.speedup_vs_serial),
        ]);
    }
    println!(
        "{}",
        render_table(&["Configuration", "inf/s", "GOPS", "p50 (ms)", "p99 (ms)", "Speedup"], &body)
    );
    if let Some(best) = rows.last() {
        println!(
            "\nbatching detail at {} cards: {} batches, mean size {:.2}, {} weight reloads",
            best.cards, best.report.batches, best.report.mean_batch, best.report.reprograms
        );
    }
}
