//! Fast-backend kernel benchmark: packed GEMM vs reference (per
//! microkernel ISA), encoder forward fast vs reference, and the fleet
//! timing memo on vs off. Writes `BENCH_kernels.json` next to the
//! working directory.
//!
//! Flags: `--smoke` shrinks iterations for CI; `--check` additionally
//! exits nonzero unless every gate holds on the 12-head/768-dim gate
//! shape (`128×768×768`):
//!
//! * dispatched kernel ≥ 8× the tiled reference when an explicit SIMD
//!   variant (AVX2/AVX-512/NEON) was selected, ≥ 3× otherwise;
//! * the portable fallback kernel ≥ 3× regardless of dispatch — the
//!   floor a runner without SIMD support must still clear;
//! * the panel-parallel entry point no slower than the serial kernel
//!   (within a 10% + 50µs noise allowance) on *every* sweep shape;
//! * the timing memo wins the serving sweep.

use protea_bench::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let (iters, requests) = if smoke { (3, 600) } else { (5, 2000) };

    println!("KERNELS — fast functional backend vs reference\n");
    let report = kernels::run(iters, requests);
    println!("{}", report.render());

    let json = report.to_json();
    let path = "BENCH_kernels.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    if check {
        let gate = report.gate();
        let gate_need = if report.simd_dispatched() { 8.0 } else { 3.0 };
        let fallback = report.fallback_gate();
        let memo = report.fleet.speedup;
        let regressions = report.parallel_regressions(0.10);
        println!(
            "\ncheck: gate ({} vs tiled @128x768x768) = {gate:.2}x (need >= {gate_need}), \
             fallback = {fallback:.2}x (need >= 3), memo sweep = {memo:.2}x (need > 1)",
            report.kernel
        );
        if gate < gate_need {
            eprintln!("FAIL: dispatched kernel below {gate_need}x on the gate shape");
            std::process::exit(1);
        }
        if fallback < 3.0 {
            eprintln!("FAIL: portable fallback kernel below 3x on the gate shape");
            std::process::exit(1);
        }
        if !regressions.is_empty() {
            eprintln!(
                "FAIL: panel-parallel GEMM slower than serial on: {}",
                regressions.join(", ")
            );
            std::process::exit(1);
        }
        if memo <= 1.0 {
            eprintln!("FAIL: timing memo does not speed up the serving sweep");
            std::process::exit(1);
        }
        println!("check passed");
    }
}
