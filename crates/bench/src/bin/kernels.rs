//! Fast-backend kernel benchmark: packed GEMM vs reference, encoder
//! forward fast vs reference, and the fleet timing memo on vs off.
//! Writes `BENCH_kernels.json` next to the working directory.
//!
//! Flags: `--smoke` shrinks iterations for CI; `--check` additionally
//! exits nonzero unless the packed kernel is ≥3× the reference on the
//! 12-head/768-dim gate shape and the memo wins the serving sweep.

use protea_bench::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let (iters, requests) = if smoke { (3, 600) } else { (5, 2000) };

    println!("KERNELS — fast functional backend vs reference\n");
    let report = kernels::run(iters, requests);
    println!("{}", report.render());

    let json = report.to_json();
    let path = "BENCH_kernels.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    if check {
        let gate = report.gate();
        let memo = report.fleet.speedup;
        println!(
            "\ncheck: gate (packed vs tiled @128x768x768) = {gate:.2}x (need >= 3), \
             memo sweep = {memo:.2}x (need > 1)"
        );
        if gate < 3.0 {
            eprintln!("FAIL: packed kernel below 3x on the gate shape");
            std::process::exit(1);
        }
        if memo <= 1.0 {
            eprintln!("FAIL: timing memo does not speed up the serving sweep");
            std::process::exit(1);
        }
        println!("check passed");
    }
}
