//! Ablation studies of the paper's design choices.

use protea_bench::ablation;
use protea_bench::fmt::{num, render_table};
use protea_model::EncoderConfig;

fn main() {
    println!("ABLATION 1 — TILING (why large matrices must be tiled)\n");
    let rows = ablation::tiling();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} x {}", r.tiles.0, r.tiles.1),
                r.resources.dsps.to_string(),
                r.resources.luts.to_string(),
                r.resources.bram18.to_string(),
                if r.feasible { "yes".into() } else { "NO".into() },
                r.latency_ms.map_or("-".into(), num),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Tiles (MHA x FFN)", "DSP", "LUT", "BRAM18", "Fits U55C", "Latency (ms)"],
            &body
        )
    );

    println!("\nABLATION 2 — LOAD/COMPUTE OVERLAP (double buffering)\n");
    let mut body = Vec::new();
    for cfg in [
        EncoderConfig::paper_test1(),
        EncoderConfig::new(768, 8, 12, 32),
        EncoderConfig::new(256, 8, 12, 64),
    ] {
        let (with, without) = ablation::overlap(&cfg);
        body.push(vec![
            format!("d={}, SL={}", cfg.d_model, cfg.seq_len),
            num(with),
            num(without),
            format!("{:.1}%", (without - with) / without * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["Workload", "Overlapped (ms)", "Serialized (ms)", "Saving"], &body)
    );

    println!("\nABLATION 3 — PARALLEL HEAD ENGINES (vs a shared engine, Lu et al. [18])\n");
    let rows = ablation::heads();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.heads.to_string(), r.dsps.to_string(), num(r.latency_ms)])
        .collect();
    println!("{}", render_table(&["Head engines", "DSP", "Latency (ms)"], &body));

    println!("\nABLATION 4 — INITIATION INTERVALS (paper-calibrated vs ideal II=1)\n");
    let (paper, ideal) = ablation::initiation_intervals();
    println!("  paper-calibrated timing: {} ms", num(paper));
    println!("  idealized (II=1, shallow pipelines): {} ms ({:.2}x)", num(ideal), paper / ideal);

    println!("\nABLATION 5 — HBM CHANNEL SHARING (8 head DMAs, one QKV tile)\n");
    let (dedicated, shared) = ablation::channel_sharing();
    println!("  dedicated channel per head: {dedicated} cycles/tile");
    println!(
        "  one shared channel (round-robin): {shared} cycles/tile ({:.1}x)",
        shared as f64 / dedicated as f64
    );

    println!("\nABLATION 6 — WEIGHT-STATIONARY BATCHING (d=768, SL=32, 12 layers)\n");
    let rows = ablation::batching();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(b, ms)| {
            vec![b.to_string(), num(*ms), format!("{:.2}%", (1.0 - ms / rows[0].1) * 100.0)]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Batch", "Per-sequence latency (ms)", "Saving vs batch=1"], &body)
    );

    println!("\nABLATION 7 — DATA BIT WIDTH (the paper's 'easily modified' knob)\n");
    let rows = ablation::bitwidth();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(bits, bram, luts, lat, feas)| {
            vec![
                format!("{bits}-bit fixed"),
                bram.to_string(),
                luts.to_string(),
                lat.map_or("-".into(), num),
                if *feas { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Precision", "BRAM18", "LUTRAM LUTs", "Latency (ms)", "Fits U55C"], &body)
    );

    println!("\nABLATION 8 — WHAT SPARSITY SUPPORT WOULD BUY (90% target, FFN stages)\n");
    let rows = ablation::sparsity_exploitation(0.9);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, s, tile, bal)| {
            vec![
                (*name).to_string(),
                format!("{:.0}%", s * 100.0),
                format!("{:.1}%", tile * 100.0),
                format!("{:.1}%", bal * 100.0),
                "90.0%".into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Pruning scheme",
                "Sparsity",
                "Tile-skip saving",
                "Balanced-HW saving",
                "Paper arithmetic"
            ],
            &body
        )
    );

    println!("\nENERGY (modelled power envelopes; see baselines::energy)\n");
    use protea_baselines::PowerModel;
    let entries = [
        (PowerModel::protea_u55c(), 0.45, "model #2"),
        (PowerModel::titan_xp_smallbatch(), 1.062, "model #2"),
        (PowerModel::protea_u55c(), 4.72, "model #1"),
        (PowerModel::jetson_tx2(), 0.673, "model #1"),
        (PowerModel::i5_5257u(), 3.54, "model #1"),
    ];
    let body: Vec<Vec<String>> = entries
        .iter()
        .map(|(p, lat, m)| {
            vec![
                p.name.to_string(),
                m.to_string(),
                num(*lat),
                format!("{:.1}", p.average_watts()),
                format!("{:.1}", p.energy_mj(*lat)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Platform", "Workload", "Latency (ms)", "Avg power (W)", "Energy (mJ)"],
            &body
        )
    );
}
