//! Streaming serving soak: millions of requests through an 8-card fleet
//! in O(1) memory.
//!
//! The eager path materializes the whole workload (a 10M-request trace
//! is ~0.7 GB of `ServeRequest`s) and keeps every `ServeResponse` for
//! exact percentiles (another ~0.6 GB). The streaming path generates
//! arrivals lazily from a [`PoissonSource`] and folds completions into
//! the O(1) [`MetricsMode::Sketch`] log-histogram, so the resident set
//! stays flat no matter how long the run is. This bin *asserts* that:
//! it pushes `--requests` (default 10M) requests through 8 cards and
//! fails (exit 1) if the process's peak RSS (`VmHWM`) exceeds
//! `--max-rss-mb` (default 256 MB — far below what the eager run would
//! need).
//!
//! ```text
//! soak [--requests 10000000] [--cards 8] [--arrival-rate 2500]
//!      [--max-rss-mb 256] [--seed 42] [--out BENCH_soak.json]
//! ```
//!
//! Every run is deterministic: the final fleet state hash is printed and
//! lands in the JSON result, so two soaks of the same parameters must
//! print bit-identical lines.

use protea_serve::{BatchPolicy, Fleet, FleetConfig, MetricsMode, PoissonSource, ServePlan};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

/// Peak resident set size in kilobytes, from Linux's `/proc`. `None`
/// where the file does not exist (non-Linux), which downgrades the RSS
/// ceiling to a warning.
fn max_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let val = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(map)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args)?;
    let requests = flag(&flags, "requests", 10_000_000usize)?;
    let cards = flag(&flags, "cards", 8usize)?;
    let rate = flag(&flags, "arrival-rate", 2_500.0f64)?;
    let max_rss_mb = flag(&flags, "max-rss-mb", 256u64)?;
    let seed = flag(&flags, "seed", 42u64)?;
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_soak.json".into());

    // Three capacity classes and bucketed sequence lengths keep the
    // scheduler honest. The default arrival rate sits just below the
    // 8-card fleet's ~3.4k inf/s capacity so queues stay bounded: this
    // is a memory soak, not an overload test — an over-capacity rate
    // would legitimately accumulate an unbounded backlog.
    let mut source =
        PoissonSource::new(requests, rate, &[(96, 4, 2), (64, 4, 1), (96, 4, 1)], (8, 32), seed);
    let fleet = Fleet::try_new(FleetConfig {
        cards,
        policy: BatchPolicy { max_batch: 8, ..BatchPolicy::default() },
        ..FleetConfig::default()
    })
    .map_err(|e| e.to_string())?;

    println!(
        "soak: {requests} requests at {rate:.0} req/s offered, {cards} card(s), \
         sketch metrics, seed {seed}"
    );
    let t = Instant::now();
    let outcome = fleet
        .run(
            ServePlan::stream(&mut source)
                .metrics(MetricsMode::Sketch)
                // One snapshot at the very end: pins the final state
                // hash without paying capture cost along the way.
                .snapshot_every(requests as u64),
        )
        .map_err(|e| e.to_string())?;
    let wall_s = t.elapsed().as_secs_f64();
    let report = outcome.report;
    let hash = outcome.state_hash.ok_or("snapshotting run must produce a state hash")?;

    if report.completed != requests {
        return Err(format!("lost requests: {} completed of {requests}", report.completed));
    }
    println!("{report}");
    println!(
        "soak wall: {wall_s:.1} s ({:.0} simulated requests/s of wall time)",
        requests as f64 / wall_s
    );
    println!("final state hash: {hash:016x}");

    let rss_kb = max_rss_kb();
    match rss_kb {
        Some(kb) => {
            println!("peak RSS: {:.1} MB (ceiling {max_rss_mb} MB)", kb as f64 / 1024.0);
            if kb > max_rss_mb * 1024 {
                return Err(format!(
                    "peak RSS {:.1} MB exceeds the {max_rss_mb} MB ceiling — \
                     the streaming path is buffering something it should not",
                    kb as f64 / 1024.0
                ));
            }
        }
        None => println!("peak RSS: unavailable (no /proc/self/status); ceiling not enforced"),
    }

    let json = format!(
        "{{\n  \"requests\": {requests},\n  \"cards\": {cards},\n  \"arrival_rate\": {rate},\n  \
         \"seed\": {seed},\n  \"completed\": {},\n  \"throughput_rps\": {},\n  \
         \"latency_p50_ms\": {},\n  \"latency_p99_ms\": {},\n  \"wall_s\": {wall_s},\n  \
         \"peak_rss_kb\": {},\n  \"max_rss_mb\": {max_rss_mb},\n  \"state_hash\": \"{hash:016x}\"\n}}\n",
        report.completed,
        report.throughput_rps,
        report.latency_ms.p50,
        report.latency_ms.p99,
        rss_kb.map_or_else(|| "null".into(), |kb| kb.to_string()),
    );
    std::fs::write(&out, json).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!("results written to {out}");
    println!("soak check: OK");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("soak: {e}");
            ExitCode::FAILURE
        }
    }
}
