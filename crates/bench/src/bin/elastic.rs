//! Elastic fleets under churn: goodput and per-tenant SLO attainment
//! across fleet compositions and churn intensities (extension). Writes
//! `BENCH_elastic.json` in the working directory.
//!
//! Flags: `--smoke` shrinks the workload for CI; `--check` additionally
//! exits nonzero unless the calm cells stay healthy and the interactive
//! tenant outlives the best-effort tenant under heavy churn.

use protea_bench::elastic;
use protea_bench::fmt::render_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let requests = if smoke { 64 } else { elastic::REQUESTS };
    let churn_counts = [0usize, 4, 8, 12];

    println!(
        "ELASTIC — goodput and per-tenant SLO under runtime churn (seed {:#x})\n",
        elastic::SEED
    );
    println!(
        "workload: {requests} Poisson requests per cell at {:.0} req/s \
         (d=96, 4 heads, 2 layers, SL 8-32), tenants 0/1/2 round-robin \
         (interactive@50ms / normal@200ms / best-effort), capacity-aware placement, \
         brownout ladder armed, churn seeded over the first {:.0} ms\n",
        elastic::OFFERED_RPS,
        elastic::HORIZON_NS as f64 / 1e6
    );
    let rows = match elastic::run_sweep(&churn_counts, requests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let slo = |t: u32| {
                r.report
                    .tenant_slo
                    .iter()
                    .find(|s| s.tenant == t)
                    .map_or_else(|| "-".into(), |s| format!("{:.1}%", 100.0 * s.attainment()))
            };
            vec![
                r.composition.to_string(),
                format!("{}", r.churn_events),
                format!("{}/{}", r.report.joins, r.report.drains),
                format!("{:.1}", r.report.throughput_rps),
                format!("{:.1}", r.report.goodput_rps),
                format!("{}", r.report.shed.len() + r.report.expired.len()),
                slo(0),
                slo(1),
                slo(2),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Composition",
                "Churn",
                "Joins/Drains",
                "inf/s",
                "good inf/s",
                "Shed+Exp",
                "SLO t0 (int)",
                "SLO t1 (norm)",
                "SLO t2 (be)",
            ],
            &body
        )
    );
    println!(
        "Every cell preserved the conservation invariant fleet-wide and per tenant \
         (checked by the sweep; a violation aborts the run)."
    );

    let json = elastic::to_json(&rows);
    let path = "BENCH_elastic.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    if check {
        // Calm cells (no churn) must serve every tenant, and in every
        // churned cell the brownout ladder must triage in class order:
        // the best-effort tenant is shed at least as hard as the
        // interactive one. (Attainment itself is not comparable across
        // the two — best-effort carries no deadline, so each of its
        // completions counts as within-SLO.)
        let mut ok = true;
        for r in rows.iter().filter(|r| r.churn_events == 0) {
            if r.report.completed == 0 {
                eprintln!("FAIL: calm cell {} completed nothing", r.composition);
                ok = false;
            }
        }
        for r in rows.iter().filter(|r| r.churn_events > 0) {
            let shed =
                |t: u32| r.report.tenant_slo.iter().find(|s| s.tenant == t).map_or(0, |s| s.shed);
            if shed(0) > shed(2) {
                eprintln!(
                    "FAIL: {} under {} churn events shed interactive harder than \
                     best-effort ({} vs {})",
                    r.composition,
                    r.churn_events,
                    shed(0),
                    shed(2)
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check passed");
    }
}
