//! Regenerates Table III: cross-platform comparison.

use protea_bench::fmt::{num, render_table};
use protea_bench::table3;

fn main() {
    let rows = table3::run();
    println!("TABLE III — CROSS-PLATFORM COMPARISON");
    println!("(baseline latencies are the published numbers; ProTEA is our simulation)\n");
    let header =
        ["TNN", "Work", "Platform", "Frequency", "Latency (ms)", "Speedup", "Implied eff."];
    let mut body = Vec::new();
    for r in &rows {
        let cfg = &r.row.config;
        let model = format!(
            "#{} (d={}, h={}, N={}, SL={})",
            r.row.model, cfg.d_model, cfg.heads, cfg.layers, cfg.seq_len
        );
        for (i, b) in r.baselines.iter().enumerate() {
            body.push(vec![
                if i == 0 { model.clone() } else { String::new() },
                r.row.baselines[i].cite.to_string(),
                b.platform.to_string(),
                format!("{:.1} GHz", b.freq_ghz),
                format!(
                    "{}{}",
                    num(b.latency_ms),
                    if (b.speedup_vs_base - 1.0).abs() < 1e-9 { " (Base)" } else { "" }
                ),
                format!("{:.1}x", b.speedup_vs_base),
                b.implied_efficiency.map_or("-".into(), |e| format!("{:.3}%", e * 100.0)),
            ]);
        }
        body.push(vec![
            String::new(),
            "ours".into(),
            "ProTEA FPGA (sim)".into(),
            format!("{:.2} GHz", 0.1909),
            format!("{} (paper: {})", num(r.sim_latency_ms), num(r.row.protea_reported_latency_ms)),
            format!("{:.1}x (paper: {:.1}x)", r.sim_speedup_vs_base, r.reported_speedup_vs_base),
            "-".into(),
        ]);
    }
    println!("{}", render_table(&header, &body));
    println!("\n'Implied eff.' = fraction of the platform's roofline peak the published");
    println!("latency corresponds to; sub-0.1% values flag framework-overhead-bound baselines.");
}
