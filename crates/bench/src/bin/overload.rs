//! Goodput vs offered load under deadlines (extension).

use protea_bench::fmt::render_table;
use protea_bench::overload;

fn main() {
    println!("OVERLOAD — goodput vs offered load under deadlines (seed {:#x})\n", overload::SEED);
    // Deadlines are a few multiples of the ~30 ms worst-case batch
    // service time: short enough that unbounded queueing would zero out
    // goodput, long enough that admission control has authority (a
    // deadline under ~2x the service time is lost before any policy
    // can act, and is exercised by the serve-layer tests instead).
    let rates = [100.0, 250.0, 500.0, 1_000.0, 2_000.0];
    let deadlines = [100_000_000u64, 200_000_000];
    let cards = [1, 2];
    println!(
        "workload: {} Poisson requests per cell (d=96, 4 heads, 2 layers, SL 8-32), \
         bounded queues (cap 32) + AIMD admission + retry budget\n",
        overload::REQUESTS
    );
    let rows = match overload::run_sweep(&rates, &deadlines, &cards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let slo = r.report.slo.iter().map(|s| s.attainment()).fold(f64::INFINITY, f64::min);
            vec![
                format!("{}", r.cards),
                format!("{:.0}", r.deadline_ns as f64 / 1e6),
                format!("{:.0}", r.offered_rps),
                format!("{:.1}", r.report.throughput_rps),
                format!("{:.1}", r.report.goodput_rps),
                format!("{}", r.report.shed.len()),
                format!("{}", r.report.expired.len()),
                if slo.is_finite() { format!("{:.1}%", 100.0 * slo) } else { "100.0%".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Cards",
                "Deadline (ms)",
                "Offered req/s",
                "inf/s",
                "good inf/s",
                "Shed",
                "Expired",
                "SLO",
            ],
            &body
        )
    );
    let mut all_ok = true;
    for &c in &cards {
        for &d in &deadlines {
            let Some((peak, floor)) = overload::knee(&rows, d, c) else { continue };
            let ok = peak > 0.0 && floor >= 0.5 * peak;
            all_ok &= ok;
            println!(
                "knee [{c} card(s), {:.0} ms deadline]: peak goodput {peak:.1} inf/s, \
                 floor past knee {floor:.1} inf/s — {}",
                d as f64 / 1e6,
                if ok { "plateau holds" } else { "COLLAPSED" }
            );
        }
    }
    println!(
        "\nEvery cell preserved the conservation invariant: completed + shed + expired + failed \
         == submitted (checked by the sweep; a violation aborts the run)."
    );
    if all_ok {
        println!("knee check: OK");
    } else {
        eprintln!("knee check: FAILED — goodput collapsed past the knee");
        std::process::exit(1);
    }
}
