//! Regenerates Table I: runtime programmability on one synthesis.

use protea_bench::fmt::{num, render_table};
use protea_bench::table1;

fn main() {
    let rows = table1::run();
    println!("TABLE I — OVERALL RESULTS (one synthesis: TS_MHA=64, TS_FFN=128, Alveo U55C)");
    println!(
        "Resources (all rows): {} DSPs, {} LUTs, {} FFs\n",
        rows[0].dsps, rows[0].luts, rows[0].ffs
    );
    let header = [
        "Test",
        "SL",
        "d_model",
        "Heads",
        "Layers",
        "Latency sim (ms)",
        "Latency paper (ms)",
        "ratio",
        "GOPS sim*",
        "GOPS paper",
        "GOPS (std conv)",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.test.to_string(),
                r.config.seq_len.to_string(),
                r.config.d_model.to_string(),
                r.config.heads.to_string(),
                r.config.layers.to_string(),
                num(r.sim_latency_ms),
                num(r.paper.latency_ms),
                format!("{:.2}", r.latency_ratio()),
                num(r.sim_gops_paper_conv),
                num(r.paper.gops),
                num(r.sim_gops_standard),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &body));
    println!("* GOPS sim uses the paper's reverse-engineered op convention (see EXPERIMENTS.md);");
    println!("  the last column is the standard 2-ops-per-MAC convention over all stages.");
}
