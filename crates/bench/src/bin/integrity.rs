//! Silent-data-corruption defense: detection coverage and goodput
//! overhead across injection rates and scrub intervals (extension).
//! Writes `BENCH_integrity.json` in the working directory.
//!
//! Flags: `--smoke` shrinks the workload for CI; `--check` additionally
//! exits nonzero unless every injected defended cell reaches >= 99%
//! detection coverage at <= 5% goodput overhead and the exposed cells
//! demonstrably serve silent wrongs.

use protea_bench::fmt::render_table;
use protea_bench::integrity;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let requests = if smoke { 96 } else { integrity::REQUESTS };

    println!(
        "INTEGRITY — SDC detection coverage and goodput overhead (seed {:#x})\n",
        integrity::SEED
    );
    println!(
        "workload: {requests} Poisson requests per cell at {:.0} req/s \
         (d=96/d=64 mix, SL 8-32) on 2 cards; defended cells run ABFT epilogue \
         checksums plus a periodic weight-digest scrub; exposed cells inject \
         with no detector; the clean cell is the goodput yardstick\n",
        integrity::OFFERED_RPS
    );
    let rows = match integrity::run_sweep(requests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.posture.to_string(),
                format!("{:.2}", r.sdc_rate),
                r.scrub_every_ns.map_or_else(|| "-".into(), |v| format!("{:.1}", v as f64 / 1e6)),
                if r.abft { "on" } else { "off" }.into(),
                format!("{}", r.report.sdc_injected),
                format!("{}", r.report.sdc_detected),
                format!("{}", r.report.sdc_missed),
                format!("{}", r.report.re_execs),
                if r.report.sdc_injected + r.report.sdc_detected + r.report.sdc_missed > 0 {
                    format!("{:.1}%", 100.0 * r.coverage())
                } else {
                    "-".into()
                },
                format!("{:.1}", r.report.goodput_rps),
                format!("{:.1}%", 100.0 * r.overhead),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Posture",
                "Rate",
                "Scrub ms",
                "ABFT",
                "Inj",
                "Det",
                "Miss",
                "Re-exec",
                "Coverage",
                "good inf/s",
                "Overhead",
            ],
            &body
        )
    );
    println!(
        "Coverage = detected / (detected + missed); overhead is goodput lost \
         vs the clean cell. Every cell preserved the conservation invariant \
         (checked by the sweep; a violation aborts the run)."
    );

    let json = integrity::to_json(&rows);
    let path = "BENCH_integrity.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    if check {
        let mut ok = true;
        for r in rows.iter().filter(|r| r.posture == "defended" && r.sdc_rate > 0.0) {
            if r.report.sdc_injected == 0 {
                eprintln!("FAIL: defended cell rate {:.2} never took a hit", r.sdc_rate);
                ok = false;
            }
            if r.coverage() < 0.99 {
                eprintln!(
                    "FAIL: defended cell rate {:.2} scrub {:?} coverage {:.4} < 0.99",
                    r.sdc_rate,
                    r.scrub_every_ns,
                    r.coverage()
                );
                ok = false;
            }
            if r.overhead > 0.05 {
                eprintln!(
                    "FAIL: defended cell rate {:.2} scrub {:?} overhead {:.4} > 0.05",
                    r.sdc_rate, r.scrub_every_ns, r.overhead
                );
                ok = false;
            }
        }
        let exposed_missed: u64 =
            rows.iter().filter(|r| r.posture == "exposed").map(|r| r.report.sdc_missed).sum();
        if exposed_missed == 0 {
            eprintln!("FAIL: no exposed cell served a silent wrong — the gap never opened");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check passed");
    }
}
