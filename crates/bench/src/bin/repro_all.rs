//! One command, the whole evaluation: regenerate every table and figure
//! plus the ablation suite, in the paper's order.
//!
//! ```text
//! cargo run --release -p protea-bench --bin repro_all
//! ```

use std::process::Command;

fn main() {
    // Delegate to the individual binaries so their output formats stay
    // the single source of truth; fall back to in-process if spawning
    // fails (e.g. when invoked from a context without the sibling
    // binaries built).
    let bins = [
        "table1",
        "table2",
        "table3",
        "fig7",
        "ablations",
        "serving",
        "availability",
        "overload",
        "integrity",
        "decode",
    ];
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    for (i, bin) in bins.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(100));
        }
        let candidate = dir.join(bin);
        let ran = candidate.exists()
            && Command::new(&candidate).status().map(|s| s.success()).unwrap_or(false);
        if !ran {
            // In-process fallback: print a compact summary from the lib.
            match *bin {
                "table1" => {
                    println!("TABLE I (compact fallback)");
                    for r in protea_bench::table1::run() {
                        println!(
                            "  {}: sim {:.1} ms (paper {:.0}, ratio {:.2})",
                            r.test,
                            r.sim_latency_ms,
                            r.paper.latency_ms,
                            r.latency_ratio()
                        );
                    }
                }
                "table2" => {
                    println!("TABLE II (compact fallback)");
                    for r in protea_bench::table2::run() {
                        println!(
                            "  vs {}: sim {:.3} ms (reported {:.3})",
                            r.row.comparator.cite,
                            r.sim_latency_ms,
                            r.row.protea_reported_latency_ms
                        );
                    }
                }
                "table3" => {
                    println!("TABLE III (compact fallback)");
                    for r in protea_bench::table3::run() {
                        println!(
                            "  model #{}: sim speedup {:.1}x (paper {:.1}x)",
                            r.row.model, r.sim_speedup_vs_base, r.reported_speedup_vs_base
                        );
                    }
                }
                "fig7" => {
                    let sweep = protea_bench::fig7::run();
                    let f = sweep.fmax_optimum();
                    println!(
                        "FIG 7 (compact fallback): optimum {} x {} at {:.1} MHz",
                        f.tiles_mha, f.tiles_ffn, f.fmax_mhz
                    );
                }
                "ablations" => {
                    let (with, without) = protea_bench::ablation::overlap(
                        &protea_model::EncoderConfig::paper_test1(),
                    );
                    println!(
                        "ABLATIONS (compact fallback): overlap {with:.1} vs serial {without:.1} ms"
                    );
                }
                "serving" => {
                    let w = protea_bench::serving::standard_workload();
                    match protea_bench::serving::run_sweep(&w, &[4]) {
                        Ok(rows) => println!(
                            "SERVING (compact fallback): 4 cards {:.1} inf/s, {:.2}x vs serial",
                            rows[0].report.throughput_rps, rows[0].speedup_vs_serial
                        ),
                        Err(e) => println!("SERVING (compact fallback): error: {e}"),
                    }
                }
                "availability" => {
                    let w = protea_bench::availability::standard_workload();
                    match protea_bench::availability::run_sweep(&w, &[0.05], &[2]) {
                        Ok(rows) => println!(
                            "AVAILABILITY (compact fallback): rate 0.05 x 2 cards \
                             {:.1}% available, throughput {:.1}% of clean",
                            100.0 * rows[0].report.availability,
                            100.0 * rows[0].throughput_vs_clean
                        ),
                        Err(e) => println!("AVAILABILITY (compact fallback): error: {e}"),
                    }
                }
                "integrity" => match protea_bench::integrity::run_sweep(96) {
                    Ok(rows) => {
                        let defended: Vec<_> = rows
                            .iter()
                            .filter(|r| r.posture == "defended" && r.sdc_rate > 0.0)
                            .collect();
                        let worst = defended.iter().map(|r| r.coverage()).fold(1.0f64, f64::min);
                        println!(
                            "INTEGRITY (compact fallback): {} defended cells, worst \
                             detection coverage {:.1}%",
                            defended.len(),
                            100.0 * worst
                        );
                    }
                    Err(e) => println!("INTEGRITY (compact fallback): error: {e}"),
                },
                "overload" => {
                    match protea_bench::overload::run_sweep(&[250.0, 1_000.0], &[100_000_000], &[2])
                    {
                        Ok(rows) => {
                            let (peak, floor) = protea_bench::overload::knee(&rows, 100_000_000, 2)
                                .expect("non-empty sweep");
                            println!(
                                "OVERLOAD (compact fallback): peak goodput {peak:.1} inf/s, \
                                 floor past knee {floor:.1} inf/s"
                            );
                        }
                        Err(e) => println!("OVERLOAD (compact fallback): error: {e}"),
                    }
                }
                "decode" => {
                    match protea_bench::decode::run_sweep(&protea_bench::decode::WIDTHS, 16) {
                        Ok(rows) => {
                            let widest = rows.last().expect("sweep has rows");
                            println!(
                                "DECODE (compact fallback): batch {} at {:.1} tok/s, {:.2}x \
                             single-stream",
                                widest.batch,
                                widest.report.tokens_per_s,
                                protea_bench::decode::speedup_vs_single(&rows, widest)
                            );
                        }
                        Err(e) => println!("DECODE (compact fallback): error: {e}"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}
