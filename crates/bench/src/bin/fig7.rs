//! Regenerates Fig. 7: frequency and normalized latency vs tile counts.

use protea_bench::fig7;
use protea_bench::fmt::{num, render_table};

fn main() {
    let sweep = fig7::run();
    println!("FIG. 7 — CHOOSING THE OPTIMUM TILE SIZE (test #1 workload, Alveo U55C)\n");
    let header = [
        "Tiles MHA",
        "Tiles FFN",
        "TS_MHA",
        "TS_FFN",
        "Fmax (MHz)",
        "Latency (ms)",
        "Latency (norm)",
        "Feasible",
    ];
    let body: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                p.tiles_mha.to_string(),
                p.tiles_ffn.to_string(),
                (768 / p.tiles_mha).to_string(),
                (768 / p.tiles_ffn).to_string(),
                num(p.fmax_mhz),
                if p.feasible { num(p.latency_ms) } else { "-".into() },
                if p.feasible { format!("{:.2}", sweep.normalized_latency(p)) } else { "-".into() },
                if p.feasible { "yes" } else { "NO (over budget)" }.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &body));
    let f = sweep.fmax_optimum();
    let l = sweep.latency_optimum();
    println!(
        "\nHighest frequency: {} MHz at {} MHA tiles x {} FFN tiles (paper: 200 MHz at 12 x 6)",
        num(f.fmax_mhz),
        f.tiles_mha,
        f.tiles_ffn
    );
    println!(
        "Lowest latency:    {} ms at {} MHA tiles x {} FFN tiles (paper optimum: 12 x 6)",
        num(l.latency_ms),
        l.tiles_mha,
        l.tiles_ffn
    );
}
