//! Decode serving: tokens/s scaling with decode batch width
//! (extension). Writes `BENCH_decode.json` in the working directory.
//!
//! Flags: `--smoke` shrinks the generation length for CI; `--check`
//! additionally exits nonzero unless the widest batch sustains at
//! least twice the single-stream tokens/s.

use protea_bench::decode;
use protea_bench::fmt::render_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let steps = if smoke { 16 } else { decode::STEPS };

    println!("DECODE — tokens/s vs decode batch width (seed {:#x})\n", decode::SEED);
    println!(
        "workload: same-shape generation sessions (d=768, 8 heads, 2 layers) on one card, \
         {}-token prompts, {steps} generated tokens per session, KV resident across steps\n",
        decode::PROMPT_LEN
    );
    let rows = match decode::run_sweep(&decode::WIDTHS, steps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.batch),
                format!("{}", r.report.tokens_emitted),
                format!("{:.1}", r.report.tokens_per_s),
                format!("{:.4}", r.report.prefill_ms_mean),
                format!("{:.4}", r.report.decode_ms_per_token),
                format!("{:.2}x", decode::speedup_vs_single(&rows, r)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Batch", "Tokens", "tok/s", "Prefill ms", "Decode ms/tok", "vs single"],
            &body
        )
    );
    println!(
        "Every cell preserved token conservation (emitted + shed == requested; \
         a violation aborts the run)."
    );

    let json = decode::to_json(&rows, steps);
    let path = "BENCH_decode.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    if check {
        let widest = rows.last().expect("sweep has rows");
        let speedup = decode::speedup_vs_single(&rows, widest);
        if speedup < 2.0 {
            eprintln!(
                "FAIL: batch {} reached only {speedup:.2}x single-stream tokens/s \
                 ({:.1} vs {:.1})",
                widest.batch, widest.report.tokens_per_s, rows[0].report.tokens_per_s
            );
            std::process::exit(1);
        }
        println!("check passed: batch {} at {speedup:.2}x single-stream", widest.batch);
    }
}
