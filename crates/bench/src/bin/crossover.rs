//! The GPU/FPGA batch-crossover analysis: where the Table III victories
//! end as the batch size grows.

use protea_baselines::roofline::PlatformModel;
use protea_bench::crossover::{published_calibrated, run};
use protea_bench::fmt::{num, render_table};
use protea_model::EncoderConfig;

fn main() {
    println!("BATCH CROSSOVER — ProTEA vs Titan XP per-sequence latency\n");
    for (label, cfg, published) in [
        ("model #4 ([28], published GPU = 147 ms)", EncoderConfig::new(768, 8, 1, 24), 147.0),
        ("model #2 ([23], published GPU = 1.062 ms)", EncoderConfig::new(64, 8, 1, 8), 1.062),
    ] {
        let gpu = published_calibrated(&PlatformModel::titan_xp(), published, &cfg);
        let r = run(&cfg, &gpu);
        println!("{label}:");
        let body: Vec<Vec<String>> = r
            .points
            .iter()
            .map(|p| {
                vec![
                    p.batch.to_string(),
                    num(p.protea_ms),
                    num(p.gpu_ms),
                    if p.gpu_ms < p.protea_ms { "GPU" } else { "ProTEA" }.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["Batch", "ProTEA (ms/seq)", "GPU as-published (ms/seq)", "winner"],
                &body
            )
        );
        match r.crossover_batch {
            Some(b) => println!("crossover: the GPU overtakes at batch {b}\n"),
            None => println!("no crossover within the sweep\n"),
        }
        // And the optimized-GPU caveat:
        let opt = run(&cfg, &PlatformModel::titan_xp());
        println!(
            "(an optimized, non-framework-bound Titan XP deployment would win from batch {} — \
             the Table III victories are small-batch + framework-overhead phenomena)\n",
            opt.crossover_batch.map_or("∞".into(), |b| b.to_string())
        );
    }
}
