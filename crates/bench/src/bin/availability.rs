//! Availability under deterministic fault injection (extension).

use protea_bench::availability;
use protea_bench::fmt::render_table;

fn main() {
    println!("AVAILABILITY — serving under seeded fault injection (seed {:#x})\n", {
        availability::SEED
    });
    let workload = availability::standard_workload();
    println!(
        "workload: {} Poisson requests (d=96, 4 heads, 2 layers, SL 8-32), {:.1} ms of arrivals\n",
        workload.requests.len(),
        workload.span_s() * 1e3
    );
    let rates = [0.0, 0.01, 0.02, 0.05, 0.10];
    let cards = [1, 2, 4];
    let rows = match availability::run_sweep(&workload, &rates, &cards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.cards),
                format!("{:.2}", r.fault_rate),
                format!("{:.1}%", 100.0 * r.report.availability),
                format!("{:.1}", r.report.throughput_rps),
                format!("{:.1}%", 100.0 * r.throughput_vs_clean),
                format!("{:.2}", r.report.latency_ms.p99),
                format!("{:.2}x", r.p99_vs_clean),
                format!("{}", r.report.retried),
                format!("{}", r.report.failed.len()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Cards",
                "Fault rate",
                "Availability",
                "inf/s",
                "vs clean",
                "p99 (ms)",
                "p99 ratio",
                "Requeued",
                "Failed",
            ],
            &body
        )
    );
    println!(
        "\nEvery cell preserved the conservation invariant: completed + failed == submitted \
         (checked by the sweep; a violation aborts the run)."
    );
}
