//! Fast-backend kernel benchmark: packed GEMM, model forward, fleet memo.
//!
//! Three measurements, all wall-clock, all over bit-identical
//! computations (the fast path is an exact re-association of the
//! reference path — `backend_equiv` pins the bytes):
//!
//! 1. **GEMM sweep** — the packed widened-i16 GEMM
//!    ([`protea_tensor::matmul_i8_i32_packed`]) on its auto-dispatched
//!    microkernel against the reference tile-accumulated product
//!    ([`protea_core::engines::accumulate_tiled`], the Reference
//!    backend's inner pattern) and the dense kernel
//!    ([`protea_tensor::matmul_i8_i32`], the golden model's), plus a
//!    per-ISA column block timing every kernel this host supports
//!    (scalar control, portable fallback, explicit SIMD) and the fused
//!    requant epilogue. The gate shape is `128×768×768` — one
//!    projection of the paper's 12-head/768-dim encoder at SL=128.
//! 2. **Model forward** — a full encoder run at d_model=768, 12 heads,
//!    SL=128 under [`Backend::Fast`] vs [`Backend::Reference`].
//! 3. **Fleet serving sweep** — a Poisson workload served with the
//!    timing memo on vs off, on a fine-tiled bitstream where the cycle
//!    model dominates the simulation (the component the memo removes).
//!
//! The binary writes `BENCH_kernels.json`; CI gates on
//! [`KernelsReport::gate`].

use crate::fmt::num;
use protea_core::engines::accumulate_tiled;
use protea_core::{Accelerator, Backend, RuntimeConfig, SynthesisConfig};
use protea_fixed::{QFormat, Requantizer, Rounding};
use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_serve::{Fleet, FleetConfig, ServePlan, Workload};
use protea_tensor::{
    active_kernel, force_kernel, matmul_i8_i32, matmul_i8_i32_packed,
    matmul_i8_i32_packed_parallel, matmul_i8_requant_packed, supported_kernels, KernelIsa, Matrix,
    PackedWeights, TileGrid,
};
use std::time::Instant;

/// Serial packed-GEMM timing under one forced microkernel ISA.
#[derive(Debug, Clone)]
pub struct IsaMs {
    /// Kernel name (`scalar`, `packed`, `avx2`, `avx512`, `neon`).
    pub isa: String,
    /// Min-of-iters wall clock, ms.
    pub ms: f64,
}

/// One GEMM shape measurement (milliseconds are min-of-iters).
#[derive(Debug, Clone)]
pub struct GemmRow {
    /// Activation rows (sequence length).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Reference tile-accumulated product, ms.
    pub tiled_ms: f64,
    /// Dense `matmul_i8_i32`, ms.
    pub dense_ms: f64,
    /// Packed microkernel (serial, auto-dispatched ISA), ms.
    pub packed_ms: f64,
    /// Packed microkernel through the panel-parallel entry point, ms.
    pub packed_parallel_ms: f64,
    /// Fused requant epilogue (`matmul_i8_requant_packed`), ms — the
    /// GEMM *plus* the narrowing stage the separate pipeline pays as an
    /// extra `O(m·n)` pass.
    pub fused_ms: f64,
    /// Serial timing with each supported ISA forced in turn.
    pub per_isa: Vec<IsaMs>,
    /// `tiled_ms / packed_ms` — the headline per-kernel speedup.
    pub speedup: f64,
}

impl GemmRow {
    /// Speedup of the *portable fallback* kernel over the tiled
    /// reference on this shape — what a host without explicit SIMD
    /// support gets.
    #[must_use]
    pub fn fallback_speedup(&self) -> f64 {
        self.per_isa
            .iter()
            .find(|e| e.isa == KernelIsa::Packed.to_string())
            .map_or(0.0, |e| self.tiled_ms / e.ms)
    }
}

/// Full-encoder forward timing, fast vs reference backend.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Encoder layers run.
    pub layers: usize,
    /// Fast-backend forward, ms (min-of-iters).
    pub fast_ms: f64,
    /// Reference-backend forward, ms (min-of-iters).
    pub reference_ms: f64,
    /// `reference_ms / fast_ms`.
    pub speedup: f64,
    /// Worker threads available to the fast path's fan-out.
    pub threads: usize,
}

/// Fleet serving sweep wall-clock, memo on vs off.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock with the timing memo enabled, ms.
    pub memo_ms: f64,
    /// Wall-clock with the timing memo disabled, ms.
    pub no_memo_ms: f64,
    /// `no_memo_ms / memo_ms`.
    pub speedup: f64,
}

/// Everything the `kernels` binary measures.
#[derive(Debug, Clone)]
pub struct KernelsReport {
    /// The auto-dispatched microkernel ISA the headline numbers ran on.
    pub kernel: String,
    /// Every ISA this host can run (per-ISA rows cover each).
    pub supported: Vec<String>,
    /// GEMM sweep rows (last row is the 768-wide gate shape).
    pub gemm: Vec<GemmRow>,
    /// Encoder forward at the paper's 12-head/768-dim shape.
    pub model: ModelRow,
    /// Serving sweep with the timing memo on/off.
    pub fleet: FleetRow,
}

impl KernelsReport {
    /// The CI gate: packed-kernel speedup at the 12-head/768-dim shape
    /// (`128×768×768`, the last GEMM row), on the auto-dispatched ISA.
    #[must_use]
    pub fn gate(&self) -> f64 {
        self.gemm.last().map_or(0.0, |r| r.speedup)
    }

    /// The fallback gate: the portable kernel's speedup on the same
    /// shape — what CI enforces on runners without explicit SIMD.
    #[must_use]
    pub fn fallback_gate(&self) -> f64 {
        self.gemm.last().map_or(0.0, GemmRow::fallback_speedup)
    }

    /// True when the auto-dispatched kernel is an explicit SIMD variant
    /// (AVX2/AVX-512/NEON) rather than the portable fallback — decides
    /// which gate threshold applies.
    #[must_use]
    pub fn simd_dispatched(&self) -> bool {
        self.kernel != KernelIsa::Packed.to_string() && self.kernel != KernelIsa::Scalar.to_string()
    }

    /// Shapes where the panel-parallel entry point ran slower than the
    /// serial kernel beyond `tol_frac` (+ a fixed 50µs noise floor) —
    /// empty means parallel ≥ serial everywhere, the regression gate.
    #[must_use]
    pub fn parallel_regressions(&self, tol_frac: f64) -> Vec<String> {
        self.gemm
            .iter()
            .filter(|r| r.packed_parallel_ms > r.packed_ms * (1.0 + tol_frac) + 0.05)
            .map(|r| format!("{}x{}x{}", r.m, r.k, r.n))
            .collect()
    }

    /// Hand-rolled JSON (the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let supported: Vec<String> = self.supported.iter().map(|s| format!("\"{s}\"")).collect();
        let mut s = format!(
            "{{\n  \"kernel\": \"{}\",\n  \"supported\": [{}],\n  \"gemm\": [\n",
            self.kernel,
            supported.join(", ")
        );
        for (i, r) in self.gemm.iter().enumerate() {
            let isa_ms: Vec<String> =
                r.per_isa.iter().map(|e| format!("\"{}\": {:.4}", e.isa, e.ms)).collect();
            s.push_str(&format!(
                "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"tiled_ms\": {:.4}, \"dense_ms\": {:.4}, \
                 \"packed_ms\": {:.4}, \"packed_parallel_ms\": {:.4}, \"fused_ms\": {:.4}, \
                 \"isa_ms\": {{{}}}, \"speedup\": {:.3}}}{}\n",
                r.m,
                r.k,
                r.n,
                r.tiled_ms,
                r.dense_ms,
                r.packed_ms,
                r.packed_parallel_ms,
                r.fused_ms,
                isa_ms.join(", "),
                r.speedup,
                if i + 1 < self.gemm.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        let m = &self.model;
        s.push_str(&format!(
            "  \"model\": {{\"d_model\": {}, \"heads\": {}, \"seq_len\": {}, \"layers\": {}, \
             \"fast_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.3}, \"threads\": {}}},\n",
            m.d_model,
            m.heads,
            m.seq_len,
            m.layers,
            m.fast_ms,
            m.reference_ms,
            m.speedup,
            m.threads
        ));
        let f = &self.fleet;
        s.push_str(&format!(
            "  \"fleet\": {{\"requests\": {}, \"memo_ms\": {:.3}, \"no_memo_ms\": {:.3}, \
             \"speedup\": {:.3}}},\n",
            f.requests, f.memo_ms, f.no_memo_ms, f.speedup
        ));
        s.push_str(&format!(
            "  \"gate_speedup_768\": {:.3},\n  \"fallback_speedup_768\": {:.3}\n}}\n",
            self.gate(),
            self.fallback_gate()
        ));
        s
    }

    /// Render the sections as tables for the binary.
    #[must_use]
    pub fn render(&self) -> String {
        let gemm_rows: Vec<Vec<String>> = self
            .gemm
            .iter()
            .map(|r| {
                vec![
                    format!("{}x{}x{}", r.m, r.k, r.n),
                    num(r.tiled_ms),
                    num(r.dense_ms),
                    num(r.packed_ms),
                    num(r.packed_parallel_ms),
                    num(r.fused_ms),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect();
        let isa_headers: Vec<String> = std::iter::once("shape (MxKxN)".to_string())
            .chain(self.supported.iter().map(|s| format!("{s} ms")))
            .collect();
        let isa_header_refs: Vec<&str> = isa_headers.iter().map(String::as_str).collect();
        let isa_rows: Vec<Vec<String>> = self
            .gemm
            .iter()
            .map(|r| {
                std::iter::once(format!("{}x{}x{}", r.m, r.k, r.n))
                    .chain(r.per_isa.iter().map(|e| num(e.ms)))
                    .collect()
            })
            .collect();
        let m = &self.model;
        let model_rows = vec![vec![
            format!("d={} h={} SL={} L={}", m.d_model, m.heads, m.seq_len, m.layers),
            num(m.fast_ms),
            num(m.reference_ms),
            format!("{:.2}x", m.speedup),
            m.threads.to_string(),
        ]];
        let f = &self.fleet;
        let fleet_rows = vec![vec![
            f.requests.to_string(),
            num(f.memo_ms),
            num(f.no_memo_ms),
            format!("{:.2}x", f.speedup),
        ]];
        format!(
            "GEMM microkernel (min-of-iters, dispatched kernel: {})\n{}\nPer-ISA serial packed GEMM\n{}\nEncoder forward\n{}\nFleet serving sweep (timing memo)\n{}",
            self.kernel,
            crate::fmt::render_table(
                &[
                    "shape (MxKxN)",
                    "tiled ms",
                    "dense ms",
                    "packed ms",
                    "packed-par ms",
                    "fused ms",
                    "speedup"
                ],
                &gemm_rows
            ),
            crate::fmt::render_table(&isa_header_refs, &isa_rows),
            crate::fmt::render_table(
                &["shape", "fast ms", "reference ms", "speedup", "threads"],
                &model_rows
            ),
            crate::fmt::render_table(
                &["requests", "memo ms", "no-memo ms", "speedup"],
                &fleet_rows
            ),
        )
    }
}

fn mat(m: usize, k: usize, salt: usize) -> Matrix<i8> {
    Matrix::from_fn(m, k, |r, c| (((r * 31 + c * 7 + salt * 13) % 251) as i64 - 125) as i8)
}

fn min_ms<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measure one GEMM shape with `iters` repetitions per kernel.
#[must_use]
pub fn gemm_row(m: usize, k: usize, n: usize, iters: u32) -> GemmRow {
    let a = mat(m, k, 1);
    let w = mat(k, n, 2);
    let packed = PackedWeights::pack(&w);
    // The Reference backend's tile width: the paper default 64, clamped
    // to the reduction dimension.
    let ts = 64.min(k).max(1);
    let grid = TileGrid::new(k, n, ts, n);
    let tiled_ms = min_ms(iters, || {
        let mut acc = Matrix::<i32>::zeros(m, n);
        accumulate_tiled(&mut acc, &a, &w, &grid);
        std::hint::black_box(&acc);
    });
    let dense_ms = min_ms(iters, || {
        std::hint::black_box(matmul_i8_i32(&a, &w));
    });
    let packed_ms = min_ms(iters, || {
        std::hint::black_box(matmul_i8_i32_packed(&a, &packed));
    });
    let packed_parallel_ms = min_ms(iters, || {
        std::hint::black_box(matmul_i8_i32_packed_parallel(&a, &packed));
    });
    let rq = Requantizer::new(10, QFormat::new(8, 5), Rounding::NearestEven);
    let fused_ms = min_ms(iters, || {
        std::hint::black_box(matmul_i8_requant_packed(&a, &packed, None, rq));
    });
    // Per-ISA rows: the same serial GEMM with each supported kernel
    // forced. The scalar control is slow at the large shapes, so it gets
    // fewer repetitions.
    let per_isa = supported_kernels()
        .into_iter()
        .map(|isa| {
            let reps = if isa == KernelIsa::Scalar { iters.clamp(1, 2) } else { iters };
            force_kernel(Some(isa));
            let ms = min_ms(reps, || {
                std::hint::black_box(matmul_i8_i32_packed(&a, &packed));
            });
            force_kernel(None);
            IsaMs { isa: isa.to_string(), ms }
        })
        .collect();
    GemmRow {
        m,
        k,
        n,
        tiled_ms,
        dense_ms,
        packed_ms,
        packed_parallel_ms,
        fused_ms,
        per_isa,
        speedup: tiled_ms / packed_ms,
    }
}

/// The GEMM sweep: small/medium shapes plus the 768-wide gate shape
/// (one QKV projection of the 12-head encoder at SL=128) last.
#[must_use]
pub fn gemm_sweep(iters: u32) -> Vec<GemmRow> {
    vec![
        gemm_row(32, 96, 96, iters.max(8)),
        gemm_row(64, 256, 256, iters.max(4)),
        gemm_row(128, 768, 3072, iters),
        gemm_row(128, 768, 768, iters),
    ]
}

/// Forward a full encoder at the paper's 12-head/768-dim shape under
/// both backends and time each (min of `iters` runs after one warmup).
///
/// # Panics
/// Panics if the 12-head/768-wide design does not fit the U250 (it
/// does) or the register file is rejected.
#[must_use]
pub fn model_forward(iters: u32) -> ModelRow {
    let (d_model, heads, seq_len, layers) = (768, 12, 128, 2);
    let syn = SynthesisConfig::builder()
        .heads(heads)
        .d_max(d_model)
        .sl_max(seq_len)
        .ts_mha(64)
        .ts_ffn(64)
        .build()
        .expect("paper-scale synthesis config");
    let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u250()).expect("fits the U250");
    acc.program(RuntimeConfig { heads, layers, d_model, seq_len }).expect("within capacity");
    let cfg = EncoderConfig::new(d_model, heads, layers, seq_len);
    let qw = QuantizedEncoder::from_float(&EncoderWeights::random(cfg, 7), QuantSchedule::paper());
    acc.try_load_weights(qw).expect("image matches registers");
    let x = mat(seq_len, d_model, 3);

    let mut time_backend = |backend: Backend| -> f64 {
        acc.set_backend(backend);
        let _ = acc.try_run(&x).expect("warmup run"); // warmup (packs lazily)
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            let _ = acc.try_run(&x).expect("timed run");
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let fast_ms = time_backend(Backend::Fast);
    let reference_ms = time_backend(Backend::Reference);
    ModelRow {
        d_model,
        heads,
        seq_len,
        layers,
        fast_ms,
        reference_ms,
        speedup: reference_ms / fast_ms,
        threads: rayon::current_num_threads(),
    }
}

/// Serve a heavy Poisson sweep with the timing memo on and off. The
/// bitstream is deliberately fine-tiled (ts=8 at d_max=768 → 96-strip
/// FFN plans), making the cycle model the dominant simulation cost —
/// exactly the component the memo collapses to one evaluation per
/// `(runtime, batch)` key.
///
/// # Panics
/// Panics if the fine-tiled synthesis is rejected or the sweep fails
/// (neither happens for the fixed workload).
#[must_use]
pub fn fleet_sweep(requests: usize) -> FleetRow {
    let wl = Workload::poisson(requests, 50_000.0, &[(768, 12, 2)], (16, 128), 9);
    let syn = SynthesisConfig::builder()
        .heads(12)
        .d_max(768)
        .sl_max(128)
        .ts_mha(8)
        .ts_ffn(8)
        .build()
        .expect("fine-tiled synthesis config");
    let mut walls = [0.0f64; 2];
    for (i, memo) in [true, false].into_iter().enumerate() {
        let fleet = Fleet::try_new(FleetConfig {
            timing_memo: memo,
            synthesis: syn,
            device: FpgaDevice::alveo_u250(),
            ..FleetConfig::default()
        })
        .expect("fleet construction");
        let t = Instant::now();
        let report = fleet.run(ServePlan::workload(&wl)).expect("sweep serves").report;
        assert_eq!(report.completed, requests, "all requests must complete");
        walls[i] = t.elapsed().as_secs_f64() * 1e3;
    }
    FleetRow { requests, memo_ms: walls[0], no_memo_ms: walls[1], speedup: walls[1] / walls[0] }
}

/// Run the full benchmark. `iters` scales the per-kernel repetitions;
/// `requests` the serving sweep length.
#[must_use]
pub fn run(iters: u32, requests: usize) -> KernelsReport {
    KernelsReport {
        kernel: active_kernel().to_string(),
        supported: supported_kernels().into_iter().map(|k| k.to_string()).collect(),
        gemm: gemm_sweep(iters),
        model: model_forward(iters),
        fleet: fleet_sweep(requests),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_row_is_positive_and_consistent() {
        let r = gemm_row(8, 32, 24, 2);
        assert!(r.tiled_ms > 0.0 && r.packed_ms > 0.0);
        assert!((r.speedup - r.tiled_ms / r.packed_ms).abs() < 1e-9);
    }

    #[test]
    fn gemm_row_covers_every_supported_isa() {
        let r = gemm_row(4, 16, 12, 1);
        let names: Vec<String> = r.per_isa.iter().map(|e| e.isa.clone()).collect();
        for isa in supported_kernels() {
            assert!(names.contains(&isa.to_string()), "missing per-ISA row for {isa}");
        }
        assert!(r.fused_ms > 0.0);
        assert!(r.fallback_speedup() > 0.0);
    }

    #[test]
    fn json_shape_is_well_formed() {
        let rep = KernelsReport {
            kernel: active_kernel().to_string(),
            supported: supported_kernels().into_iter().map(|k| k.to_string()).collect(),
            gemm: vec![gemm_row(8, 32, 24, 1)],
            model: ModelRow {
                d_model: 768,
                heads: 12,
                seq_len: 128,
                layers: 2,
                fast_ms: 1.0,
                reference_ms: 3.0,
                speedup: 3.0,
                threads: 1,
            },
            fleet: FleetRow { requests: 10, memo_ms: 1.0, no_memo_ms: 9.0, speedup: 9.0 },
        };
        let j = rep.to_json();
        assert!(j.contains("\"gate_speedup_768\""));
        assert!(j.contains("\"fallback_speedup_768\""));
        assert!(j.contains("\"kernel\""));
        assert!(j.contains("\"isa_ms\""));
        assert!(j.contains("\"fused_ms\""));
        assert!(j.contains("\"fleet\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn fleet_sweep_memo_wins() {
        let r = fleet_sweep(200);
        assert!(r.speedup > 1.0, "memo must not slow the sweep: {r:?}");
    }
}
