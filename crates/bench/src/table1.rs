//! Table I — runtime programmability: tests 1–9 on one synthesis.

use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig};
use protea_model::{EncoderConfig, OpCount};
use protea_platform::FpgaDevice;

/// Published Table I values for one test.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Latency in ms.
    pub latency_ms: f64,
    /// Throughput in GOPS.
    pub gops: f64,
}

/// One reproduced Table I row.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Test label ("#1" … "#9").
    pub test: &'static str,
    /// The runtime configuration.
    pub config: EncoderConfig,
    /// Simulated latency (ms).
    pub sim_latency_ms: f64,
    /// Simulated GOPS in the paper's op convention (see
    /// [`OpCount::paper_convention`]); tests #4/#5 keep the 12-layer op
    /// total, reproducing the published normalization.
    pub sim_gops_paper_conv: f64,
    /// Simulated GOPS in the standard convention.
    pub sim_gops_standard: f64,
    /// The published values.
    pub paper: PaperRow,
    /// DSPs used (identical for all rows — one synthesis).
    pub dsps: u64,
    /// LUTs used.
    pub luts: u64,
    /// FFs used.
    pub ffs: u64,
}

impl Table1Result {
    /// Simulated / published latency ratio.
    #[must_use]
    pub fn latency_ratio(&self) -> f64 {
        self.sim_latency_ms / self.paper.latency_ms
    }
}

/// The published Table I rows, in test order.
#[must_use]
pub fn paper_rows() -> [PaperRow; 9] {
    [
        PaperRow { latency_ms: 279.0, gops: 53.0 },
        PaperRow { latency_ms: 285.0, gops: 51.0 },
        PaperRow { latency_ms: 295.0, gops: 49.0 },
        PaperRow { latency_ms: 186.0, gops: 80.0 },
        PaperRow { latency_ms: 93.0, gops: 159.0 },
        PaperRow { latency_ms: 186.0, gops: 36.0 },
        PaperRow { latency_ms: 95.0, gops: 18.0 },
        PaperRow { latency_ms: 560.0, gops: 54.0 },
        PaperRow { latency_ms: 165.0, gops: 44.0 },
    ]
}

/// Run all nine tests on a single synthesized accelerator.
#[must_use]
pub fn run() -> Vec<Table1Result> {
    let syn = SynthesisConfig::paper_default();
    let mut acc =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    let res = acc.design().resources;
    let paper = paper_rows();
    EncoderConfig::table1_tests()
        .into_iter()
        .zip(paper)
        .map(|((test, cfg), paper)| {
            let rt = RuntimeConfig::from_model(&cfg, &syn).expect("Table I fits capacity");
            acc.program(rt).expect("register write within capacity");
            let report = acc.timing_report();
            let lat = report.latency_ms();
            // The paper's GOPS normalization: layer-count tests (#4, #5)
            // divide the full 12-layer op total by the shorter latency.
            let ops_cfg =
                EncoderConfig::new(cfg.d_model, cfg.heads, 12.max(cfg.layers), cfg.seq_len);
            let paper_ops =
                OpCount::paper_convention(&if matches!(test, "#4" | "#5") { ops_cfg } else { cfg })
                    as f64;
            Table1Result {
                test,
                config: cfg,
                sim_latency_ms: lat,
                sim_gops_paper_conv: paper_ops / (lat * 1e-3) / 1e9,
                sim_gops_standard: OpCount::for_config(&cfg).gops(lat),
                paper,
                dsps: res.dsps,
                luts: res.luts,
                ffs: res.ffs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_tests_within_20_percent_of_paper() {
        for r in run() {
            let ratio = r.latency_ratio();
            assert!(
                (0.8..=1.2).contains(&ratio),
                "{}: sim {:.1} ms vs paper {:.1} ms (ratio {ratio:.2})",
                r.test,
                r.sim_latency_ms,
                r.paper.latency_ms
            );
        }
    }

    #[test]
    fn headline_test1_tight() {
        let r = &run()[0];
        assert!((r.latency_ratio() - 1.0).abs() < 0.1, "test #1 ratio {:.3}", r.latency_ratio());
        // GOPS in the paper convention lands near the published 53.
        assert!((r.sim_gops_paper_conv - 53.0).abs() < 6.0, "gops {:.1}", r.sim_gops_paper_conv);
    }

    #[test]
    fn resources_identical_across_tests() {
        let rows = run();
        assert!(rows.iter().all(|r| r.dsps == rows[0].dsps && r.luts == rows[0].luts));
        assert_eq!(rows[0].dsps, 3612);
    }

    #[test]
    fn qualitative_shapes_hold() {
        let r = run();
        // #1–#3: fewer heads → slower (weakly).
        assert!(r[0].sim_latency_ms < r[1].sim_latency_ms);
        assert!(r[1].sim_latency_ms < r[2].sim_latency_ms);
        // #4–#5: latency ∝ layers.
        assert!((r[3].sim_latency_ms / r[0].sim_latency_ms - 8.0 / 12.0).abs() < 0.02);
        assert!((r[4].sim_latency_ms / r[0].sim_latency_ms - 4.0 / 12.0).abs() < 0.02);
        // #6–#7: latency shrinks with d_model, roughly linearly.
        assert!(r[5].sim_latency_ms < r[0].sim_latency_ms);
        assert!(r[6].sim_latency_ms < r[5].sim_latency_ms);
        // #8: SL=128 ≈ 2× the SL=64 latency; #9 shows the sub-2× floor.
        assert!((r[7].sim_latency_ms / r[0].sim_latency_ms - 2.0).abs() < 0.15);
        assert!(r[8].sim_latency_ms > r[0].sim_latency_ms * 0.40);
        assert!(r[8].sim_latency_ms < r[0].sim_latency_ms * 0.62);
    }
}
