//! GPU/FPGA batch crossover — the analysis the paper's Table III invites
//! but doesn't run.
//!
//! ProTEA wins small-batch latency against the Titan XP (2.5× on model
//! #2) because GPU inference at batch 1 is launch-overhead-bound. As the
//! batch grows, the GPU amortizes its overhead and climbs toward its
//! enormous peak throughput, while ProTEA's weight-stationary batching
//! only amortizes tile loads. Somewhere there is a crossover batch size;
//! this module finds it per model configuration.

use protea_baselines::roofline::PlatformModel;
use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig};
use protea_model::{EncoderConfig, OpCount};
use protea_platform::FpgaDevice;

/// Per-batch-size comparison point.
#[derive(Debug, Clone, Copy)]
pub struct CrossoverPoint {
    /// Batch size.
    pub batch: usize,
    /// ProTEA per-sequence latency (ms), weight-stationary batching.
    pub protea_ms: f64,
    /// GPU per-sequence latency (ms), roofline + amortized overhead.
    pub gpu_ms: f64,
}

/// Result of the sweep.
#[derive(Debug, Clone)]
pub struct CrossoverResult {
    /// The model configuration analyzed.
    pub config: EncoderConfig,
    /// The sweep points.
    pub points: Vec<CrossoverPoint>,
    /// Smallest batch at which the GPU's per-sequence latency beats
    /// ProTEA's (`None` if it never does within the sweep).
    pub crossover_batch: Option<usize>,
}

/// Calibrate a platform model to a *published* batch-1 latency: keep the
/// roofline compute/memory terms, set the overhead to whatever the
/// published deployment actually paid (the Table III GPU rows are
/// framework-bound, so almost all of the published latency is overhead).
#[must_use]
pub fn published_calibrated(
    base: &PlatformModel,
    published_ms: f64,
    cfg: &EncoderConfig,
) -> PlatformModel {
    let ops = OpCount::for_config(cfg).total();
    let compute_ms = ops as f64 / (base.peak_gops * 1e9 * base.efficiency) * 1e3;
    PlatformModel { overhead_ms: (published_ms - compute_ms).max(0.0), ..*base }
}

/// Sweep batch sizes for `cfg` against `gpu`.
#[must_use]
pub fn run(cfg: &EncoderConfig, gpu: &PlatformModel) -> CrossoverResult {
    let syn = SynthesisConfig::paper_default();
    let mut accel =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    accel
        .program(RuntimeConfig::from_model(cfg, &syn).expect("config fits"))
        .expect("register write");
    let ops = OpCount::for_config(cfg).total();
    // bytes touched per sequence ≈ weights once (amortized over batch on
    // the GPU too) + activations; simplify to weights/batch + activations.
    let weight_bytes =
        (cfg.layers * (4 * cfg.d_model * cfg.d_model + 2 * cfg.d_model * cfg.d_ffn())) as u64;
    let act_bytes = (cfg.seq_len * cfg.d_model * 4) as u64;

    let mut points = Vec::new();
    let mut crossover_batch = None;
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let protea_ms = accel.timing_report_batched(batch).latency_ms() / batch as f64;
        // GPU: one launch per layer-ish amortized over the batch; compute
        // and weight traffic scale with batch, weights stream once.
        let gpu_total = gpu.overhead_ms + {
            let compute_s = (ops as f64 * batch as f64) / (gpu.peak_gops * 1e9 * gpu.efficiency);
            let mem_s =
                (weight_bytes as f64 + act_bytes as f64 * batch as f64) / (gpu.mem_gbps * 1e9);
            compute_s.max(mem_s) * 1e3
        };
        let gpu_ms = gpu_total / batch as f64;
        if crossover_batch.is_none() && gpu_ms < protea_ms {
            crossover_batch = Some(batch);
        }
        points.push(CrossoverPoint { batch, protea_ms, gpu_ms });
    }
    CrossoverResult { config: *cfg, points, crossover_batch }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_loses_at_batch_1_wins_at_large_batch() {
        // Model #4: the Table III case ProTEA wins 16× — against the
        // *published* (framework-bound) GPU deployment. As the batch
        // grows, even that deployment amortizes its overhead away.
        let cfg = EncoderConfig::new(768, 8, 1, 24);
        let gpu = published_calibrated(&PlatformModel::titan_xp(), 147.0, &cfg);
        let r = run(&cfg, &gpu);
        let first = &r.points[0];
        assert!(first.protea_ms < first.gpu_ms, "ProTEA must win batch-1 latency");
        let last = r.points.last().unwrap();
        assert!(last.gpu_ms < last.protea_ms, "GPU must win at batch 256");
        let x = r.crossover_batch.expect("a crossover must exist");
        assert!(x > 1 && x <= 256, "crossover at {x}");
    }

    #[test]
    fn optimized_gpu_wins_even_at_batch_1() {
        // The flip side the reproduction makes explicit: a roofline-class
        // (non-framework-bound) Titan XP deployment beats ProTEA at every
        // batch size on this model — the paper's GPU victories are
        // small-batch + framework-overhead phenomena.
        let cfg = EncoderConfig::new(768, 8, 1, 24);
        let r = run(&cfg, &PlatformModel::titan_xp());
        assert_eq!(r.crossover_batch, Some(1));
    }

    #[test]
    fn per_sequence_latencies_are_monotone_nonincreasing() {
        let cfg = EncoderConfig::new(256, 8, 2, 32);
        let r = run(&cfg, &PlatformModel::titan_xp());
        for pair in r.points.windows(2) {
            assert!(pair[1].protea_ms <= pair[0].protea_ms * 1.0001);
            assert!(pair[1].gpu_ms <= pair[0].gpu_ms * 1.0001);
        }
    }

    #[test]
    fn jetson_crossover_comes_earlier_than_titan() {
        // A small GPU with low overhead starts competitive sooner on a
        // small model.
        let cfg = EncoderConfig::new(256, 8, 1, 16);
        let titan = run(&cfg, &PlatformModel::titan_xp()).crossover_batch;
        let jetson = run(&cfg, &PlatformModel::jetson_tx2()).crossover_batch;
        if let (Some(t), Some(j)) = (titan, jetson) {
            assert!(j <= t, "jetson {j} vs titan {t}");
        }
    }
}
