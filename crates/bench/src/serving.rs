//! Serving scenario: batched multi-card throughput under a live stream.
//!
//! This extends the paper's single-request latency evaluation to the
//! deployment question: how does a fleet of ProTEA cards behave under a
//! Poisson request stream when a batch scheduler amortizes register
//! programming and weight reloads? The scenario sweeps fleet sizes on a
//! fixed workload and reports throughput, tail latency, and the speedup
//! over an unbatched single-card replay of the same trace.

use protea_serve::{BatchPolicy, Fleet, FleetConfig, ServeError, ServePlan, ServeReport, Workload};

/// One fleet-size measurement.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Cards in the fleet.
    pub cards: usize,
    /// The batched fleet's report.
    pub report: ServeReport,
    /// Throughput speedup over the serial single-card baseline.
    pub speedup_vs_serial: f64,
}

/// The standard scenario workload: a bursty Poisson stream of BERT-tiny
/// shaped requests (d=96, 4 heads, 2 layers) with mixed sequence
/// lengths, dense enough that batching opportunities exist.
#[must_use]
pub fn standard_workload() -> Workload {
    Workload::poisson(96, 60_000.0, &[(96, 4, 2)], (8, 32), 2024)
}

/// Sweep fleet sizes over `workload`, comparing each against the serial
/// single-card baseline of the *same* trace.
///
/// # Errors
/// Propagates any [`ServeError`] from fleet construction or serving
/// (none are expected for the standard workload).
pub fn run_sweep(
    workload: &Workload,
    card_counts: &[usize],
) -> Result<Vec<ServingRow>, ServeError> {
    let policy = BatchPolicy { max_batch: 8, ..BatchPolicy::default() };
    let serial =
        Fleet::try_new(FleetConfig { cards: 1, policy: policy.clone(), ..FleetConfig::default() })?
            .run(ServePlan::workload(workload).serial_baseline())?
            .report;
    card_counts
        .iter()
        .map(|&cards| {
            let fleet = Fleet::try_new(FleetConfig {
                cards,
                policy: policy.clone(),
                ..FleetConfig::default()
            })?;
            let report = fleet.run(ServePlan::workload(workload))?.report;
            let speedup = report.throughput_rps / serial.throughput_rps;
            Ok(ServingRow { cards, report, speedup_vs_serial: speedup })
        })
        .collect()
}

/// The serial baseline's report for `workload` (single card, batch=1,
/// arrival order), for printing alongside the sweep.
///
/// # Errors
/// Propagates any [`ServeError`] from fleet construction or serving.
pub fn serial_baseline(workload: &Workload) -> Result<ServeReport, ServeError> {
    Ok(Fleet::try_new(FleetConfig { cards: 1, ..FleetConfig::default() })?
        .run(ServePlan::workload(workload).serial_baseline())?
        .report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_monotone_and_beats_serial() {
        let w = standard_workload();
        let rows = run_sweep(&w, &[1, 2, 4]).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.report.completed, w.requests.len());
            assert!(r.speedup_vs_serial > 1.0, "{} cards: {:.2}x", r.cards, r.speedup_vs_serial);
        }
        assert!(
            rows[2].report.throughput_rps >= rows[0].report.throughput_rps,
            "4 cards must not be slower than 1"
        );
    }

    #[test]
    fn tail_latency_ordering_holds() {
        let rows = run_sweep(&standard_workload(), &[2]).unwrap();
        let p = &rows[0].report.latency_ms;
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max);
    }
}
