//! Criterion benchmarks of the native CPU baseline: real measured
//! latencies for the quantized encoder on this machine, serial vs
//! rayon-parallel — the one row of the comparison story that is
//! genuinely executed rather than published or simulated.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use protea_baselines::NativeCpuEngine;
use protea_fixed::Quantizer;
use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};
use protea_tensor::Matrix;

fn bench_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_forward");
    g.sample_size(10);
    for &(d, h, n, sl, tag) in &[
        (64usize, 8usize, 1usize, 8usize, "model2_hep"),
        (256, 8, 2, 32, "small"),
        (768, 8, 1, 12, "model1_bertslice"),
    ] {
        let cfg = EncoderConfig::new(d, h, n, sl);
        let enc =
            QuantizedEncoder::from_float(&EncoderWeights::random(cfg, 5), QuantSchedule::paper());
        let x = Matrix::from_fn(sl, d, |r, cc| ((r * 31 + cc * 7) % 127) as i8);
        g.bench_with_input(BenchmarkId::new("golden_serial", tag), &d, |b, _| {
            b.iter(|| black_box(enc.forward(&x)))
        });
        let native = NativeCpuEngine::new(&enc);
        g.bench_with_input(BenchmarkId::new("rayon_parallel", tag), &d, |b, _| {
            b.iter(|| black_box(native.forward(&x)))
        });
    }
    g.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let data: Vec<f32> = (0..768 * 768).map(|i| ((i % 977) as f32 - 488.0) / 977.0).collect();
    c.bench_function("quantize_768x768", |b| {
        b.iter(|| Quantizer::default().quantize(black_box(&data)))
    });
}

criterion_group!(benches, bench_forward, bench_quantization);
criterion_main!(benches);
