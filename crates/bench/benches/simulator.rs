//! Criterion benchmarks of the simulator itself: how fast the harness
//! regenerates the paper's numbers (timing-only analysis, full
//! functional co-simulation, synthesis sweeps, and the event-driven
//! double-buffer scheduler).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use protea_core::{Accelerator, RuntimeConfig, SynthesisConfig};
use protea_hwsim::Cycles;
use protea_mem::overlap::simulate_double_buffered;
use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_tensor::Matrix;

fn bench_timing_report(c: &mut Criterion) {
    let syn = SynthesisConfig::paper_default();
    let mut acc =
        Accelerator::try_new(syn, &FpgaDevice::alveo_u55c()).expect("design must fit the device");
    acc.program(RuntimeConfig::from_model(&EncoderConfig::paper_test1(), &syn).unwrap()).unwrap();
    c.bench_function("timing_report_test1", |b| b.iter(|| black_box(acc.timing_report()).total));
}

fn bench_synthesize(c: &mut Criterion) {
    let device = FpgaDevice::alveo_u55c();
    c.bench_function("synthesize_paper_default", |b| {
        b.iter(|| black_box(SynthesisConfig::paper_default().synthesize(&device)).fmax_mhz)
    });
}

fn bench_functional_cosim(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_cosim");
    g.sample_size(10);
    for &(d, h, sl) in &[(64usize, 4usize, 8usize), (128, 8, 16)] {
        let cfg = EncoderConfig::new(d, h, 1, sl);
        let syn = SynthesisConfig::paper_default();
        let mut acc = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())
            .expect("design must fit the device");
        acc.program(RuntimeConfig::from_model(&cfg, &syn).unwrap()).unwrap();
        acc.try_load_weights(QuantizedEncoder::from_float(
            &EncoderWeights::random(cfg, 1),
            QuantSchedule::paper(),
        ))
        .expect("weights must match the programmed registers");
        let x = Matrix::from_fn(sl, d, |r, cc| ((r * 3 + cc) % 100) as i8);
        g.bench_with_input(BenchmarkId::new("run", format!("d{d}_sl{sl}")), &d, |b, _| {
            b.iter(|| black_box(acc.run(&x)).latency_ms)
        });
    }
    g.finish();
}

fn bench_overlap_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap_scheduler");
    for &n in &[36usize, 144, 1000] {
        let schedule: Vec<(Cycles, Cycles)> = (0..n)
            .map(|i| (Cycles(500 + (i as u64 * 37) % 300), Cycles(600 + (i as u64 * 53) % 400)))
            .collect();
        g.bench_with_input(BenchmarkId::new("accesses", n), &n, |b, _| {
            b.iter(|| simulate_double_buffered(black_box(&schedule)).total)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_timing_report,
    bench_synthesize,
    bench_functional_cosim,
    bench_overlap_scheduler
);
criterion_main!(benches);
