//! Criterion microbenchmarks of the compute kernels: the PE datapath
//! (i8 MAC reductions), the matmul variants, and the nonlinear units.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use protea_fixed::layernorm::LayerNormUnit;
use protea_fixed::{dot_i8, dot_i8_unrolled, softmax_fixed, QFormat};
use protea_tensor::{
    matmul_blocked, matmul_i8_i32, matmul_i8_i32_parallel, matmul_naive, matmul_parallel, Matrix,
    PackedWeights,
};

fn i8_vec(n: usize, seed: u64) -> Vec<i8> {
    (0..n).map(|i| ((i as u64).wrapping_mul(seed).wrapping_add(17) % 255) as i8).collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot_i8");
    for &n in &[96usize, 768, 3072] {
        let a = i8_vec(n, 31);
        let b = i8_vec(n, 57);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("rolled", n), &n, |bch, _| {
            bch.iter(|| dot_i8(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("unrolled8", n), &n, |bch, _| {
            bch.iter(|| dot_i8_unrolled(black_box(&a), black_box(&b), 8))
        });
    }
    g.finish();
}

fn bench_matmul_f32(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_f32");
    g.sample_size(10);
    for &n in &[64usize, 128] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * 7 + cc) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(n, n, |r, cc| ((r + cc * 5) % 11) as f32 - 5.0);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| matmul_naive(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bch, _| {
            bch.iter(|| matmul_blocked(black_box(&a), black_box(&b), 32))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| matmul_parallel(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_matmul_i8(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_i8");
    g.sample_size(10);
    for &n in &[64usize, 256] {
        let a = Matrix::from_vec(n, n, i8_vec(n * n, 3));
        let b = Matrix::from_vec(n, n, i8_vec(n * n, 7));
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            bch.iter(|| matmul_i8_i32(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &n, |bch, _| {
            bch.iter(|| matmul_i8_i32_parallel(black_box(&a), black_box(&b)))
        });
        let packed = PackedWeights::pack(&b);
        g.bench_with_input(BenchmarkId::new("packed", n), &n, |bch, _| {
            bch.iter(|| protea_tensor::matmul_i8_i32_packed(black_box(&a), black_box(&packed)))
        });
    }
    g.finish();
}

fn bench_nonlinear(c: &mut Criterion) {
    let mut g = c.benchmark_group("nonlinear");
    let fmt = QFormat::new(8, 5);
    let row = i8_vec(128, 91);
    g.bench_function("softmax_row128", |bch| bch.iter(|| softmax_fixed(black_box(&row), fmt)));
    let ln = LayerNormUnit::identity(768, fmt);
    let data = i8_vec(768, 13);
    let mut out = vec![0i8; 768];
    g.bench_function("layernorm_row768", |bch| {
        bch.iter(|| ln.forward_row(black_box(&data), fmt, black_box(&mut out)))
    });
    g.finish();
}

criterion_group!(benches, bench_dot, bench_matmul_f32, bench_matmul_i8, bench_nonlinear);
criterion_main!(benches);
