//! HLS pragmas as typed values.

/// `#pragma HLS pipeline` state of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// `#pragma HLS pipeline off` — iterations execute back-to-back with
    /// control overhead between them (ProTEA's outer row loops).
    Off,
    /// `#pragma HLS pipeline II = n` — one iteration starts every `n`
    /// cycles once the pipeline fills; all loops nested inside are fully
    /// unrolled by the tool.
    Ii(u32),
}

impl Pipeline {
    /// The initiation interval, if pipelined.
    #[must_use]
    pub fn ii(self) -> Option<u32> {
        match self {
            Pipeline::Off => None,
            Pipeline::Ii(ii) => Some(ii),
        }
    }

    /// Whether this loop is pipelined.
    #[must_use]
    pub fn is_pipelined(self) -> bool {
        matches!(self, Pipeline::Ii(_))
    }
}

/// `#pragma HLS array_partition` on one dimension of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayPartition {
    /// No partitioning: one memory.
    None,
    /// `complete` — every element its own register bank.
    Complete,
    /// `cyclic factor=f` — element `i` lives in bank `i mod f`.
    Cyclic(u32),
    /// `block factor=f` — contiguous chunks of `ceil(n/f)` per bank.
    Block(u32),
}

impl ArrayPartition {
    /// Number of banks this partitioning produces for a dimension of
    /// extent `n`.
    #[must_use]
    pub fn banks(self, n: u64) -> u64 {
        match self {
            ArrayPartition::None => 1,
            ArrayPartition::Complete => n.max(1),
            ArrayPartition::Cyclic(f) | ArrayPartition::Block(f) => u64::from(f).clamp(1, n.max(1)),
        }
    }

    /// Which bank element `i` of an extent-`n` dimension maps to.
    #[must_use]
    pub fn bank_of(self, i: u64, n: u64) -> u64 {
        assert!(i < n, "index {i} out of extent {n}");
        match self {
            ArrayPartition::None => 0,
            ArrayPartition::Complete => i,
            ArrayPartition::Cyclic(f) => i % u64::from(f).clamp(1, n),
            ArrayPartition::Block(f) => {
                let banks = u64::from(f).clamp(1, n);
                let chunk = n.div_ceil(banks);
                i / chunk
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_accessors() {
        assert_eq!(Pipeline::Off.ii(), None);
        assert_eq!(Pipeline::Ii(2).ii(), Some(2));
        assert!(Pipeline::Ii(1).is_pipelined());
        assert!(!Pipeline::Off.is_pipelined());
    }

    #[test]
    fn bank_counts() {
        assert_eq!(ArrayPartition::None.banks(64), 1);
        assert_eq!(ArrayPartition::Complete.banks(64), 64);
        assert_eq!(ArrayPartition::Cyclic(8).banks(64), 8);
        assert_eq!(ArrayPartition::Block(8).banks(64), 8);
        // factor larger than extent clamps
        assert_eq!(ArrayPartition::Cyclic(100).banks(64), 64);
    }

    #[test]
    fn cyclic_mapping_round_robins() {
        let p = ArrayPartition::Cyclic(4);
        let banks: Vec<u64> = (0..8).map(|i| p.bank_of(i, 8)).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn block_mapping_chunks() {
        let p = ArrayPartition::Block(4);
        let banks: Vec<u64> = (0..8).map(|i| p.bank_of(i, 8)).collect();
        assert_eq!(banks, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn every_bank_mapping_in_range() {
        for p in [
            ArrayPartition::None,
            ArrayPartition::Complete,
            ArrayPartition::Cyclic(3),
            ArrayPartition::Block(5),
        ] {
            for n in [1u64, 7, 64] {
                for i in 0..n {
                    assert!(p.bank_of(i, n) < p.banks(n), "{p:?} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn bank_of_oob_panics() {
        let _ = ArrayPartition::None.bank_of(8, 8);
    }
}
