//! Calibrated resource costs for synthesized functional units.
//!
//! The paper reports exactly one synthesized design point (Table I):
//! 3612 DSPs, 993 107 LUTs, 704 115 FFs for `TS_MHA = 64`, `TS_FFN = 128`,
//! `h = 8` head engines, `d_max = 768`, `SL_max = 128`. The PE counts
//! follow from the unroll widths of Algorithms 1–4:
//!
//! ```text
//! QKV_CE:  3·TS_MHA  per head  →  8 · 192 = 1536 DSP
//! QK_CE:   d/h = 96  per head  →  8 ·  96 =  768 DSP
//! SV_CE:   SL_syn=64 per head  →  8 ·  64 =  512 DSP
//! FFN1_CE: TS_FFN              →        128 DSP
//! FFN2_CE: TS_FFN              →        128 DSP
//! FFN3_CE: 4·TS_FFN            →        512 DSP
//!                                 ──────────
//!                                  3584 DSP  (+ 28 in softmax/LN units)
//! ```
//!
//! That the published total (3612) is within 28 DSPs of the PE-array sum
//! is strong evidence for this reconstruction; the remaining units and
//! the LUT/FF per-PE costs below are calibrated so the published design
//! point reproduces **exactly** (asserted in tests).

use protea_platform::ResourceVector;

/// Resource cost of one processing element (one MAC lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeCost {
    /// DSP48 slices per PE.
    pub dsps: u64,
    /// LUTs per PE (operand muxing, address logic, share of the local
    /// LUTRAM weight banks).
    pub luts: u64,
    /// Flip-flops per PE (pipeline registers).
    pub ffs: u64,
}

impl PeCost {
    /// Calibrated against Table I (see module docs).
    #[must_use]
    pub const fn calibrated() -> Self {
        Self { dsps: 1, luts: 240, ffs: 170 }
    }

    /// Resources of `n` PEs.
    #[must_use]
    pub fn times(&self, n: u64) -> ResourceVector {
        ResourceVector {
            luts: self.luts * n,
            ffs: self.ffs * n,
            dsps: self.dsps * n,
            bram18: 0,
            uram: 0,
        }
    }
}

/// Resource cost of a non-PE functional unit (softmax, layer norm, the
/// AXI/control infrastructure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalUnitCost {
    /// LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSPs.
    pub dsps: u64,
}

impl FunctionalUnitCost {
    /// One softmax unit (per attention head): exp ROM + divider datapath.
    /// The exp ROM itself is 4 Kib → LUTs, matching the paper's "softmax
    /// … utilizes LUTs and flip-flops".
    #[must_use]
    pub const fn softmax_unit() -> Self {
        Self { luts: 6_000, ffs: 4_000, dsps: 2 }
    }

    /// One layer-normalization unit: mean/variance accumulators, isqrt,
    /// reciprocal multiply.
    #[must_use]
    pub const fn layernorm_unit() -> Self {
        Self { luts: 8_000, ffs: 5_000, dsps: 6 }
    }

    /// The fixed infrastructure: AXI masters, AXI-lite slave, the
    /// accelerator controller, bias registers. Calibrated once so the
    /// Table I design point reproduces exactly.
    #[must_use]
    pub const fn base_infrastructure() -> Self {
        Self { luts: 68_947, ffs: 52_835, dsps: 0 }
    }

    /// As a resource vector.
    #[must_use]
    pub const fn resources(&self) -> ResourceVector {
        ResourceVector { luts: self.luts, ffs: self.ffs, dsps: self.dsps, bram18: 0, uram: 0 }
    }

    /// `n` copies.
    #[must_use]
    pub fn times(&self, n: u64) -> ResourceVector {
        ResourceVector {
            luts: self.luts * n,
            ffs: self.ffs * n,
            dsps: self.dsps * n,
            bram18: 0,
            uram: 0,
        }
    }
}

#[cfg(test)]
mod calibration {
    use super::*;

    /// The published design point's PE count (see module docs).
    const PE_TOTAL: u64 = 3584;
    const HEADS: u64 = 8;
    const LN_UNITS: u64 = 2;

    #[test]
    fn dsp_total_matches_table1() {
        let pes = PeCost::calibrated().times(PE_TOTAL);
        let softmax = FunctionalUnitCost::softmax_unit().times(HEADS);
        let ln = FunctionalUnitCost::layernorm_unit().times(LN_UNITS);
        let total = pes + softmax + ln + FunctionalUnitCost::base_infrastructure().resources();
        assert_eq!(total.dsps, 3_612, "Table I: 3612 DSPs");
    }

    #[test]
    fn lut_total_matches_table1() {
        let pes = PeCost::calibrated().times(PE_TOTAL);
        let softmax = FunctionalUnitCost::softmax_unit().times(HEADS);
        let ln = FunctionalUnitCost::layernorm_unit().times(LN_UNITS);
        let total = pes + softmax + ln + FunctionalUnitCost::base_infrastructure().resources();
        assert_eq!(total.luts, 993_107, "Table I: 993107 LUTs");
    }

    #[test]
    fn ff_total_matches_table1() {
        let pes = PeCost::calibrated().times(PE_TOTAL);
        let softmax = FunctionalUnitCost::softmax_unit().times(HEADS);
        let ln = FunctionalUnitCost::layernorm_unit().times(LN_UNITS);
        let total = pes + softmax + ln + FunctionalUnitCost::base_infrastructure().resources();
        assert_eq!(total.ffs, 704_115, "Table I: 704115 FFs");
    }

    #[test]
    fn pe_reconstruction_from_unroll_widths() {
        let ts_mha = 64;
        let ts_ffn = 128;
        let d_max = 768;
        let sl_syn = 64; // SV_CE unroll is the synthesized SL of Table I tests
        let per_head = 3 * ts_mha + d_max / HEADS + sl_syn;
        let ffn = 2 * ts_ffn + 4 * ts_ffn;
        assert_eq!(HEADS * per_head + ffn, PE_TOTAL);
    }
}
