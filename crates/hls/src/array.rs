//! Array → on-chip memory binding.
//!
//! In HLS, a C array becomes BRAM, LUTRAM or registers depending on its
//! size and partitioning. The paper: "The number of heads, tile size, and
//! array partitioning directives in HLS determine how these arrays are
//! divided to create multiple two-port BRAMs." This module computes the
//! bank structure and the memory resources it consumes:
//!
//! * a bank with > [`LUTRAM_MAX_BITS`] bits of data → BRAM18s (18 Kib
//!   each, ≤ 36 bit native port width),
//! * a smaller bank → distributed LUTRAM (SLICEM LUTs, 64 bits each),
//! * BRAM18s are true dual-port: at most two accesses per cycle per bank.
//!   [`ArraySpec::port_limited_reads`] reports whether a requested
//!   parallel access pattern over-subscribes the ports — the check behind
//!   the paper's "array partitioning and data loading are optimized to
//!   ensure that data needed simultaneously by a DSP is stored in
//!   separate BRAMs".

use crate::pragma::ArrayPartition;
use protea_platform::ResourceVector;

/// Banks at or below this many bits bind to LUTRAM instead of BRAM.
pub const LUTRAM_MAX_BITS: u64 = 1024;

/// Bits per BRAM18 block.
pub const BRAM18_BITS: u64 = 18 * 1024;

/// Read ports per memory bank (BRAM is true dual-port; LUTRAM modeled
/// the same for uniformity).
pub const PORTS_PER_BANK: u64 = 2;

/// A 2-D array as declared in the HLS source.
#[derive(Debug, Clone, Copy)]
pub struct ArraySpec {
    /// Human-readable name for reports (`"W_q"`, `"X_i"`, …).
    pub name: &'static str,
    /// First (row) dimension extent.
    pub rows: u64,
    /// Second (column) dimension extent.
    pub cols: u64,
    /// Element width in bits (8 for the paper's fixed-point data).
    pub elem_bits: u64,
    /// Partitioning of the row dimension.
    pub row_partition: ArrayPartition,
    /// Partitioning of the column dimension.
    pub col_partition: ArrayPartition,
    /// Replication factor (double buffering = 2).
    pub copies: u64,
}

/// The memory binding of one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBinding {
    /// Total banks after partitioning (× copies).
    pub banks: u64,
    /// BRAM18 blocks consumed.
    pub bram18: u64,
    /// LUTs consumed by LUTRAM banks.
    pub lutram_luts: u64,
}

impl ArraySpec {
    /// A plain unpartitioned single-copy array.
    #[must_use]
    pub fn new(name: &'static str, rows: u64, cols: u64, elem_bits: u64) -> Self {
        Self {
            name,
            rows,
            cols,
            elem_bits,
            row_partition: ArrayPartition::None,
            col_partition: ArrayPartition::None,
            copies: 1,
        }
    }

    /// Set the row partitioning.
    #[must_use]
    pub fn partition_rows(mut self, p: ArrayPartition) -> Self {
        self.row_partition = p;
        self
    }

    /// Set the column partitioning.
    #[must_use]
    pub fn partition_cols(mut self, p: ArrayPartition) -> Self {
        self.col_partition = p;
        self
    }

    /// Replicate (e.g. `2` for double buffering).
    #[must_use]
    pub fn with_copies(mut self, copies: u64) -> Self {
        assert!(copies >= 1);
        self.copies = copies;
        self
    }

    /// Total data bits in one copy.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.rows * self.cols * self.elem_bits
    }

    /// Banks per copy.
    #[must_use]
    pub fn banks_per_copy(&self) -> u64 {
        self.row_partition.banks(self.rows.max(1)) * self.col_partition.banks(self.cols.max(1))
    }

    /// Compute the memory binding.
    #[must_use]
    pub fn bind(&self) -> MemBinding {
        let banks_per_copy = self.banks_per_copy();
        let banks = banks_per_copy * self.copies;
        if self.total_bits() == 0 {
            return MemBinding { banks, bram18: 0, lutram_luts: 0 };
        }
        let bits_per_bank = self.total_bits().div_ceil(banks_per_copy);
        if bits_per_bank <= LUTRAM_MAX_BITS {
            // Distributed RAM: one SLICEM LUT stores 64 bits.
            let luts_per_bank = bits_per_bank.div_ceil(64);
            MemBinding { banks, bram18: 0, lutram_luts: luts_per_bank * banks }
        } else {
            // BRAM18 blocks: capacity-limited and port-width-limited.
            let by_capacity = bits_per_bank.div_ceil(BRAM18_BITS);
            let by_width = self.elem_bits.div_ceil(36);
            MemBinding { banks, bram18: by_capacity.max(by_width) * banks, lutram_luts: 0 }
        }
    }

    /// Resource vector view of the binding.
    #[must_use]
    pub fn resources(&self) -> ResourceVector {
        let b = self.bind();
        ResourceVector { luts: b.lutram_luts, ffs: 0, dsps: 0, bram18: b.bram18, uram: 0 }
    }

    /// Whether `parallel_reads` simultaneous reads (spread evenly across
    /// banks by the access pattern) fit the dual-port constraint.
    #[must_use]
    pub fn port_limited_reads(&self, parallel_reads: u64) -> bool {
        parallel_reads > self.banks_per_copy() * PORTS_PER_BANK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bank_binds_to_lutram() {
        // W_q per head: 96 × 64 × 8 bit, partitioned complete along cols →
        // 64 banks of 768 bits each → LUTRAM (768 ≤ 1024).
        let spec = ArraySpec::new("W_q", 96, 64, 8).partition_cols(ArrayPartition::Complete);
        let b = spec.bind();
        assert_eq!(b.banks, 64);
        assert_eq!(b.bram18, 0);
        assert_eq!(b.lutram_luts, 64 * 12); // 768/64 = 12 LUTs per bank
    }

    #[test]
    fn large_bank_binds_to_bram() {
        // Unpartitioned 128 × 768 × 8 bit = 786432 bits → 43 BRAM18.
        let spec = ArraySpec::new("buf", 128, 768, 8);
        let b = spec.bind();
        assert_eq!(b.banks, 1);
        assert_eq!(b.bram18, 786_432u64.div_ceil(BRAM18_BITS));
        assert_eq!(b.lutram_luts, 0);
    }

    #[test]
    fn double_buffering_doubles_everything() {
        let single = ArraySpec::new("w", 128, 512, 8).partition_cols(ArrayPartition::Cyclic(4));
        let double = single.with_copies(2);
        assert_eq!(double.bind().banks, single.bind().banks * 2);
        assert_eq!(double.bind().bram18, single.bind().bram18 * 2);
    }

    #[test]
    fn partitioning_trades_bram_for_lutram() {
        let coarse = ArraySpec::new("w", 128, 128, 8);
        let fine = coarse.partition_cols(ArrayPartition::Complete);
        assert!(coarse.bind().bram18 > 0);
        assert_eq!(fine.bind().bram18, 0);
        assert!(fine.bind().lutram_luts > 0);
    }

    #[test]
    fn port_limits() {
        let spec = ArraySpec::new("w", 96, 64, 8).partition_cols(ArrayPartition::Cyclic(8));
        // 8 banks × 2 ports = 16 parallel reads OK, 17 not.
        assert!(!spec.port_limited_reads(16));
        assert!(spec.port_limited_reads(17));
    }

    #[test]
    fn wide_elements_need_parallel_brams() {
        let spec = ArraySpec::new("acc", 1024, 16, 72); // 72-bit elements
        let b = spec.bind();
        assert!(b.bram18 >= 2, "wide port needs ≥ 2 BRAM18, got {}", b.bram18);
    }

    #[test]
    fn zero_area_array() {
        let spec = ArraySpec::new("empty", 0, 16, 8);
        let b = spec.bind();
        assert_eq!(b.bram18, 0);
        assert_eq!(b.lutram_luts, 0);
    }

    #[test]
    fn resources_vector_matches_binding() {
        let spec = ArraySpec::new("w", 256, 256, 8).partition_cols(ArrayPartition::Cyclic(2));
        let r = spec.resources();
        let b = spec.bind();
        assert_eq!(r.bram18, b.bram18);
        assert_eq!(r.luts, b.lutram_luts);
        assert_eq!(r.dsps, 0);
    }
}
