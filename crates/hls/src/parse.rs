//! A miniature loop-nest DSL — "parameterized HLS code" as data.
//!
//! The paper's contribution list includes "a parameterized HLS code that
//! allows for design-time adjustments". This parser gives the repository
//! the same affordance: engine loop structures written as text (one per
//! Algorithm in the paper), parsed into [`LoopNest`]s the scheduler can
//! price. Grammar (whitespace-separated; braces and `=` may abut):
//!
//! ```text
//! nest   := [ "depth" INT ] loop
//! loop   := "for" INT mode [ "{" loop "}" ]
//! mode   := "off" | "ii" "=" INT | "unroll"
//! ```
//!
//! Example — Algorithm 1's QKV engine, one tile:
//!
//! ```
//! use protea_hls::parse::parse_nest;
//! let nest = parse_nest("depth 16 for 64 off { for 96 ii=1 { for 64 unroll } }").unwrap();
//! assert_eq!(nest.pe_count(), 64);
//! ```

use crate::sched::{LoopNest, LoopSpec};

/// Parse errors with a token position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index the error was detected at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Tokens {
    owned: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn new(src: &str) -> Self {
        let spaced = src.replace('{', " { ").replace('}', " } ").replace('=', " = ");
        Self { owned: spaced.split_whitespace().map(str::to_string).collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&str> {
        self.owned.get(self.pos).map(String::as_str)
    }

    fn next_tok(&mut self) -> Option<String> {
        let t = self.owned.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, what: &str) -> Result<(), ParseError> {
        match self.next_tok() {
            Some(ref t) if t == what => Ok(()),
            Some(t) => Err(ParseError {
                at: self.pos - 1,
                message: format!("expected '{what}', found '{t}'"),
            }),
            None => {
                Err(ParseError { at: self.pos, message: format!("expected '{what}', found end") })
            }
        }
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        match self.next_tok() {
            Some(t) => t.parse().map_err(|_| ParseError {
                at: self.pos - 1,
                message: format!("expected integer, found '{t}'"),
            }),
            None => Err(ParseError { at: self.pos, message: "expected integer, found end".into() }),
        }
    }
}

/// Parse a loop-nest description (see module docs for the grammar).
pub fn parse_nest(src: &str) -> Result<LoopNest, ParseError> {
    let mut t = Tokens::new(src);
    let mut depth = 8u32; // default pipeline depth
    if t.peek() == Some("depth") {
        let _ = t.next_tok();
        depth = t.int()? as u32;
    }
    let mut levels = Vec::new();
    parse_loop(&mut t, &mut levels)?;
    if let Some(extra) = t.peek() {
        return Err(ParseError { at: t.pos, message: format!("trailing input '{extra}'") });
    }
    Ok(LoopNest::new(levels, depth))
}

fn parse_loop(t: &mut Tokens, levels: &mut Vec<LoopSpec>) -> Result<(), ParseError> {
    t.expect("for")?;
    let trip = t.int()?;
    let mode = t
        .next_tok()
        .ok_or_else(|| ParseError { at: t.pos, message: "expected loop mode, found end".into() })?;
    let spec = match mode.as_str() {
        // "unroll" marks a spatial level: it sits below the pipelined
        // level, where LoopNest already interprets trips as PE counts.
        "off" | "unroll" => LoopSpec::sequential(trip),
        "ii" => {
            t.expect("=")?;
            let ii = t.int()? as u32;
            if ii == 0 {
                return Err(ParseError { at: t.pos - 1, message: "ii must be >= 1".into() });
            }
            LoopSpec::pipelined(trip, ii)
        }
        other => {
            return Err(ParseError {
                at: t.pos - 1,
                message: format!("unknown loop mode '{other}' (off | ii=N | unroll)"),
            })
        }
    };
    levels.push(spec);
    if t.peek() == Some("{") {
        let _ = t.next_tok();
        parse_loop(t, levels)?;
        t.expect("}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_qkv_shape() {
        let nest = parse_nest("depth 16 for 64 off { for 96 ii=1 { for 64 unroll } }").unwrap();
        assert_eq!(nest.pe_count(), 64);
        let c = nest.cycles();
        assert!(c > 64 * 96 && c < 64 * 140, "cycles = {c}");
    }

    #[test]
    fn algorithm4_ffn_shape() {
        let nest = parse_nest("depth 16 for 64 off { for 128 ii=2 { for 128 unroll } }").unwrap();
        assert_eq!(nest.pe_count(), 128);
        let c = nest.cycles();
        assert!(c > 64 * 256, "II=2 steady state: {c}");
    }

    #[test]
    fn default_depth_applies() {
        let nest = parse_nest("for 10 ii=1").unwrap();
        assert_eq!(nest.cycles(), 8 + 9); // depth 8 + (trip−1)
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_nest("for x off").unwrap_err();
        assert!(e.message.contains("expected integer"));
        let e = parse_nest("for 4 sideways").unwrap_err();
        assert!(e.message.contains("unknown loop mode"));
        let e = parse_nest("for 4 ii=0").unwrap_err();
        assert!(e.message.contains("ii must be"));
        let e = parse_nest("for 4 off extra").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_nest("for 4 off { for 2 off").unwrap_err();
        assert!(e.message.contains("expected '}'"));
    }

    #[test]
    fn braces_need_no_spaces() {
        let a = parse_nest("for 4 off {for 8 ii=1{for 16 unroll}}").unwrap();
        let b = parse_nest("for 4 off { for 8 ii=1 { for 16 unroll } }").unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.pe_count(), b.pe_count());
    }

    #[test]
    fn empty_input_fails_cleanly() {
        assert!(parse_nest("").is_err());
        assert!(parse_nest("depth 4").is_err());
    }

    #[test]
    fn parsed_nest_matches_hand_built() {
        let parsed = parse_nest("depth 16 for 64 off { for 96 ii=1 }").unwrap();
        let built = LoopNest::new(vec![LoopSpec::sequential(64), LoopSpec::pipelined(96, 1)], 16);
        assert_eq!(parsed.cycles(), built.cycles());
    }
}
