//! Initiation-interval analysis: why the FFN engines run at II = 2.
//!
//! Vitis-HLS schedules a pipelined loop at the smallest II that
//! satisfies (a) recurrence constraints — a value computed in one
//! iteration and consumed `distance` iterations later cannot recur
//! faster than `ceil(latency / distance)` — and (b) resource
//! constraints — a memory bank with `P` ports can serve at most `P`
//! accesses per II window.
//!
//! ProTEA's engine loops differ in exactly one way: the MHA engines
//! accumulate in *registers* (`S_q ← S_q + …`, scalars held in FFs),
//! while the FFN engines accumulate into a **BRAM-backed output buffer**
//! (`output[i][m] ← output[i][j] + sum`, Algorithm 4) — a read-modify-
//! write through a dual-port memory that also services the stream-out,
//! plus the recurrence through the adder. Running this analysis on the
//! two loop shapes yields II = 1 for MHA and II = 2 for FFN — the values
//! the Table I calibration needs (tests below assert both).

/// One memory accessed inside a pipelined loop body.
#[derive(Debug, Clone, Copy)]
pub struct MemAccess {
    /// Reads per iteration hitting the same bank.
    pub reads_per_iter: u32,
    /// Writes per iteration hitting the same bank.
    pub writes_per_iter: u32,
    /// Ports on that bank (BRAM true dual-port = 2; registers = ∞,
    /// model with `u32::MAX`).
    pub ports: u32,
}

impl MemAccess {
    /// Minimum II this access pattern permits: `ceil(accesses / ports)`.
    #[must_use]
    pub fn min_ii(&self) -> u32 {
        let accesses = self.reads_per_iter + self.writes_per_iter;
        if accesses == 0 {
            return 1;
        }
        accesses.div_ceil(self.ports.max(1)).max(1)
    }
}

/// A loop-carried recurrence (value produced and consumed across
/// iterations).
#[derive(Debug, Clone, Copy)]
pub struct Recurrence {
    /// Combinational+register latency of the producing operation chain
    /// (cycles).
    pub latency: u32,
    /// Iteration distance between production and consumption.
    pub distance: u32,
}

impl Recurrence {
    /// Minimum II: `ceil(latency / distance)`.
    #[must_use]
    pub fn min_ii(&self) -> u32 {
        assert!(self.distance > 0, "recurrence distance must be positive");
        self.latency.div_ceil(self.distance).max(1)
    }
}

/// The II analysis of one pipelined loop body.
#[derive(Debug, Clone, Default)]
pub struct IiAnalysis {
    memories: Vec<MemAccess>,
    recurrences: Vec<Recurrence>,
}

impl IiAnalysis {
    /// An empty analysis (II = 1).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a memory-port constraint.
    #[must_use]
    pub fn with_memory(mut self, m: MemAccess) -> Self {
        self.memories.push(m);
        self
    }

    /// Add a recurrence constraint.
    #[must_use]
    pub fn with_recurrence(mut self, r: Recurrence) -> Self {
        self.recurrences.push(r);
        self
    }

    /// The achievable II: the max over all constraints.
    #[must_use]
    pub fn achievable_ii(&self) -> u32 {
        self.memories
            .iter()
            .map(MemAccess::min_ii)
            .chain(self.recurrences.iter().map(Recurrence::min_ii))
            .max()
            .unwrap_or(1)
    }

    /// ProTEA's MHA engine inner loop (Algorithm 1): operand banks are
    /// fully partitioned (one PE per bank, 1 read/iter on a 2-port
    /// memory); the accumulators `S_q/S_k/S_v` live in registers, so the
    /// accumulation recurrence retires in a single cycle.
    #[must_use]
    pub fn protea_mha_loop() -> Self {
        Self::new()
            .with_memory(MemAccess { reads_per_iter: 1, writes_per_iter: 0, ports: 2 }) // X bank
            .with_memory(MemAccess { reads_per_iter: 1, writes_per_iter: 0, ports: 2 }) // W bank
            .with_recurrence(Recurrence { latency: 1, distance: 1 }) // FF accumulator
    }

    /// ProTEA's FFN engine inner loop (Algorithm 4): operand banks as
    /// above, but the output accumulation is a read-modify-write into a
    /// dual-port BRAM that the same window also uses for the running
    /// partial-sum read — 2 accesses/iteration on top of the read — and
    /// the BRAM read latency puts 2 cycles into the recurrence.
    #[must_use]
    pub fn protea_ffn_loop() -> Self {
        Self::new()
            .with_memory(MemAccess { reads_per_iter: 1, writes_per_iter: 0, ports: 2 }) // input bank
            .with_memory(MemAccess { reads_per_iter: 1, writes_per_iter: 0, ports: 2 }) // weight bank
            // output buffer: read old partial + write new partial, and the
            // stream-out path shares the second port half the time → the
            // binding constraint is the RMW recurrence through BRAM:
            .with_memory(MemAccess { reads_per_iter: 1, writes_per_iter: 1, ports: 2 })
            .with_recurrence(Recurrence { latency: 2, distance: 1 }) // BRAM RMW
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_math() {
        assert_eq!(MemAccess { reads_per_iter: 1, writes_per_iter: 0, ports: 2 }.min_ii(), 1);
        assert_eq!(MemAccess { reads_per_iter: 2, writes_per_iter: 1, ports: 2 }.min_ii(), 2);
        assert_eq!(MemAccess { reads_per_iter: 4, writes_per_iter: 0, ports: 1 }.min_ii(), 4);
        assert_eq!(MemAccess { reads_per_iter: 0, writes_per_iter: 0, ports: 2 }.min_ii(), 1);
    }

    #[test]
    fn recurrence_math() {
        assert_eq!(Recurrence { latency: 1, distance: 1 }.min_ii(), 1);
        assert_eq!(Recurrence { latency: 2, distance: 1 }.min_ii(), 2);
        assert_eq!(Recurrence { latency: 5, distance: 2 }.min_ii(), 3);
    }

    #[test]
    fn mha_loops_achieve_ii_1() {
        assert_eq!(IiAnalysis::protea_mha_loop().achievable_ii(), 1);
    }

    #[test]
    fn ffn_loops_are_ii_2_bound() {
        // The mechanical justification for the Table I calibration.
        assert_eq!(IiAnalysis::protea_ffn_loop().achievable_ii(), 2);
    }

    #[test]
    fn worst_constraint_governs() {
        let a = IiAnalysis::new()
            .with_memory(MemAccess { reads_per_iter: 1, writes_per_iter: 0, ports: 2 })
            .with_recurrence(Recurrence { latency: 6, distance: 2 });
        assert_eq!(a.achievable_ii(), 3);
    }

    #[test]
    fn empty_analysis_is_ii_1() {
        assert_eq!(IiAnalysis::new().achievable_ii(), 1);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_rejected() {
        let _ = Recurrence { latency: 1, distance: 0 }.min_ii();
    }
}
