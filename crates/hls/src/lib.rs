//! # protea-hls — a model of Vitis-HLS loop scheduling and binding
//!
//! ProTEA is written in C for Vitis HLS; its performance is governed by a
//! handful of scheduling rules the paper leans on explicitly (Algorithms
//! 1–4 carry the pragmas inline). This crate models those rules so the
//! simulator can derive cycle counts and resource bindings from the same
//! loop structure the paper publishes:
//!
//! * [`pragma`] — `#pragma HLS pipeline` (with II), `unroll`,
//!   `array_partition` as typed values.
//! * [`sched`] — the scheduling algebra: a pipelined loop with initiation
//!   interval `II`, depth `D` and trip count `n` takes `D + II·(n−1)`
//!   cycles; a sequential (pipeline-off) loop multiplies its body and adds
//!   per-iteration control overhead; a fully-unrolled loop becomes
//!   spatial hardware (PEs) instead of time.
//! * [`array`] — `array_partition` → memory banks → BRAM18/LUTRAM binding
//!   with dual-port constraints.
//! * [`cost`] — per-PE and per-functional-unit resource costs calibrated
//!   against Table I of the paper (the calibration is exact for the
//!   published design point; see `cost::calibration` tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cost;
pub mod ii;
pub mod parse;
pub mod pragma;
pub mod sched;

pub use array::{ArraySpec, MemBinding};
pub use cost::{FunctionalUnitCost, PeCost};
pub use ii::{IiAnalysis, MemAccess, Recurrence};
pub use parse::{parse_nest, ParseError};
pub use pragma::{ArrayPartition, Pipeline};
pub use sched::{pipelined_loop_cycles, sequential_loop_cycles, LoopNest, LoopSpec};
