//! The HLS scheduling algebra: loop structure → cycles.
//!
//! Vitis-HLS reports loop latency with two rules this module encodes:
//!
//! * **Pipelined loop** (`pipeline II=k`, depth `D`, trip `n`):
//!   `cycles = D + k·(n−1)` — the pipeline fills once, then retires an
//!   iteration every `k` cycles. Loops nested inside are fully unrolled
//!   into spatial hardware.
//! * **Sequential loop** (`pipeline off`, trip `n`, body `B`):
//!   `cycles = n·(B + o) + e` where `o` is per-iteration control overhead
//!   (increment/compare/branch, typically 1–2 cycles) and `e` loop
//!   entry/exit.
//!
//! ProTEA's engines are all a sequential row loop wrapping one pipelined
//! loop wrapping one fully-unrolled reduction — Algorithms 1–4.

use crate::pragma::Pipeline;

/// Cycles for a pipelined loop: `depth + ii·(trip − 1)`; zero-trip loops
/// cost nothing (HLS emits a guard).
#[must_use]
pub fn pipelined_loop_cycles(trip: u64, ii: u32, depth: u32) -> u64 {
    if trip == 0 {
        return 0;
    }
    u64::from(depth) + u64::from(ii) * (trip - 1)
}

/// Cycles for a sequential loop of `trip` iterations, each costing
/// `body` cycles plus `iter_overhead` control, plus `entry_exit` once.
#[must_use]
pub fn sequential_loop_cycles(trip: u64, body: u64, iter_overhead: u32, entry_exit: u32) -> u64 {
    if trip == 0 {
        return u64::from(entry_exit);
    }
    trip * (body + u64::from(iter_overhead)) + u64::from(entry_exit)
}

/// One loop level in a nest.
#[derive(Debug, Clone, Copy)]
pub struct LoopSpec {
    /// Trip count at runtime (may be below the synthesized maximum).
    pub trip: u64,
    /// Pipeline pragma on this loop.
    pub pipeline: Pipeline,
}

impl LoopSpec {
    /// A sequential (pipeline-off) loop.
    #[must_use]
    pub fn sequential(trip: u64) -> Self {
        Self { trip, pipeline: Pipeline::Off }
    }

    /// A pipelined loop with initiation interval `ii`.
    #[must_use]
    pub fn pipelined(trip: u64, ii: u32) -> Self {
        assert!(ii >= 1, "initiation interval must be >= 1");
        Self { trip, pipeline: Pipeline::Ii(ii) }
    }
}

/// A loop nest, outermost first. Everything nested below the first
/// pipelined level is fully unrolled (the Vitis rule), so trips below it
/// contribute PEs, not cycles.
#[derive(Debug, Clone)]
pub struct LoopNest {
    levels: Vec<LoopSpec>,
    /// Pipeline depth of the innermost body (operation chain through the
    /// unrolled reduction: multiplier + adder tree + writeback).
    pipeline_depth: u32,
    /// Per-iteration control overhead of sequential levels.
    iter_overhead: u32,
    /// Entry/exit overhead of sequential levels.
    entry_exit: u32,
}

impl LoopNest {
    /// Build a nest from outermost to innermost.
    #[must_use]
    pub fn new(levels: Vec<LoopSpec>, pipeline_depth: u32) -> Self {
        assert!(!levels.is_empty(), "loop nest needs at least one level");
        Self { levels, pipeline_depth, iter_overhead: 2, entry_exit: 2 }
    }

    /// Override control overheads (calibration knob).
    #[must_use]
    pub fn with_overheads(mut self, iter_overhead: u32, entry_exit: u32) -> Self {
        self.iter_overhead = iter_overhead;
        self.entry_exit = entry_exit;
        self
    }

    /// Latency in cycles of one execution of the whole nest.
    ///
    /// Levels at and below the first pipelined level collapse into a
    /// single pipelined schedule: their trip counts multiply into the
    /// effective trip (per the Vitis rule that `pipeline` flattens
    /// perfectly-nested inner loops), and anything marked below is
    /// unrolled (spatial).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles_from(0)
    }

    fn cycles_from(&self, level: usize) -> u64 {
        let Some(spec) = self.levels.get(level) else {
            // innermost body below all loops: one pipeline pass
            return u64::from(self.pipeline_depth);
        };
        match spec.pipeline {
            Pipeline::Ii(ii) => {
                // This and all deeper sequential trips flatten into one
                // pipelined iteration space; deeper levels are unrolled
                // (spatial) and do not multiply the trip count.
                pipelined_loop_cycles(spec.trip, ii, self.pipeline_depth)
            }
            Pipeline::Off => {
                let body = self.cycles_from(level + 1);
                sequential_loop_cycles(spec.trip, body, self.iter_overhead, self.entry_exit)
            }
        }
    }

    /// Number of PEs (parallel multiply-accumulate lanes) this nest
    /// synthesizes: the product of trip counts of levels *below* the first
    /// pipelined level — those loops are fully unrolled.
    ///
    /// Uses the synthesized (maximum) trips, so pass the synthesis-time
    /// nest here, not a runtime-clamped one.
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        let mut seen_pipelined = false;
        let mut pes = 1u64;
        for spec in &self.levels {
            if seen_pipelined {
                pes = pes.saturating_mul(spec.trip.max(1));
            }
            if spec.pipeline.is_pipelined() {
                seen_pipelined = true;
            }
        }
        pes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_formula() {
        assert_eq!(pipelined_loop_cycles(1, 1, 10), 10);
        assert_eq!(pipelined_loop_cycles(100, 1, 10), 109);
        assert_eq!(pipelined_loop_cycles(100, 2, 10), 208);
        assert_eq!(pipelined_loop_cycles(0, 1, 10), 0);
    }

    #[test]
    fn sequential_formula() {
        assert_eq!(sequential_loop_cycles(4, 10, 2, 3), 4 * 12 + 3);
        assert_eq!(sequential_loop_cycles(0, 10, 2, 3), 3);
    }

    #[test]
    fn algorithm1_shape() {
        // Alg. 1 (QKV): for i in SL (off) { for k in d/h (II=1) { unrolled TS } }
        // per tile: SL · (depth + (d/h − 1) + overhead) + entry
        let sl = 64;
        let dk = 96;
        let depth = 16;
        let nest = LoopNest::new(
            vec![
                LoopSpec::sequential(sl),
                LoopSpec::pipelined(dk, 1),
                LoopSpec::sequential(64), // unrolled TS_MHA level (spatial)
            ],
            depth,
        );
        let per_row = u64::from(depth) + (dk - 1);
        assert_eq!(nest.cycles(), sl * (per_row + 2) + 2);
        assert_eq!(nest.pe_count(), 64);
    }

    #[test]
    fn pe_count_multiplies_inner_levels() {
        let nest = LoopNest::new(
            vec![
                LoopSpec::sequential(10),
                LoopSpec::pipelined(20, 1),
                LoopSpec::sequential(4),
                LoopSpec::sequential(8),
            ],
            10,
        );
        assert_eq!(nest.pe_count(), 32);
    }

    #[test]
    fn no_pipelined_level_means_one_pe() {
        let nest = LoopNest::new(vec![LoopSpec::sequential(10), LoopSpec::sequential(10)], 5);
        assert_eq!(nest.pe_count(), 1);
        // fully sequential: 10 · (10·(5+2)+2 + 2) + 2
        assert_eq!(nest.cycles(), 10 * (10 * 7 + 2 + 2) + 2);
    }

    #[test]
    fn runtime_trip_scaling_is_linear_in_pipelined_trip() {
        let mk = |trip| {
            LoopNest::new(vec![LoopSpec::sequential(64), LoopSpec::pipelined(trip, 1)], 16).cycles()
        };
        let a = mk(96);
        let b = mk(192);
        // doubling the pipelined trip adds exactly 64·96 cycles (II=1)
        assert_eq!(b - a, 64 * 96);
    }

    #[test]
    fn ii2_doubles_steady_state() {
        let mk = |ii| LoopNest::new(vec![LoopSpec::pipelined(1000, ii)], 10).cycles();
        assert_eq!(mk(2) - mk(1), 999);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_nest_rejected() {
        let _ = LoopNest::new(vec![], 10);
    }
}
