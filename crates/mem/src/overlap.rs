//! The double-buffer (ping-pong) overlap scheduler.
//!
//! ProTEA's headline memory optimization: "During each iteration, data
//! for one tile is loaded initially. The PEs then compute on this data…"
//! with the next tile's load overlapped — the reported latency "accounts
//! for the overlap of data loading and computation".
//!
//! With two buffers, the DMA may fetch tile `i+1` while the engine
//! computes on tile `i`, but fetching tile `i+2` must wait until the
//! engine releases the buffer holding tile `i`. Formally:
//!
//! ```text
//! finish_load(i)    = max(finish_load(i−1), finish_compute(i−2)) + L(i)
//! finish_compute(i) = max(finish_compute(i−1), finish_load(i)) + C(i)
//! ```
//!
//! [`simulate_double_buffered`] plays this out on the event kernel (so
//! per-event utilization statistics fall out), and the tests verify the
//! event-driven result equals the closed-form recurrence on random
//! schedules — the kind of redundancy that catches scheduler bugs.

use protea_hwsim::{Cycles, Simulator, Utilization};

/// Outcome of an overlap simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapReport {
    /// End-to-end cycles.
    pub total: Cycles,
    /// Cycles the DMA spent transferring.
    pub load_busy: Cycles,
    /// Cycles the engine spent computing.
    pub compute_busy: Cycles,
    /// Cycles the engine sat idle waiting for data (`total − compute_busy
    /// − trailing idle`); with perfect overlap this approaches the first
    /// load only.
    pub compute_stall: Cycles,
}

impl OverlapReport {
    /// Fraction of total time the engine computed.
    #[must_use]
    pub fn compute_efficiency(&self) -> f64 {
        if self.total.get() == 0 {
            return 1.0;
        }
        self.compute_busy.get() as f64 / self.total.get() as f64
    }
}

#[derive(Default)]
struct State {
    load_done: Vec<bool>,
    compute_done: Vec<bool>,
    next_load: usize,
    next_compute: usize,
    dma_busy: bool,
    engine_busy: bool,
    load_util: Utilization,
    compute_util: Utilization,
}

/// Simulate `accesses` (pairs of load, compute cycles) through a
/// double-buffered engine, event-driven.
#[must_use]
pub fn simulate_double_buffered(accesses: &[(Cycles, Cycles)]) -> OverlapReport {
    let n = accesses.len();
    if n == 0 {
        return OverlapReport {
            total: Cycles::ZERO,
            load_busy: Cycles::ZERO,
            compute_busy: Cycles::ZERO,
            compute_stall: Cycles::ZERO,
        };
    }
    let accesses: Vec<(Cycles, Cycles)> = accesses.to_vec();
    let mut st =
        State { load_done: vec![false; n], compute_done: vec![false; n], ..State::default() };
    let mut sim = Simulator::<State>::new();

    // Try to start the next load / compute if their dependencies hold.
    fn advance(sim: &mut Simulator<State>, st: &mut State, accesses: &[(Cycles, Cycles)]) {
        let n = accesses.len();
        // Start load i when: DMA idle, previous load done (implicit via
        // next_load ordering), and the buffer is free: compute(i-2) done.
        if !st.dma_busy && st.next_load < n {
            let i = st.next_load;
            let buffer_free = i < 2 || st.compute_done[i - 2];
            if buffer_free {
                st.dma_busy = true;
                st.next_load += 1;
                st.load_util.begin(sim.now());
                let dur = accesses[i].0;
                sim.schedule_in(dur, move |sim, st| {
                    st.load_done[i] = true;
                    st.dma_busy = false;
                    st.load_util.end(sim.now());
                    // `accesses` is captured by the outer closure chain via
                    // re-entry below; durations are re-read from the model.
                    // (handled by the caller-side advance wrapper)
                });
            }
        }
        // Start compute i when: engine idle and load(i) done.
        if !st.engine_busy && st.next_compute < n && st.load_done[st.next_compute] {
            let i = st.next_compute;
            st.engine_busy = true;
            st.next_compute += 1;
            st.compute_util.begin(sim.now());
            let dur = accesses[i].1;
            sim.schedule_in(dur, move |sim, st| {
                st.compute_done[i] = true;
                st.engine_busy = false;
                st.compute_util.end(sim.now());
            });
        }
    }

    // Drive: after every event, re-attempt to advance both units. The
    // kernel has no global "on any event" hook, so we interleave manually:
    // run one event, then advance, until quiescent.
    advance(&mut sim, &mut st, &accesses);
    while sim.step(&mut st) {
        advance(&mut sim, &mut st, &accesses);
    }
    debug_assert!(st.compute_done.iter().all(|&d| d), "scheduler deadlocked");
    let total = sim.now();
    let load_busy = st.load_util.busy_cycles();
    let compute_busy = st.compute_util.busy_cycles();
    OverlapReport { total, load_busy, compute_busy, compute_stall: total - compute_busy }
}

/// The intervals one access occupied on the DMA and engine timelines.
///
/// Produced by [`simulate_double_buffered_spans`] /
/// [`simulate_serial_spans`] for trace export: the load interval is a
/// DMA-burst span, the compute interval a tile-visit span. Invariants
/// (tested): per-unit intervals never overlap across accesses, and
/// `compute_start >= load_end` for each access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSpans {
    /// DMA burst start.
    pub load_start: Cycles,
    /// DMA burst end (`load_start + L`).
    pub load_end: Cycles,
    /// Engine visit start (never before `load_end`).
    pub compute_start: Cycles,
    /// Engine visit end (`compute_start + C`).
    pub compute_end: Cycles,
}

/// [`simulate_double_buffered`] plus the per-access timeline.
///
/// The schedule is played out through the same recurrence the event
/// kernel obeys (cross-checked in tests), so the returned report is
/// identical to the event-driven one — callers that only want spans for
/// tracing pay no behavioral difference for asking.
#[must_use]
pub fn simulate_double_buffered_spans(
    accesses: &[(Cycles, Cycles)],
) -> (OverlapReport, Vec<AccessSpans>) {
    let n = accesses.len();
    let mut spans: Vec<AccessSpans> = Vec::with_capacity(n);
    let mut load_busy = Cycles::ZERO;
    let mut compute_busy = Cycles::ZERO;
    for (i, &(l, c)) in accesses.iter().enumerate() {
        let prev_load = if i > 0 { spans[i - 1].load_end } else { Cycles::ZERO };
        let buffer_free = if i >= 2 { spans[i - 2].compute_end } else { Cycles::ZERO };
        let load_start = prev_load.max(buffer_free);
        let load_end = load_start.saturating_add(l);
        let prev_compute = if i > 0 { spans[i - 1].compute_end } else { Cycles::ZERO };
        let compute_start = prev_compute.max(load_end);
        let compute_end = compute_start.saturating_add(c);
        spans.push(AccessSpans { load_start, load_end, compute_start, compute_end });
        load_busy = load_busy.saturating_add(l);
        compute_busy = compute_busy.saturating_add(c);
    }
    let total = spans.last().map_or(Cycles::ZERO, |s| s.compute_end);
    (OverlapReport { total, load_busy, compute_busy, compute_stall: total - compute_busy }, spans)
}

/// [`simulate_serial`] plus the per-access timeline.
#[must_use]
pub fn simulate_serial_spans(accesses: &[(Cycles, Cycles)]) -> (OverlapReport, Vec<AccessSpans>) {
    let mut spans = Vec::with_capacity(accesses.len());
    let mut now = Cycles::ZERO;
    for &(l, c) in accesses {
        let load_start = now;
        let load_end = load_start.saturating_add(l);
        let compute_end = load_end.saturating_add(c);
        spans.push(AccessSpans { load_start, load_end, compute_start: load_end, compute_end });
        now = compute_end;
    }
    (simulate_serial(accesses), spans)
}

/// The closed-form recurrence (documentation + cross-check oracle).
#[must_use]
pub fn analytic_double_buffered(accesses: &[(Cycles, Cycles)]) -> Cycles {
    let n = accesses.len();
    if n == 0 {
        return Cycles::ZERO;
    }
    let mut finish_load = vec![Cycles::ZERO; n];
    let mut finish_compute = vec![Cycles::ZERO; n];
    for i in 0..n {
        let prev_load = if i > 0 { finish_load[i - 1] } else { Cycles::ZERO };
        let buffer_free = if i >= 2 { finish_compute[i - 2] } else { Cycles::ZERO };
        finish_load[i] = prev_load.max(buffer_free).saturating_add(accesses[i].0);
        let prev_compute = if i > 0 { finish_compute[i - 1] } else { Cycles::ZERO };
        finish_compute[i] = prev_compute.max(finish_load[i]).saturating_add(accesses[i].1);
    }
    finish_compute[n - 1]
}

/// No overlap at all: every access loads then computes, serially. The
/// ablation baseline ("double buffering off").
#[must_use]
pub fn simulate_serial(accesses: &[(Cycles, Cycles)]) -> OverlapReport {
    let mut total = Cycles::ZERO;
    let mut load_busy = Cycles::ZERO;
    let mut compute_busy = Cycles::ZERO;
    for &(l, c) in accesses {
        total = total.saturating_add(l).saturating_add(c);
        load_busy = load_busy.saturating_add(l);
        compute_busy = compute_busy.saturating_add(c);
    }
    OverlapReport { total, load_busy, compute_busy, compute_stall: total - compute_busy }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(v: u64) -> Cycles {
        Cycles(v)
    }

    #[test]
    fn single_access_no_overlap_possible() {
        let r = simulate_double_buffered(&[(cy(10), cy(20))]);
        assert_eq!(r.total, cy(30));
        assert_eq!(r.compute_stall, cy(10));
    }

    #[test]
    fn compute_bound_hides_all_but_first_load() {
        // L=10, C=100, 5 accesses: total = 10 + 5·100.
        let acc = vec![(cy(10), cy(100)); 5];
        let r = simulate_double_buffered(&acc);
        assert_eq!(r.total, cy(10 + 500));
        assert_eq!(r.compute_busy, cy(500));
        assert_eq!(r.compute_stall, cy(10));
    }

    #[test]
    fn load_bound_exposes_loads() {
        // L=100, C=10: loads serialize; total = 5·100 + final compute.
        let acc = vec![(cy(100), cy(10)); 5];
        let r = simulate_double_buffered(&acc);
        assert_eq!(r.total, cy(510));
    }

    #[test]
    fn event_sim_matches_analytic_on_random_schedules() {
        // deterministic pseudo-random schedules
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for len in [1usize, 2, 3, 7, 20, 100] {
            let acc: Vec<(Cycles, Cycles)> =
                (0..len).map(|_| (cy(next() % 200), cy(next() % 200))).collect();
            let sim = simulate_double_buffered(&acc);
            let ana = analytic_double_buffered(&acc);
            assert_eq!(sim.total, ana, "len={len}");
        }
    }

    #[test]
    fn zero_duration_edges() {
        let acc = vec![(cy(0), cy(5)), (cy(7), cy(0)), (cy(0), cy(0))];
        let sim = simulate_double_buffered(&acc);
        assert_eq!(sim.total, analytic_double_buffered(&acc));
    }

    #[test]
    fn overlap_never_slower_than_serial_never_faster_than_bounds() {
        let acc: Vec<(Cycles, Cycles)> =
            (0..20).map(|i| (cy(30 + i % 7), cy(50 + (i * 13) % 11))).collect();
        let over = simulate_double_buffered(&acc);
        let serial = simulate_serial(&acc);
        assert!(over.total <= serial.total);
        let sum_c: u64 = acc.iter().map(|a| a.1.get()).sum();
        let sum_l: u64 = acc.iter().map(|a| a.0.get()).sum();
        // lower bounds: all compute, or all loads (single DMA)
        assert!(over.total.get() >= sum_c.max(sum_l));
    }

    #[test]
    fn span_timeline_matches_event_sim_and_never_overlaps() {
        let mut seed = 0xDEADBEEFCAFEF00Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for len in [0usize, 1, 2, 3, 8, 33, 100] {
            let acc: Vec<(Cycles, Cycles)> =
                (0..len).map(|_| (cy(next() % 150), cy(next() % 150))).collect();
            let event = simulate_double_buffered(&acc);
            let (report, spans) = simulate_double_buffered_spans(&acc);
            assert_eq!(report, event, "len={len}");
            assert_eq!(spans.len(), len);
            for (i, s) in spans.iter().enumerate() {
                assert_eq!(s.load_end - s.load_start, acc[i].0);
                assert_eq!(s.compute_end - s.compute_start, acc[i].1);
                assert!(s.compute_start >= s.load_end, "compute before its load, i={i}");
                if i > 0 {
                    assert!(s.load_start >= spans[i - 1].load_end, "DMA overlap, i={i}");
                    assert!(s.compute_start >= spans[i - 1].compute_end, "engine overlap, i={i}");
                }
            }
            if let Some(last) = spans.last() {
                assert_eq!(last.compute_end, report.total);
            }
        }
    }

    #[test]
    fn serial_spans_match_serial_report() {
        let acc = vec![(cy(3), cy(5)), (cy(0), cy(2)), (cy(7), cy(0))];
        let (report, spans) = simulate_serial_spans(&acc);
        assert_eq!(report, simulate_serial(&acc));
        assert_eq!(spans[0].compute_end, cy(8));
        assert_eq!(spans[1].load_start, cy(8));
        assert_eq!(spans.last().unwrap().compute_end, report.total);
    }

    #[test]
    fn empty_schedule() {
        let r = simulate_double_buffered(&[]);
        assert_eq!(r.total, Cycles::ZERO);
        assert_eq!(r.compute_efficiency(), 1.0);
    }

    #[test]
    fn efficiency_metric() {
        let acc = vec![(cy(10), cy(90)); 10];
        let r = simulate_double_buffered(&acc);
        assert!(r.compute_efficiency() > 0.95);
        let bad = vec![(cy(90), cy(10)); 10];
        let r2 = simulate_double_buffered(&bad);
        assert!(r2.compute_efficiency() < 0.2);
    }
}
