//! Tile transfer descriptors.
//!
//! The accelerator's controller issues one descriptor per tile load
//! ("during each iteration, distinct data is loaded into the W_q, W_k,
//! W_v, and X_i buffers"). A descriptor knows its size and can price
//! itself on a port + channel pair.

use crate::axi::AxiPort;
use crate::fault::{FaultStream, TransferFault};
use crate::hbm::{bounded_transfer_cycles, ChannelShare};
use protea_hwsim::Cycles;

/// One tile load: `bytes` of contiguous weight/input data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileTransfer {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Human-readable tag for reports ("W_q tile 3", "FFN2 W (2,5)").
    pub tag: &'static str,
}

impl TileTransfer {
    /// A descriptor for a `rows × cols` tile of `elem_bytes`-wide elements.
    #[must_use]
    pub fn for_tile(rows: u64, cols: u64, elem_bytes: u64, tag: &'static str) -> Self {
        Self { bytes: rows * cols * elem_bytes, tag }
    }

    /// Cycles to complete on `port` backed by `share`.
    #[must_use]
    pub fn cycles(&self, port: &AxiPort, share: &ChannelShare) -> Cycles {
        bounded_transfer_cycles(port, share, self.bytes)
    }

    /// One **attempt** at this transfer under fault injection at
    /// simulated time `now_ns`: the clean transfer time plus whatever
    /// fault (if any) `stream` deals this attempt. A
    /// [`TransferFault::Stall`] is already folded into the returned
    /// cycle count; ECC and timeout faults are returned for the caller's
    /// watchdog/retry policy to price (`protea-core`'s driver layer).
    pub fn attempt(
        &self,
        port: &AxiPort,
        share: &ChannelShare,
        stream: &mut FaultStream,
        now_ns: u64,
    ) -> (Cycles, Option<TransferFault>) {
        let clean = self.cycles(port, share);
        match stream.sample_transfer(now_ns) {
            Some(TransferFault::Stall { extra_cycles }) => (
                clean.saturating_add(Cycles(extra_cycles)),
                Some(TransferFault::Stall { extra_cycles }),
            ),
            other => (clean, other),
        }
    }
}

/// Price a batch of transfers that proceed **sequentially** on one port
/// (one AXI master services one engine's buffers in order).
#[must_use]
pub fn sequential_cycles(
    transfers: &[TileTransfer],
    port: &AxiPort,
    share: &ChannelShare,
) -> Cycles {
    transfers.iter().fold(Cycles::ZERO, |acc, t| acc.saturating_add(t.cycles(port, share)))
}

/// Price a batch of transfers on **independent ports** (per-head masters
/// run concurrently): the slowest governs.
#[must_use]
pub fn parallel_cycles(transfers: &[TileTransfer], port: &AxiPort, share: &ChannelShare) -> Cycles {
    transfers.iter().fold(Cycles::ZERO, |acc, t| acc.max(t.cycles(port, share)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> AxiPort {
        AxiPort::new(128)
    }

    fn share() -> ChannelShare {
        ChannelShare::fixed(1e9) // memory never the bottleneck here
    }

    #[test]
    fn tile_sizes() {
        // One MHA weight tile: (d/h) × TS_MHA × 1 B = 96 × 64 = 6 KiB.
        let t = TileTransfer::for_tile(96, 64, 1, "W_q");
        assert_eq!(t.bytes, 6144);
    }

    #[test]
    fn sequential_adds_parallel_maxes() {
        let a = TileTransfer { bytes: 1024, tag: "a" };
        let b = TileTransfer { bytes: 2048, tag: "b" };
        let seq = sequential_cycles(&[a, b], &port(), &share());
        let par = parallel_cycles(&[a, b], &port(), &share());
        assert_eq!(seq, a.cycles(&port(), &share()).saturating_add(b.cycles(&port(), &share())));
        assert_eq!(par, b.cycles(&port(), &share()));
        assert!(seq > par);
    }

    #[test]
    fn empty_batches() {
        assert_eq!(sequential_cycles(&[], &port(), &share()), Cycles::ZERO);
        assert_eq!(parallel_cycles(&[], &port(), &share()), Cycles::ZERO);
    }

    #[test]
    fn faulty_attempt_prices_stalls_and_reports_the_rest() {
        use crate::fault::{FaultKind, FaultRates, FaultStream, TransferFault};
        let t = TileTransfer { bytes: 1024, tag: "w" };
        let clean = t.cycles(&port(), &share());
        let mut quiet = FaultStream::seeded(1, 0, FaultRates::ZERO);
        assert_eq!(t.attempt(&port(), &share(), &mut quiet, 0), (clean, None));
        let mut noisy = FaultStream::seeded(1, 0, FaultRates::ZERO)
            .with_events([(0, FaultKind::AxiStall), (1, FaultKind::EccDouble)]);
        let (stalled, fault) = t.attempt(&port(), &share(), &mut noisy, 0);
        assert!(stalled > clean, "stall must extend the transfer");
        assert!(matches!(fault, Some(TransferFault::Stall { .. })));
        let (cycles, fault) = t.attempt(&port(), &share(), &mut noisy, 1);
        assert_eq!(cycles, clean, "non-stall faults do not change the attempt time");
        assert_eq!(fault, Some(TransferFault::EccDouble));
    }
}
