//! AXI4 master read/write burst timing.

use protea_hwsim::Cycles;

/// An AXI4 master port configuration.
///
/// ProTEA's HLS code uses `m_axi` interfaces; Vitis defaults to 512-bit
/// ports on Alveo HBM but the paper's modest bandwidth needs and the
/// Table I latency shape are consistent with narrower ports — the preset
/// lives with the accelerator configuration, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiPort {
    /// Data bus width in bits (power of two, 32–1024).
    pub data_bits: u32,
    /// Maximum beats per burst (AXI4 allows up to 256).
    pub max_burst_beats: u32,
    /// Cycles of request/address latency per burst (AR handshake + memory
    /// first-word latency).
    pub burst_overhead: u32,
}

impl AxiPort {
    /// A port with the given width and typical burst parameters.
    ///
    /// # Panics
    /// Panics if `data_bits` is not a power of two in 32..=1024.
    #[must_use]
    pub fn new(data_bits: u32) -> Self {
        assert!(
            data_bits.is_power_of_two() && (32..=1024).contains(&data_bits),
            "AXI width must be a power of two in 32..=1024, got {data_bits}"
        );
        Self { data_bits, max_burst_beats: 64, burst_overhead: 8 }
    }

    /// Override burst length.
    #[must_use]
    pub fn with_burst(mut self, beats: u32, overhead: u32) -> Self {
        assert!(beats >= 1);
        self.max_burst_beats = beats;
        self.burst_overhead = overhead;
        self
    }

    /// Bytes moved per beat.
    #[must_use]
    pub fn bytes_per_beat(&self) -> u64 {
        u64::from(self.data_bits / 8)
    }

    /// Cycles to read `bytes` contiguous bytes, assuming the memory side
    /// can stream at full port rate (see [`crate::hbm`] for the slower-
    /// memory case): data beats plus per-burst overhead.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let beats = bytes.div_ceil(self.bytes_per_beat());
        let bursts = beats.div_ceil(u64::from(self.max_burst_beats));
        Cycles(beats + bursts * u64::from(self.burst_overhead))
    }

    /// Effective bandwidth in bytes/cycle for a transfer of `bytes`
    /// (asymptotically `bytes_per_beat`, lower for short transfers).
    #[must_use]
    pub fn effective_bytes_per_cycle(&self, bytes: u64) -> f64 {
        let c = self.transfer_cycles(bytes).get();
        if c == 0 {
            0.0
        } else {
            bytes as f64 / c as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_arithmetic() {
        let p = AxiPort::new(128); // 16 B/beat
        assert_eq!(p.bytes_per_beat(), 16);
        // 1 KiB = 64 beats = 1 burst of 64 + 8 overhead
        assert_eq!(p.transfer_cycles(1024), protea_hwsim::Cycles(64 + 8));
    }

    #[test]
    fn multiple_bursts() {
        let p = AxiPort::new(128).with_burst(16, 4);
        // 1 KiB = 64 beats = 4 bursts → 64 + 16 overhead
        assert_eq!(p.transfer_cycles(1024).get(), 64 + 4 * 4);
    }

    #[test]
    fn partial_beat_rounds_up() {
        let p = AxiPort::new(128);
        assert_eq!(p.transfer_cycles(1).get(), 1 + 8);
        assert_eq!(p.transfer_cycles(17).get(), 2 + 8);
    }

    #[test]
    fn zero_bytes_zero_cycles() {
        assert_eq!(AxiPort::new(256).transfer_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn long_transfers_approach_peak() {
        let p = AxiPort::new(128);
        let eff = p.effective_bytes_per_cycle(1 << 20);
        assert!(eff > 14.0 && eff <= 16.0, "eff = {eff}");
    }

    #[test]
    fn wider_port_fewer_cycles() {
        let narrow = AxiPort::new(64);
        let wide = AxiPort::new(512);
        assert!(wide.transfer_cycles(4096) < narrow.transfer_cycles(4096));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_width_rejected() {
        let _ = AxiPort::new(100);
    }
}
