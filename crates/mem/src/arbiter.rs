//! Round-robin arbitration of multiple AXI masters over shared memory
//! channels.
//!
//! ProTEA instantiates one weight/input DMA per head engine; whether
//! those masters get dedicated HBM pseudo-channels or share one is a
//! platform decision with real latency consequences (it is the leading
//! explanation for the SL=32 residual discussed in EXPERIMENTS.md). The
//! arbiter model here is the standard single-address-channel round-robin:
//! the interconnect grants one *burst* at a time, cycling over masters
//! with pending work; a master's transfer completes when its last burst
//! drains.

use crate::axi::AxiPort;
use crate::hbm::ChannelShare;
use protea_hwsim::Cycles;

/// Result of arbitrating a set of masters over one channel.
#[derive(Debug, Clone)]
pub struct ArbitrationResult {
    /// Cycle at which each master's transfer completes.
    pub master_finish: Vec<Cycles>,
    /// Cycle at which the last master finishes.
    pub total: Cycles,
    /// Bursts granted in total.
    pub bursts_granted: u64,
}

/// Arbitrate `requests` (bytes per master, all issued at cycle 0) over
/// one channel reached through `port`, with round-robin burst grants.
/// The channel's byte rate caps the drain speed exactly as in
/// [`bounded_transfer_cycles`](crate::hbm::bounded_transfer_cycles).
#[must_use]
pub fn arbitrate_round_robin(
    requests: &[u64],
    port: &AxiPort,
    share: &ChannelShare,
) -> ArbitrationResult {
    let n = requests.len();
    let mut finish = vec![Cycles::ZERO; n];
    if n == 0 {
        return ArbitrationResult { master_finish: finish, total: Cycles::ZERO, bursts_granted: 0 };
    }
    let burst_bytes = port.bytes_per_beat() * u64::from(port.max_burst_beats);
    let mut remaining: Vec<u64> = requests.to_vec();
    let mut now = 0u64;
    let mut bursts = 0u64;
    let mut idx = 0usize;
    let mut pending = remaining.iter().filter(|&&b| b > 0).count();
    // Masters with zero bytes are already done at cycle 0.
    while pending > 0 {
        if remaining[idx] > 0 {
            let chunk = remaining[idx].min(burst_bytes);
            // One burst: port beats + per-burst overhead, floored by the
            // channel's byte rate.
            let port_cycles =
                chunk.div_ceil(port.bytes_per_beat()) + u64::from(port.burst_overhead);
            let mem_cycles = share.transfer_cycles(chunk).get();
            now += port_cycles.max(mem_cycles);
            bursts += 1;
            remaining[idx] -= chunk;
            if remaining[idx] == 0 {
                finish[idx] = Cycles(now);
                pending -= 1;
            }
        }
        idx = (idx + 1) % n;
    }
    ArbitrationResult { master_finish: finish, total: Cycles(now), bursts_granted: bursts }
}

/// Compare `masters` masters each moving `bytes_per_master`:
/// (shared-channel arbitrated total, dedicated-channel total). The
/// dedicated case gives every master its own full-rate channel, so the
/// slowest single transfer governs.
#[must_use]
pub fn sharing_penalty(
    masters: usize,
    bytes_per_master: u64,
    port: &AxiPort,
    share: &ChannelShare,
) -> (Cycles, Cycles) {
    let requests = vec![bytes_per_master; masters];
    let shared = arbitrate_round_robin(&requests, port, share).total;
    let dedicated = crate::hbm::bounded_transfer_cycles(port, share, bytes_per_master);
    (shared, dedicated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> AxiPort {
        AxiPort::new(256) // 32 B/beat, 64-beat bursts
    }

    fn share() -> ChannelShare {
        ChannelShare::fixed(1e9) // memory never the bottleneck
    }

    #[test]
    fn single_master_matches_plain_transfer() {
        let r = arbitrate_round_robin(&[64 * 1024], &port(), &share());
        let direct = port().transfer_cycles(64 * 1024);
        assert_eq!(r.total, direct);
        assert_eq!(r.master_finish[0], direct);
    }

    #[test]
    fn equal_masters_finish_in_grant_order() {
        let r = arbitrate_round_robin(&[4096, 4096, 4096], &port(), &share());
        assert!(r.master_finish[0] < r.master_finish[1]);
        assert!(r.master_finish[1] < r.master_finish[2]);
        // total ≈ 3× a single transfer (modulo burst rounding)
        let single = port().transfer_cycles(4096).get();
        let total = r.total.get();
        assert!(
            (total as f64 / (3 * single) as f64 - 1.0).abs() < 0.2,
            "{total} vs {}",
            3 * single
        );
    }

    #[test]
    fn zero_byte_masters_finish_immediately() {
        let r = arbitrate_round_robin(&[0, 2048, 0], &port(), &share());
        assert_eq!(r.master_finish[0], Cycles::ZERO);
        assert_eq!(r.master_finish[2], Cycles::ZERO);
        assert!(r.master_finish[1] > Cycles::ZERO);
    }

    #[test]
    fn sharing_is_never_faster_than_dedicated() {
        for masters in [1usize, 2, 4, 8] {
            let (shared, dedicated) = sharing_penalty(masters, 147 * 1024, &port(), &share());
            assert!(shared >= dedicated, "masters={masters}");
            if masters > 1 {
                // shared total ≈ masters × dedicated (serialized channel)
                let ratio = shared.get() as f64 / dedicated.get() as f64;
                assert!(
                    (masters as f64 * 0.8..masters as f64 * 1.3).contains(&ratio),
                    "masters={masters} ratio={ratio:.2}"
                );
            }
        }
    }

    #[test]
    fn round_robin_is_fair_under_asymmetric_load() {
        // a small request behind a huge one still completes early
        let r = arbitrate_round_robin(&[1 << 20, 2048], &port(), &share());
        assert!(r.master_finish[1].get() < r.master_finish[0].get() / 10);
    }

    #[test]
    fn memory_bottleneck_respected() {
        let slow = ChannelShare::fixed(1.0); // 1 B/cycle
        let r = arbitrate_round_robin(&[1024, 1024], &port(), &slow);
        // channel-limited: ≥ 2048 cycles total
        assert!(r.total.get() >= 2048);
    }

    #[test]
    fn empty_request_set() {
        let r = arbitrate_round_robin(&[], &port(), &share());
        assert_eq!(r.total, Cycles::ZERO);
        assert_eq!(r.bursts_granted, 0);
    }
}
