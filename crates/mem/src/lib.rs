//! # protea-mem — off-chip memory and DMA models
//!
//! ProTEA fetches inputs and weights "from off-chip high-bandwidth memory
//! (HBM) using AXI4 master interfaces … according to demand", and its
//! reported latency "reflects the computation time, accounting for the
//! overlap of data loading and computation". This crate models that data
//! movement:
//!
//! * [`axi`] — AXI4 read-burst timing: beats, burst segmentation, request
//!   latency.
//! * [`hbm`] — HBM/DDR channel bandwidth shared between masters; the
//!   effective per-cycle byte rate is the min of the AXI port width and
//!   the channel's share.
//! * [`dma`] — tile-granularity transfer descriptors used by the engines.
//! * [`overlap`] — the double-buffer scheduler: while engines compute on
//!   tile *t*, the DMA prefetches tile *t+1*; built on the
//!   `protea-hwsim` event kernel and cross-checked against the analytic
//!   recurrence `total = L₀ + Σ max(Lᵢ₊₁, Cᵢ) + Cₙ₋₁` in tests.
//! * [`fault`] — deterministic, seeded fault injection: ECC flips, AXI
//!   stalls/timeouts on tile transfers, and card-crash timestamps, all
//!   replayable bit-identically from a seed or an explicit event list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod axi;
pub mod dma;
pub mod fault;
pub mod hbm;
pub mod kv;
pub mod overlap;

pub use arbiter::{arbitrate_round_robin, ArbitrationResult};
pub use axi::AxiPort;
pub use dma::TileTransfer;
pub use fault::{
    FaultEvent, FaultKind, FaultRates, FaultStream, SdcEvent, SdcHit, SdcSite, SdcStream,
    TransferFault,
};
pub use hbm::ChannelShare;
pub use kv::{KvResidency, KvSpec};
pub use overlap::{
    simulate_double_buffered, simulate_double_buffered_spans, simulate_serial,
    simulate_serial_spans, AccessSpans, OverlapReport,
};
