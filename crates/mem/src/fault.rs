//! Deterministic fault injection for the memory system.
//!
//! The paper's latency model assumes a fault-free card: every HBM burst
//! completes and every AXI transaction returns. Production fleets see
//! correctable ECC events, stalled channels, hung transactions, and the
//! occasional card dropping off the bus. This module is the single
//! source of injected faults for every layer above it:
//!
//! * a [`FaultStream`] is a **seeded, per-card** fault source — two
//!   streams built from the same `(seed, card)` pair produce identical
//!   fault sequences, so whole-fleet simulations replay bit-identically;
//! * faults can also be **scripted** as explicit [`FaultEvent`]s at
//!   simulated timestamps (used by tests to stage precise scenarios);
//! * transfer-level faults ([`TransferFault`]) afflict one tile load on
//!   an [`AxiPort`](crate::axi::AxiPort); card-level crashes are
//!   timestamps the fleet layer turns into card-death events.
//!
//! The stream only *produces* faults; detection latency, watchdogs,
//! retries, and backoff live in `protea-core`'s driver layer.

use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The classes of hardware fault the injector models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Correctable single-bit ECC error in an HBM burst: the data is
    /// recovered after a scrub-and-replay of the transfer.
    EccSingle,
    /// Uncorrectable double-bit ECC error: the burst's data is lost.
    EccDouble,
    /// Transient AXI stall: the transfer completes after extra cycles.
    AxiStall,
    /// The AXI transaction hangs and never completes; only a watchdog
    /// can detect it.
    AxiTimeout,
    /// The whole card drops off the bus.
    CardCrash,
    /// Silent data corruption: a bit flips in weight SRAM or an
    /// activation datapath and the transfer *completes normally* — no
    /// error signal ever fires. Never produced by
    /// [`FaultStream::sample_transfer`] (there is nothing for the
    /// driver to observe); drawn instead by an [`SdcStream`] and caught
    /// only by integrity machinery (ABFT checksums, weight digests)
    /// layers above.
    SilentCorrupt,
}

impl FaultKind {
    /// The transfer-level fault this kind afflicts one tile load with,
    /// or `None` for the kinds that are not transfer faults
    /// ([`FaultKind::CardCrash`] is card-level;
    /// [`FaultKind::SilentCorrupt`] completes the transfer cleanly).
    /// `stall_cycles` is used only by [`FaultKind::AxiStall`].
    ///
    /// This is the single kind→transfer conversion — the sampler and
    /// every scripted-event path go through it, so the two enums can
    /// never drift apart (pinned by the round-trip proptest below).
    #[must_use]
    pub fn transfer(self, stall_cycles: u64) -> Option<TransferFault> {
        match self {
            FaultKind::EccSingle => Some(TransferFault::EccSingle),
            FaultKind::EccDouble => Some(TransferFault::EccDouble),
            FaultKind::AxiStall => Some(TransferFault::Stall { extra_cycles: stall_cycles }),
            FaultKind::AxiTimeout => Some(TransferFault::Timeout),
            FaultKind::CardCrash | FaultKind::SilentCorrupt => None,
        }
    }

    /// Every fault class, for exhaustive audits and property tests.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::EccSingle,
        FaultKind::EccDouble,
        FaultKind::AxiStall,
        FaultKind::AxiTimeout,
        FaultKind::CardCrash,
        FaultKind::SilentCorrupt,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::EccSingle => "correctable single-bit ECC",
            FaultKind::EccDouble => "uncorrectable double-bit ECC",
            FaultKind::AxiStall => "AXI stall",
            FaultKind::AxiTimeout => "AXI timeout",
            FaultKind::CardCrash => "card crash",
            FaultKind::SilentCorrupt => "silent data corruption",
        };
        f.write_str(name)
    }
}

/// Fault probabilities: per-tile-transfer for the memory-path classes,
/// per simulated second for whole-card crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a tile transfer suffers a correctable ECC flip.
    pub ecc_single: f64,
    /// Probability a tile transfer suffers an uncorrectable ECC flip.
    pub ecc_double: f64,
    /// Probability a tile transfer stalls (completes late).
    pub stall: f64,
    /// Probability a tile transfer hangs until the watchdog fires.
    pub timeout: f64,
    /// Card crash rate in crashes per simulated second.
    pub crash_per_s: f64,
}

impl FaultRates {
    /// No faults at all — the paper's fault-free assumption.
    pub const ZERO: Self =
        Self { ecc_single: 0.0, ecc_double: 0.0, stall: 0.0, timeout: 0.0, crash_per_s: 0.0 };

    /// A canonical fault mix scaled by one knob: `rate` is the total
    /// per-transfer fault probability, split 50 % stalls, 35 %
    /// correctable ECC, 10 % timeouts, 5 % uncorrectable ECC. Crash rate
    /// stays zero (set it separately).
    #[must_use]
    pub fn scaled(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            ecc_single: 0.35 * rate,
            ecc_double: 0.05 * rate,
            stall: 0.50 * rate,
            timeout: 0.10 * rate,
            crash_per_s: 0.0,
        }
    }

    /// Set the crash rate (crashes per simulated second).
    #[must_use]
    pub fn with_crash_rate(mut self, crash_per_s: f64) -> Self {
        self.crash_per_s = crash_per_s;
        self
    }

    /// Whether every rate is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.ecc_single == 0.0
            && self.ecc_double == 0.0
            && self.stall == 0.0
            && self.timeout == 0.0
            && self.crash_per_s == 0.0
    }

    /// Validate the rates: probabilities in `[0, 1]` summing to at most
    /// 1, crash rate finite and non-negative.
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [self.ecc_single, self.ecc_double, self.stall, self.timeout];
        for (name, p) in ["ecc_single", "ecc_double", "stall", "timeout"].iter().zip(probs) {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} rate must be in [0, 1], got {p}"));
            }
        }
        let sum: f64 = probs.iter().sum();
        if sum > 1.0 {
            return Err(format!("per-transfer fault rates sum to {sum} > 1"));
        }
        if !self.crash_per_s.is_finite() || self.crash_per_s < 0.0 {
            return Err(format!("crash_per_s must be finite and >= 0, got {}", self.crash_per_s));
        }
        Ok(())
    }
}

/// A fault drawn against a single tile transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// Correctable ECC flip: recoverable by scrubbing and replaying.
    EccSingle,
    /// Uncorrectable ECC flip: the transfer's data is lost.
    EccDouble,
    /// The transfer completes `extra_cycles` late.
    Stall {
        /// Additional cycles beyond the clean transfer time.
        extra_cycles: u64,
    },
    /// The transfer hangs; the caller's watchdog must detect it.
    Timeout,
}

impl TransferFault {
    /// The fault class this transfer fault belongs to.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        match self {
            TransferFault::EccSingle => FaultKind::EccSingle,
            TransferFault::EccDouble => FaultKind::EccDouble,
            TransferFault::Stall { .. } => FaultKind::AxiStall,
            TransferFault::Timeout => FaultKind::AxiTimeout,
        }
    }
}

/// One explicitly scripted fault at a simulated timestamp.
///
/// Transfer-level kinds afflict the first tile transfer issued at or
/// after `at_ns` on the targeted card; [`FaultKind::CardCrash`] kills
/// the card at exactly `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time the fault becomes active (nanoseconds).
    pub at_ns: u64,
    /// The card the fault targets.
    pub card: usize,
    /// The fault class.
    pub kind: FaultKind,
}

/// The deterministic fault source for **one card**.
///
/// Seeded construction decorrelates cards by hashing the card index into
/// the stream seed; scripted [`FaultEvent`]s (already filtered to this
/// card) are consumed in timestamp order before any random draw.
#[derive(Debug, Clone)]
pub struct FaultStream {
    rng: StdRng,
    rates: FaultRates,
    /// Scripted `(at_ns, kind)` pairs for this card, ascending by time.
    scripted: Vec<(u64, FaultKind)>,
    next_scripted: usize,
    /// Upper bound on the extra cycles a stall adds (exclusive).
    stall_span: u64,
}

impl FaultStream {
    /// A stream for `card` drawing from `rates`, decorrelated from other
    /// cards but fully determined by `(seed, card, rates)`.
    #[must_use]
    pub fn seeded(seed: u64, card: usize, rates: FaultRates) -> Self {
        // SplitMix-style index hash so adjacent cards get unrelated streams.
        let mixed = seed
            ^ (card as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
            ^ 0xC2B2_AE3D_27D4_EB4F;
        Self {
            rng: StdRng::seed_from_u64(mixed),
            rates,
            scripted: Vec::new(),
            next_scripted: 0,
            stall_span: 4096,
        }
    }

    /// Attach scripted events (those targeting this card); they are
    /// sorted by timestamp and consumed before random draws.
    #[must_use]
    pub fn with_events(mut self, events: impl IntoIterator<Item = (u64, FaultKind)>) -> Self {
        self.scripted.extend(events);
        self.scripted.sort_unstable();
        self
    }

    /// The rates this stream draws from.
    #[must_use]
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Draw the fault (if any) afflicting the next tile transfer issued
    /// at simulated time `now_ns`.
    ///
    /// Scripted transfer-level events whose timestamp has passed fire
    /// first (in order); otherwise a single uniform draw is compared
    /// against the cumulative rate thresholds. With all-zero rates and
    /// no scripted events this is free: no RNG state is consumed, so a
    /// fault-free stream never perturbs determinism.
    pub fn sample_transfer(&mut self, now_ns: u64) -> Option<TransferFault> {
        while let Some(&(at, kind)) = self.scripted.get(self.next_scripted) {
            if at > now_ns {
                break;
            }
            self.next_scripted += 1;
            // Only a stall consumes RNG, and only when it actually fires.
            let stall = if kind == FaultKind::AxiStall { self.draw_stall() } else { 0 };
            match kind.transfer(stall) {
                Some(fault) => return Some(fault),
                // Card-level crashes (scheduled via `crash_at_ns`) and
                // silent corruptions (drawn by `SdcStream`) are not
                // transfer faults — skip them here.
                None => continue,
            }
        }
        let r = &self.rates;
        if r.ecc_single == 0.0 && r.ecc_double == 0.0 && r.stall == 0.0 && r.timeout == 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let mut drawn = None;
        for (kind, p) in [
            (FaultKind::AxiStall, r.stall),
            (FaultKind::EccSingle, r.ecc_single),
            (FaultKind::AxiTimeout, r.timeout),
            (FaultKind::EccDouble, r.ecc_double),
        ] {
            acc += p;
            if u < acc {
                drawn = Some(kind);
                break;
            }
        }
        let kind = drawn?;
        let stall = if kind == FaultKind::AxiStall { self.draw_stall() } else { 0 };
        kind.transfer(stall)
    }

    /// The timestamp at which this card crashes, if the schedule holds a
    /// crash: the earliest scripted [`FaultKind::CardCrash`] wins,
    /// otherwise an exponential sample at `crash_per_s`. Call exactly
    /// once, at simulation start, so the draw order stays deterministic.
    pub fn crash_at_ns(&mut self) -> Option<u64> {
        if let Some(&(at, _)) = self.scripted.iter().find(|(_, kind)| *kind == FaultKind::CardCrash)
        {
            return Some(at);
        }
        if self.rates.crash_per_s <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -u.ln() / self.rates.crash_per_s;
        Some((gap_s * 1e9) as u64)
    }

    fn draw_stall(&mut self) -> u64 {
        1 + self.rng.gen_range(0..self.stall_span)
    }

    /// The stream's resumable state: the RNG state word and the index of
    /// the next unconsumed scripted event. Everything else
    /// (`rates`, the scripted table, `stall_span`) is reconstructed from
    /// configuration, so `(seeded config, state)` fully determines the
    /// remaining fault sequence.
    #[must_use]
    pub fn state(&self) -> (u64, usize) {
        (self.rng.state(), self.next_scripted)
    }

    /// Restore a previously captured [`state`](Self::state) onto a
    /// stream rebuilt from the same configuration. The restored stream
    /// continues the exact fault sequence of the captured one.
    pub fn restore(&mut self, rng_state: u64, next_scripted: usize) {
        self.rng = StdRng::seed_from_u64(rng_state);
        self.next_scripted = next_scripted.min(self.scripted.len());
    }
}

/// Where a silent corruption lands.
///
/// The two sites fail differently: a weight flip persists in on-card
/// SRAM and poisons **every** subsequent batch until a digest check or
/// scrub catches it, while an activation flip corrupts exactly one
/// batch's datapath and is gone on the next run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SdcSite {
    /// A bit flip in resident weight SRAM (persistent until reload).
    Weights,
    /// A bit flip in one batch's activation datapath (transient).
    Activations,
}

impl fmt::Display for SdcSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SdcSite::Weights => "weights",
            SdcSite::Activations => "activations",
        })
    }
}

/// One explicitly scripted silent corruption at a simulated timestamp:
/// the first batch executing at or after `at_ns` on `card` is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcEvent {
    /// Simulated time the corruption lands (nanoseconds).
    pub at_ns: u64,
    /// The card the corruption targets.
    pub card: usize,
    /// Which site the flip lands in.
    pub site: SdcSite,
}

/// A silent corruption drawn against one executed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcHit {
    /// Which site the flip landed in.
    pub site: SdcSite,
    /// Deterministic 64-bit locus of the flip within the site. Layers
    /// above map it onto their own address space (e.g. the fleet maps an
    /// activation locus onto the batch's op mix to decide whether ABFT
    /// covers the struck operation).
    pub locus: u64,
}

/// SplitMix64 finalizer: a pure bijective hash used to derive scripted
/// loci from timestamps without consuming stream RNG.
fn splitmix_finalize(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic silent-corruption source for **one card**.
///
/// Mirrors [`FaultStream`]'s contract — seeded per card (with a
/// *different* salt, so SDC draws never correlate with loud-fault
/// draws), scripted events consumed in timestamp order before random
/// draws, zero rate consumes no RNG, and `state`/`restore` resume the
/// exact sequence. Unlike a [`TransferFault`], a drawn [`SdcHit`] does
/// **not** fail the batch: execution completes normally and only
/// integrity machinery can notice.
#[derive(Debug, Clone)]
pub struct SdcStream {
    rng: StdRng,
    /// Probability an executed batch suffers a silent flip.
    rate: f64,
    /// Fraction of hits that land in weight SRAM (the rest strike the
    /// batch's activation datapath).
    weight_fraction: f64,
    /// Scripted `(at_ns, site)` pairs for this card, ascending by time.
    scripted: Vec<(u64, SdcSite)>,
    next_scripted: usize,
}

impl SdcStream {
    /// A stream for `card` flipping bits at `rate` per executed batch,
    /// `weight_fraction` of them into weight SRAM. Fully determined by
    /// `(seed, card, rate, weight_fraction)`.
    #[must_use]
    pub fn seeded(seed: u64, card: usize, rate: f64, weight_fraction: f64) -> Self {
        // Distinct rotate/salt from `FaultStream::seeded` so the loud
        // and silent fault sequences of a card are uncorrelated.
        let mixed = seed
            ^ (card as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
            ^ 0xD6E8_FEB8_6659_FD93;
        Self {
            rng: StdRng::seed_from_u64(mixed),
            rate: rate.clamp(0.0, 1.0),
            weight_fraction: weight_fraction.clamp(0.0, 1.0),
            scripted: Vec::new(),
            next_scripted: 0,
        }
    }

    /// Attach scripted corruptions (those targeting this card); they are
    /// sorted by timestamp and consumed before random draws.
    #[must_use]
    pub fn with_events(mut self, events: impl IntoIterator<Item = (u64, SdcSite)>) -> Self {
        self.scripted.extend(events);
        self.scripted.sort_unstable();
        self
    }

    /// The per-batch corruption probability this stream draws from.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draw the silent corruption (if any) striking a batch executed at
    /// simulated time `now_ns`.
    ///
    /// Scripted events whose timestamp has passed fire first, their
    /// locus a pure hash of the scripted timestamp (no RNG consumed, so
    /// scripted-only streams replay regardless of rate-draw history).
    /// With a zero rate and no scripted events this is free: no RNG
    /// state is consumed.
    pub fn sample_batch(&mut self, now_ns: u64) -> Option<SdcHit> {
        if let Some(&(at, site)) = self.scripted.get(self.next_scripted) {
            if at <= now_ns {
                self.next_scripted += 1;
                return Some(SdcHit { site, locus: splitmix_finalize(at) });
            }
        }
        if self.rate == 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u >= self.rate {
            return None;
        }
        let v: f64 = self.rng.gen_range(0.0..1.0);
        let site = if v < self.weight_fraction { SdcSite::Weights } else { SdcSite::Activations };
        let locus = self.rng.gen_range(0..u64::MAX);
        Some(SdcHit { site, locus })
    }

    /// The stream's resumable state: the RNG state word and the index of
    /// the next unconsumed scripted event (mirrors
    /// [`FaultStream::state`]).
    #[must_use]
    pub fn state(&self) -> (u64, usize) {
        (self.rng.state(), self.next_scripted)
    }

    /// Restore a previously captured [`state`](Self::state) onto a
    /// stream rebuilt from the same configuration.
    pub fn restore(&mut self, rng_state: u64, next_scripted: usize) {
        self.rng = StdRng::seed_from_u64(rng_state);
        self.next_scripted = next_scripted.min(self.scripted.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_draw_nothing_and_consume_no_rng() {
        let mut a = FaultStream::seeded(7, 0, FaultRates::ZERO);
        for t in 0..1000 {
            assert_eq!(a.sample_transfer(t), None);
        }
        assert_eq!(a.crash_at_ns(), None);
        // The RNG was never touched: a fresh stream with nonzero rates
        // from the same seed draws the same first fault either way.
        let mut warm = FaultStream::seeded(7, 0, FaultRates::scaled(1.0));
        let mut cold = FaultStream::seeded(7, 0, FaultRates::scaled(1.0));
        assert_eq!(warm.sample_transfer(0), cold.sample_transfer(0));
    }

    #[test]
    fn same_seed_same_stream() {
        let draw = |seed: u64, card: usize| -> Vec<Option<TransferFault>> {
            let mut s = FaultStream::seeded(seed, card, FaultRates::scaled(0.3));
            (0..64).map(|t| s.sample_transfer(t)).collect()
        };
        assert_eq!(draw(42, 1), draw(42, 1));
        assert_ne!(draw(42, 1), draw(43, 1), "different seeds must decorrelate");
        assert_ne!(draw(42, 1), draw(42, 2), "different cards must decorrelate");
    }

    #[test]
    fn rates_govern_fault_mix() {
        let rates = FaultRates::scaled(1.0); // every transfer faults
        let mut s = FaultStream::seeded(11, 0, rates);
        let mut counts = [0u32; 4];
        for t in 0..4000 {
            match s.sample_transfer(t) {
                Some(TransferFault::Stall { extra_cycles }) => {
                    assert!(extra_cycles >= 1);
                    counts[0] += 1;
                }
                Some(TransferFault::EccSingle) => counts[1] += 1,
                Some(TransferFault::Timeout) => counts[2] += 1,
                Some(TransferFault::EccDouble) => counts[3] += 1,
                None => panic!("rate 1.0 must always fault"),
            }
        }
        // 50/35/10/5 split, loose bounds
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        assert!(counts[3] > 0, "rare class must still occur over 4000 draws");
    }

    #[test]
    fn scripted_events_fire_in_order_before_rng() {
        let mut s = FaultStream::seeded(5, 0, FaultRates::ZERO)
            .with_events([(200, FaultKind::AxiTimeout), (100, FaultKind::EccSingle)]);
        assert_eq!(s.sample_transfer(50), None, "nothing scheduled yet");
        assert_eq!(s.sample_transfer(150), Some(TransferFault::EccSingle));
        assert_eq!(s.sample_transfer(150), None, "event consumed");
        assert_eq!(s.sample_transfer(250), Some(TransferFault::Timeout));
    }

    #[test]
    fn scripted_crash_wins_over_sampled() {
        let mut scripted = FaultStream::seeded(5, 0, FaultRates::ZERO.with_crash_rate(10.0))
            .with_events([(77, FaultKind::CardCrash)]);
        assert_eq!(scripted.crash_at_ns(), Some(77));
        let mut sampled = FaultStream::seeded(5, 0, FaultRates::ZERO.with_crash_rate(10.0));
        let at = sampled.crash_at_ns().expect("nonzero crash rate must crash eventually");
        assert!(at > 0);
        let mut replay = FaultStream::seeded(5, 0, FaultRates::ZERO.with_crash_rate(10.0));
        assert_eq!(replay.crash_at_ns(), Some(at), "crash draw must be deterministic");
    }

    #[test]
    fn crash_events_do_not_leak_into_transfers() {
        let mut s = FaultStream::seeded(5, 0, FaultRates::ZERO)
            .with_events([(10, FaultKind::CardCrash), (20, FaultKind::AxiStall)]);
        // The crash entry is skipped by the transfer sampler.
        assert!(matches!(s.sample_transfer(30), Some(TransferFault::Stall { .. })));
        assert_eq!(s.sample_transfer(30), None);
    }

    #[test]
    fn state_capture_resumes_the_exact_sequence() {
        let build = || {
            FaultStream::seeded(21, 3, FaultRates::scaled(0.4))
                .with_events([(500, FaultKind::EccDouble)])
        };
        let mut live = build();
        for t in 0..40 {
            live.sample_transfer(t * 20);
        }
        let (rng_state, next_scripted) = live.state();
        let mut resumed = build();
        resumed.restore(rng_state, next_scripted);
        for t in 40..120 {
            assert_eq!(live.sample_transfer(t * 20), resumed.sample_transfer(t * 20));
        }
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultRates::ZERO.validate().is_ok());
        assert!(FaultRates::scaled(0.5).validate().is_ok());
        assert!(FaultRates { ecc_single: -0.1, ..FaultRates::ZERO }.validate().is_err());
        assert!(FaultRates { stall: 1.5, ..FaultRates::ZERO }.validate().is_err());
        assert!(FaultRates { stall: 0.6, timeout: 0.6, ..FaultRates::ZERO }.validate().is_err());
        assert!(FaultRates::ZERO.with_crash_rate(f64::NAN).validate().is_err());
        assert!(FaultRates::ZERO.with_crash_rate(-1.0).validate().is_err());
    }

    #[test]
    fn kind_mapping_and_display() {
        assert_eq!(TransferFault::EccSingle.kind(), FaultKind::EccSingle);
        assert_eq!(TransferFault::Stall { extra_cycles: 3 }.kind(), FaultKind::AxiStall);
        for kind in FaultKind::ALL {
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn transfer_to_kind_round_trips_every_transfer_fault() {
        for fault in [
            TransferFault::EccSingle,
            TransferFault::EccDouble,
            TransferFault::Stall { extra_cycles: 7 },
            TransferFault::Timeout,
        ] {
            assert_eq!(fault.kind().transfer(7), Some(fault));
        }
    }

    proptest::proptest! {
        /// Satellite: the kind↔transfer mapping round-trips for every
        /// variant — `transfer()` is the single conversion, and exactly
        /// the non-transfer kinds (crash, silent corruption) map to
        /// `None`.
        #[test]
        fn kind_transfer_round_trips(idx in 0usize..FaultKind::ALL.len(), stall in 1u64..100_000) {
            let kind = FaultKind::ALL[idx];
            match kind.transfer(stall) {
                Some(fault) => {
                    proptest::prop_assert_eq!(fault.kind(), kind);
                    if kind == FaultKind::AxiStall {
                        proptest::prop_assert_eq!(
                            fault,
                            TransferFault::Stall { extra_cycles: stall }
                        );
                    }
                }
                None => proptest::prop_assert!(matches!(
                    kind,
                    FaultKind::CardCrash | FaultKind::SilentCorrupt
                )),
            }
        }
    }

    #[test]
    fn scripted_silent_corrupt_never_surfaces_as_transfer_fault() {
        let mut s = FaultStream::seeded(5, 0, FaultRates::ZERO)
            .with_events([(10, FaultKind::SilentCorrupt), (20, FaultKind::EccDouble)]);
        assert_eq!(s.sample_transfer(30), Some(TransferFault::EccDouble));
        assert_eq!(s.sample_transfer(30), None);
    }

    #[test]
    fn sdc_zero_rate_draws_nothing_and_consumes_no_rng() {
        let mut a = SdcStream::seeded(9, 0, 0.0, 0.25);
        for t in 0..1000 {
            assert_eq!(a.sample_batch(t), None);
        }
        let mut warm = SdcStream::seeded(9, 0, 1.0, 0.25);
        let mut cold = SdcStream::seeded(9, 0, 1.0, 0.25);
        assert_eq!(warm.sample_batch(0), cold.sample_batch(0));
    }

    #[test]
    fn sdc_same_seed_same_stream_and_cards_decorrelate() {
        let draw = |seed: u64, card: usize| -> Vec<Option<SdcHit>> {
            let mut s = SdcStream::seeded(seed, card, 0.5, 0.25);
            (0..64).map(|t| s.sample_batch(t)).collect()
        };
        assert_eq!(draw(42, 1), draw(42, 1));
        assert_ne!(draw(42, 1), draw(43, 1), "different seeds must decorrelate");
        assert_ne!(draw(42, 1), draw(42, 2), "different cards must decorrelate");
    }

    #[test]
    fn sdc_decorrelated_from_loud_fault_stream() {
        // Same (seed, card): the SDC salt must give an unrelated stream.
        let mut loud = FaultStream::seeded(42, 1, FaultRates::scaled(0.5));
        let mut silent = SdcStream::seeded(42, 1, 0.5, 0.25);
        let loud_hits: Vec<bool> = (0..64).map(|t| loud.sample_transfer(t).is_some()).collect();
        let silent_hits: Vec<bool> = (0..64).map(|t| silent.sample_batch(t).is_some()).collect();
        assert_ne!(loud_hits, silent_hits);
    }

    #[test]
    fn sdc_weight_fraction_splits_sites() {
        let mut s = SdcStream::seeded(3, 0, 1.0, 0.25);
        let mut weights = 0u32;
        let mut acts = 0u32;
        for t in 0..4000 {
            match s.sample_batch(t).expect("rate 1.0 must always hit") {
                SdcHit { site: SdcSite::Weights, .. } => weights += 1,
                SdcHit { site: SdcSite::Activations, .. } => acts += 1,
            }
        }
        assert!(acts > weights, "75 % of hits must strike activations");
        assert!(weights > 0, "weight hits must still occur over 4000 draws");
        let mut all_weights = SdcStream::seeded(3, 0, 1.0, 1.0);
        for t in 0..100 {
            assert_eq!(all_weights.sample_batch(t).map(|h| h.site), Some(SdcSite::Weights));
        }
    }

    #[test]
    fn sdc_scripted_events_fire_in_order_without_rng() {
        let build = || {
            SdcStream::seeded(5, 0, 0.0, 0.25)
                .with_events([(200, SdcSite::Activations), (100, SdcSite::Weights)])
        };
        let mut s = build();
        assert_eq!(s.sample_batch(50), None, "nothing scheduled yet");
        let first = s.sample_batch(150).expect("scripted weight hit");
        assert_eq!(first.site, SdcSite::Weights);
        assert_eq!(s.sample_batch(150), None, "event consumed");
        let second = s.sample_batch(250).expect("scripted activation hit");
        assert_eq!(second.site, SdcSite::Activations);
        assert_ne!(first.locus, second.locus, "loci derive from distinct timestamps");
        // Scripted loci are pure functions of the timestamp: replay matches.
        let mut replay = build();
        assert_eq!(replay.sample_batch(150), Some(first));
    }

    #[test]
    fn sdc_state_capture_resumes_the_exact_sequence() {
        let build =
            || SdcStream::seeded(21, 3, 0.4, 0.25).with_events([(50_000, SdcSite::Weights)]);
        let mut live = build();
        for t in 0..40 {
            live.sample_batch(t * 20);
        }
        let (rng_state, next_scripted) = live.state();
        let mut resumed = build();
        resumed.restore(rng_state, next_scripted);
        for t in 40..4000 {
            assert_eq!(live.sample_batch(t * 20), resumed.sample_batch(t * 20));
        }
    }
}
