//! Deterministic fault injection for the memory system.
//!
//! The paper's latency model assumes a fault-free card: every HBM burst
//! completes and every AXI transaction returns. Production fleets see
//! correctable ECC events, stalled channels, hung transactions, and the
//! occasional card dropping off the bus. This module is the single
//! source of injected faults for every layer above it:
//!
//! * a [`FaultStream`] is a **seeded, per-card** fault source — two
//!   streams built from the same `(seed, card)` pair produce identical
//!   fault sequences, so whole-fleet simulations replay bit-identically;
//! * faults can also be **scripted** as explicit [`FaultEvent`]s at
//!   simulated timestamps (used by tests to stage precise scenarios);
//! * transfer-level faults ([`TransferFault`]) afflict one tile load on
//!   an [`AxiPort`](crate::axi::AxiPort); card-level crashes are
//!   timestamps the fleet layer turns into card-death events.
//!
//! The stream only *produces* faults; detection latency, watchdogs,
//! retries, and backoff live in `protea-core`'s driver layer.

use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The classes of hardware fault the injector models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Correctable single-bit ECC error in an HBM burst: the data is
    /// recovered after a scrub-and-replay of the transfer.
    EccSingle,
    /// Uncorrectable double-bit ECC error: the burst's data is lost.
    EccDouble,
    /// Transient AXI stall: the transfer completes after extra cycles.
    AxiStall,
    /// The AXI transaction hangs and never completes; only a watchdog
    /// can detect it.
    AxiTimeout,
    /// The whole card drops off the bus.
    CardCrash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::EccSingle => "correctable single-bit ECC",
            FaultKind::EccDouble => "uncorrectable double-bit ECC",
            FaultKind::AxiStall => "AXI stall",
            FaultKind::AxiTimeout => "AXI timeout",
            FaultKind::CardCrash => "card crash",
        };
        f.write_str(name)
    }
}

/// Fault probabilities: per-tile-transfer for the memory-path classes,
/// per simulated second for whole-card crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a tile transfer suffers a correctable ECC flip.
    pub ecc_single: f64,
    /// Probability a tile transfer suffers an uncorrectable ECC flip.
    pub ecc_double: f64,
    /// Probability a tile transfer stalls (completes late).
    pub stall: f64,
    /// Probability a tile transfer hangs until the watchdog fires.
    pub timeout: f64,
    /// Card crash rate in crashes per simulated second.
    pub crash_per_s: f64,
}

impl FaultRates {
    /// No faults at all — the paper's fault-free assumption.
    pub const ZERO: Self =
        Self { ecc_single: 0.0, ecc_double: 0.0, stall: 0.0, timeout: 0.0, crash_per_s: 0.0 };

    /// A canonical fault mix scaled by one knob: `rate` is the total
    /// per-transfer fault probability, split 50 % stalls, 35 %
    /// correctable ECC, 10 % timeouts, 5 % uncorrectable ECC. Crash rate
    /// stays zero (set it separately).
    #[must_use]
    pub fn scaled(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            ecc_single: 0.35 * rate,
            ecc_double: 0.05 * rate,
            stall: 0.50 * rate,
            timeout: 0.10 * rate,
            crash_per_s: 0.0,
        }
    }

    /// Set the crash rate (crashes per simulated second).
    #[must_use]
    pub fn with_crash_rate(mut self, crash_per_s: f64) -> Self {
        self.crash_per_s = crash_per_s;
        self
    }

    /// Whether every rate is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.ecc_single == 0.0
            && self.ecc_double == 0.0
            && self.stall == 0.0
            && self.timeout == 0.0
            && self.crash_per_s == 0.0
    }

    /// Validate the rates: probabilities in `[0, 1]` summing to at most
    /// 1, crash rate finite and non-negative.
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [self.ecc_single, self.ecc_double, self.stall, self.timeout];
        for (name, p) in ["ecc_single", "ecc_double", "stall", "timeout"].iter().zip(probs) {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} rate must be in [0, 1], got {p}"));
            }
        }
        let sum: f64 = probs.iter().sum();
        if sum > 1.0 {
            return Err(format!("per-transfer fault rates sum to {sum} > 1"));
        }
        if !self.crash_per_s.is_finite() || self.crash_per_s < 0.0 {
            return Err(format!("crash_per_s must be finite and >= 0, got {}", self.crash_per_s));
        }
        Ok(())
    }
}

/// A fault drawn against a single tile transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// Correctable ECC flip: recoverable by scrubbing and replaying.
    EccSingle,
    /// Uncorrectable ECC flip: the transfer's data is lost.
    EccDouble,
    /// The transfer completes `extra_cycles` late.
    Stall {
        /// Additional cycles beyond the clean transfer time.
        extra_cycles: u64,
    },
    /// The transfer hangs; the caller's watchdog must detect it.
    Timeout,
}

impl TransferFault {
    /// The fault class this transfer fault belongs to.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        match self {
            TransferFault::EccSingle => FaultKind::EccSingle,
            TransferFault::EccDouble => FaultKind::EccDouble,
            TransferFault::Stall { .. } => FaultKind::AxiStall,
            TransferFault::Timeout => FaultKind::AxiTimeout,
        }
    }
}

/// One explicitly scripted fault at a simulated timestamp.
///
/// Transfer-level kinds afflict the first tile transfer issued at or
/// after `at_ns` on the targeted card; [`FaultKind::CardCrash`] kills
/// the card at exactly `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time the fault becomes active (nanoseconds).
    pub at_ns: u64,
    /// The card the fault targets.
    pub card: usize,
    /// The fault class.
    pub kind: FaultKind,
}

/// The deterministic fault source for **one card**.
///
/// Seeded construction decorrelates cards by hashing the card index into
/// the stream seed; scripted [`FaultEvent`]s (already filtered to this
/// card) are consumed in timestamp order before any random draw.
#[derive(Debug, Clone)]
pub struct FaultStream {
    rng: StdRng,
    rates: FaultRates,
    /// Scripted `(at_ns, kind)` pairs for this card, ascending by time.
    scripted: Vec<(u64, FaultKind)>,
    next_scripted: usize,
    /// Upper bound on the extra cycles a stall adds (exclusive).
    stall_span: u64,
}

impl FaultStream {
    /// A stream for `card` drawing from `rates`, decorrelated from other
    /// cards but fully determined by `(seed, card, rates)`.
    #[must_use]
    pub fn seeded(seed: u64, card: usize, rates: FaultRates) -> Self {
        // SplitMix-style index hash so adjacent cards get unrelated streams.
        let mixed = seed
            ^ (card as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
            ^ 0xC2B2_AE3D_27D4_EB4F;
        Self {
            rng: StdRng::seed_from_u64(mixed),
            rates,
            scripted: Vec::new(),
            next_scripted: 0,
            stall_span: 4096,
        }
    }

    /// Attach scripted events (those targeting this card); they are
    /// sorted by timestamp and consumed before random draws.
    #[must_use]
    pub fn with_events(mut self, events: impl IntoIterator<Item = (u64, FaultKind)>) -> Self {
        self.scripted.extend(events);
        self.scripted.sort_unstable();
        self
    }

    /// The rates this stream draws from.
    #[must_use]
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Draw the fault (if any) afflicting the next tile transfer issued
    /// at simulated time `now_ns`.
    ///
    /// Scripted transfer-level events whose timestamp has passed fire
    /// first (in order); otherwise a single uniform draw is compared
    /// against the cumulative rate thresholds. With all-zero rates and
    /// no scripted events this is free: no RNG state is consumed, so a
    /// fault-free stream never perturbs determinism.
    pub fn sample_transfer(&mut self, now_ns: u64) -> Option<TransferFault> {
        while let Some(&(at, kind)) = self.scripted.get(self.next_scripted) {
            if at > now_ns {
                break;
            }
            self.next_scripted += 1;
            match kind {
                FaultKind::EccSingle => return Some(TransferFault::EccSingle),
                FaultKind::EccDouble => return Some(TransferFault::EccDouble),
                FaultKind::AxiStall => {
                    return Some(TransferFault::Stall { extra_cycles: self.draw_stall() })
                }
                FaultKind::AxiTimeout => return Some(TransferFault::Timeout),
                // Crashes are card-level; the fleet layer schedules them
                // via `crash_at_ns` — skip here.
                FaultKind::CardCrash => continue,
            }
        }
        let r = &self.rates;
        if r.ecc_single == 0.0 && r.ecc_double == 0.0 && r.stall == 0.0 && r.timeout == 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let mut acc = r.stall;
        if u < acc {
            return Some(TransferFault::Stall { extra_cycles: self.draw_stall() });
        }
        acc += r.ecc_single;
        if u < acc {
            return Some(TransferFault::EccSingle);
        }
        acc += r.timeout;
        if u < acc {
            return Some(TransferFault::Timeout);
        }
        acc += r.ecc_double;
        if u < acc {
            return Some(TransferFault::EccDouble);
        }
        None
    }

    /// The timestamp at which this card crashes, if the schedule holds a
    /// crash: the earliest scripted [`FaultKind::CardCrash`] wins,
    /// otherwise an exponential sample at `crash_per_s`. Call exactly
    /// once, at simulation start, so the draw order stays deterministic.
    pub fn crash_at_ns(&mut self) -> Option<u64> {
        if let Some(&(at, _)) = self.scripted.iter().find(|(_, kind)| *kind == FaultKind::CardCrash)
        {
            return Some(at);
        }
        if self.rates.crash_per_s <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -u.ln() / self.rates.crash_per_s;
        Some((gap_s * 1e9) as u64)
    }

    fn draw_stall(&mut self) -> u64 {
        1 + self.rng.gen_range(0..self.stall_span)
    }

    /// The stream's resumable state: the RNG state word and the index of
    /// the next unconsumed scripted event. Everything else
    /// (`rates`, the scripted table, `stall_span`) is reconstructed from
    /// configuration, so `(seeded config, state)` fully determines the
    /// remaining fault sequence.
    #[must_use]
    pub fn state(&self) -> (u64, usize) {
        (self.rng.state(), self.next_scripted)
    }

    /// Restore a previously captured [`state`](Self::state) onto a
    /// stream rebuilt from the same configuration. The restored stream
    /// continues the exact fault sequence of the captured one.
    pub fn restore(&mut self, rng_state: u64, next_scripted: usize) {
        self.rng = StdRng::seed_from_u64(rng_state);
        self.next_scripted = next_scripted.min(self.scripted.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_draw_nothing_and_consume_no_rng() {
        let mut a = FaultStream::seeded(7, 0, FaultRates::ZERO);
        for t in 0..1000 {
            assert_eq!(a.sample_transfer(t), None);
        }
        assert_eq!(a.crash_at_ns(), None);
        // The RNG was never touched: a fresh stream with nonzero rates
        // from the same seed draws the same first fault either way.
        let mut warm = FaultStream::seeded(7, 0, FaultRates::scaled(1.0));
        let mut cold = FaultStream::seeded(7, 0, FaultRates::scaled(1.0));
        assert_eq!(warm.sample_transfer(0), cold.sample_transfer(0));
    }

    #[test]
    fn same_seed_same_stream() {
        let draw = |seed: u64, card: usize| -> Vec<Option<TransferFault>> {
            let mut s = FaultStream::seeded(seed, card, FaultRates::scaled(0.3));
            (0..64).map(|t| s.sample_transfer(t)).collect()
        };
        assert_eq!(draw(42, 1), draw(42, 1));
        assert_ne!(draw(42, 1), draw(43, 1), "different seeds must decorrelate");
        assert_ne!(draw(42, 1), draw(42, 2), "different cards must decorrelate");
    }

    #[test]
    fn rates_govern_fault_mix() {
        let rates = FaultRates::scaled(1.0); // every transfer faults
        let mut s = FaultStream::seeded(11, 0, rates);
        let mut counts = [0u32; 4];
        for t in 0..4000 {
            match s.sample_transfer(t) {
                Some(TransferFault::Stall { extra_cycles }) => {
                    assert!(extra_cycles >= 1);
                    counts[0] += 1;
                }
                Some(TransferFault::EccSingle) => counts[1] += 1,
                Some(TransferFault::Timeout) => counts[2] += 1,
                Some(TransferFault::EccDouble) => counts[3] += 1,
                None => panic!("rate 1.0 must always fault"),
            }
        }
        // 50/35/10/5 split, loose bounds
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        assert!(counts[3] > 0, "rare class must still occur over 4000 draws");
    }

    #[test]
    fn scripted_events_fire_in_order_before_rng() {
        let mut s = FaultStream::seeded(5, 0, FaultRates::ZERO)
            .with_events([(200, FaultKind::AxiTimeout), (100, FaultKind::EccSingle)]);
        assert_eq!(s.sample_transfer(50), None, "nothing scheduled yet");
        assert_eq!(s.sample_transfer(150), Some(TransferFault::EccSingle));
        assert_eq!(s.sample_transfer(150), None, "event consumed");
        assert_eq!(s.sample_transfer(250), Some(TransferFault::Timeout));
    }

    #[test]
    fn scripted_crash_wins_over_sampled() {
        let mut scripted = FaultStream::seeded(5, 0, FaultRates::ZERO.with_crash_rate(10.0))
            .with_events([(77, FaultKind::CardCrash)]);
        assert_eq!(scripted.crash_at_ns(), Some(77));
        let mut sampled = FaultStream::seeded(5, 0, FaultRates::ZERO.with_crash_rate(10.0));
        let at = sampled.crash_at_ns().expect("nonzero crash rate must crash eventually");
        assert!(at > 0);
        let mut replay = FaultStream::seeded(5, 0, FaultRates::ZERO.with_crash_rate(10.0));
        assert_eq!(replay.crash_at_ns(), Some(at), "crash draw must be deterministic");
    }

    #[test]
    fn crash_events_do_not_leak_into_transfers() {
        let mut s = FaultStream::seeded(5, 0, FaultRates::ZERO)
            .with_events([(10, FaultKind::CardCrash), (20, FaultKind::AxiStall)]);
        // The crash entry is skipped by the transfer sampler.
        assert!(matches!(s.sample_transfer(30), Some(TransferFault::Stall { .. })));
        assert_eq!(s.sample_transfer(30), None);
    }

    #[test]
    fn state_capture_resumes_the_exact_sequence() {
        let build = || {
            FaultStream::seeded(21, 3, FaultRates::scaled(0.4))
                .with_events([(500, FaultKind::EccDouble)])
        };
        let mut live = build();
        for t in 0..40 {
            live.sample_transfer(t * 20);
        }
        let (rng_state, next_scripted) = live.state();
        let mut resumed = build();
        resumed.restore(rng_state, next_scripted);
        for t in 40..120 {
            assert_eq!(live.sample_transfer(t * 20), resumed.sample_transfer(t * 20));
        }
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultRates::ZERO.validate().is_ok());
        assert!(FaultRates::scaled(0.5).validate().is_ok());
        assert!(FaultRates { ecc_single: -0.1, ..FaultRates::ZERO }.validate().is_err());
        assert!(FaultRates { stall: 1.5, ..FaultRates::ZERO }.validate().is_err());
        assert!(FaultRates { stall: 0.6, timeout: 0.6, ..FaultRates::ZERO }.validate().is_err());
        assert!(FaultRates::ZERO.with_crash_rate(f64::NAN).validate().is_err());
        assert!(FaultRates::ZERO.with_crash_rate(-1.0).validate().is_err());
    }

    #[test]
    fn kind_mapping_and_display() {
        assert_eq!(TransferFault::EccSingle.kind(), FaultKind::EccSingle);
        assert_eq!(TransferFault::Stall { extra_cycles: 3 }.kind(), FaultKind::AxiStall);
        for kind in [
            FaultKind::EccSingle,
            FaultKind::EccDouble,
            FaultKind::AxiStall,
            FaultKind::AxiTimeout,
            FaultKind::CardCrash,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }
}
