//! KV-cache residency in device memory.
//!
//! Autoregressive decoding keeps every layer's self-attention K/V rows
//! (growing one row per generated token) and the cross-attention K/V
//! (fixed once the encoder memory is seen) resident in the card's
//! external memory. This module owns both sides of that residency:
//!
//! * **traffic** — the per-step bytes a decode step moves over the
//!   memory link (append the new K/V row, stream the cached rows back
//!   through the attention reduction), priced by the same
//!   [`bounded_transfer_cycles`](crate::hbm::bounded_transfer_cycles)
//!   path as weight tiles;
//! * **capacity** — a per-card byte budget ([`KvResidency`]) that bounds
//!   how many concurrent sessions a card can hold; admission reserves a
//!   session's worst-case footprint up front and releases it when the
//!   session retires, so a full card sheds new sessions instead of
//!   silently oversubscribing its DRAM.

/// The byte footprint of one decode session's KV cache.
///
/// All activations are int8, so one cached row of one layer costs
/// `d_model` bytes per tensor; K and V double it; self- and
/// cross-attention caches add up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvSpec {
    /// Decoder layers (each keeps its own K/V).
    pub layers: usize,
    /// Embedding dimension (row width in bytes at int8).
    pub d_model: usize,
    /// Maximum decoded positions the session may reach (prompt + steps).
    pub self_rows: usize,
    /// Encoder-memory rows cached once for cross-attention.
    pub cross_rows: usize,
}

impl KvSpec {
    /// Worst-case resident bytes of the whole session: self K+V grown to
    /// `self_rows` plus the fixed cross K+V, per layer.
    #[must_use]
    pub fn session_bytes(&self) -> u64 {
        let rows = self.self_rows as u64 + self.cross_rows as u64;
        2 * rows * self.d_model as u64 * self.layers as u64
    }
}

/// Bytes one decode step *writes* per layer: the new K row and the new
/// V row.
#[must_use]
pub fn step_write_bytes(d_model: usize) -> u64 {
    2 * d_model as u64
}

/// Bytes one attention reduction *reads* per layer from a cached tensor
/// of `rows` positions (the K read of QK, or the V read of SV — call
/// once per tensor).
#[must_use]
pub fn attn_read_bytes(rows: u64, d_model: usize) -> u64 {
    rows * d_model as u64
}

/// A card's KV byte budget: how much of its external memory is carved
/// out for resident session caches (the rest belongs to weights and
/// activations). Reservations are worst-case and up-front, so the
/// accounting never depends on token-step order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvResidency {
    budget_bytes: u64,
    used_bytes: u64,
    sessions: usize,
}

impl KvResidency {
    /// An empty residency over `budget_bytes` of device memory.
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        Self { budget_bytes, used_bytes: 0, sessions: 0 }
    }

    /// Reserve a session's footprint. Returns `false` (reserving
    /// nothing) when the budget cannot hold it.
    pub fn try_reserve(&mut self, spec: &KvSpec) -> bool {
        let bytes = spec.session_bytes();
        if self.used_bytes.saturating_add(bytes) > self.budget_bytes {
            return false;
        }
        self.used_bytes += bytes;
        self.sessions += 1;
        true
    }

    /// Release a retired session's footprint (saturating: releasing
    /// more than was reserved clamps to empty rather than underflowing).
    pub fn release(&mut self, spec: &KvSpec) {
        self.used_bytes = self.used_bytes.saturating_sub(spec.session_bytes());
        self.sessions = self.sessions.saturating_sub(1);
    }

    /// Drop every reservation (the card crashed or was re-imaged).
    pub fn clear(&mut self) {
        self.used_bytes = 0;
        self.sessions = 0;
    }

    /// Bytes currently reserved.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The configured budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Sessions currently resident.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KvSpec {
        // 2 layers, d=96, 64 decoded + 32 memory rows:
        // 2 * (64+32) * 96 * 2 = 36864 bytes
        KvSpec { layers: 2, d_model: 96, self_rows: 64, cross_rows: 32 }
    }

    #[test]
    fn session_bytes_formula() {
        assert_eq!(spec().session_bytes(), 36_864);
        assert_eq!(step_write_bytes(96), 192);
        assert_eq!(attn_read_bytes(10, 96), 960);
    }

    #[test]
    fn reserve_release_round_trip() {
        let mut r = KvResidency::new(100_000);
        assert!(r.try_reserve(&spec()));
        assert!(r.try_reserve(&spec()));
        assert_eq!(r.sessions(), 2);
        assert_eq!(r.used_bytes(), 2 * 36_864);
        // third does not fit
        assert!(!r.try_reserve(&spec()));
        assert_eq!(r.sessions(), 2, "failed reserve must not leak accounting");
        r.release(&spec());
        assert!(r.try_reserve(&spec()));
        r.clear();
        assert_eq!((r.used_bytes(), r.sessions()), (0, 0));
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let mut r = KvResidency::new(0);
        assert!(!r.try_reserve(&spec()));
    }

    #[test]
    fn release_saturates() {
        let mut r = KvResidency::new(1 << 20);
        r.release(&spec());
        assert_eq!((r.used_bytes(), r.sessions()), (0, 0));
    }
}
