//! Memory-side bandwidth: channel sharing between AXI masters.
//!
//! An AXI port can only stream as fast as the memory channel behind it.
//! When several masters (e.g. the per-head weight DMAs) share one HBM
//! pseudo-channel, each gets an equal share. The effective transfer rate
//! is `min(port width, channel share)` — whichever is the bottleneck.

use crate::axi::AxiPort;
use protea_hwsim::Cycles;
use protea_platform::ExternalMemory;

/// The share of one memory channel available to one master.
#[derive(Debug, Clone, Copy)]
pub struct ChannelShare {
    /// Memory-side bytes per accelerator cycle available to this master.
    pub bytes_per_cycle: f64,
}

impl ChannelShare {
    /// Compute the share of `memory`'s single channel split between
    /// `sharers` masters, at kernel frequency `freq_hz`.
    ///
    /// # Panics
    /// Panics if `sharers == 0`.
    #[must_use]
    pub fn of(memory: &ExternalMemory, sharers: u32, freq_hz: f64) -> Self {
        assert!(sharers > 0, "at least one master must share the channel");
        Self { bytes_per_cycle: memory.bytes_per_cycle_per_channel(freq_hz) / f64::from(sharers) }
    }

    /// An unshared channel with explicit bytes/cycle (for tests/presets).
    #[must_use]
    pub fn fixed(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0);
        Self { bytes_per_cycle }
    }

    /// Cycles for `bytes` through this channel share alone.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        Cycles((bytes as f64 / self.bytes_per_cycle).ceil() as u64)
    }
}

/// Cycles to move `bytes` through `port` backed by `share`: the slower of
/// the two paths governs (they overlap, they don't add).
#[must_use]
pub fn bounded_transfer_cycles(port: &AxiPort, share: &ChannelShare, bytes: u64) -> Cycles {
    port.transfer_cycles(bytes).max(share.transfer_cycles(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_splits_evenly() {
        let mem = ExternalMemory::hbm2_u55c();
        let solo = ChannelShare::of(&mem, 1, 200.0e6);
        let duo = ChannelShare::of(&mem, 2, 200.0e6);
        assert!((solo.bytes_per_cycle / duo.bytes_per_cycle - 2.0).abs() < 1e-9);
    }

    #[test]
    fn port_is_bottleneck_on_hbm() {
        // 128-bit AXI (16 B/cyc) on an unshared U55C HBM channel
        // (~61 B/cyc): the port governs.
        let port = AxiPort::new(128);
        let share = ChannelShare::of(&ExternalMemory::hbm2_u55c(), 1, 200.0e6);
        let t = bounded_transfer_cycles(&port, &share, 64 * 1024);
        assert_eq!(t, port.transfer_cycles(64 * 1024));
    }

    #[test]
    fn memory_is_bottleneck_when_heavily_shared() {
        // 32 masters on one channel: share ≈ 1.9 B/cyc < 16 B/cyc port.
        let port = AxiPort::new(128);
        let share = ChannelShare::of(&ExternalMemory::hbm2_u55c(), 32, 200.0e6);
        let t = bounded_transfer_cycles(&port, &share, 64 * 1024);
        assert_eq!(t, share.transfer_cycles(64 * 1024));
        assert!(t > port.transfer_cycles(64 * 1024));
    }

    #[test]
    fn zero_bytes_free() {
        let share = ChannelShare::fixed(8.0);
        assert_eq!(share.transfer_cycles(0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn zero_sharers_rejected() {
        let _ = ChannelShare::of(&ExternalMemory::hbm2_u55c(), 0, 200.0e6);
    }
}
