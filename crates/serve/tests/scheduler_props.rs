//! Property tests for the batch scheduler's conservation invariant.
//!
//! Whatever the arrival order, sequence-length mix, and interleaving of
//! dispatches with faulty-card requeues, every pushed request must end
//! up in **exactly one** completed batch — no drops, no duplicates.
//! This is the scheduler-level half of the fleet's zero-drop guarantee.

use proptest::prelude::*;
use protea_core::SynthesisConfig;
use protea_serve::{BatchPolicy, BatchScheduler, ServeRequest};

fn scheduler() -> BatchScheduler {
    BatchScheduler::new(
        BatchPolicy {
            max_batch: 4,
            max_wait_ns: 1_000,
            seq_buckets: vec![16, 32, 64, 128],
            max_queue: None,
        },
        SynthesisConfig::paper_default(),
    )
}

fn request(id: u64, arrival_ns: u64, seq_len: usize) -> ServeRequest {
    ServeRequest { id, arrival_ns, d_model: 96, heads: 4, layers: 2, seq_len, ..Default::default() }
}

proptest! {
    /// Push requests with arbitrary arrival times and lengths, pop with
    /// `pop_ready` at advancing clocks and `pop_any` to drain, and
    /// requeue an arbitrary subset of popped batches (bounded so the
    /// loop terminates, as the fleet's per-request attempt budget does).
    /// Exactly-once delivery must hold at the end.
    #[test]
    fn every_request_lands_in_exactly_one_completed_batch(
        arrivals in prop::collection::vec((0u64..50_000, 1usize..=128), 1..48),
        requeue_bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        let mut s = scheduler();
        for (i, &(at, seq)) in arrivals.iter().enumerate() {
            s.push(request(i as u64, at, seq)).expect("all shapes fit the paper bitstream");
        }
        prop_assert_eq!(s.pending(), arrivals.len());

        let mut completed: Vec<u64> = Vec::new();
        let mut decisions = requeue_bits.into_iter();
        let mut requeue_budget = arrivals.len();

        // Phase 1: serve with a clock, as the fleet's dispatcher does.
        let mut now = 0u64;
        while now <= 60_000 {
            while let Some(batch) = s.pop_ready(now) {
                if requeue_budget > 0 && decisions.next().unwrap_or(false) {
                    requeue_budget -= 1;
                    s.requeue(&batch);
                    break; // a requeued batch is immediately poppable again
                }
                completed.extend(batch.requests.iter().map(|r| r.id));
            }
            now += 7_919; // coprime stride so flush deadlines interleave
        }
        // Phase 2: drain whatever is left, still interleaving requeues.
        while let Some(batch) = s.pop_any() {
            if requeue_budget > 0 && decisions.next().unwrap_or(false) {
                requeue_budget -= 1;
                s.requeue(&batch);
                continue;
            }
            completed.extend(batch.requests.iter().map(|r| r.id));
        }

        prop_assert_eq!(s.pending(), 0, "nothing may remain queued");
        let mut unique = completed.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), completed.len(), "no request may complete twice");
        prop_assert_eq!(completed.len(), arrivals.len(), "no request may be dropped");
    }

    /// Requeue preserves FIFO order: a requeued batch pops again ahead
    /// of anything that arrived after its members.
    #[test]
    fn requeued_batches_keep_their_place_at_the_head(
        n in 1usize..8,
        later_arrival in 100_000u64..200_000,
    ) {
        let mut s = scheduler();
        for i in 0..n {
            s.push(request(i as u64, i as u64, 8)).unwrap();
        }
        let batch = s.pop_any().expect("n >= 1");
        s.push(request(99, later_arrival, 8)).unwrap();
        s.requeue(&batch);
        let again = s.pop_any().expect("requeued batch is pending");
        let ids: Vec<u64> = again.requests.iter().map(|r| r.id).collect();
        // The later arrival may legally top up a non-full batch, but the
        // requeued members must lead, in their original order.
        let expect: Vec<u64> = (0..batch.len() as u64).collect();
        prop_assert_eq!(&ids[..batch.len()], &expect[..], "requeued members pop first, in order");
    }
}
