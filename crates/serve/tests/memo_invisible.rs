//! The timing memo must be invisible: serving the same workload with
//! the cache on or off produces byte-identical `ServeReport`s — in the
//! plain fleet, under overload control, and under fault injection
//! (where the memo is inert by construction: the faulty path draws
//! from a stateful fault stream and is never cached).

use protea_core::FaultRates;
use protea_serve::{
    AimdConfig, BatchPolicy, FaultConfig, Fleet, FleetConfig, HedgeConfig, OverloadConfig,
    RetryBudgetConfig, ServePlan, Workload,
};

fn workload(seed: u64) -> Workload {
    // Several shape classes and bucketed sequence lengths so the memo
    // sees repeated keys *and* distinct keys.
    Workload::poisson(120, 3_000.0, &[(96, 4, 2), (64, 4, 1), (96, 4, 1)], (4, 32), seed)
}

fn serve_both(
    config: FleetConfig,
    wl: &Workload,
) -> (protea_serve::ServeReport, protea_serve::ServeReport) {
    let on = Fleet::try_new(FleetConfig { timing_memo: true, ..config.clone() })
        .expect("valid config")
        .run(ServePlan::workload(wl))
        .expect("servable workload")
        .report;
    let off = Fleet::try_new(FleetConfig { timing_memo: false, ..config })
        .expect("valid config")
        .run(ServePlan::workload(wl))
        .expect("servable workload")
        .report;
    (on, off)
}

#[test]
fn memo_is_invisible_on_the_plain_fleet() {
    let (on, off) = serve_both(FleetConfig::default(), &workload(11));
    assert_eq!(on, off, "memo on vs off must be byte-identical");
}

#[test]
fn memo_is_invisible_with_batching_pressure() {
    let config = FleetConfig {
        cards: 3,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 400_000,
            seq_buckets: vec![8, 16, 32],
            max_queue: None,
        },
        ..FleetConfig::default()
    };
    let (on, off) = serve_both(config, &workload(23));
    assert_eq!(on, off, "memo on vs off must be byte-identical");
}

#[test]
fn memo_is_invisible_under_fault_injection_and_overload() {
    let config = FleetConfig {
        cards: 2,
        faults: Some(FaultConfig {
            rates: FaultRates::scaled(0.01),
            max_request_attempts: 4,
            ..FaultConfig::seeded(7, 0.01)
        }),
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 8, min: 2, max: 32, ..AimdConfig::default() }),
            retry_budget: Some(RetryBudgetConfig { initial: 2, per_admission: 0.3, cap: 10 }),
            hedge: Some(HedgeConfig { factor: 1.0, min_delay_ns: 300_000, min_samples: 3 }),
        }),
        ..FleetConfig::default()
    };
    let wl = workload(42).with_deadline(60_000_000);
    let (on, off) = serve_both(config, &wl);
    assert_eq!(on, off, "fault-injected runs must not be affected by the memo");
}

#[test]
fn memo_is_invisible_in_functional_mode() {
    // Functional dispatch bypasses the memo entirely; the knob must
    // still change nothing.
    let config = FleetConfig { functional: true, ..FleetConfig::default() };
    let wl = Workload::poisson(16, 2_000.0, &[(96, 4, 2)], (4, 8), 5);
    let (on, off) = serve_both(config, &wl);
    assert_eq!(on, off);
}
