//! Property tests for the overload layer's conservation invariant.
//!
//! Whatever the arrival pattern, deadline mix, priority mix, fleet
//! size, fault seed, and overload knobs — every submitted request must
//! land in **exactly one** of {completed, shed, expired, failed}. This
//! is the fleet-level half of the zero-drop guarantee, now under
//! admission control, deadline expiry, priority eviction, retry
//! budgets, and hedged dispatch with loser cancellation, all at once.

use proptest::prelude::*;
use protea_core::{FaultRates, RetryPolicy};
use protea_serve::{
    AimdConfig, BatchPolicy, FaultConfig, Fleet, FleetConfig, HedgeConfig, OverloadConfig,
    Priority, RetryBudgetConfig, ServePlan, ServeRequest, Workload,
};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct Arrival {
    at_ns: u64,
    seq_len: usize,
    deadline_rel_ns: Option<u64>,
    priority: Priority,
}

fn arrival() -> impl Strategy<Value = Arrival> {
    (0u64..3_000_000, 1usize..65, (0u8..2, 200_000u64..80_000_000), 0usize..3).prop_map(
        |(at_ns, seq_len, (has_deadline, rel), p)| Arrival {
            at_ns,
            seq_len,
            deadline_rel_ns: (has_deadline == 1).then_some(rel),
            priority: Priority::ALL[p],
        },
    )
}

fn workload_of(arrivals: &[Arrival]) -> Workload {
    let mut requests: Vec<ServeRequest> = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| ServeRequest {
            id: i as u64,
            arrival_ns: a.at_ns,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len: a.seq_len,
            deadline_ns: a.deadline_rel_ns.map(|d| a.at_ns.saturating_add(d)),
            priority: a.priority,
            tenant: 0,
            decode_steps: 0,
            token_deadline_ns: None,
        })
        .collect();
    requests.sort_by_key(|r| (r.arrival_ns, r.id));
    Workload { requests }
}

fn overloaded_fleet(cards: usize, seed: u64, fault_rate: f64) -> Fleet {
    let faults = (fault_rate > 0.0).then(|| FaultConfig {
        rates: FaultRates::scaled(fault_rate),
        max_request_attempts: 4,
        retry: RetryPolicy::default(),
        ..FaultConfig::seeded(seed, fault_rate)
    });
    Fleet::try_new(FleetConfig {
        cards,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 500_000,
            seq_buckets: vec![16, 32, 64],
            max_queue: Some(3),
        },
        faults,
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 8, min: 2, max: 32, ..AimdConfig::default() }),
            retry_budget: Some(RetryBudgetConfig { initial: 2, per_admission: 0.3, cap: 10 }),
            hedge: Some(HedgeConfig { factor: 1.0, min_delay_ns: 300_000, min_samples: 3 }),
        }),
        ..FleetConfig::default()
    })
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The conservation invariant under the full overload + fault
    /// machinery: ids partition exactly across the four terminal
    /// states, and the whole run replays bit-identically.
    #[test]
    fn every_request_ends_in_exactly_one_state(
        arrivals in prop::collection::vec(arrival(), 1..40),
        cards in 1usize..=3,
        seed in any::<u64>(),
        raw_rate in (0u8..2, 0.001f64..0.03),
    ) {
        let fault_rate = if raw_rate.0 == 1 { raw_rate.1 } else { 0.0 };
        let workload = workload_of(&arrivals);
        let fleet = overloaded_fleet(cards, seed, fault_rate);
        let out = fleet
            .run(ServePlan::workload(&workload).collect_responses())
            .expect("servable shapes with a valid config never error");
        let (report, responses) =
            (out.report, out.responses.expect("collect_responses populates responses"));

        let completed: Vec<u64> = responses.iter().map(|r| r.id).collect();
        let shed: Vec<u64> = report.shed.iter().map(|f| f.id).collect();
        let expired: Vec<u64> = report.expired.iter().map(|f| f.id).collect();
        let failed: Vec<u64> = report.failed.iter().map(|f| f.id).collect();

        prop_assert_eq!(completed.len(), report.completed, "responses match the tally");
        let mut all: Vec<u64> = Vec::new();
        all.extend(&completed);
        all.extend(&shed);
        all.extend(&expired);
        all.extend(&failed);
        let unique: BTreeSet<u64> = all.iter().copied().collect();
        prop_assert_eq!(
            unique.len(), all.len(),
            "a request appeared in two terminal states: completed {:?} shed {:?} \
             expired {:?} failed {:?}",
            completed, shed, expired, failed
        );
        let submitted: BTreeSet<u64> = workload.requests.iter().map(|r| r.id).collect();
        prop_assert_eq!(unique, submitted, "every id must land in exactly one state");
        prop_assert!(report.accounted());

        // Goodput can never exceed throughput, and SLO rows cover the
        // classes actually submitted.
        prop_assert!(report.goodput_rps <= report.throughput_rps + 1e-9);
        let slo_submitted: usize = report.slo.iter().map(|s| s.submitted).sum();
        prop_assert_eq!(slo_submitted, workload.requests.len());

        // Determinism: the identical run replays bit-identically.
        let out = fleet
            .run(ServePlan::workload(&workload).collect_responses())
            .expect("replay");
        let (again, responses_again) =
            (out.report, out.responses.expect("collect_responses populates responses"));
        prop_assert_eq!(report, again);
        prop_assert_eq!(responses, responses_again);
    }

    /// Hedging specifically must never double-complete: with aggressive
    /// hedge settings and no faults, every request completes exactly
    /// once and wins never exceed hedges.
    #[test]
    fn hedging_never_double_completes(
        n in 4usize..32,
        rate in 20_000f64..500_000.0,
        seed in any::<u64>(),
    ) {
        let workload = Workload::poisson(n, rate, &[(96, 4, 2)], (8, 64), seed);
        let fleet = Fleet::try_new(FleetConfig {
            cards: 3,
            overload: Some(OverloadConfig {
                hedge: Some(HedgeConfig { factor: 0.5, min_delay_ns: 10_000, min_samples: 2 }),
                ..OverloadConfig::default()
            }),
            ..FleetConfig::default()
        })
        .expect("valid config");
        let out = fleet.run(ServePlan::workload(&workload).collect_responses()).expect("serve");
        let (report, responses) =
            (out.report, out.responses.expect("collect_responses populates responses"));
        let ids: BTreeSet<u64> = responses.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), n, "every request completes exactly once");
        prop_assert_eq!(report.completed, n);
        prop_assert!(report.hedge_wins <= report.hedges);
        prop_assert!(report.hedge_cancels <= report.hedges);
    }
}
