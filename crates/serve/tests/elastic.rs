//! Elastic-fleet behavior: scripted churn (joins paying the paper's
//! reprogramming charge, drains finishing in-flight work, crashes
//! through the health ladder), placement over heterogeneous rosters,
//! per-tenant SLO classes, brownout degradation, and the per-tenant
//! conservation law — `completed + shed + expired + failed ==
//! submitted` for *every* tenant — under arbitrary seeded churn with
//! faults and overload armed. Mid-churn snapshots must resume
//! bit-identically through the v2 grammar.

use proptest::prelude::*;
use protea_core::{Accelerator, SynthesisConfig};
use protea_platform::FpgaDevice;
use protea_serve::{
    AimdConfig, BrownoutLadder, ChurnAction, ChurnEvent, ChurnPlan, FailReason, FaultConfig, Fleet,
    FleetConfig, HedgeConfig, OverloadConfig, PlacementPolicy, Priority, RetryBudgetConfig,
    ServePlan, ServeRequest, TenantPolicy, Workload,
};

const DEADLINE_NS: u64 = 50_000_000;

/// A Poisson trace whose requests cycle through tenants 0, 1, 2.
fn multi_tenant_trace(n: usize, rate: f64, seed: u64) -> Workload {
    let mut w = Workload::poisson(n, rate, &[(96, 4, 2), (64, 4, 1)], (8, 32), seed);
    for (i, r) in w.requests.iter_mut().enumerate() {
        r.tenant = (i % 3) as u32;
    }
    w
}

fn tenant_policy() -> TenantPolicy {
    TenantPolicy::parse("1=interactive@50,2=best-effort").unwrap()
}

fn elastic_config(cards: usize, churn: ChurnPlan) -> FleetConfig {
    let device = FleetConfig::default().device;
    FleetConfig {
        cards,
        roster: Some(vec![device; cards]),
        faults: Some(FaultConfig::seeded(0xE1A5, 0.04)),
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 8, min: 2, max: 32, ..AimdConfig::default() }),
            retry_budget: Some(RetryBudgetConfig::default()),
            hedge: Some(HedgeConfig { factor: 1.0, min_delay_ns: 300_000, min_samples: 3 }),
        }),
        churn: Some(churn),
        tenants: Some(tenant_policy()),
        brownout: Some(BrownoutLadder::default()),
        ..FleetConfig::default()
    }
}

#[test]
fn join_adds_capacity_and_pays_the_reprogramming_charge() {
    let w = Workload::poisson(40, 200_000.0, &[(96, 4, 2)], (8, 32), 99);
    // Card 1 starts absent and never joins: only card 0 ever programs.
    let short = ChurnPlan { events: Vec::new(), start_absent: vec![1] };
    let solo = Fleet::try_new(elastic_config(2, short)).unwrap();
    let solo_report = solo.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(solo_report.joins, 0);
    assert_eq!(solo_report.reprograms, 1, "one card, one class, one bitstream program");

    // Same fleet, but card 1 joins mid-run: its first batch must pay a
    // fresh reprogram (registers + weight reload — the paper's
    // retarget cost), and the extra capacity must not slow the run.
    let join = ChurnPlan {
        events: vec![ChurnEvent { at_ns: 2_000_000, card: 1, action: ChurnAction::Join }],
        start_absent: vec![1],
    };
    let fleet = Fleet::try_new(elastic_config(2, join)).unwrap();
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report.joins, 1);
    assert!(report.reprograms >= 2, "the joined card pays its own program: {report:?}");
    assert!(report.card_utilization[1] > 0.0, "the joined card must serve: {report:?}");
    assert!(report.accounted() && report.tenants_accounted());
}

#[test]
fn drain_finishes_in_flight_work_then_leaves() {
    let w = Workload::poisson(40, 150_000.0, &[(96, 4, 2)], (8, 32), 7);
    let drain = ChurnPlan {
        events: vec![ChurnEvent { at_ns: 1_000_000, card: 0, action: ChurnAction::Drain }],
        start_absent: Vec::new(),
    };
    let fleet = Fleet::try_new(elastic_config(2, drain)).unwrap();
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report.drains, 1);
    // A voluntary drain never abandons work: everything the fleet
    // admitted still ends in a terminal bucket, and the survivor keeps
    // serving.
    assert!(report.accounted() && report.tenants_accounted());
    assert!(report.completed > 0, "the surviving card must keep serving");
    assert!(
        report.failed.iter().all(|f| f.reason != FailReason::AllCardsDead),
        "one live card remains: {:?}",
        report.failed
    );
}

#[test]
fn brownout_sheds_lowest_classes_first_and_recovers_on_rejoin() {
    // Three cards; two crash at t=1us dropping live capacity to 1/3
    // (severe); card 1 rejoins at t=10ms lifting it back to 2/3
    // (degraded). No random faults, no tenant policy: the trace's own
    // priorities drive the ladder.
    let churn = ChurnPlan {
        events: vec![
            ChurnEvent { at_ns: 1_000, card: 1, action: ChurnAction::Crash },
            ChurnEvent { at_ns: 1_000, card: 2, action: ChurnAction::Crash },
            ChurnEvent { at_ns: 10_000_000, card: 1, action: ChurnAction::Join },
        ],
        start_absent: Vec::new(),
    };
    let device = FleetConfig::default().device;
    let fleet = Fleet::try_new(FleetConfig {
        cards: 3,
        roster: Some(vec![device; 3]),
        faults: Some(FaultConfig::seeded(1, 0.0)),
        churn: Some(churn),
        brownout: Some(BrownoutLadder { degraded: 0.9, severe: 0.5 }),
        ..FleetConfig::default()
    })
    .unwrap();

    // Phase one (severe, live 1/3 < 0.5): only interactive admitted.
    // Phase two (degraded, live 2/3 < 0.9): normal readmitted,
    // best-effort still shed.
    let mk = |id: u64, at: u64, priority: Priority| ServeRequest {
        id,
        arrival_ns: at,
        d_model: 96,
        heads: 4,
        layers: 2,
        seq_len: 16,
        priority,
        deadline_ns: None,
        tenant: 0,
        decode_steps: 0,
        token_deadline_ns: None,
    };
    let requests = vec![
        mk(0, 2_000, Priority::BestEffort),
        mk(1, 3_000, Priority::Normal),
        mk(2, 4_000, Priority::Interactive),
        mk(3, 11_000_000, Priority::BestEffort),
        mk(4, 11_001_000, Priority::Normal),
        mk(5, 11_002_000, Priority::Interactive),
    ];
    let report = fleet.run(ServePlan::workload(&Workload { requests })).unwrap().report;

    let shed_ids: Vec<u64> = report.shed.iter().map(|f| f.id).collect();
    assert_eq!(shed_ids, vec![0, 1, 3], "severe sheds 0+1, degraded sheds only 3: {report:?}");
    assert!(
        report.shed.iter().all(|f| f.reason == FailReason::Brownout),
        "every brownout shed is typed: {:?}",
        report.shed
    );
    assert_eq!(report.completed, 3, "2, 4, and 5 ride out the brownout");
    assert!(report.accounted() && report.tenants_accounted());
}

#[test]
fn fastest_first_placement_routes_to_the_higher_clock() {
    // U200 and U250 synthesize to different clocks; a single request
    // under fastest-first must land on whichever card clocks higher.
    let roster = vec![FpgaDevice::alveo_u200(), FpgaDevice::alveo_u250()];
    let synthesis = SynthesisConfig::paper_default();
    let fmax: Vec<f64> = roster
        .iter()
        .map(|d| Accelerator::try_new(synthesis, d).unwrap().design().fmax_mhz)
        .collect();
    assert_ne!(fmax[0], fmax[1], "the roster must actually be heterogeneous");
    let fastest = usize::from(fmax[1] > fmax[0]);

    let w = Workload::poisson(1, 50_000.0, &[(96, 4, 2)], (8, 16), 3);
    let fleet = Fleet::try_new(FleetConfig {
        cards: 2,
        roster: Some(roster),
        placement: PlacementPolicy::FastestFirst,
        ..FleetConfig::default()
    })
    .unwrap();
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert!(report.card_utilization[fastest] > 0.0, "{report:?}");
    assert_eq!(report.card_utilization[1 - fastest], 0.0, "{report:?}");
}

#[test]
fn tie_broken_policies_match_first_free_on_a_uniform_roster() {
    // On a uniform idle roster every policy's tie-break is the lowest
    // index, so fastest-first must reproduce the historical schedule
    // byte-for-byte.
    let w = Workload::poisson(48, 80_000.0, &[(96, 4, 2), (64, 4, 1)], (8, 32), 1234);
    let base = Fleet::try_new(FleetConfig { cards: 3, ..FleetConfig::default() }).unwrap();
    let fast = Fleet::try_new(FleetConfig {
        cards: 3,
        placement: PlacementPolicy::FastestFirst,
        ..FleetConfig::default()
    })
    .unwrap();
    let a = base.run(ServePlan::workload(&w)).unwrap().report;
    let b = fast.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(a, b);
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn capacity_aware_placement_spreads_load_across_a_mixed_roster() {
    let roster = vec![FpgaDevice::alveo_u200(), FpgaDevice::alveo_u250()];
    let w = Workload::poisson(60, 250_000.0, &[(96, 4, 2)], (8, 32), 11);
    let fleet = Fleet::try_new(FleetConfig {
        cards: 2,
        roster: Some(roster),
        placement: PlacementPolicy::CapacityAware,
        ..FleetConfig::default()
    })
    .unwrap();
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report.completed, 60);
    assert!(
        report.card_utilization.iter().all(|&u| u > 0.0),
        "both cards must share the load: {report:?}"
    );
}

#[test]
fn tenant_slo_rows_appear_and_account_every_request() {
    let w = multi_tenant_trace(48, 80_000.0, 42).with_deadline(DEADLINE_NS);
    let fleet = Fleet::try_new(elastic_config(3, ChurnPlan::seeded(5, 3, 20_000_000, 4))).unwrap();
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report.tenant_slo.len(), 3, "three tenants sent traffic: {report:?}");
    assert!(report.tenants_accounted());
    let rendered = report.to_string();
    assert!(rendered.contains("tenant"), "tenant rows must render: {rendered}");
    for row in &report.tenant_slo {
        assert!(row.accounted(), "tenant {} leaks requests: {row:?}", row.tenant);
    }
    // Tenant 1 runs interactive-with-deadline, tenant 2 best-effort:
    // the policy's stamp must be visible in the row shapes.
    let t1 = report.tenant_slo.iter().find(|r| r.tenant == 1).unwrap();
    assert!(t1.within_deadline <= t1.completed);
}

#[test]
fn single_tenant_managed_report_stays_in_the_pre_tenancy_shape() {
    // No tenant policy, all traffic on tenant 0: the rendered report
    // must not grow tenant rows (byte-compat with earlier eras).
    let w = Workload::poisson(24, 80_000.0, &[(96, 4, 2)], (8, 32), 9);
    let fleet = Fleet::try_new(FleetConfig {
        cards: 2,
        faults: Some(FaultConfig::seeded(0xFA11, 0.03)),
        ..FleetConfig::default()
    })
    .unwrap();
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert!(report.tenant_slo.is_empty());
    assert!(!report.to_string().contains("tenant"));
}

#[test]
fn mid_churn_snapshots_resume_bit_identically_through_the_v2_grammar() {
    let w = multi_tenant_trace(48, 80_000.0, 4242).with_deadline(DEADLINE_NS);
    let fleet =
        Fleet::try_new(elastic_config(3, ChurnPlan::seeded(0xC0DE, 3, 30_000_000, 6))).unwrap();
    let full = fleet.run(ServePlan::workload(&w).snapshot_every(8)).unwrap();
    let full_hash = full.state_hash.unwrap();
    assert!(!full.snapshots.is_empty());

    for snap in &full.snapshots {
        assert_eq!(snap.version(), 2, "elastic runs must emit the v2 grammar");
        // Round-trip through text: resuming a *parsed* snapshot is the
        // cross-process story, churn state and tenant ledger included.
        let reparsed: protea_serve::FleetSnapshot = snap.to_string().parse().unwrap();
        assert_eq!(&reparsed, snap);
        let resumed =
            fleet.run(ServePlan::workload(&w).snapshot_every(8).resume(reparsed)).unwrap();
        assert_eq!(
            resumed.state_hash.unwrap(),
            full_hash,
            "state hash diverged resuming from epoch {}",
            snap.arrivals()
        );
        assert_eq!(resumed.report, full.report);
        assert_eq!(resumed.report.to_string(), full.report.to_string());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: per-tenant conservation holds under
    /// *arbitrary* seeded churn with faults, overload control, a
    /// bounded queue, tenant classes, and brownout all armed — and the
    /// whole run replays deterministically.
    #[test]
    fn per_tenant_conservation_survives_arbitrary_churn(
        seed in 0u64..512,
        churn_seed in 0u64..512,
        churn_n in 0usize..10,
        rate in 30_000f64..160_000f64,
    ) {
        let w = multi_tenant_trace(42, rate, seed).with_deadline(DEADLINE_NS);
        let mut config = elastic_config(3, ChurnPlan::seeded(churn_seed, 3, 40_000_000, churn_n));
        config.policy.max_queue = Some(24);
        config.faults = Some(FaultConfig::seeded(seed ^ 0xF00D, 0.05));
        let fleet = Fleet::try_new(config).unwrap();

        let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
        prop_assert_eq!(report.submitted, w.requests.len());
        prop_assert!(report.accounted(), "global conservation violated: {:?}", report);
        prop_assert!(report.tenants_accounted(), "tenant conservation violated: {:?}", report);
        let tenant_submitted: usize = report.tenant_slo.iter().map(|r| r.submitted).sum();
        prop_assert_eq!(tenant_submitted, report.submitted);

        let again = fleet.run(ServePlan::workload(&w)).unwrap().report;
        prop_assert_eq!(report, again, "churn must replay bit-identically");
    }
}
