//! Silent-data-corruption defense, end to end: seeded injection into
//! weights and activations, ABFT + weight-digest detection, and the
//! quarantine-and-reprogram recovery ladder — with the conservation law
//! intact (re-executed batches count exactly once), deterministic
//! replay, v3 snapshot resume, and a pinned zero-overhead-when-off
//! guarantee: with every SDC knob at rest, reports and snapshots are
//! byte-identical to an undefended fleet's.

use protea_core::{SdcEvent, SdcSite};
use protea_serve::{
    FaultConfig, Fleet, FleetConfig, FleetSnapshot, SdcConfig, ServeError, ServePlan, Workload,
};

fn trace(n: usize, seed: u64) -> Workload {
    Workload::poisson(n, 80_000.0, &[(96, 4, 2), (64, 4, 1)], (8, 32), seed)
}

fn fleet_with(fault_rate: f64, sdc: Option<SdcConfig>) -> Fleet {
    Fleet::try_new(FleetConfig {
        cards: 2,
        faults: Some(FaultConfig::seeded(0x5DC, fault_rate)),
        sdc,
        ..FleetConfig::default()
    })
    .unwrap()
}

#[test]
fn sdc_knobs_at_rest_are_byte_identical_to_an_undefended_fleet() {
    let w = trace(48, 4242);
    let off = fleet_with(0.02, None);
    // `Some` with every knob at rest must behave exactly like `None`:
    // the armed() filter keeps the machinery unallocated.
    let disarmed = fleet_with(0.02, Some(SdcConfig::default()));

    let a = off.run(ServePlan::workload(&w).snapshot_every(8)).unwrap();
    let b = disarmed.run(ServePlan::workload(&w).snapshot_every(8)).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_string(), b.report.to_string());
    assert!(!a.report.sdc(), "no SDC section without SDC knobs");
    assert!(!a.report.to_string().contains("integrity"));
    assert_eq!(a.state_hash, b.state_hash);
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (x, y) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(x.to_string(), y.to_string(), "snapshots must stay byte-identical");
        assert_eq!(x.version(), 1, "a disarmed config must not promote the grammar");
    }
}

#[test]
fn defended_run_detects_recovers_and_conserves_every_request() {
    let w = trace(96, 7);
    let fleet = fleet_with(0.02, Some(SdcConfig::defended(9, 0.4, 1_000_000)));
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;

    assert!(report.sdc_injected > 0, "the rate must actually strike: {report}");
    assert!(report.sdc_detected > 0, "ABFT + scrub must catch hits: {report}");
    assert!(report.scrubs > 0, "the periodic scrub must fire: {report}");
    assert!(report.sdc_coverage() >= 0.99, "defended coverage: {report}");
    // Conservation: a re-executed batch's requests complete exactly
    // once — the ladder never double-counts or drops work.
    assert!(report.accounted(), "conservation violated: {report:?}");
    assert_eq!(report.submitted, w.requests.len());
    assert!(report.to_string().contains("integrity"), "the report must render the SDC row");

    // Determinism: the whole defense replays bit-identically.
    let again = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report, again);
    assert_eq!(report.to_string(), again.to_string());
}

#[test]
fn undefended_injection_is_silently_wrong_defense_closes_the_gap() {
    // A single-class trace keeps every card warm after its first load,
    // so the load-time digest rung never fires incidentally: with no
    // detector armed, *nothing* stands between a hit and the caller.
    let w = Workload::poisson(96, 80_000.0, &[(96, 4, 2)], (8, 32), 11);
    // Same corruption stream, no detector armed: every hit is served.
    let exposed = fleet_with(0.02, Some(SdcConfig { seed: 9, rate: 0.4, ..SdcConfig::default() }));
    let r = exposed.run(ServePlan::workload(&w)).unwrap().report;
    assert!(r.sdc_injected > 0);
    assert_eq!(r.sdc_detected, 0, "nothing armed, nothing caught: {r}");
    assert!(r.sdc_missed > 0, "undefended hits are silently wrong: {r}");
    assert!(r.sdc_coverage() < 0.5, "{r}");

    let defended = fleet_with(0.02, Some(SdcConfig::defended(9, 0.4, 1_000_000)));
    let d = defended.run(ServePlan::workload(&w)).unwrap().report;
    assert!(d.sdc_coverage() > r.sdc_coverage(), "the defense must close the gap: {d}");
    assert!(d.sdc_coverage() >= 0.99, "{d}");
}

/// Satellite: a scripted weight-site corruption is caught by the scrub,
/// the card is quarantined, pays the full reprogram + weight-reload
/// price, requalifies with a verified digest, and rejoins dispatch —
/// all deterministic from the seed.
#[test]
fn quarantine_reprogram_rejoin_restores_the_card() {
    let w = trace(64, 21);
    let scripted = SdcConfig {
        seed: 3,
        rate: 0.0,
        events: vec![SdcEvent { at_ns: 500_000, card: 0, site: SdcSite::Weights }],
        abft: true,
        scrub_every_ns: Some(400_000),
        ..SdcConfig::default()
    };
    let clean = fleet_with(0.0, Some(SdcConfig { events: Vec::new(), ..scripted.clone() }));
    let baseline = clean.run(ServePlan::workload(&w)).unwrap().report;

    let fleet = fleet_with(0.0, Some(scripted));
    let report = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report.sdc_injected, 1, "exactly the scripted hit: {report}");
    assert_eq!(report.sdc_detected, 1, "the scrub must catch the resident hit: {report}");
    assert_eq!(report.sdc_missed, 0, "{report}");
    assert!(
        report.reprograms > baseline.reprograms,
        "quarantine must pay a reprogram + reload the baseline never does: \
         {} vs {}",
        report.reprograms,
        baseline.reprograms
    );
    // The card requalifies and keeps serving: the run still completes
    // everything on both cards.
    assert!(report.accounted(), "{report:?}");
    assert_eq!(report.completed, w.requests.len(), "{report}");
    assert!(report.card_utilization[0] > 0.0, "card 0 must rejoin dispatch: {report:?}");

    let again = fleet.run(ServePlan::workload(&w)).unwrap().report;
    assert_eq!(report, again, "quarantine recovery must replay bit-identically");
}

#[test]
fn defended_runs_snapshot_through_the_v3_grammar_and_resume_bit_identically() {
    let w = trace(48, 4242);
    let fleet = fleet_with(0.02, Some(SdcConfig::defended(9, 0.2, 1_000_000)));
    let full = fleet.run(ServePlan::workload(&w).snapshot_every(8)).unwrap();
    let full_hash = full.state_hash.unwrap();
    assert!(!full.snapshots.is_empty());

    for snap in &full.snapshots {
        assert_eq!(snap.version(), 3, "a defended run must emit the v3 grammar");
        let reparsed: FleetSnapshot = snap.to_string().parse().unwrap();
        assert_eq!(&reparsed, snap);
        let resumed =
            fleet.run(ServePlan::workload(&w).snapshot_every(8).resume(reparsed)).unwrap();
        assert_eq!(
            resumed.state_hash.unwrap(),
            full_hash,
            "state hash diverged resuming from epoch {}",
            snap.arrivals()
        );
        assert_eq!(resumed.report, full.report);
        assert_eq!(resumed.report.to_string(), full.report.to_string());
    }
}

#[test]
fn pre_v3_snapshots_are_refused_by_an_sdc_armed_config() {
    let w = trace(48, 4242);
    let undefended = fleet_with(0.02, None);
    let snap =
        undefended.run(ServePlan::workload(&w).snapshot_every(8)).unwrap().snapshots.remove(0);
    assert!(snap.version() < 3);

    let defended = fleet_with(0.02, Some(SdcConfig::defended(9, 0.05, 1_000_000)));
    match defended.run(ServePlan::workload(&w).resume(snap)) {
        Err(ServeError::Snapshot { msg }) => {
            assert!(msg.contains("pre-v3"), "{msg}");
        }
        other => panic!("pre-v3 snapshot accepted under SDC config: {:?}", other.map(|o| o.report)),
    }
}
