//! Property tests for the streaming metrics sketch: every percentile it
//! reports stays within the documented relative-error bound of the
//! exact nearest-rank answer, across adversarial distributions —
//! single-element, constant, heavy-tailed, and arbitrary mixtures.
//!
//! Also pins the report-equality contract the sketch rides on:
//! `ServeReport` equality ignores the memo observability counters, so
//! memoized and unmemoized runs compare equal wherever it matters.

use proptest::prelude::*;
use protea_serve::{
    Fleet, FleetConfig, LatencySketch, Percentiles, ServePlan, StreamMetrics, Workload,
};

/// |sketch - exact| <= bound * exact, the guarantee LatencySketch
/// documents for values inside its dynamic range.
fn within_bound(sketched: f64, exact: f64) -> bool {
    if exact == 0.0 {
        return sketched == 0.0;
    }
    ((sketched - exact) / exact).abs() <= LatencySketch::RELATIVE_ERROR_BOUND
}

fn check_all_percentiles(values: &[f64]) {
    let mut sketch = LatencySketch::new();
    for &v in values {
        sketch.record(v);
    }
    let exact = Percentiles::of(values);
    let est = sketch.percentiles();
    for (q, s, e) in [(50, est.p50, exact.p50), (95, est.p95, exact.p95), (99, est.p99, exact.p99)]
    {
        assert!(
            within_bound(s, e),
            "p{q}: sketch {s} vs exact {e} over {} values (rel err {})",
            values.len(),
            ((s - e) / e).abs()
        );
    }
    // The max is tracked exactly, not binned.
    assert_eq!(est.max, exact.max, "max must be exact");
    assert_eq!(sketch.count(), values.len() as u64);
}

#[test]
fn single_element_distributions_are_exact_within_bound() {
    for v in [0.0, 1e-6, 0.001, 1.0, 3.25, 999.75, 1e6] {
        check_all_percentiles(&[v]);
    }
}

#[test]
fn constant_distributions_hold_the_bound_at_any_length() {
    for n in [1usize, 2, 3, 7, 100, 999] {
        check_all_percentiles(&vec![1.7; n]);
        check_all_percentiles(&vec![0.0; n]);
    }
}

#[test]
fn heavy_tailed_distributions_hold_the_bound() {
    // A Pareto-ish tail spanning nine decades: most mass at ~0.1 ms,
    // stragglers out to ~100 s. Exactly the shape that breaks
    // fixed-width histograms.
    let mut values = Vec::new();
    let mut x = 1u64;
    for i in 0..4096u64 {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let v = 0.1 / (1.0 - u).powf(1.5).max(1e-12);
        values.push(v.min(1e5) + (i % 7) as f64 * 1e-4);
    }
    check_all_percentiles(&values);
}

#[test]
fn zeros_mixed_with_values_keep_the_zero_bucket_exact() {
    let mut values = vec![0.0; 500];
    values.extend((1..=500).map(|i| i as f64 * 0.01));
    check_all_percentiles(&values);
    // With a zero-heavy stream the median is exactly zero.
    let mut sketch = LatencySketch::new();
    for &v in &values {
        sketch.record(v);
    }
    assert_eq!(sketch.quantile(0.25), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary value mixtures across the sketch's dynamic range: each
    /// draw picks a decade band (including an exact-zero band) and a
    /// position within it.
    #[test]
    fn arbitrary_mixtures_hold_the_bound(
        draws in prop::collection::vec((0u8..5, 0.0f64..1.0), 1..300)
    ) {
        let values: Vec<f64> = draws
            .iter()
            .map(|&(band, u)| match band {
                0 => 0.0,
                1 => 1e-6 + u * (1e-3 - 1e-6),
                2 => 1e-3 + u * (1.0 - 1e-3),
                3 => 1.0 + u * (1e3 - 1.0),
                _ => 1e3 + u * (1e7 - 1e3),
            })
            .collect();
        check_all_percentiles(&values);
    }

    /// StreamMetrics agrees with feeding the sketch by hand: same
    /// percentiles, exact completion count and max finish time.
    #[test]
    fn stream_metrics_matches_manual_sketch(
        latencies in prop::collection::vec(0u64..10_000_000, 1..100),
    ) {
        let mut metrics = StreamMetrics::new();
        let mut manual = LatencySketch::new();
        let mut max_finish = 0u64;
        for (i, &lat) in latencies.iter().enumerate() {
            let arrival = (i as u64) * 1_000;
            let start = arrival + lat / 2;
            let finish = arrival + lat;
            metrics.record(&protea_serve::ServeResponse {
                id: i as u64,
                arrival_ns: arrival,
                start_ns: start,
                finish_ns: finish,
                card: 0,
                batch_size: 1,
                padded_seq_len: 8,
            });
            manual.record(lat as f64 / 1e6);
            max_finish = max_finish.max(finish);
        }
        prop_assert_eq!(metrics.completed(), latencies.len() as u64);
        prop_assert_eq!(metrics.max_finish_ns(), max_finish);
        let a = metrics.latency_percentiles();
        let b = manual.percentiles();
        prop_assert_eq!(a.p50.to_bits(), b.p50.to_bits());
        prop_assert_eq!(a.p95.to_bits(), b.p95.to_bits());
        prop_assert_eq!(a.p99.to_bits(), b.p99.to_bits());
        prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
    }
}

#[test]
fn report_equality_still_ignores_memo_counters() {
    // The memo counters are observability-only: a memoized and an
    // unmemoized run of the same workload must compare equal even
    // though their hit/miss counters differ.
    let w = Workload::poisson(40, 5_000.0, &[(96, 4, 2), (64, 4, 1)], (4, 32), 31);
    let on = Fleet::try_new(FleetConfig { timing_memo: true, ..FleetConfig::default() })
        .unwrap()
        .run(ServePlan::workload(&w))
        .unwrap()
        .report;
    let off = Fleet::try_new(FleetConfig { timing_memo: false, ..FleetConfig::default() })
        .unwrap()
        .run(ServePlan::workload(&w))
        .unwrap()
        .report;
    assert!(on.memo_hits > 0, "memoized run must actually hit the memo");
    assert_eq!(off.memo_hits, 0);
    assert_ne!((on.memo_hits, on.memo_misses), (off.memo_hits, off.memo_misses));
    assert_eq!(on, off, "equality must ignore the memo counters");
}
