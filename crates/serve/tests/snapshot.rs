//! Snapshot/resume determinism: a run interrupted at any epoch and
//! resumed from its `FleetSnapshot` must be *bit-identical* to the
//! uninterrupted run — same per-epoch state hashes, same final state
//! hash, same `ServeReport` down to the rendered string — across the
//! plain fleet, the fully managed (faults + overload + deadlines)
//! fleet, and the streaming-sketch path.

use protea_core::CoreError;
use protea_serve::{
    AimdConfig, BatchPolicy, FaultConfig, Fleet, FleetConfig, FleetSnapshot, HedgeConfig,
    MetricsMode, OverloadConfig, PoissonSource, RetryBudgetConfig, ServeError, ServePlan, Workload,
};

const EVERY: u64 = 8;

fn trace() -> Workload {
    Workload::poisson(48, 80_000.0, &[(96, 4, 2), (64, 4, 1)], (8, 32), 4242)
}

fn plain_fleet() -> Fleet {
    Fleet::try_new(FleetConfig { cards: 3, ..FleetConfig::default() }).unwrap()
}

fn managed_fleet() -> Fleet {
    Fleet::try_new(FleetConfig {
        cards: 2,
        policy: BatchPolicy { max_batch: 4, max_queue: Some(64), ..BatchPolicy::default() },
        faults: Some(FaultConfig::seeded(0xFA11, 0.05)),
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 8, min: 2, max: 32, ..AimdConfig::default() }),
            retry_budget: Some(RetryBudgetConfig::default()),
            hedge: Some(HedgeConfig { factor: 1.0, min_delay_ns: 300_000, min_samples: 3 }),
        }),
        ..FleetConfig::default()
    })
    .unwrap()
}

/// Run uninterrupted with periodic snapshots, then resume from EVERY
/// captured epoch and demand bit-identity: the resumed run's remaining
/// snapshots, final state hash, and report must all match the
/// uninterrupted run's.
fn assert_resume_bit_identical(fleet: &Fleet, w: &Workload) {
    let full = fleet.run(ServePlan::workload(w).snapshot_every(EVERY)).unwrap();
    let full_hash = full.state_hash.unwrap();
    assert!(!full.snapshots.is_empty(), "the run must have captured snapshots");

    for (i, snap) in full.snapshots.iter().enumerate() {
        // Round-trip through the canonical text form first: resuming
        // from a *parsed* snapshot is the cross-process story.
        let reparsed = FleetSnapshot::parse(&snap.to_string()).unwrap();
        assert_eq!(&reparsed, snap);

        let resumed =
            fleet.run(ServePlan::workload(w).snapshot_every(EVERY).resume(reparsed)).unwrap();
        assert_eq!(
            resumed.state_hash.unwrap(),
            full_hash,
            "final state hash diverged when resuming from epoch {}",
            snap.arrivals()
        );
        assert_eq!(resumed.report, full.report, "report diverged from epoch {}", snap.arrivals());
        assert_eq!(
            resumed.report.to_string(),
            full.report.to_string(),
            "rendered report diverged from epoch {}",
            snap.arrivals()
        );
        // Every snapshot the resumed run captures after the handoff
        // must be byte-identical to the uninterrupted run's at the same
        // epoch.
        let expected_rest = &full.snapshots[i + 1..];
        assert_eq!(
            resumed.snapshots.len(),
            expected_rest.len(),
            "snapshot cadence changed after resuming from epoch {}",
            snap.arrivals()
        );
        for (r, e) in resumed.snapshots.iter().zip(expected_rest) {
            assert_eq!(r.state_hash(), e.state_hash(), "epoch {} hash diverged", e.arrivals());
            assert_eq!(r.to_string(), e.to_string(), "epoch {} text diverged", e.arrivals());
        }
    }
}

#[test]
fn plain_fleet_resumes_bit_identically_from_every_epoch() {
    assert_resume_bit_identical(&plain_fleet(), &trace());
}

#[test]
fn managed_fleet_resumes_bit_identically_from_every_epoch() {
    // Faults, AIMD, retry budget, hedging, deadlines, bounded queue:
    // every piece of mutable state the snapshot must carry.
    assert_resume_bit_identical(&managed_fleet(), &trace().with_deadline(50_000_000));
}

#[test]
fn streaming_sketch_run_resumes_bit_identically() {
    let n = 96;
    let args = (120_000.0, [(96, 4, 2), (64, 4, 1)], (8, 32), 7u64);
    let fleet = plain_fleet();

    let mut source = PoissonSource::new(n, args.0, &args.1, args.2, args.3);
    let full = fleet
        .run(ServePlan::stream(&mut source).metrics(MetricsMode::Sketch).snapshot_every(16))
        .unwrap();
    let full_hash = full.state_hash.unwrap();

    let mid = &full.snapshots[full.snapshots.len() / 2];
    // Resume with a *fresh* source: apply() must seek it to the
    // captured cursor (emitted count, RNG position, arrival clock).
    let mut fresh = PoissonSource::new(n, args.0, &args.1, args.2, args.3);
    let resumed = fleet
        .run(
            ServePlan::stream(&mut fresh)
                .metrics(MetricsMode::Sketch)
                .snapshot_every(16)
                .resume(mid.clone()),
        )
        .unwrap();
    assert_eq!(resumed.state_hash.unwrap(), full_hash);
    assert_eq!(resumed.report, full.report);
    assert_eq!(resumed.report.to_string(), full.report.to_string());
}

#[test]
fn state_hash_is_stable_across_identical_runs_and_sensitive_to_the_seed() {
    let fleet = managed_fleet();
    let w = trace();
    let a = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    let b = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    assert_eq!(a.state_hash, b.state_hash);
    let hashes_a: Vec<u64> = a.snapshots.iter().map(FleetSnapshot::state_hash).collect();
    let hashes_b: Vec<u64> = b.snapshots.iter().map(FleetSnapshot::state_hash).collect();
    assert_eq!(hashes_a, hashes_b, "per-epoch hashes must replay exactly");

    let other = Workload::poisson(48, 80_000.0, &[(96, 4, 2), (64, 4, 1)], (8, 32), 4243);
    let c = fleet.run(ServePlan::workload(&other).snapshot_every(EVERY)).unwrap();
    assert_ne!(a.state_hash, c.state_hash, "a different workload must change the hash");
}

#[test]
fn tampered_snapshot_text_is_rejected() {
    let fleet = plain_fleet();
    let w = trace();
    let out = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    let text = out.snapshots[0].to_string();

    // Flip one digit in a counter line: the hash trailer must catch it,
    // and a tampered seal is an *integrity* error — untrusted input,
    // with its own exit code — not a generic snapshot error.
    let tampered = text.replacen("arrivals 8", "arrivals 9", 1);
    assert_ne!(tampered, text, "the fixture must actually tamper the text");
    match FleetSnapshot::parse(&tampered) {
        Err(err @ ServeError::SnapshotIntegrity { .. }) => {
            assert!(err.to_string().contains("hash mismatch"), "{err}");
            assert_eq!(CoreError::from(err).exit_code(), 9);
        }
        other => panic!("tampered snapshot accepted: {other:?}"),
    }

    // Truncation loses the trailer: also an integrity failure.
    let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
    match FleetSnapshot::parse(&truncated) {
        Err(ServeError::SnapshotIntegrity { .. }) => {}
        other => panic!("truncated snapshot accepted: {other:?}"),
    }
}

#[test]
fn unknown_snapshot_version_is_an_integrity_error_with_its_own_exit_code() {
    let fleet = plain_fleet();
    let w = trace();
    let out = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    let text = out.snapshots[0].to_string();

    // Rewrite the header to an unknown version and re-seal the body so
    // the trailer verifies: version negotiation itself must reject it.
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    lines.pop();
    lines[0] = "protea-fleet-snapshot v9".into();
    let body = lines.join("\n");
    let resealed = format!("{body}\nhash {:016x}\n", protea_hwsim::Fnv64::hash(body.as_bytes()));
    let err = FleetSnapshot::parse(&resealed).unwrap_err();
    assert!(matches!(err, ServeError::SnapshotIntegrity { .. }), "{err}");
    assert!(err.to_string().contains("unsupported snapshot header"), "{err}");
    assert_eq!(CoreError::from(err).exit_code(), 9, "integrity failures get exit code 9");
}

/// The committed v1 fixture keeps the legacy grammar honest: it must
/// keep parsing as version 1, resuming bit-identically, and being
/// rejected under an elastic config (whose state v1 cannot carry).
/// Regenerate with `PROTEA_REGEN_FIXTURES=1 cargo test -p protea-serve`.
#[test]
fn committed_v1_fixture_parses_and_resumes_bit_identically() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/snapshot_v1.txt");
    let fleet = plain_fleet();
    let w = trace();
    let full = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    if std::env::var_os("PROTEA_REGEN_FIXTURES").is_some() {
        std::fs::write(path, full.snapshots[0].to_string()).unwrap();
    }
    let text = std::fs::read_to_string(path).expect("committed v1 fixture");
    let snap = FleetSnapshot::parse(&text).unwrap();
    assert_eq!(snap.version(), 1, "a classic fleet must emit the v1 grammar");
    assert_eq!(&snap, &full.snapshots[0], "fixture drifted from the captured epoch");

    let resumed =
        fleet.run(ServePlan::workload(&w).snapshot_every(EVERY).resume(snap.clone())).unwrap();
    assert_eq!(resumed.state_hash, full.state_hash);
    assert_eq!(resumed.report, full.report);

    // v1 → v2 migration has a hard edge: a v1 snapshot cannot describe
    // roster/churn/tenant state, so an elastic config refuses it.
    let device = FleetConfig::default().device;
    let elastic = Fleet::try_new(FleetConfig {
        cards: 3,
        roster: Some(vec![device; 3]),
        ..FleetConfig::default()
    })
    .unwrap();
    match elastic.run(ServePlan::workload(&w).resume(snap)) {
        Err(ServeError::Snapshot { msg }) => assert!(msg.contains("v1 snapshot"), "{msg}"),
        other => panic!("v1-under-elastic accepted: {:?}", other.map(|o| o.report)),
    }
}

#[test]
fn resume_under_a_different_config_or_source_is_rejected() {
    let w = trace();
    let snap = plain_fleet()
        .run(ServePlan::workload(&w).snapshot_every(EVERY))
        .unwrap()
        .snapshots
        .remove(0);

    // Different fleet config (4 cards instead of 3): digest mismatch.
    let other = Fleet::try_new(FleetConfig { cards: 4, ..FleetConfig::default() }).unwrap();
    match other.run(ServePlan::workload(&w).resume(snap.clone())) {
        Err(ServeError::Snapshot { msg }) => {
            assert!(msg.contains("different fleet config"), "{msg}")
        }
        other => panic!("config mismatch accepted: {:?}", other.map(|o| o.report)),
    }

    // Different source kind (snapshot recorded a workload-stream).
    let mut poisson = PoissonSource::new(48, 80_000.0, &[(96, 4, 2)], (8, 32), 4242);
    match plain_fleet().run(ServePlan::stream(&mut poisson).resume(snap)) {
        Err(ServeError::Snapshot { msg }) => assert!(msg.contains("source"), "{msg}"),
        other => panic!("source-kind mismatch accepted: {:?}", other.map(|o| o.report)),
    }
}

/// Corruption fuzz over the whole file: flipping a byte at *every*
/// offset of a sealed v2 snapshot must either still parse to the
/// bit-exact original (flips the canonical form never reads, e.g. a
/// trailing newline) or fail as a typed [`ServeError::SnapshotIntegrity`]
/// with exit code 9 — never a panic, never a silently different state.
#[test]
fn every_single_byte_flip_is_caught_or_harmless() {
    let device = FleetConfig::default().device;
    let fleet = Fleet::try_new(FleetConfig {
        cards: 2,
        roster: Some(vec![device; 2]),
        faults: Some(FaultConfig::seeded(0xF1B, 0.05)),
        ..FleetConfig::default()
    })
    .unwrap();
    let w = Workload::poisson(24, 80_000.0, &[(96, 4, 2)], (8, 32), 31);
    let out = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    let snap = &out.snapshots[0];
    assert_eq!(snap.version(), 2, "the fuzz target must be a v2 snapshot");
    let text = snap.to_string();
    let bytes = text.as_bytes();

    let mut rejected = 0u32;
    for offset in 0..bytes.len() {
        for mask in [0x01u8, 0xFF] {
            let mut corrupt = bytes.to_vec();
            corrupt[offset] ^= mask;
            // Non-UTF-8 output cannot even reach the parser; any real
            // consumer rejects it while reading the file.
            let Ok(corrupt) = String::from_utf8(corrupt) else {
                rejected += 1;
                continue;
            };
            match FleetSnapshot::parse(&corrupt) {
                Ok(back) => assert_eq!(
                    &back, snap,
                    "offset {offset} mask {mask:#x}: a surviving parse must be bit-exact"
                ),
                Err(err @ ServeError::SnapshotIntegrity { .. }) => {
                    rejected += 1;
                    assert_eq!(CoreError::from(err).exit_code(), 9);
                }
                Err(other) => {
                    panic!("offset {offset} mask {mask:#x}: untyped rejection {other:?}")
                }
            }
        }
    }
    assert!(rejected > 0, "the sweep must exercise the rejection path");
}

#[test]
fn managed_snapshot_text_survives_a_parse_round_trip() {
    // The managed snapshot exercises every section of the grammar
    // (fault streams, monitors, inflight batches, failure lists,
    // limiter, retry budget, service-time tracker).
    let fleet = managed_fleet();
    let w = trace().with_deadline(50_000_000);
    let out = fleet.run(ServePlan::workload(&w).snapshot_every(EVERY)).unwrap();
    for snap in &out.snapshots {
        let text = snap.to_string();
        let back = text.parse::<FleetSnapshot>().unwrap();
        assert_eq!(&back, snap);
        assert_eq!(back.to_string(), text, "Display must be canonical");
    }
}
