//! Decode-serving integration: autoregressive sessions under the
//! continuous-batching fleet.
//!
//! Pins the tentpole guarantees end to end: every requested token is
//! emitted or shed (never lost), joiners merge into a running decode
//! batch between token steps instead of waiting for the card, crashes
//! mid-generation shed the stranded remainder with a typed reason,
//! snapshot/resume mid-generation is bit-identical, and the serial
//! baseline refuses generation work with a typed error.

use proptest::prelude::*;
use protea_core::{FaultRates, RetryPolicy};
use protea_serve::{
    AimdConfig, BatchPolicy, ChurnAction, ChurnEvent, ChurnPlan, FailReason, FaultConfig, Fleet,
    FleetConfig, FleetSnapshot, OverloadConfig, Priority, RetryBudgetConfig, ServeError, ServePlan,
    ServeRequest, Workload,
};
use std::collections::BTreeSet;

fn gen_workload(n: usize, steps: u32, seed: u64) -> Workload {
    Workload::poisson(n, 60_000.0, &[(96, 4, 2)], (8, 24), seed).with_decode(steps, None)
}

fn small_fleet(cards: usize) -> Fleet {
    Fleet::try_new(FleetConfig { cards, ..FleetConfig::default() }).unwrap()
}

/// A single session on a single card: every requested token is
/// emitted, the report grows a generation section, and the run
/// replays bit-identically.
#[test]
fn single_session_emits_every_token() {
    let steps = 8u32;
    let w = gen_workload(1, steps, 11);
    let fleet = small_fleet(1);
    let out = fleet.run(ServePlan::workload(&w)).unwrap();
    let r = &out.report;

    assert_eq!(r.completed, 1);
    assert!(r.decoded(), "a decode run must mark the report as generating");
    assert_eq!(r.tokens_requested, u64::from(steps));
    assert_eq!(r.tokens_emitted, u64::from(steps));
    assert_eq!(r.tokens_shed, 0);
    assert!(r.tokens_accounted());
    assert!(r.tokens_per_s > 0.0, "tokens/s must be positive: {}", r.tokens_per_s);
    assert!(r.prefill_ms_mean > 0.0, "prefill latency must be positive");
    assert!(r.decode_ms_per_token > 0.0, "decode latency must be positive");

    let rendered = r.to_string();
    assert!(rendered.contains("generation"), "report must render a generation section");
    assert!(rendered.contains("tok/s"), "report must render tokens/s");

    let again = fleet.run(ServePlan::workload(&w)).unwrap();
    assert_eq!(out.report, again.report, "decode runs must replay bit-identically");
}

/// Encoder-only runs never grow the generation section: the report
/// renders exactly as it did before decode existed.
#[test]
fn encoder_only_report_has_no_generation_section() {
    let w = Workload::poisson(8, 60_000.0, &[(96, 4, 2)], (8, 24), 11);
    let r = small_fleet(2).run(ServePlan::workload(&w)).unwrap().report;
    assert!(!r.decoded());
    assert!(r.tokens_accounted(), "0 + 0 == 0 vacuously");
    assert!(!r.to_string().contains("generation"));
}

/// Continuous batching: sessions arriving while a compatible decode
/// batch is mid-generation join it between token steps rather than
/// waiting for the card to free. Fewer batch starts than sessions is
/// the observable signature.
#[test]
fn later_arrivals_join_running_decode_batch() {
    let steps = 32u32;
    // Same shape and same padded bucket so every later arrival is a
    // legal joiner; arrivals staggered well inside the first session's
    // generation span.
    let requests: Vec<ServeRequest> = (0..4u64)
        .map(|i| ServeRequest {
            id: i,
            arrival_ns: i * 400_000,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len: 8,
            deadline_ns: None,
            priority: Priority::Normal,
            tenant: 0,
            decode_steps: steps,
            token_deadline_ns: None,
        })
        .collect();
    let w = Workload { requests };
    let r = small_fleet(1).run(ServePlan::workload(&w)).unwrap().report;

    assert_eq!(r.completed, 4);
    assert_eq!(r.tokens_emitted, 4 * u64::from(steps));
    assert!(r.tokens_accounted());
    assert!(
        r.batches < 4,
        "with one card and staggered arrivals at least one session must \
         join a running batch, yet {} batches started for 4 sessions",
        r.batches
    );
}

/// A card crash mid-generation sheds the stranded sessions' remaining
/// tokens with a typed reason — conservation holds at every crash
/// time, and at least one sweep point actually lands mid-flight.
#[test]
fn crash_mid_generation_sheds_remaining_tokens() {
    let steps = 48u32;
    let n = 4usize;
    let mut saw_shed_tokens = false;
    for crash_at in [200_000u64, 2_000_000, 10_000_000, 40_000_000] {
        let w = gen_workload(n, steps, 23);
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            churn: Some(ChurnPlan {
                events: vec![ChurnEvent { at_ns: crash_at, card: 0, action: ChurnAction::Crash }],
                start_absent: vec![],
            }),
            ..FleetConfig::default()
        })
        .unwrap();
        let r = fleet.run(ServePlan::workload(&w)).unwrap().report;

        assert!(r.accounted(), "request conservation must hold at crash_at={crash_at}");
        assert!(
            r.tokens_accounted(),
            "token conservation must hold at crash_at={crash_at}: {} + {} != {}",
            r.tokens_emitted,
            r.tokens_shed,
            r.tokens_requested
        );
        assert_eq!(r.tokens_requested, (n as u64) * u64::from(steps));
        if r.tokens_shed > 0 {
            saw_shed_tokens = true;
            // Sessions die with their card (the KV cache is gone): the
            // failure is typed as the crash, not a generic shed.
            assert!(
                r.failed.iter().any(|f| matches!(f.reason, FailReason::RetriesExhausted { .. })
                    || matches!(f.reason, FailReason::AllCardsDead)),
                "shed tokens at crash_at={crash_at} must come with typed failures: {:?}",
                r.failed
            );
        }
    }
    assert!(saw_shed_tokens, "no sweep point crashed mid-generation; widen the sweep");
}

/// The serial baseline models one card with no batching — it has no
/// token loop, so generation requests are rejected with a typed error
/// instead of silently dropping their decode phase.
#[test]
fn serial_baseline_rejects_generation() {
    let w = gen_workload(2, 4, 7);
    match small_fleet(1).run(ServePlan::workload(&w).serial_baseline()) {
        Err(ServeError::Unservable { .. }) => {}
        Err(other) => panic!("expected Unservable, got {other:?}"),
        Ok(_) => panic!("serial baseline must reject generation requests"),
    }
}

/// Snapshot/resume mid-generation: a run interrupted at any captured
/// epoch and resumed must be bit-identical to the uninterrupted run —
/// resident KV, in-flight sessions, and token tallies all restore.
#[test]
fn resume_mid_generation_is_bit_identical() {
    // Stagger the arrivals across the generation span so later
    // snapshots capture cards with *resident mid-decode sessions* —
    // a dense burst would put every snapshot before the first batch
    // even starts, leaving the restored-session path untested. The
    // restored card must come back with the batch's exact program
    // (class + padded prompt), not the accelerator default.
    let mut w = gen_workload(6, 12, 31);
    for (i, r) in w.requests.iter_mut().enumerate() {
        r.arrival_ns = (i as u64) * 4_000_000;
    }
    let fleet = small_fleet(2);
    let full = fleet.run(ServePlan::workload(&w).snapshot_every(2)).unwrap();
    let full_hash = full.state_hash.unwrap();
    assert!(!full.snapshots.is_empty(), "the run must have captured snapshots");
    assert!(full.report.decoded());

    for snap in &full.snapshots {
        let reparsed = FleetSnapshot::parse(&snap.to_string()).unwrap();
        assert_eq!(&reparsed, snap);
        let resumed =
            fleet.run(ServePlan::workload(&w).snapshot_every(2).resume(reparsed)).unwrap();
        assert_eq!(
            resumed.state_hash.unwrap(),
            full_hash,
            "final state hash diverged when resuming from epoch {}",
            snap.arrivals()
        );
        assert_eq!(resumed.report, full.report, "report diverged from epoch {}", snap.arrivals());
    }
}

#[derive(Debug, Clone)]
struct GenArrival {
    at_ns: u64,
    seq_len: usize,
    steps: u32,
    token_deadline_ns: Option<u64>,
}

const STEP_CHOICES: [u32; 4] = [0, 1, 3, 8];

fn gen_arrival() -> impl Strategy<Value = GenArrival> {
    (0u64..3_000_000, 1usize..64, 0usize..4, (0u8..2, 50_000u64..5_000_000)).prop_map(
        |(at_ns, seq_len, step_idx, (has_tok_dl, tok_dl))| GenArrival {
            at_ns,
            seq_len,
            steps: STEP_CHOICES[step_idx],
            token_deadline_ns: (has_tok_dl == 1).then_some(tok_dl),
        },
    )
}

fn workload_of(arrivals: &[GenArrival]) -> Workload {
    let mut requests: Vec<ServeRequest> = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| ServeRequest {
            id: i as u64,
            arrival_ns: a.at_ns,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len: a.seq_len,
            deadline_ns: None,
            priority: Priority::Normal,
            tenant: 0,
            decode_steps: a.steps,
            token_deadline_ns: if a.steps > 0 { a.token_deadline_ns } else { None },
        })
        .collect();
    requests.sort_by_key(|r| (r.arrival_ns, r.id));
    Workload { requests }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Token conservation under churn, faults, admission caps, and
    /// mixed encode/decode traffic: `tokens_emitted + tokens_shed ==
    /// tokens_requested` for every arrival pattern, and the run
    /// replays bit-identically.
    #[test]
    fn tokens_conserved_under_churn_and_faults(
        arrivals in prop::collection::vec(gen_arrival(), 1..24),
        cards in 1usize..=3,
        seed in any::<u64>(),
        raw_rate in (0u8..2, 0.001f64..0.02),
        crash in (0u8..2, 0u64..20_000_000),
    ) {
        let fault_rate = if raw_rate.0 == 1 { raw_rate.1 } else { 0.0 };
        let faults = (fault_rate > 0.0).then(|| FaultConfig {
            rates: FaultRates::scaled(fault_rate),
            max_request_attempts: 4,
            retry: RetryPolicy::default(),
            ..FaultConfig::seeded(seed, fault_rate)
        });
        let churn = (crash.0 == 1).then(|| ChurnPlan {
            events: vec![ChurnEvent { at_ns: crash.1, card: 0, action: ChurnAction::Crash }],
            start_absent: vec![],
        });
        let workload = workload_of(&arrivals);
        let fleet = Fleet::try_new(FleetConfig {
            cards,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 500_000,
                seq_buckets: vec![16, 32, 64],
                max_queue: Some(3),
            },
            faults,
            churn,
            overload: Some(OverloadConfig {
                aimd: Some(AimdConfig { initial: 8, min: 2, max: 32, ..AimdConfig::default() }),
                retry_budget: Some(RetryBudgetConfig { initial: 2, per_admission: 0.3, cap: 10 }),
                hedge: None,
            }),
            ..FleetConfig::default()
        })
        .expect("valid config");

        let out = fleet
            .run(ServePlan::workload(&workload).collect_responses())
            .expect("servable shapes never error");
        let (report, responses) =
            (out.report, out.responses.expect("collect_responses populates responses"));

        let requested: u64 =
            workload.requests.iter().map(|r| u64::from(r.decode_steps)).sum();
        prop_assert_eq!(report.tokens_requested, requested);
        prop_assert!(
            report.tokens_accounted(),
            "token conservation violated: {} emitted + {} shed != {} requested",
            report.tokens_emitted, report.tokens_shed, report.tokens_requested
        );
        prop_assert!(report.tokens_on_time <= report.tokens_emitted);
        prop_assert!(report.accounted());

        // Request-level partition still holds with sessions in the mix.
        let mut all: Vec<u64> = responses.iter().map(|r| r.id).collect();
        all.extend(report.shed.iter().map(|f| f.id));
        all.extend(report.expired.iter().map(|f| f.id));
        all.extend(report.failed.iter().map(|f| f.id));
        let unique: BTreeSet<u64> = all.iter().copied().collect();
        prop_assert_eq!(unique.len(), all.len(), "a request landed in two terminal states");
        let submitted: BTreeSet<u64> = workload.requests.iter().map(|r| r.id).collect();
        prop_assert_eq!(unique, submitted);

        // Determinism: the identical run replays bit-identically.
        let again = fleet
            .run(ServePlan::workload(&workload).collect_responses())
            .expect("replay");
        prop_assert_eq!(report, again.report);
        prop_assert_eq!(responses, again.responses.expect("responses"));
    }
}
