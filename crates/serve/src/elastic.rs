//! Elastic-fleet vocabulary: placement policies over a heterogeneous
//! roster, scripted runtime churn (cards joining, draining, crashing),
//! per-tenant service classes, and the brownout degradation ladder.
//!
//! None of these types run a simulation themselves — they are the knob
//! blocks a [`FleetConfig`](crate::FleetConfig) carries into the event
//! loop. Everything is plain data with seeded generators and CLI
//! spec parsers, so an elastic scenario is reproducible from a command
//! line and serializable into a snapshot. A config that sets none of
//! them behaves exactly as before elasticity existed.

use crate::request::Priority;
use core::fmt;
use std::collections::BTreeMap;

/// How the dispatcher chooses among the free, live cards for the next
/// ready batch.
///
/// [`PlacementPolicy::FirstFree`] is the historical behavior (lowest
/// card index wins) and the default; the other policies only change
/// *which* card serves a batch, never whether it is served, so every
/// conservation invariant holds under all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Lowest-index free card (the historical, pre-roster behavior).
    #[default]
    FirstFree,
    /// The free card with the highest synthesized clock; ties break to
    /// the lowest index. Greedy for latency on mixed rosters.
    FastestFirst,
    /// The free card with the least accumulated busy time; ties break
    /// to the lowest index. Evens wear across a uniform roster.
    LeastLoaded,
    /// The free card with the least busy time *per unit of relative
    /// capacity* ([`FpgaDevice::relative_capacity`]); ties break to the
    /// lowest index. Loads big cards proportionally harder.
    ///
    /// [`FpgaDevice::relative_capacity`]: protea_platform::FpgaDevice::relative_capacity
    CapacityAware,
}

impl PlacementPolicy {
    /// Parse the CLI spelling (`first-free` | `fastest-first` |
    /// `least-loaded` | `capacity-aware`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "first-free" => Some(PlacementPolicy::FirstFree),
            "fastest-first" => Some(PlacementPolicy::FastestFirst),
            "least-loaded" => Some(PlacementPolicy::LeastLoaded),
            "capacity-aware" => Some(PlacementPolicy::CapacityAware),
            _ => None,
        }
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementPolicy::FirstFree => "first-free",
            PlacementPolicy::FastestFirst => "fastest-first",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::CapacityAware => "capacity-aware",
        })
    }
}

/// What happens to a card at a scripted churn instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// The card (re)joins the fleet. Its next batch pays the full
    /// reprogramming charge — bitstream registers plus a weight reload
    /// over `reload_gbps` — exactly as the paper prices a retarget;
    /// there is no re-synthesis.
    Join,
    /// Voluntary scale-down: the card stops accepting new batches,
    /// finishes anything in flight, then leaves cleanly.
    Drain,
    /// Involuntary loss: the card dies mid-flight through the same
    /// health ladder a random crash uses (in-flight work requeues or
    /// fails under the retry policy).
    Crash,
}

impl ChurnAction {
    /// Parse the CLI spelling (`join` | `drain` | `crash`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "join" => Some(ChurnAction::Join),
            "drain" => Some(ChurnAction::Drain),
            "crash" => Some(ChurnAction::Crash),
            _ => None,
        }
    }
}

impl fmt::Display for ChurnAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChurnAction::Join => "join",
            ChurnAction::Drain => "drain",
            ChurnAction::Crash => "crash",
        })
    }
}

/// One scripted churn instant: at `at_ns`, `card` does `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Simulation time of the action, nanoseconds from trace start.
    pub at_ns: u64,
    /// The affected card's index in the roster.
    pub card: usize,
    /// What happens to it.
    pub action: ChurnAction,
}

/// A deterministic, scriptable churn schedule for one run.
///
/// The plan is fixed before the simulation starts — either written by
/// hand / parsed from a CLI spec, or drawn from a seed with
/// [`ChurnPlan::seeded`] — so two runs of the same plan replay
/// bit-identically and a snapshot taken mid-churn can resume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnPlan {
    /// The scripted actions, in any order (the event queue sorts them).
    pub events: Vec<ChurnEvent>,
    /// Cards absent at time zero (they join only if the plan says so).
    pub start_absent: Vec<usize>,
}

impl ChurnPlan {
    /// True when the plan does nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.start_absent.is_empty()
    }

    /// Check every card index against the fleet size and every join
    /// against double-booking at time zero.
    ///
    /// # Errors
    /// A human-readable description of the first structural problem.
    pub fn validate(&self, cards: usize) -> Result<(), String> {
        for &c in &self.start_absent {
            if c >= cards {
                return Err(format!("churn plan marks card {c} absent, fleet has {cards}"));
            }
        }
        let mut absent = self.start_absent.clone();
        absent.sort_unstable();
        absent.dedup();
        if absent.len() != self.start_absent.len() {
            return Err("churn plan lists a card absent twice".into());
        }
        if absent.len() == cards && self.events.iter().all(|e| e.action != ChurnAction::Join) {
            return Err("churn plan leaves the whole fleet absent with no join".into());
        }
        for e in &self.events {
            if e.card >= cards {
                return Err(format!(
                    "churn event `{}:{}@{}` targets a card outside the fleet of {cards}",
                    e.action, e.card, e.at_ns
                ));
            }
        }
        Ok(())
    }

    /// Draw a random plan from a seed: `n` events over `horizon_ns`,
    /// uniformly random cards and times, actions cycling through
    /// join/drain/crash so all three paths get exercised. Two calls
    /// with equal arguments return equal plans.
    #[must_use]
    pub fn seeded(seed: u64, cards: usize, horizon_ns: u64, n: usize) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // splitmix64: tiny, seedable, good enough to scatter churn.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut events = Vec::with_capacity(n);
        for i in 0..n {
            let at_ns = if horizon_ns == 0 { 0 } else { next() % horizon_ns };
            let card = if cards == 0 { 0 } else { (next() as usize) % cards };
            let action = match i % 3 {
                0 => ChurnAction::Drain,
                1 => ChurnAction::Join,
                _ => ChurnAction::Crash,
            };
            events.push(ChurnEvent { at_ns, card, action });
        }
        ChurnPlan { events, start_absent: Vec::new() }
    }

    /// Parse a CLI churn spec: comma-separated elements, each either
    /// `absent:<card>` or `<action>:<card>@<ns>` (e.g.
    /// `absent:2,join:2@5000000,drain:0@9000000,crash:1@12000000`).
    ///
    /// # Errors
    /// Names the offending element and the accepted grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = ChurnPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let bad = || {
                format!(
                    "bad churn element `{part}` (want `absent:<card>` or \
                     `join|drain|crash:<card>@<ns>`)"
                )
            };
            let (head, rest) = part.split_once(':').ok_or_else(bad)?;
            if head == "absent" {
                plan.start_absent.push(rest.parse::<usize>().map_err(|_| bad())?);
                continue;
            }
            let action = ChurnAction::parse(head).ok_or_else(bad)?;
            let (card, at) = rest.split_once('@').ok_or_else(bad)?;
            plan.events.push(ChurnEvent {
                at_ns: at.parse::<u64>().map_err(|_| bad())?,
                card: card.parse::<usize>().map_err(|_| bad())?,
                action,
            });
        }
        Ok(plan)
    }
}

/// The service class a tenant's requests run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantClass {
    /// Priority stamped on every request from the tenant (shed order
    /// under overload and brownout).
    pub priority: Priority,
    /// Relative completion deadline stamped on every request (ns from
    /// its arrival), or `None` for no SLO deadline.
    pub deadline_rel_ns: Option<u64>,
}

impl Default for TenantClass {
    /// [`Priority::Normal`], no deadline — the class an unlisted tenant
    /// (including the default tenant `0`) runs under.
    fn default() -> Self {
        TenantClass { priority: Priority::Normal, deadline_rel_ns: None }
    }
}

/// Per-tenant priority / SLO classes.
///
/// Installing a policy (even an empty one) turns on per-tenant SLO rows
/// in the report; tenants the map does not list run under
/// [`TenantClass::default`]. The policy *overwrites* the priority and
/// relative deadline on every admitted request — the trace's own
/// stamps are the fallback only when no policy is installed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantPolicy {
    /// Tenant id → its service class.
    pub classes: BTreeMap<u32, TenantClass>,
}

impl TenantPolicy {
    /// The class tenant `tenant` runs under (default class if unlisted).
    #[must_use]
    pub fn class_for(&self, tenant: u32) -> TenantClass {
        self.classes.get(&tenant).copied().unwrap_or_default()
    }

    /// Whether any listed tenant carries an SLO deadline (forces the
    /// simulation onto the deadline-tracking path).
    #[must_use]
    pub fn any_deadline(&self) -> bool {
        self.classes.values().any(|c| c.deadline_rel_ns.is_some())
    }

    /// Parse a CLI tenant spec: comma-separated
    /// `<tenant>=<priority>[@<deadline-ms>]` entries, e.g.
    /// `0=interactive@5,1=normal@20,2=best-effort`.
    ///
    /// # Errors
    /// Names the offending entry and the accepted grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut classes = BTreeMap::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let bad = || {
                format!(
                    "bad tenant entry `{part}` (want \
                     `<tenant>=best-effort|normal|interactive[@<deadline-ms>]`)"
                )
            };
            let (id, class) = part.split_once('=').ok_or_else(bad)?;
            let id: u32 = id.parse().map_err(|_| bad())?;
            let (prio, deadline_rel_ns) = match class.split_once('@') {
                Some((p, ms)) => {
                    let ms: u64 = ms.parse().map_err(|_| bad())?;
                    (p, Some(ms.saturating_mul(1_000_000)))
                }
                None => (class, None),
            };
            let priority = Priority::parse(prio).ok_or_else(bad)?;
            if classes.insert(id, TenantClass { priority, deadline_rel_ns }).is_some() {
                return Err(format!("tenant {id} listed twice in `{spec}`"));
            }
        }
        Ok(TenantPolicy { classes })
    }
}

/// The brownout degradation ladder: admission floors keyed to the live
/// fraction of the fleet.
///
/// `live` is the fraction of roster slots that are present, not
/// draining, and not dead. Below `degraded`, admission sheds
/// [`Priority::BestEffort`] arrivals; below `severe`, only
/// [`Priority::Interactive`] arrivals are admitted. Both sheds are
/// typed [`FailReason::Brownout`](crate::FailReason::Brownout) and
/// recover on their own as cards rejoin — the ladder is re-evaluated
/// at every admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutLadder {
    /// Live fraction below which best-effort work is shed. In `(0, 1]`.
    pub degraded: f64,
    /// Live fraction below which only interactive work is admitted.
    /// In `[0, degraded)`.
    pub severe: f64,
}

impl Default for BrownoutLadder {
    /// Shed best-effort below 2/3 of the fleet, everything but
    /// interactive below 1/3.
    fn default() -> Self {
        BrownoutLadder { degraded: 2.0 / 3.0, severe: 1.0 / 3.0 }
    }
}

impl BrownoutLadder {
    /// Check threshold ordering and ranges.
    ///
    /// # Errors
    /// A human-readable description of the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.degraded > 0.0 && self.degraded <= 1.0) {
            return Err(format!("brownout degraded threshold {} outside (0, 1]", self.degraded));
        }
        if !(self.severe >= 0.0 && self.severe < self.degraded) {
            return Err(format!(
                "brownout severe threshold {} must sit in [0, degraded={})",
                self.severe, self.degraded
            ));
        }
        Ok(())
    }

    /// The admission floor at a live-capacity fraction: requests with a
    /// priority *below* the floor are shed. `None` means no brownout.
    #[must_use]
    pub fn floor(&self, live_fraction: f64) -> Option<Priority> {
        if live_fraction < self.severe {
            Some(Priority::Interactive)
        } else if live_fraction < self.degraded {
            Some(Priority::Normal)
        } else {
            None
        }
    }

    /// Parse the CLI spelling `<degraded>,<severe>` (two fractions,
    /// e.g. `0.67,0.34`).
    ///
    /// # Errors
    /// Names the offending value and the accepted grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let bad = || format!("bad brownout spec `{spec}` (want `<degraded>,<severe>` fractions)");
        let (d, s) = spec.split_once(',').ok_or_else(bad)?;
        let ladder = BrownoutLadder {
            degraded: d.trim().parse().map_err(|_| bad())?,
            severe: s.trim().parse().map_err(|_| bad())?,
        };
        ladder.validate()?;
        Ok(ladder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_spellings_round_trip() {
        for p in [
            PlacementPolicy::FirstFree,
            PlacementPolicy::FastestFirst,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::CapacityAware,
        ] {
            assert_eq!(PlacementPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(PlacementPolicy::parse("round-robin"), None);
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::FirstFree);
    }

    #[test]
    fn churn_spec_parses_and_validates() {
        let plan =
            ChurnPlan::parse("absent:2, join:2@5000000,drain:0@9000000,crash:1@12000000").unwrap();
        assert_eq!(plan.start_absent, vec![2]);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(
            plan.events[0],
            ChurnEvent { at_ns: 5_000_000, card: 2, action: ChurnAction::Join }
        );
        assert!(plan.validate(3).is_ok());
        assert!(plan.validate(2).unwrap_err().contains("absent"));
        assert!(ChurnPlan::parse("join:2").unwrap_err().contains("join:2"));
        assert!(ChurnPlan::parse("reboot:1@5").unwrap_err().contains("reboot"));
    }

    #[test]
    fn churn_validation_rejects_an_all_absent_fleet() {
        let plan = ChurnPlan { events: Vec::new(), start_absent: vec![0, 1] };
        assert!(plan.validate(2).unwrap_err().contains("no join"));
        let with_join = ChurnPlan {
            events: vec![ChurnEvent { at_ns: 5, card: 0, action: ChurnAction::Join }],
            start_absent: vec![0, 1],
        };
        assert!(with_join.validate(2).is_ok());
    }

    #[test]
    fn seeded_churn_is_deterministic_and_in_range() {
        let a = ChurnPlan::seeded(7, 4, 1_000_000, 9);
        let b = ChurnPlan::seeded(7, 4, 1_000_000, 9);
        assert_eq!(a, b);
        assert_ne!(a, ChurnPlan::seeded(8, 4, 1_000_000, 9));
        assert_eq!(a.events.len(), 9);
        assert!(a.validate(4).is_ok());
        assert!(a.events.iter().any(|e| e.action == ChurnAction::Join));
        assert!(a.events.iter().any(|e| e.action == ChurnAction::Crash));
        for e in &a.events {
            assert!(e.at_ns < 1_000_000 && e.card < 4);
        }
    }

    #[test]
    fn tenant_spec_parses_classes() {
        let p = TenantPolicy::parse("0=interactive@5,1=normal@20,2=best-effort").unwrap();
        assert_eq!(
            p.class_for(0),
            TenantClass { priority: Priority::Interactive, deadline_rel_ns: Some(5_000_000) }
        );
        assert_eq!(p.class_for(2).priority, Priority::BestEffort);
        assert_eq!(p.class_for(9), TenantClass::default(), "unlisted tenants run the default");
        assert!(p.any_deadline());
        assert!(!TenantPolicy::parse("3=best-effort").unwrap().any_deadline());
        assert!(TenantPolicy::parse("0=vip").unwrap_err().contains("vip"));
        assert!(TenantPolicy::parse("0=normal,0=normal").unwrap_err().contains("twice"));
    }

    #[test]
    fn brownout_floor_follows_the_ladder() {
        let b = BrownoutLadder::default();
        assert!(b.validate().is_ok());
        assert_eq!(b.floor(1.0), None);
        assert_eq!(b.floor(0.5), Some(Priority::Normal), "degraded sheds best-effort");
        assert_eq!(b.floor(0.2), Some(Priority::Interactive), "severe admits interactive only");
        assert!(BrownoutLadder { degraded: 0.0, severe: 0.0 }.validate().is_err());
        assert!(BrownoutLadder { degraded: 0.5, severe: 0.6 }.validate().is_err());
        let parsed = BrownoutLadder::parse("0.67, 0.34").unwrap();
        assert!((parsed.degraded - 0.67).abs() < 1e-12);
        assert!(BrownoutLadder::parse("0.67").unwrap_err().contains("brownout"));
    }
}
